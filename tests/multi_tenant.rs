//! Seeded stress/differential suite for the multi-tenant serving layer
//! (ISSUE 8 headline artifact).
//!
//! Every test drives the [`Server`] front over one shared `Arc<Session>` and
//! asserts the serving-layer contract:
//!
//! 1. **Oracle equality** — every served answer is identical to serial
//!    execution of the same query on a clean twin device (admission,
//!    fairness, and batching may change *performance*, never answers);
//! 2. **Fairness** — dispatch is round-robin across tenants with pending
//!    work, so a flooding tenant cannot starve another's head-of-line query;
//! 3. **Accounting** — the serve counters reconcile exactly:
//!    `submissions == admitted + rejected` always, and once the queue is
//!    drained `admitted == completed`, with per-tenant histogram counts and
//!    `QueryServed` journal events matching per-tenant submissions;
//! 4. **Batching transparency** — `batch_window = 0` and the default window
//!    produce bit-identical rows and row counts on the same seeded
//!    submission stream, while the batched run provably shares scans.
//!
//! The fault module (under `--features fault-inject`) replays the serving
//! path under seeded device fault schedules — `SCANRAW_FAULT_SCHEDULES`
//! caps the sweep exactly like `tests/fault_schedules.rs`.

use scanraw_repro::engine::query::ResultRow;
use scanraw_repro::prelude::*;
use scanraw_repro::rawfile::generate::{stage_csv, CsvSpec};
use scanraw_repro::simio::AccessKind;
use scanraw_repro::types::Error;
use std::sync::Arc;
use std::thread;

/// Stages `spec` on a fresh instant device and registers it as table `t`.
fn make_session(spec: &CsvSpec, cols: usize, config: ScanRawConfig) -> Arc<Session> {
    let disk = SimDisk::instant();
    stage_csv(&disk, "t.csv", spec);
    let session = Session::open(disk);
    session
        .register_table(
            "t",
            "t.csv",
            Schema::uniform_ints(cols),
            TextDialect::CSV,
            config,
        )
        .unwrap();
    Arc::new(session)
}

/// The three seeded query shapes shared with the parallel-exec suite: the
/// paper's SUM-of-columns micro-benchmark, a range filter with several
/// aggregate kinds, and a group-by. All non-pushdown, so all batchable.
fn seeded_queries(cols: usize, seed: u64) -> Vec<Query> {
    vec![
        Query::sum_of_columns("t", 0..cols),
        Query {
            table: "t".into(),
            filter: Some(Predicate::between(
                0,
                1i64 << 20,
                (1i64 << 30) + (seed as i64) * 1_000_003,
            )),
            group_by: vec![],
            aggregates: vec![
                AggExpr::count(),
                AggExpr::sum(Expr::col(1)),
                AggExpr::min(Expr::col(2)),
                AggExpr::max(Expr::col(2)),
                AggExpr::avg(Expr::col(1)),
            ],
            pushdown: false,
            projection: None,
        },
        Query {
            table: "t".into(),
            filter: Some(Predicate::between(1, 0i64, i64::MAX)),
            group_by: vec![Col(cols - 1)],
            aggregates: vec![AggExpr::count(), AggExpr::sum(Expr::col(0))],
            pushdown: false,
            projection: None,
        },
    ]
}

/// The serial oracle: each query executed one-by-one on a clean twin device
/// in [`ExecMode::Serial`] — no server, no batching, no concurrency.
fn serial_oracle(
    spec: &CsvSpec,
    cols: usize,
    config: &ScanRawConfig,
    workloads: &[(TenantId, Vec<Query>)],
) -> Vec<Vec<(Vec<ResultRow>, u64)>> {
    let session = make_session(spec, cols, config.clone());
    session.set_exec_mode(ExecMode::Serial);
    workloads
        .iter()
        .map(|(_, queries)| {
            queries
                .iter()
                .map(|q| {
                    let out = session
                        .run(ExecRequest::query(q.clone()))
                        .expect("oracle run is fault-free")
                        .into_single();
                    (out.result.rows, out.result.rows_scanned)
                })
                .collect()
        })
        .collect()
}

/// Runs every tenant's workload on its own thread through the server
/// (blocking per query), returning per-tenant results in workload order.
fn run_tenants(
    server: &Server,
    workloads: &[(TenantId, Vec<Query>)],
) -> Vec<Vec<(Vec<ResultRow>, u64)>> {
    thread::scope(|s| {
        let handles: Vec<_> = workloads
            .iter()
            .map(|(tenant, queries)| {
                s.spawn(move || {
                    queries
                        .iter()
                        .map(|q| {
                            let out = server.execute(*tenant, q).expect("served query succeeds");
                            (out.result.rows, out.result.rows_scanned)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("tenant thread panicked"))
            .collect()
    })
}

/// Per-tenant `QueryServed` tallies from the server journal.
fn served_per_tenant(server: &Server) -> std::collections::BTreeMap<TenantId, u64> {
    let mut counts = std::collections::BTreeMap::new();
    for entry in server.obs().journal.entries() {
        if let ObsEvent::QueryServed { tenant, .. } = entry.event {
            *counts.entry(tenant).or_insert(0u64) += 1;
        }
    }
    counts
}

/// Satellite 1: N tenant threads × M seeded workloads against one
/// `Arc<Session>` — oracle-identical answers, reconciled counters, matching
/// per-tenant accounting, and a bounded per-tenant p99 (no starvation).
/// When `SCANRAW_SERVE_REPORT` is set, writes the per-tenant latency report
/// there (the CI serve-stress artifact).
#[test]
fn stress_tenants_share_one_session_and_match_the_serial_oracle() {
    let cols = 4;
    let spec = CsvSpec::new(2_400, cols, 97);
    let config = ScanRawConfig::default()
        .with_chunk_rows(300)
        .with_workers(2)
        .with_policy(WritePolicy::speculative());

    // 4 tenants × (2 seeds × 3 query shapes) = 24 queries total.
    let workloads: Vec<(TenantId, Vec<Query>)> = (0..4u64)
        .map(|t| {
            let queries = (0..2)
                .flat_map(|s| seeded_queries(cols, t * 31 + s))
                .collect();
            (t, queries)
        })
        .collect();
    let oracle = serial_oracle(&spec, cols, &config, &workloads);

    let session = make_session(&spec, cols, config);
    let server = session.serve(ServeConfig::default()).unwrap();
    let results = run_tenants(&server, &workloads);
    assert_eq!(
        results, oracle,
        "served answers diverged from the serial oracle"
    );

    server.shutdown();
    let c = server.counters();
    let submitted: u64 = workloads.iter().map(|(_, qs)| qs.len() as u64).sum();
    assert_eq!(c.admitted, submitted, "every submission was admitted");
    assert_eq!(c.rejected, 0, "blocking tenants never hit the depth bound");
    assert_eq!(
        c.admitted, c.completed,
        "drained queue: admitted == completed + rejected"
    );
    assert_eq!(
        c.batched_queries, c.completed,
        "every served query belongs to exactly one batch"
    );
    assert!(
        c.batches >= 1 && c.batches <= c.completed,
        "batch count bounded by served queries"
    );

    // Per-tenant accounting: histogram counts and journal events both match
    // each tenant's submissions exactly.
    let served = served_per_tenant(&server);
    let mut p99s: Vec<u64> = Vec::new();
    for (tenant, queries) in &workloads {
        let snap = server
            .obs()
            .metrics
            .histogram_snapshot(&format!("serve.tenant.{tenant}.latency.nanos"))
            .expect("every tenant has a latency histogram");
        assert_eq!(snap.count, queries.len() as u64, "tenant {tenant} count");
        assert_eq!(served.get(tenant), Some(&(queries.len() as u64)));
        p99s.push(snap.quantile(0.99));
    }
    // No starvation: round-robin dispatch keeps every tenant's p99 within a
    // small factor of the fastest tenant's (plus slack for scheduler noise).
    let fastest = p99s.iter().copied().min().unwrap();
    for (i, p99) in p99s.iter().enumerate() {
        assert!(
            *p99 <= fastest.saturating_mul(8) + 1_000_000,
            "tenant {i} p99 {p99}ns starved vs fastest {fastest}ns"
        );
    }

    if let Ok(path) = std::env::var("SCANRAW_SERVE_REPORT") {
        let report = scanraw_repro::obs::json::to_string_pretty(&server.latency_report());
        std::fs::write(&path, report).expect("write serve report artifact");
    }
}

/// Fairness, deterministically: in pump mode with batching off, a tenant
/// holding three queued queries is served exactly once per cycle — tenants
/// 1,1,1,2,2,3 queued must dispatch as 1,2,3,1,2,1.
#[test]
fn pump_mode_serves_tenants_round_robin() {
    let cols = 3;
    let spec = CsvSpec::new(600, cols, 11);
    let config = ScanRawConfig::default()
        .with_chunk_rows(150)
        .with_policy(WritePolicy::ExternalTables);
    let session = make_session(&spec, cols, config);
    let server = session
        .serve(
            ServeConfig::default()
                .with_dispatchers(0)
                .with_batch_window(0),
        )
        .unwrap();

    let q = Query::sum_of_columns("t", 0..cols);
    let plan: &[TenantId] = &[1, 1, 1, 2, 2, 3];
    let tickets: Vec<Ticket> = plan
        .iter()
        .map(|t| server.submit(*t, &q).unwrap())
        .collect();
    while server.pump() > 0 {}
    for t in tickets {
        t.wait().unwrap();
    }

    let order: Vec<TenantId> = server
        .obs()
        .journal
        .entries()
        .iter()
        .filter_map(|e| match e.event {
            ObsEvent::QueryServed { tenant, .. } => Some(tenant),
            _ => None,
        })
        .collect();
    assert_eq!(
        order,
        vec![1, 2, 3, 1, 2, 1],
        "round-robin: every waiting tenant is served once per cycle"
    );
}

/// Admission control: past the configured depth submissions fail with
/// `Error::Overloaded` (carrying the bound), the rejection is counted, and
/// the tenant gets in on retry once the queue drains.
#[test]
fn admission_bound_rejects_with_overloaded_then_recovers() {
    let cols = 3;
    let spec = CsvSpec::new(400, cols, 23);
    let config = ScanRawConfig::default()
        .with_chunk_rows(100)
        .with_policy(WritePolicy::ExternalTables);
    let session = make_session(&spec, cols, config);
    let server = session
        .serve(
            ServeConfig::default()
                .with_dispatchers(0)
                .with_max_queue_depth(3),
        )
        .unwrap();

    let q = Query::sum_of_columns("t", 0..cols);
    let tickets: Vec<Ticket> = (0..3u64).map(|t| server.submit(t, &q).unwrap()).collect();
    let err = server.submit(9, &q).unwrap_err();
    assert!(
        matches!(err, Error::Overloaded { depth: 3 }),
        "expected Overloaded at the configured bound, got {err:?}"
    );
    assert_eq!(server.counters().rejected, 1);

    while server.pump() > 0 {}
    let late = server.submit(9, &q).expect("queue drained, bound freed");
    while server.pump() > 0 {}
    for t in tickets {
        t.wait().unwrap();
    }
    late.wait().unwrap();

    let c = server.counters();
    assert_eq!(
        (c.admitted, c.completed, c.rejected),
        (4, 4, 1),
        "admitted == completed after drain; the rejection stays counted"
    );
}

/// Batching: three queued same-table queries from three tenants dispatch as
/// ONE shared scan — a single pump serves all three, reading exactly the
/// bytes a single-query scan reads, and every answer still matches direct
/// execution.
#[test]
fn queued_same_table_queries_share_one_scan() {
    let cols = 4;
    let spec = CsvSpec::new(2_000, cols, 31);
    // External-table policy: no write-backs, so the only device traffic
    // during a dispatch is the raw-file scan itself.
    let config = ScanRawConfig::default()
        .with_chunk_rows(250)
        .with_workers(2)
        .with_policy(WritePolicy::ExternalTables);
    let queries = seeded_queries(cols, 5);

    // Reference: one query on a twin device costs this many read bytes.
    let single_session = make_session(&spec, cols, config.clone());
    let single_server = single_session
        .serve(ServeConfig::default().with_dispatchers(0))
        .unwrap();
    let ticket = single_server.submit(0, &queries[0]).unwrap();
    let before = single_session
        .database()
        .disk()
        .stats()
        .bytes(AccessKind::Read);
    assert_eq!(single_server.pump(), 1);
    let single_scan_bytes = single_session
        .database()
        .disk()
        .stats()
        .bytes(AccessKind::Read)
        - before;
    ticket.wait().unwrap();

    // Batched: three tenants queue three different queries; one dispatch
    // co-opts them all.
    let session = make_session(&spec, cols, config.clone());
    let server = session
        .serve(ServeConfig::default().with_dispatchers(0))
        .unwrap();
    let tickets: Vec<Ticket> = queries
        .iter()
        .zip(1u64..)
        .map(|(q, tenant)| server.submit(tenant, q).unwrap())
        .collect();
    let before = session.database().disk().stats().bytes(AccessKind::Read);
    assert_eq!(server.pump(), 3, "one pump dispatches the whole batch");
    let batch_bytes = session.database().disk().stats().bytes(AccessKind::Read) - before;
    assert_eq!(
        batch_bytes, single_scan_bytes,
        "three batched queries paid one scan's worth of reads"
    );

    let c = server.counters();
    assert_eq!((c.batches, c.batched_queries), (1, 3));
    let formed = server
        .obs()
        .journal
        .entries()
        .iter()
        .find_map(|e| match &e.event {
            ObsEvent::BatchFormed {
                queries, tenants, ..
            } => Some((*queries, *tenants)),
            _ => None,
        });
    assert_eq!(formed, Some((3, 3)), "3 queries from 3 distinct tenants");

    // Answers are still per-query correct: compare against direct execution
    // on a third twin.
    let oracle_session = make_session(&spec, cols, config);
    for (ticket, q) in tickets.into_iter().zip(&queries) {
        let served = ticket.wait().unwrap();
        let direct = oracle_session
            .run(ExecRequest::query(q.clone()))
            .unwrap()
            .into_single();
        assert_eq!(served.result.rows, direct.result.rows);
        assert_eq!(served.result.rows_scanned, direct.result.rows_scanned);
    }
}

/// Satellite 2, the differential test: the same seeded submission stream
/// served with `batch_window = 0` and with the default window yields
/// bit-identical rows and row counts per query — while the batched run
/// demonstrably formed multi-query batches.
#[test]
fn batching_window_is_answer_invariant() {
    let cols = 4;
    let spec = CsvSpec::new(1_800, cols, 53);
    let config = ScanRawConfig::default()
        .with_chunk_rows(200)
        .with_workers(2)
        .with_policy(WritePolicy::speculative());
    let shapes = seeded_queries(cols, 7);
    // 18 submissions round-robining 3 tenants over the 3 shapes.
    let stream: Vec<(TenantId, Query)> = (0..18)
        .map(|i| ((i % 3) as u64 + 1, shapes[i % shapes.len()].clone()))
        .collect();

    let run = |window: usize| -> (Vec<(Vec<ResultRow>, u64)>, ServeCounters) {
        let session = make_session(&spec, cols, config.clone());
        let server = session
            .serve(
                ServeConfig::default()
                    .with_dispatchers(0)
                    .with_batch_window(window)
                    .with_max_queue_depth(stream.len()),
            )
            .unwrap();
        let tickets: Vec<Ticket> = stream
            .iter()
            .map(|(t, q)| server.submit(*t, q).unwrap())
            .collect();
        while server.pump() > 0 {}
        let outcomes = tickets
            .into_iter()
            .map(|t| {
                let out = t.wait().unwrap();
                (out.result.rows, out.result.rows_scanned)
            })
            .collect();
        (outcomes, server.counters())
    };

    let (unbatched, cu) = run(0);
    let (batched, cb) = run(ServeConfig::default().batch_window);
    assert_eq!(
        unbatched, batched,
        "batching changed an answer on the same submission stream"
    );
    assert_eq!(cu.batches, 18, "window 0: every query pays its own scan");
    assert!(
        cb.batches < cu.batches,
        "default window formed no multi-query batch — differential is vacuous"
    );
    assert_eq!(cu.completed, 18);
    assert_eq!(cb.completed, 18);
}

/// Satellite 4: a shared-scan batch mints one root `query` span per batched
/// query — each in its own validating trace, linked to the carrier trace
/// (root `query.batch`, which holds the scan/exec spans) by a `batch` tag.
#[test]
fn batched_queries_mint_their_own_query_roots() {
    let cols = 4;
    let spec = CsvSpec::new(1_200, cols, 67);
    let config = ScanRawConfig::default()
        .with_chunk_rows(200)
        .with_workers(2)
        .with_policy(WritePolicy::speculative());
    let session = make_session(&spec, cols, config);
    let queries = seeded_queries(cols, 5);

    let shared = session.engine().execute_shared_traced(&queries).unwrap();
    assert_eq!(shared.outcomes.len(), queries.len());
    let op = session.engine().operator("t").unwrap();
    op.drain_writes();
    let recorder = &op.obs().trace;

    let batch_trace = shared.batch_trace.expect("tracing is on by default");
    let carrier = recorder.trace(batch_trace);
    carrier
        .validate()
        .unwrap_or_else(|e| panic!("carrier trace invalid: {e}"));
    let carrier_root = carrier.root().expect("carrier root");
    assert_eq!(carrier_root.name, "query.batch");
    assert_eq!(carrier_root.tag("queries"), Some("3"));
    assert!(
        recorder.span_count(batch_trace) > 1,
        "the scan/exec/merge spans hang off the carrier"
    );

    assert_eq!(shared.query_traces.len(), queries.len());
    let mut seen = std::collections::BTreeSet::new();
    for (i, id) in shared.query_traces.iter().enumerate() {
        let id = id.unwrap_or_else(|| panic!("query {i}: no per-query trace"));
        assert!(seen.insert(id.0), "query traces must be distinct");
        assert_ne!(id, batch_trace, "per-query roots live outside the carrier");
        let qt = recorder.trace(id);
        qt.validate()
            .unwrap_or_else(|e| panic!("query {i} trace invalid: {e}"));
        let root = qt.root().expect("per-query root span");
        assert_eq!(root.name, "query");
        assert_eq!(root.tag("mode"), Some("shared"));
        assert_eq!(
            root.tag("batch"),
            Some(batch_trace.0.to_string().as_str()),
            "root links back to the carrier trace"
        );
        assert_eq!(
            recorder.span_count(id),
            1,
            "root-only: the work itself is traced once, in the carrier"
        );
    }
}

/// Satellite 3: the serving path under seeded device fault schedules.
#[cfg(feature = "fault-inject")]
mod faults {
    use super::*;
    use scanraw_repro::simio::{FaultConfig, FaultPlan};
    use std::time::Duration;

    /// Seeded schedules; override with `SCANRAW_FAULT_SCHEDULES=<n>` (the
    /// same cap the fault_schedules suite honours).
    fn n_schedules() -> u64 {
        std::env::var("SCANRAW_FAULT_SCHEDULES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(64)
    }

    /// Recoverable fault classes only (transient errors, latency spikes,
    /// checksummed-store bit flips): the serving layer must absorb them —
    /// every query completes, answers stay oracle-identical, per-tenant
    /// accounting stays exact, and the suite terminating is the
    /// no-deadlock/no-dropped-query assertion. Crashes and dead regions are
    /// covered by `fault_schedules.rs` on the direct path.
    #[test]
    fn serving_under_fault_schedules_is_oracle_identical() {
        for seed in 0..n_schedules() {
            let cols = 3 + (seed % 2) as usize;
            let rows = 120 + (seed % 5) * 60;
            let spec = CsvSpec::new(rows, cols, seed.wrapping_mul(0x9e37_79b9).max(1));
            let config = ScanRawConfig::default()
                .with_chunk_rows(20 + (seed % 3) as u32 * 15)
                .with_cache_chunks(2 + (seed % 4) as usize)
                .with_workers((seed % 3) as usize)
                .with_policy(WritePolicy::speculative());
            let workloads: Vec<(TenantId, Vec<Query>)> = (0..3u64)
                .map(|t| (t, seeded_queries(cols, seed * 7 + t)))
                .collect();
            let oracle = serial_oracle(&spec, cols, &config, &workloads);

            let disk = SimDisk::instant();
            stage_csv(&disk, "t.csv", &spec);
            disk.set_fault_plan(FaultPlan::new(FaultConfig {
                p_transient: 0.08,
                p_bitflip: 0.04,
                p_latency: 0.05,
                latency_spike: Duration::from_millis(2),
                ..FaultConfig::seeded(seed)
            }));
            let session = Session::open(disk);
            session
                .register_table(
                    "t",
                    "t.csv",
                    Schema::uniform_ints(cols),
                    TextDialect::CSV,
                    config,
                )
                .unwrap();
            let session = Arc::new(session);
            let server = session.serve(ServeConfig::default()).unwrap();

            let results = run_tenants(&server, &workloads);
            assert_eq!(
                results, oracle,
                "seed {seed}: faults may change performance, never answers"
            );
            server.shutdown();

            let c = server.counters();
            let submitted: u64 = workloads.iter().map(|(_, qs)| qs.len() as u64).sum();
            assert_eq!(
                (c.admitted, c.completed, c.rejected),
                (submitted, submitted, 0),
                "seed {seed}: no query dropped or double-counted under faults"
            );
            let served = served_per_tenant(&server);
            for (tenant, queries) in &workloads {
                assert_eq!(
                    served.get(tenant),
                    Some(&(queries.len() as u64)),
                    "seed {seed}: tenant {tenant} served-count wrong"
                );
            }
        }
    }

    /// Degradation attribution: a permanent write fault flips the operator
    /// to external-table mode; queries keep answering from the raw file, and
    /// every `QueryServed` event emitted *after* the degradation names the
    /// right tenant with `degraded: true`.
    #[test]
    fn degradation_is_attributed_to_the_tenants_it_served() {
        let cols = 3;
        let spec = CsvSpec::new(300, cols, 83);
        let config = ScanRawConfig::default()
            .with_chunk_rows(50)
            .with_policy(WritePolicy::speculative());
        let disk = SimDisk::instant();
        stage_csv(&disk, "t.csv", &spec);
        // Every write to the binary store fails permanently; the raw file
        // stays healthy, so answers are unaffected.
        disk.set_fault_plan(FaultPlan::new(FaultConfig {
            target: "db/".into(),
            permanent_after: Some(0),
            ..FaultConfig::seeded(83)
        }));
        let session = Session::open(disk);
        session
            .register_table(
                "t",
                "t.csv",
                Schema::uniform_ints(cols),
                TextDialect::CSV,
                config.clone(),
            )
            .unwrap();
        let session = Arc::new(session);
        let server = session
            .serve(ServeConfig::default().with_dispatchers(0))
            .unwrap();

        // Warm-up query triggers the speculative write-backs that hit the
        // dead store; drain them so the degradation is observed.
        let q = Query::sum_of_columns("t", 0..cols);
        let warmup = server.submit(0, &q).unwrap();
        while server.pump() > 0 {}
        warmup.wait().unwrap();
        let op = session.engine().operator("t").unwrap();
        op.drain_writes();
        assert!(op.load_degraded(), "permanent store fault must degrade");

        // Post-degradation queries: answers still correct, and the serve
        // journal attributes the degraded state to these tenants.
        let oracle = serial_oracle(
            &spec,
            cols,
            &config,
            &[(1, vec![q.clone()]), (2, vec![q.clone()])],
        );
        let t1 = server.submit(1, &q).unwrap();
        let t2 = server.submit(2, &q).unwrap();
        while server.pump() > 0 {}
        for (ticket, expected) in [t1, t2].into_iter().zip(&oracle) {
            let out = ticket.wait().unwrap();
            assert_eq!((out.result.rows, out.result.rows_scanned), expected[0]);
        }
        let flagged: Vec<(TenantId, bool)> = server
            .obs()
            .journal
            .entries()
            .iter()
            .filter_map(|e| match e.event {
                ObsEvent::QueryServed {
                    tenant, degraded, ..
                } if tenant != 0 => Some((tenant, degraded)),
                _ => None,
            })
            .collect();
        assert_eq!(
            flagged,
            vec![(1, true), (2, true)],
            "degradation attributed to the tenants served under it"
        );
    }
}
