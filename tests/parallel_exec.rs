//! Differential suite for chunk-parallel query execution (ISSUE 5).
//!
//! Every test runs the same workload through [`ExecMode::Serial`] (the
//! row-at-a-time reference fold) and [`ExecMode::Parallel`] (columnar
//! evaluation fanned out to the conversion worker pool, partials merged in
//! ascending chunk order) and asserts identical answers — rows, grouping,
//! and `rows_scanned`. Elapsed times are execution artifacts and are not
//! compared. All data is integer-valued so float aggregates (AVG promotes
//! to f64) are exact under any summation order below 2^53; determinism of
//! the merge order itself is exercised separately by the repeated-run
//! stress case.

use scanraw_repro::engine::query::ResultRow;
use scanraw_repro::prelude::*;
use scanraw_repro::rawfile::generate::{stage_csv, CsvSpec};

fn engine_for(disk: &SimDisk, cols: usize, config: ScanRawConfig, mode: ExecMode) -> Engine {
    let engine = Engine::new(Database::new(disk.clone()));
    engine.set_exec_mode(mode);
    engine
        .register_table(
            "t",
            "t.csv",
            Schema::uniform_ints(cols),
            TextDialect::CSV,
            config,
        )
        .unwrap();
    engine
}

/// Runs each query through a fresh serial engine and a fresh parallel engine
/// over twin instant disks staged with the same file, asserting identical
/// rows and row counts query-by-query (and across the repeat, so cache/db
/// delivery regimes are covered too).
fn assert_modes_agree(spec: &CsvSpec, cols: usize, config: &ScanRawConfig, queries: &[Query]) {
    let runs: Vec<Vec<(Vec<ResultRow>, u64)>> = [ExecMode::Serial, ExecMode::Parallel]
        .into_iter()
        .map(|mode| {
            let disk = SimDisk::instant();
            stage_csv(&disk, "t.csv", spec);
            let engine = engine_for(&disk, cols, config.clone(), mode);
            queries
                .iter()
                .flat_map(|q| {
                    // Twice per query: first raw/streaming, then cache/db.
                    (0..2).map(|_| {
                        let out = engine.execute(q).expect("query runs");
                        (out.result.rows, out.result.rows_scanned)
                    })
                })
                .collect()
        })
        .collect();
    assert_eq!(runs[0], runs[1], "serial and parallel answers diverged");
}

fn seeded_queries(cols: usize, seed: u64) -> Vec<Query> {
    vec![
        // The paper's micro-benchmark: SUM over all columns.
        Query::sum_of_columns("t", 0..cols),
        // Range filter (drives chunk skipping) + several aggregate kinds.
        Query {
            table: "t".into(),
            filter: Some(Predicate::between(
                0,
                1i64 << 20,
                (1i64 << 30) + (seed as i64) * 1_000_003,
            )),
            group_by: vec![],
            aggregates: vec![
                AggExpr::count(),
                AggExpr::sum(Expr::col(1)),
                AggExpr::min(Expr::col(2)),
                AggExpr::max(Expr::col(2)),
                AggExpr::avg(Expr::col(1)),
            ],
            pushdown: false,
            projection: None,
        },
        // Group by a column while aggregating another.
        Query {
            table: "t".into(),
            filter: Some(Predicate::between(1, 0i64, i64::MAX)),
            group_by: vec![Col(cols - 1)],
            aggregates: vec![AggExpr::count(), AggExpr::sum(Expr::col(0))],
            pushdown: false,
            projection: None,
        },
    ]
}

#[test]
fn serial_and_parallel_agree_on_seeded_workloads() {
    for seed in 0..6u64 {
        let cols = 3 + (seed % 3) as usize;
        let rows = 2_000 + (seed % 4) * 777;
        let spec = CsvSpec::new(rows, cols, seed.wrapping_mul(0x9e37_79b9).max(1));
        let config = ScanRawConfig::default()
            .with_chunk_rows(200 + (seed % 3) as u32 * 130)
            .with_workers((seed % 4) as usize) // includes the no-pool regime
            .with_policy(WritePolicy::speculative());
        assert_modes_agree(&spec, cols, &config, &seeded_queries(cols, seed));
    }
}

#[test]
fn pushdown_agrees_across_modes() {
    let cols = 4;
    let spec = CsvSpec::new(3_000, cols, 41);
    let config = ScanRawConfig::default()
        .with_chunk_rows(500)
        .with_workers(3);
    let q = Query::sum_of_columns("t", 0..cols)
        .with_filter(Predicate::between(0, 0i64, 1i64 << 29))
        .with_pushdown();
    assert_modes_agree(&spec, cols, &config, &[q]);
}

#[test]
fn parallel_group_by_with_like_predicate_agrees() {
    use scanraw_repro::rawfile::sam::{field, sam_schema, stage_sam, SamSpec};
    let spec = SamSpec {
        reads: 4_000,
        seed: 9,
        read_len: 60,
        ref_len: 1_000_000,
    };
    let query = Query {
        table: "reads".into(),
        filter: Some(Predicate::And(
            Box::new(Predicate::like(field::SEQ, "%ACGT%")),
            Box::new(Predicate::between(field::POS, 1i64, 600_000i64)),
        )),
        group_by: vec![Col(field::CIGAR)],
        aggregates: vec![AggExpr::count()],
        pushdown: false,
        projection: None,
    };
    let mut answers = Vec::new();
    for mode in [ExecMode::Serial, ExecMode::Parallel] {
        let disk = SimDisk::instant();
        stage_sam(&disk, "r.sam", &spec);
        let engine = Engine::new(Database::new(disk.clone()));
        engine.set_exec_mode(mode);
        engine
            .register_table(
                "reads",
                "r.sam",
                sam_schema(),
                TextDialect::TSV,
                ScanRawConfig::default()
                    .with_chunk_rows(512)
                    .with_workers(4),
            )
            .unwrap();
        let out = engine.execute(&query).unwrap();
        assert!(
            out.result.rows_scanned > 0,
            "predicate must match something"
        );
        answers.push((out.result.rows, out.result.rows_scanned));
    }
    assert_eq!(answers[0], answers[1]);
}

/// Merge determinism under schedule stress: the same parallel query repeated
/// on fresh engines must yield bit-for-bit identical rows every time, even
/// for order-sensitive float aggregates (AVG), because partials are merged
/// in ascending chunk order regardless of which worker finished first.
#[test]
fn parallel_merge_is_deterministic_across_runs() {
    let cols = 4;
    let spec = CsvSpec::new(5_000, cols, 1234);
    let query = Query {
        table: "t".into(),
        filter: Some(Predicate::between(0, 0i64, 1i64 << 30)),
        group_by: vec![Col(3)],
        aggregates: vec![AggExpr::avg(Expr::col(1)), AggExpr::sum(Expr::col(2))],
        pushdown: false,
        projection: None,
    };
    let mut reference: Option<(Vec<ResultRow>, u64)> = None;
    for _ in 0..20 {
        let disk = SimDisk::instant();
        stage_csv(&disk, "t.csv", &spec);
        let engine = engine_for(
            &disk,
            cols,
            ScanRawConfig::default()
                .with_chunk_rows(250)
                .with_workers(4),
            ExecMode::Parallel,
        );
        let out = engine.execute(&query).unwrap();
        let got = (out.result.rows, out.result.rows_scanned);
        match &reference {
            None => reference = Some(got),
            Some(r) => assert_eq!(*r, got, "parallel run diverged across repeats"),
        }
    }
}

/// The parallel path actually runs on the pool (the `parallel_chunks`
/// counter moves) and exec-level min/max skipping composes with plan-time
/// skipping without changing answers.
#[test]
fn parallel_chunks_counter_and_skipping() {
    let disk = SimDisk::instant();
    // Clustered first column: chunk i holds [i*10_000, i*10_000 + rows).
    let chunks = 8i64;
    let rows_per_chunk = 1_000i64;
    let mut text = String::new();
    for c in 0..chunks {
        for r in 0..rows_per_chunk {
            let key = c * 10_000 + r;
            text.push_str(&format!("{key},{},{}\n", key % 97, key % 7));
        }
    }
    disk.storage().put("t.csv", text.into_bytes());
    let engine = Engine::new(Database::new(disk.clone()));
    engine.set_exec_mode(ExecMode::Parallel);
    engine
        .register_table(
            "t",
            "t.csv",
            Schema::uniform_ints(3),
            TextDialect::CSV,
            ScanRawConfig::default()
                .with_chunk_rows(rows_per_chunk as u32)
                .with_workers(4),
        )
        .unwrap();
    let narrow =
        Query::sum_of_columns("t", [0, 2]).with_filter(Predicate::between(0, 30_000i64, 30_999i64));

    // First scan streams the whole file (layout unknown): every delivered
    // chunk is either submitted to the pool or exec-level skipped.
    let out = engine.execute(&narrow).unwrap();
    assert_eq!(out.result.rows_scanned, rows_per_chunk as u64);
    let op = engine.operator("t").unwrap();
    let submitted = op
        .obs()
        .metrics
        .counter_value("scanraw.exec.parallel_chunks")
        .unwrap_or(0);
    let exec_skipped = op
        .obs()
        .metrics
        .counter_value("scanraw.exec.skipped_chunks")
        .unwrap_or(0);
    assert!(submitted > 0, "no chunk went through the parallel path");
    assert_eq!(
        submitted + exec_skipped,
        chunks as u64,
        "every chunk of the streaming scan is either executed or skipped"
    );

    // Second scan plans from the catalog: min/max statistics now exist, so
    // plan-time skipping drops the non-matching chunks and the answer is
    // unchanged.
    let again = engine.execute(&narrow).unwrap();
    assert_eq!(again.result.rows, out.result.rows);
    assert_eq!(again.scan.skipped as i64, chunks - 1);
}

/// Typed query validation rejects malformed queries before any scan work.
#[test]
fn invalid_queries_fail_typed_and_early() {
    use scanraw_repro::types::Error;
    let disk = SimDisk::instant();
    stage_csv(&disk, "t.csv", &CsvSpec::new(100, 3, 5));
    let engine = engine_for(
        &disk,
        3,
        ScanRawConfig::default().with_chunk_rows(50),
        ExecMode::Parallel,
    );
    // Out-of-range column.
    let q = Query::sum_of_columns("t", [7]);
    match engine.execute(&q) {
        Err(Error::InvalidQuery(m)) => assert!(m.contains("column 7"), "{m}"),
        other => panic!("expected InvalidQuery, got {other:?}"),
    }
    // Empty aggregate list is unrepresentable through the builder.
    match Query::builder("t").build() {
        Err(Error::InvalidQuery(m)) => assert!(m.contains("no aggregates"), "{m}"),
        other => panic!("expected InvalidQuery, got {other:?}"),
    }
}

/// Shared scans fan out once and each consumer merges its own partials;
/// parallel and serial shared execution agree, and per-query durations are
/// measured per query (attach-to-finish), not copied from the batch start.
#[test]
fn shared_scan_agrees_across_modes() {
    let cols = 5;
    let spec = CsvSpec::new(4_000, cols, 99);
    let queries = vec![
        Query::sum_of_columns("t", 0..cols),
        Query {
            table: "t".into(),
            filter: Some(Predicate::between(0, 0i64, 1i64 << 29)),
            group_by: vec![],
            aggregates: vec![AggExpr::count(), AggExpr::avg(Expr::col(1))],
            pushdown: false,
            projection: None,
        },
        Query {
            table: "t".into(),
            filter: None,
            group_by: vec![Col(4)],
            aggregates: vec![AggExpr::min(Expr::col(2)), AggExpr::max(Expr::col(2))],
            pushdown: false,
            projection: None,
        },
    ];
    let mut answers = Vec::new();
    for mode in [ExecMode::Serial, ExecMode::Parallel] {
        let disk = SimDisk::instant();
        stage_csv(&disk, "t.csv", &spec);
        let engine = engine_for(
            &disk,
            cols,
            ScanRawConfig::default()
                .with_chunk_rows(400)
                .with_workers(4),
            mode,
        );
        let outcomes = engine.execute_shared(&queries).unwrap();
        answers.push(
            outcomes
                .iter()
                .map(|o| (o.result.rows.clone(), o.result.rows_scanned))
                .collect::<Vec<_>>(),
        );
    }
    assert_eq!(answers[0], answers[1]);
}

/// Under fault injection, parallel execution returns the same answers as
/// serial execution on the same faulty device schedule — faults may change
/// performance and chunk sources, never results.
#[cfg(feature = "fault-inject")]
#[test]
fn parallel_matches_serial_under_fault_schedules() {
    use scanraw_repro::simio::{FaultConfig, FaultPlan};
    for seed in 0..16u64 {
        let cols = 3;
        let spec = CsvSpec::new(600, cols, seed.max(1));
        let config = ScanRawConfig::default()
            .with_chunk_rows(60)
            .with_workers((seed % 3) as usize)
            .with_policy(WritePolicy::speculative());
        let fault = FaultConfig {
            p_transient: 0.25,
            max_consecutive: 3,
            ..FaultConfig::seeded(seed)
        };
        let queries = seeded_queries(cols, seed);
        let mut answers = Vec::new();
        for mode in [ExecMode::Serial, ExecMode::Parallel] {
            let disk = SimDisk::instant();
            stage_csv(&disk, "t.csv", &spec);
            disk.set_fault_plan(FaultPlan::new(fault.clone()));
            let engine = engine_for(&disk, cols, config.clone(), mode);
            answers.push(
                queries
                    .iter()
                    .map(|q| {
                        let out = engine.execute(q).expect("retries absorb transients");
                        (out.result.rows, out.result.rows_scanned)
                    })
                    .collect::<Vec<_>>(),
            );
        }
        assert_eq!(answers[0], answers[1], "seed {seed} diverged");
    }
}
