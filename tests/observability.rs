//! Integration tests for the unified observability layer: metrics registry,
//! event journal, JSONL recorder, and the engine's `EXPLAIN ANALYZE` path,
//! all exercised over the real pipeline.

use scanraw_repro::core::SchedulerReport;
use scanraw_repro::obs::recorder::parse_jsonl;
use scanraw_repro::obs::{JsonlRecorder, ObsEvent};
use scanraw_repro::prelude::*;
use scanraw_repro::rawfile::generate::{stage_csv, CsvSpec};
use std::sync::{Arc, Mutex};

fn engine_with_table(policy: WritePolicy, cache_chunks: usize) -> (SimDisk, Engine) {
    let disk = SimDisk::instant();
    stage_csv(&disk, "t.csv", &CsvSpec::new(4_000, 4, 11));
    let engine = Engine::new(Database::new(disk.clone()));
    engine
        .register_table(
            "t",
            "t.csv",
            Schema::uniform_ints(4),
            TextDialect::CSV,
            ScanRawConfig::default()
                .with_chunk_rows(500)
                .with_workers(2)
                .with_cache_chunks(cache_chunks)
                .with_policy(policy),
        )
        .unwrap();
    (disk, engine)
}

#[test]
fn explain_analyze_reports_sources_across_cold_and_warm_runs() {
    let (_disk, engine) = engine_with_table(WritePolicy::speculative(), 32);
    let q = Query::sum_of_columns("t", 0..4);

    // Cold run: everything converts from the raw file (8 chunks of 500 rows).
    let cold = engine.explain_analyze(&q).unwrap();
    assert_eq!(cold.outcome.scan.from_raw, 8);
    assert_eq!(cold.outcome.scan.from_cache, 0);
    assert_eq!(cold.outcome.result.rows_scanned, 4_000);
    // The pipeline stages actually ran and were timed.
    let stage = |name: &str| {
        cold.stage_durations
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, d)| *d)
            .unwrap()
    };
    assert!(!stage("TOKENIZE").is_zero(), "{:?}", cold.stage_durations);
    assert!(!stage("PARSE").is_zero(), "{:?}", cold.stage_durations);
    // Journal bracketed the query.
    assert!(cold
        .events
        .iter()
        .any(|e| matches!(e.event, ObsEvent::QueryStart { .. })));
    assert!(cold
        .events
        .iter()
        .any(|e| matches!(e.event, ObsEvent::QueryEnd { .. })));

    // Warm run: every chunk fits in the cache, so the re-run is served from
    // it — and the plan predicted that.
    let warm = engine.explain_analyze(&q).unwrap();
    assert_eq!(warm.explain.expect_from_cache, 8);
    assert_eq!(warm.outcome.scan.from_cache, 8);
    assert_eq!(warm.outcome.scan.from_raw, 0);
    assert_eq!(warm.cache_hit_rate, Some(1.0));
    // Chunk delivery is counted under DELIVER, not READ (its *duration* is
    // virtual-clock time, which does not advance for cache hits).
    let op = engine.operator("t").unwrap();
    let deliver = op
        .obs()
        .metrics
        .histogram_snapshot("pipeline.stage.deliver.nanos")
        .unwrap();
    assert_eq!(deliver.count, 8);

    // The JSON export is parseable and carries the source breakdown.
    let doc = warm.to_json();
    let parsed = scanraw_repro::obs::json::parse(&doc.to_json()).unwrap();
    assert_eq!(parsed["actual_sources"]["cache"].as_u64(), Some(8));
    assert_eq!(parsed["cache_hit_rate"].as_f64(), Some(1.0));
}

#[test]
fn speculative_run_journals_its_loading_decisions() {
    let (_disk, engine) = engine_with_table(WritePolicy::speculative(), 32);
    let q = Query::sum_of_columns("t", 0..4);
    let report = engine.explain_analyze(&q).unwrap();
    let op = engine.operator("t").unwrap();
    let journal = &op.obs().journal;

    // Everything the scan loaded is in the journal: speculative stores fire
    // only while READ is blocked (timing-dependent), but the end-of-scan
    // safeguard always flushes the rest, so together they cover all 8 chunks.
    let speculative =
        journal.count_where(|e| matches!(e, ObsEvent::SpeculativeWriteTriggered { .. })) as u64;
    let flushed: u64 = journal
        .entries()
        .iter()
        .map(|e| match e.event {
            ObsEvent::SafeguardFlush { chunks } => chunks,
            _ => 0,
        })
        .sum();
    assert_eq!(speculative, report.speculative_chunks_written);
    assert_eq!(flushed, report.safeguard_chunks_written);
    assert_eq!(speculative + flushed, 8, "all chunks loaded by query end");
    assert!(flushed > 0 || speculative > 0);

    // The scheduler report is derivable from the journal alone.
    let derived = SchedulerReport::from_journal(journal, 0);
    assert_eq!(
        derived.speculative_writes,
        report.speculative_chunks_written
    );
    assert_eq!(derived.safeguard_writes, report.safeguard_chunks_written);

    // Speculation actually loaded the table: the warm re-run reads nothing
    // raw.
    let warm = engine.execute(&q).unwrap();
    assert_eq!(warm.scan.from_raw, 0);
}

#[test]
fn registry_counts_cache_and_disk_activity() {
    let (_disk, engine) = engine_with_table(WritePolicy::ExternalTables, 2);
    let q = Query::sum_of_columns("t", 0..4);
    engine.execute(&q).unwrap();
    let op = engine.operator("t").unwrap();
    let metrics = &op.obs().metrics;

    // 8 chunks through a 2-chunk cache → at least 6 evictions.
    assert!(metrics.counter_value("cache.chunk.evict").unwrap() >= 6);
    // The device mirrored its accounting into the same registry.
    assert!(metrics.counter_value("disk.read.bytes").unwrap() > 0);
    assert_eq!(metrics.gauge_value("disk.queue.depth"), Some(0));
    // Stage histograms were fed by the profiler.
    let parse = metrics
        .histogram_snapshot("pipeline.stage.parse.nanos")
        .unwrap();
    assert_eq!(parse.count, 8);

    // The full snapshot is one valid JSON document.
    let snap = op.obs().snapshot_json();
    let parsed = scanraw_repro::obs::json::parse(&snap.to_json()).unwrap();
    assert!(
        parsed["metrics"]["counters"]["disk.read.ops"]
            .as_u64()
            .unwrap()
            > 0
    );
}

/// `Write` sink shared with the test so the recorder's output can be read
/// back after the scan.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn jsonl_recorder_streams_pipeline_events() {
    let (_disk, engine) = engine_with_table(WritePolicy::speculative(), 32);
    let op = engine.operator("t").unwrap();
    let buf = SharedBuf::default();
    op.obs()
        .journal
        .set_recorder(Box::new(JsonlRecorder::new(buf.clone())));

    engine.execute(&Query::sum_of_columns("t", 0..4)).unwrap();
    op.drain_writes();
    op.obs().journal.flush_recorder();

    let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
    let entries = parse_jsonl(&text).unwrap();
    assert!(!entries.is_empty());
    // The stream round-trips entry-for-entry with the journal ring.
    let ring = op.obs().journal.entries();
    assert_eq!(entries.len() as u64, op.obs().journal.total_recorded());
    assert_eq!(&entries[entries.len() - ring.len()..], &ring[..]);
}

#[test]
fn worker_scaling_is_journaled_and_applied() {
    let (_disk, engine) = engine_with_table(WritePolicy::ExternalTables, 32);
    let op = engine.operator("t").unwrap();
    assert_eq!(op.workers(), 2);
    op.set_workers(4);
    op.set_workers(4); // no-op: unchanged count is not journaled
    assert_eq!(op.workers(), 4);
    let scaled: Vec<_> = op
        .obs()
        .journal
        .entries()
        .into_iter()
        .filter(|e| matches!(e.event, ObsEvent::WorkerScaled { .. }))
        .collect();
    assert_eq!(scaled.len(), 1);
    assert!(matches!(
        scaled[0].event,
        ObsEvent::WorkerScaled { from: 2, to: 4 }
    ));
    // The next scan runs with the new pool and still answers correctly.
    let out = engine.execute(&Query::sum_of_columns("t", 0..4)).unwrap();
    assert_eq!(out.result.rows_scanned, 4_000);
}

#[test]
fn every_obs_event_kind_round_trips_through_from_parts() {
    use scanraw_repro::obs::WriteCause;
    // One exemplar per variant. Adding an ObsEvent variant without extending
    // this list fails the length assertion below (kept in sync with the L007
    // exhaustive matches in kind()/payload()/from_parts()).
    let exemplars = vec![
        ObsEvent::QueryStart {
            table: "t".into(),
            columns: 4,
        },
        ObsEvent::QueryEnd {
            table: "t".into(),
            chunks: 8,
            rows: 4_000,
            elapsed_micros: 1_234,
        },
        ObsEvent::ReadBlocked { chunk: 1 },
        ObsEvent::SpeculativeWriteTriggered { chunk: 2 },
        ObsEvent::SafeguardFlush { chunks: 3 },
        ObsEvent::WriteQueued {
            chunk: 4,
            cause: WriteCause::Eviction,
        },
        ObsEvent::CacheHit { chunk: 5 },
        ObsEvent::CacheMiss { chunk: 6 },
        ObsEvent::CacheEvict {
            chunk: 7,
            loaded: true,
        },
        ObsEvent::ChunkSkipped { chunk: 8 },
        ObsEvent::WorkerScaled { from: 2, to: 4 },
        ObsEvent::IoRetry {
            target: "db/t".into(),
            attempt: 1,
        },
        ObsEvent::LoadDegraded { chunk: 9 },
        ObsEvent::DbReadFallback { chunk: 10 },
        ObsEvent::RecoveryCompleted {
            committed: 11,
            dropped: 1,
        },
        ObsEvent::TraceStarted {
            trace: 12,
            table: "t".into(),
        },
        ObsEvent::TraceCompleted {
            trace: 12,
            spans: 42,
        },
    ];
    assert_eq!(exemplars.len(), 17, "one exemplar per ObsEvent variant");
    let mut kinds = std::collections::HashSet::new();
    for event in exemplars {
        assert!(
            kinds.insert(event.kind()),
            "duplicate kind {}",
            event.kind()
        );
        let rebuilt = ObsEvent::from_parts(event.kind(), &event.payload())
            .unwrap_or_else(|| panic!("{} must reconstruct from its parts", event.kind()));
        assert_eq!(rebuilt, event, "{} payload round-trip", event.kind());
    }
}

#[test]
fn trace_lifecycle_is_journaled() {
    let (_disk, engine) = engine_with_table(WritePolicy::speculative(), 32);
    engine.execute(&Query::sum_of_columns("t", 0..4)).unwrap();
    let op = engine.operator("t").unwrap();
    let entries = op.obs().journal.entries();
    let started: Vec<u64> = entries
        .iter()
        .filter_map(|e| match &e.event {
            ObsEvent::TraceStarted { trace, table } if table == "t" => Some(*trace),
            _ => None,
        })
        .collect();
    let completed: Vec<(u64, u64)> = entries
        .iter()
        .filter_map(|e| match &e.event {
            ObsEvent::TraceCompleted { trace, spans } => Some((*trace, *spans)),
            _ => None,
        })
        .collect();
    assert_eq!(started.len(), 1);
    assert_eq!(completed.len(), 1);
    assert_eq!(started[0], completed[0].0, "start/complete pair one trace");
    assert!(completed[0].1 > 0, "the traced query recorded spans");
}
