//! Property-based tests (proptest) over the core data structures and the
//! conversion pipeline invariants.

use proptest::prelude::*;
use scanraw_repro::core::ChunkCache;
use scanraw_repro::rawfile::bamsim::lzss;
use scanraw_repro::rawfile::chunker::ChunkReader;
use scanraw_repro::rawfile::parse::reference;
use scanraw_repro::rawfile::{parse_chunk_projected, tokenize_chunk_selective, TextDialect};
use scanraw_repro::simio::SimDisk;
use scanraw_repro::types::{BinaryChunk, ChunkId, ColumnData, Schema, TextChunk, Value};
use std::sync::Arc;

/// Strategy: a rectangular table of i64 values, 1..=8 columns, 1..=50 rows.
fn int_table() -> impl Strategy<Value = Vec<Vec<i64>>> {
    (1usize..=8).prop_flat_map(|cols| {
        proptest::collection::vec(
            proptest::collection::vec(any::<i64>(), cols..=cols),
            1..=50,
        )
    })
}

fn to_csv(table: &[Vec<i64>]) -> String {
    table
        .iter()
        .map(|row| {
            row.iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect::<Vec<_>>()
        .join("\n")
        + "\n"
}

fn chunk_of(text: &str, rows: u32) -> TextChunk {
    TextChunk {
        id: ChunkId(0),
        file_offset: 0,
        first_row: 0,
        rows,
        data: bytes::Bytes::from(text.as_bytes().to_vec()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// tokenize→parse equals the naive reference parser for any integer
    /// table, any mapped-prefix width, and any projection.
    #[test]
    fn tokenize_parse_matches_reference(table in int_table(), prefix in 1usize..=8, proj_seed in any::<u64>()) {
        let cols = table[0].len();
        let rows = table.len() as u32;
        let text = to_csv(&table);
        let chunk = chunk_of(&text, rows);
        let schema = Schema::uniform_ints(cols);
        let prefix = prefix.min(cols);
        // Pseudo-random non-empty projection.
        let projection: Vec<usize> = (0..cols)
            .filter(|c| (proj_seed >> (c % 60)) & 1 == 1)
            .collect();
        let projection = if projection.is_empty() { vec![cols - 1] } else { projection };

        let map = tokenize_chunk_selective(&chunk, TextDialect::CSV, cols, prefix).unwrap();
        let fast = parse_chunk_projected(&chunk, &map, TextDialect::CSV, &schema, &projection).unwrap();
        fast.validate(&schema).unwrap();
        let slow = reference::parse_rows(&text, TextDialect::CSV, &schema, &projection).unwrap();
        for (r, slow_row) in slow.iter().enumerate() {
            for (i, &c) in projection.iter().enumerate() {
                prop_assert_eq!(
                    fast.column(c).unwrap().value(r).unwrap(),
                    slow_row[i].clone()
                );
            }
        }
    }

    /// The chunker partitions any byte content exactly: offsets are dense,
    /// concatenated chunk bytes equal the file, row counts match line counts.
    #[test]
    fn chunker_partitions_exactly(lines in proptest::collection::vec("[a-z0-9,]{0,20}", 0..40), chunk_rows in 1u32..10) {
        let mut content = lines.join("\n");
        if !lines.is_empty() {
            content.push('\n');
        }
        let disk = SimDisk::instant();
        disk.storage().put("f", content.as_bytes().to_vec());
        let (chunks, layout) = ChunkReader::new(disk, "f", chunk_rows)
            .unwrap()
            .with_block_bytes(7) // tiny device reads stress the carry logic
            .read_all()
            .unwrap();
        let mut reassembled = Vec::new();
        let mut next_row = 0u64;
        for (i, c) in chunks.iter().enumerate() {
            prop_assert_eq!(c.id, ChunkId(i as u32));
            prop_assert_eq!(c.first_row, next_row);
            next_row += c.rows as u64;
            reassembled.extend_from_slice(&c.data);
        }
        prop_assert_eq!(reassembled, content.as_bytes().to_vec());
        prop_assert_eq!(layout.total_rows(), lines.len() as u64);
    }

    /// LZSS decompress(compress(x)) == x for arbitrary bytes.
    #[test]
    fn lzss_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..2000)) {
        let comp = lzss::compress(&data);
        prop_assert_eq!(lzss::decompress(&comp, data.len()).unwrap(), data);
    }

    /// Cache invariants: size bound, eviction only when full, the oldest
    /// unloaded chunk is genuinely the first unloaded inserted.
    #[test]
    fn cache_invariants(ops in proptest::collection::vec((0u32..30, any::<bool>()), 1..100), cap in 1usize..8) {
        let cache = ChunkCache::new(cap);
        let mut first_unloaded: Vec<u32> = Vec::new();
        for (id, loaded) in &ops {
            cache.insert(Arc::new(BinaryChunk::empty(ChunkId(*id), 0, 1, 1)), *loaded);
            prop_assert!(cache.len() <= cap);
        }
        // Whatever remains unloaded in the cache: oldest_unloaded agrees with
        // the order of unloaded_chunks.
        let unloaded = cache.unloaded_chunks();
        if let Some(first) = cache.oldest_unloaded() {
            prop_assert_eq!(first.id, unloaded[0].id);
        } else {
            prop_assert!(unloaded.is_empty());
        }
        // Marking everything loaded empties the unloaded view.
        for id in cache.cached_ids() {
            cache.mark_loaded(id);
            first_unloaded.push(id.0);
        }
        prop_assert!(cache.oldest_unloaded().is_none());
    }

    /// Column statistics bound every value in the chunk.
    #[test]
    fn min_max_bounds_every_value(values in proptest::collection::vec(any::<i64>(), 1..100)) {
        let col = ColumnData::Int64(values.clone());
        let (lo, hi) = col.min_max().unwrap();
        for v in values {
            prop_assert!(Value::Int(v) >= lo.clone());
            prop_assert!(Value::Int(v) <= hi.clone());
        }
    }

    /// Column-store persistence round-trips arbitrary typed columns.
    #[test]
    fn colstore_roundtrip(ints in proptest::collection::vec(any::<i64>(), 1..50),
                          strs in proptest::collection::vec("[ -~]{0,12}", 1..50)) {
        use scanraw_repro::storage::ColumnStore;
        use scanraw_repro::types::{DataType, Field};
        let rows = ints.len().min(strs.len());
        let chunk = BinaryChunk {
            id: ChunkId(0),
            first_row: 0,
            rows: rows as u32,
            columns: vec![
                Some(ColumnData::Int64(ints[..rows].to_vec())),
                Some(ColumnData::Utf8(strs[..rows].to_vec())),
            ],
        };
        let schema = Schema::new(vec![
            Field::new("i", DataType::Int64),
            Field::new("s", DataType::Utf8),
        ]).unwrap();
        let store = ColumnStore::new(SimDisk::instant());
        store.store_chunk("t", &chunk).unwrap();
        let back = store.load_chunk("t", &schema, ChunkId(0), 0, &[0, 1]).unwrap();
        prop_assert_eq!(back.column(0), chunk.column(0));
        prop_assert_eq!(back.column(1), chunk.column(1));
    }

    /// Engine sum over a random table equals a direct computation, under
    /// every write policy.
    #[test]
    fn engine_sum_matches_direct(table in int_table(), policy_pick in 0usize..5) {
        use scanraw_repro::prelude::*;
        let cols = table[0].len();
        let text = to_csv(&table);
        // Keep sums in range (any::<i64> can overflow SUM; the engine
        // promotes to float on overflow, direct computation must match) —
        // simplest: compute with the same promotion rule.
        let disk = SimDisk::instant();
        disk.storage().put("p.csv", text.into_bytes());
        let policy = [
            WritePolicy::ExternalTables,
            WritePolicy::Eager,
            WritePolicy::Buffered,
            WritePolicy::Invisible { chunks_per_query: 1 },
            WritePolicy::speculative(),
        ][policy_pick];
        let engine = Engine::new(Database::new(disk));
        engine.register_table(
            "p", "p.csv", Schema::uniform_ints(cols), TextDialect::CSV,
            ScanRawConfig::default().with_chunk_rows(7).with_workers(2).with_policy(policy),
        ).unwrap();
        // Sum a single column to avoid row-level overflow in the expression.
        let q = Query::sum_of_columns("p", [0]);
        let out = engine.execute(&q).unwrap();
        let mut acc: i64 = 0;
        let mut promoted = false;
        for row in &table {
            match acc.checked_add(row[0]) {
                Some(s) if !promoted => acc = s,
                _ => promoted = true,
            }
        }
        if promoted {
            prop_assert!(matches!(out.result.scalar().unwrap(), Value::Float(_)));
        } else {
            prop_assert_eq!(out.result.scalar().unwrap(), &Value::Int(acc));
        }
    }

    /// Pipeline simulator conservation: every planned chunk is delivered
    /// exactly once per query, loading is monotone across a sequence, and
    /// cache+db+raw partitions the file.
    #[test]
    fn simulator_conservation(workers in 0usize..8, cache in 1usize..16, n_chunks in 1usize..40, policy_pick in 0usize..5) {
        use scanraw_repro::pipesim::{CostModel, FileSpec, SimConfig, Simulator};
        use scanraw_repro::types::WritePolicy;
        let policy = [
            WritePolicy::ExternalTables,
            WritePolicy::Eager,
            WritePolicy::Buffered,
            WritePolicy::Invisible { chunks_per_query: 2 },
            WritePolicy::speculative(),
        ][policy_pick];
        let file = FileSpec::synthetic(n_chunks as u64 * 64, 4, 64);
        let mut cfg = SimConfig::new(workers, policy, CostModel::nominal());
        cfg.cache_chunks = cache;
        let mut sim = Simulator::new(cfg, file);
        let mut last_loaded = 0usize;
        for _ in 0..3 {
            let r = sim.run_sequence(1).remove(0);
            prop_assert_eq!(r.from_cache + r.from_db + r.from_raw, file.n_chunks);
            prop_assert!(r.loaded_after >= last_loaded, "loading is monotone");
            last_loaded = r.loaded_after;
            prop_assert!(r.elapsed_secs >= 0.0);
        }
    }
}
