//! Property-style tests over the core data structures and the conversion
//! pipeline invariants.
//!
//! Originally written against proptest; rewritten on seeded `StdRng` case
//! generation so the suite runs in the offline build environment. Each
//! property keeps its original contract and exercises a fixed number of
//! pseudo-random cases, deterministic per seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scanraw_repro::core::ChunkCache;
use scanraw_repro::rawfile::bamsim::lzss;
use scanraw_repro::rawfile::chunker::ChunkReader;
use scanraw_repro::rawfile::parse::reference;
use scanraw_repro::rawfile::{parse_chunk_projected, tokenize_chunk_selective, TextDialect};
use scanraw_repro::simio::SimDisk;
use scanraw_repro::types::{BinaryChunk, ChunkId, ColumnData, Schema, TextChunk, Value};
use std::sync::Arc;

const CASES: usize = 64;

/// A rectangular table of i64 values, 1..=8 columns, 1..=50 rows.
fn int_table(rng: &mut StdRng) -> Vec<Vec<i64>> {
    let cols = rng.gen_range(1usize..=8);
    let rows = rng.gen_range(1usize..=50);
    (0..rows)
        .map(|_| (0..cols).map(|_| rng.gen::<i64>()).collect())
        .collect()
}

fn to_csv(table: &[Vec<i64>]) -> String {
    table
        .iter()
        .map(|row| {
            row.iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect::<Vec<_>>()
        .join("\n")
        + "\n"
}

fn chunk_of(text: &str, rows: u32) -> TextChunk {
    TextChunk {
        id: ChunkId(0),
        file_offset: 0,
        first_row: 0,
        rows,
        data: bytes::Bytes::from(text.as_bytes().to_vec()),
    }
}

/// tokenize→parse equals the naive reference parser for any integer table,
/// any mapped-prefix width, and any projection.
#[test]
fn tokenize_parse_matches_reference() {
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    for _ in 0..CASES {
        let table = int_table(&mut rng);
        let cols = table[0].len();
        let rows = table.len() as u32;
        let text = to_csv(&table);
        let chunk = chunk_of(&text, rows);
        let schema = Schema::uniform_ints(cols);
        let prefix = rng.gen_range(1usize..=8).min(cols);
        // Pseudo-random non-empty projection.
        let proj_seed = rng.gen::<u64>();
        let projection: Vec<usize> = (0..cols)
            .filter(|c| (proj_seed >> (c % 60)) & 1 == 1)
            .collect();
        let projection = if projection.is_empty() {
            vec![cols - 1]
        } else {
            projection
        };

        let map = tokenize_chunk_selective(&chunk, TextDialect::CSV, cols, prefix).unwrap();
        let fast =
            parse_chunk_projected(&chunk, &map, TextDialect::CSV, &schema, &projection).unwrap();
        fast.validate(&schema).unwrap();
        let slow = reference::parse_rows(&text, TextDialect::CSV, &schema, &projection).unwrap();
        for (r, slow_row) in slow.iter().enumerate() {
            for (i, &c) in projection.iter().enumerate() {
                assert_eq!(
                    fast.column(c).unwrap().value(r).unwrap(),
                    slow_row[i].clone()
                );
            }
        }
    }
}

/// The chunker partitions any byte content exactly: offsets are dense,
/// concatenated chunk bytes equal the file, row counts match line counts.
#[test]
fn chunker_partitions_exactly() {
    let mut rng = StdRng::seed_from_u64(0xC4A9);
    const LINE_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789,";
    for _ in 0..CASES {
        let n_lines = rng.gen_range(0usize..40);
        let lines: Vec<String> = (0..n_lines)
            .map(|_| {
                let len = rng.gen_range(0usize..=20);
                (0..len)
                    .map(|_| LINE_CHARS[rng.gen_range(0..LINE_CHARS.len())] as char)
                    .collect()
            })
            .collect();
        let chunk_rows = rng.gen_range(1u32..10);
        let mut content = lines.join("\n");
        if !lines.is_empty() {
            content.push('\n');
        }
        let disk = SimDisk::instant();
        disk.storage().put("f", content.as_bytes().to_vec());
        let (chunks, layout) = ChunkReader::new(disk, "f", chunk_rows)
            .unwrap()
            .with_block_bytes(7) // tiny device reads stress the carry logic
            .read_all()
            .unwrap();
        let mut reassembled = Vec::new();
        let mut next_row = 0u64;
        for (i, c) in chunks.iter().enumerate() {
            assert_eq!(c.id, ChunkId(i as u32));
            assert_eq!(c.first_row, next_row);
            next_row += c.rows as u64;
            reassembled.extend_from_slice(&c.data);
        }
        assert_eq!(reassembled, content.as_bytes().to_vec());
        assert_eq!(layout.total_rows(), lines.len() as u64);
    }
}

/// LZSS decompress(compress(x)) == x for arbitrary bytes.
#[test]
fn lzss_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x1255);
    for _ in 0..CASES {
        let len = rng.gen_range(0usize..2000);
        let data: Vec<u8> = (0..len).map(|_| rng.gen::<u8>()).collect();
        let comp = lzss::compress(&data);
        assert_eq!(lzss::decompress(&comp, data.len()).unwrap(), data);
    }
}

/// Cache invariants: size bound, eviction only when full, unloaded cells
/// surface in insertion order and marking every cell loaded empties the
/// unloaded view.
#[test]
fn cache_invariants() {
    const CACHE_COLS: usize = 2;
    let present_chunk = |id: u32| {
        let mut chunk = BinaryChunk::empty(ChunkId(id), 0, 1, CACHE_COLS);
        for col in chunk.columns.iter_mut() {
            *col = Some(ColumnData::Int64(vec![id as i64]));
        }
        Arc::new(chunk)
    };
    let mut rng = StdRng::seed_from_u64(0xCAC4E);
    for _ in 0..CASES {
        let cap = rng.gen_range(1usize..8);
        let n_ops = rng.gen_range(1usize..100);
        let ops: Vec<(u32, bool)> = (0..n_ops)
            .map(|_| (rng.gen_range(0u32..30), rng.gen_bool(0.5)))
            .collect();
        let cache = ChunkCache::new(cap);
        // Model: per-id (first-insertion seq, loaded). Reinserts keep the
        // original seq and union loaded bits; evictions (observed via the
        // insert return) drop the entry, so a comeback gets a fresh seq.
        let mut model: std::collections::HashMap<u32, (usize, bool)> =
            std::collections::HashMap::new();
        let mut next_seq = 0usize;
        for (id, loaded) in &ops {
            let cols: &[usize] = if *loaded { &[0, 1] } else { &[] };
            if let Some(victim) = cache.insert(present_chunk(*id), cols) {
                model.remove(&victim.id.0);
            }
            assert!(cache.len() <= cap);
            model
                .entry(*id)
                .and_modify(|(_, l)| *l |= *loaded)
                .or_insert_with(|| {
                    next_seq += 1;
                    (next_seq, *loaded)
                });
        }
        // Unloaded cells are exactly the model's not-fully-loaded entries,
        // oldest (first inserted) first, each listing its missing columns.
        let mut expected: Vec<(usize, u32)> = model
            .iter()
            .filter(|(_, (_, loaded))| !loaded)
            .map(|(id, (seq, _))| (*seq, *id))
            .collect();
        expected.sort_unstable();
        let unloaded = cache.unloaded_cells();
        assert_eq!(
            unloaded.iter().map(|(c, _)| c.id.0).collect::<Vec<_>>(),
            expected.iter().map(|(_, id)| *id).collect::<Vec<_>>(),
            "unloaded cells ordered by first insertion"
        );
        for (_, cols) in &unloaded {
            assert_eq!(cols, &[0, 1], "both cells of an unloaded chunk are missing");
        }
        // Marking every cell loaded empties the unloaded view.
        for id in cache.cached_ids() {
            cache.mark_loaded(id, &[0, 1]);
        }
        assert!(cache.unloaded_cells().is_empty());
    }
}

/// Column statistics bound every value in the chunk.
#[test]
fn min_max_bounds_every_value() {
    let mut rng = StdRng::seed_from_u64(0x3141);
    for _ in 0..CASES {
        let len = rng.gen_range(1usize..100);
        let values: Vec<i64> = (0..len).map(|_| rng.gen::<i64>()).collect();
        let col = ColumnData::Int64(values.clone());
        let (lo, hi) = col.min_max().unwrap();
        for v in values {
            assert!(Value::Int(v) >= lo.clone());
            assert!(Value::Int(v) <= hi.clone());
        }
    }
}

/// Column-store persistence round-trips arbitrary typed columns.
#[test]
fn colstore_roundtrip() {
    use scanraw_repro::storage::ColumnStore;
    use scanraw_repro::types::{DataType, Field};
    let mut rng = StdRng::seed_from_u64(0xC057);
    for _ in 0..CASES {
        let n_ints = rng.gen_range(1usize..50);
        let n_strs = rng.gen_range(1usize..50);
        let ints: Vec<i64> = (0..n_ints).map(|_| rng.gen::<i64>()).collect();
        let strs: Vec<String> = (0..n_strs)
            .map(|_| {
                let len = rng.gen_range(0usize..=12);
                // Printable ASCII (space..tilde), as the proptest regex did.
                (0..len)
                    .map(|_| rng.gen_range(0x20u8..=0x7e) as char)
                    .collect()
            })
            .collect();
        let rows = ints.len().min(strs.len());
        let chunk = BinaryChunk {
            id: ChunkId(0),
            first_row: 0,
            rows: rows as u32,
            columns: vec![
                Some(ColumnData::Int64(ints[..rows].to_vec())),
                Some(ColumnData::Utf8(strs[..rows].to_vec())),
            ],
        };
        let schema = Schema::new(vec![
            Field::new("i", DataType::Int64),
            Field::new("s", DataType::Utf8),
        ])
        .unwrap();
        let store = ColumnStore::new(SimDisk::instant());
        store.store_chunk("t", &chunk).unwrap();
        let back = store
            .load_chunk("t", &schema, ChunkId(0), 0, &[0, 1])
            .unwrap();
        assert_eq!(back.column(0), chunk.column(0));
        assert_eq!(back.column(1), chunk.column(1));
    }
}

/// Engine sum over a random table equals a direct computation, under every
/// write policy.
#[test]
fn engine_sum_matches_direct() {
    use scanraw_repro::prelude::*;
    let mut rng = StdRng::seed_from_u64(0xE9019E);
    // Fewer cases: each one spins up a full engine + operator.
    for case in 0..20 {
        let table = int_table(&mut rng);
        let cols = table[0].len();
        let text = to_csv(&table);
        let disk = SimDisk::instant();
        disk.storage().put("p.csv", text.into_bytes());
        let policy = [
            WritePolicy::ExternalTables,
            WritePolicy::Eager,
            WritePolicy::Buffered,
            WritePolicy::Invisible {
                chunks_per_query: 1,
            },
            WritePolicy::speculative(),
        ][case % 5];
        let engine = Engine::new(Database::new(disk));
        engine
            .register_table(
                "p",
                "p.csv",
                Schema::uniform_ints(cols),
                TextDialect::CSV,
                ScanRawConfig::default()
                    .with_chunk_rows(7)
                    .with_workers(2)
                    .with_policy(policy),
            )
            .unwrap();
        // Sum a single column to avoid row-level overflow in the expression.
        let q = Query::sum_of_columns("p", [0]);
        let out = engine.execute(&q).unwrap();
        // any::<i64> analogue can overflow SUM; the engine promotes to
        // float on overflow, so the direct computation applies the same
        // promotion rule.
        let mut acc: i64 = 0;
        let mut promoted = false;
        for row in &table {
            match acc.checked_add(row[0]) {
                Some(s) if !promoted => acc = s,
                _ => promoted = true,
            }
        }
        if promoted {
            assert!(matches!(out.result.scalar().unwrap(), Value::Float(_)));
        } else {
            assert_eq!(out.result.scalar().unwrap(), &Value::Int(acc));
        }
    }
}

/// Pipeline simulator conservation: every planned chunk is delivered
/// exactly once per query, loading is monotone across a sequence, and
/// cache+db+raw partitions the file.
#[test]
fn simulator_conservation() {
    use scanraw_repro::pipesim::{CostModel, FileSpec, SimConfig, Simulator};
    use scanraw_repro::types::WritePolicy;
    let mut rng = StdRng::seed_from_u64(0x51A7);
    for case in 0..CASES {
        let workers = rng.gen_range(0usize..8);
        let cache = rng.gen_range(1usize..16);
        let n_chunks = rng.gen_range(1usize..40);
        let policy = [
            WritePolicy::ExternalTables,
            WritePolicy::Eager,
            WritePolicy::Buffered,
            WritePolicy::Invisible {
                chunks_per_query: 2,
            },
            WritePolicy::speculative(),
        ][case % 5];
        let file = FileSpec::synthetic(n_chunks as u64 * 64, 4, 64);
        let mut cfg = SimConfig::new(workers, policy, CostModel::nominal());
        cfg.cache_chunks = cache;
        let mut sim = Simulator::new(cfg, file);
        let mut last_loaded = 0usize;
        for _ in 0..3 {
            let r = sim.run_sequence(1).remove(0);
            assert_eq!(r.from_cache + r.from_db + r.from_raw, file.n_chunks);
            assert!(r.loaded_after >= last_loaded, "loading is monotone");
            last_loaded = r.loaded_after;
            assert!(r.elapsed_secs >= 0.0);
        }
    }
}

/// Under seeded device faults (transient errors, torn writes, read-side bit
/// flips) the engine returns exactly the rows a fault-free oracle returns,
/// across random cache sizes, chunk sizes, and worker counts (ISSUE 3).
#[cfg(feature = "fault-inject")]
#[test]
fn faulted_engine_matches_fault_free_oracle() {
    use scanraw_repro::prelude::*;
    use scanraw_repro::simio::{FaultConfig, FaultPlan};
    let mut rng = StdRng::seed_from_u64(0xFA017);
    // Fewer cases: each one spins up two full engines.
    for case in 0..20 {
        // Bounded values: an overflowing SUM promotes to float, whose
        // accumulation order (and thus rounding) varies with the pipeline
        // schedule — exact Int sums make the oracle comparison strict.
        let cols = rng.gen_range(1usize..=8);
        let rows = rng.gen_range(1usize..=50);
        let table: Vec<Vec<i64>> = (0..rows)
            .map(|_| {
                (0..cols)
                    .map(|_| rng.gen_range(-1_000_000i64..1_000_000))
                    .collect()
            })
            .collect();
        let text = to_csv(&table);
        let config = ScanRawConfig::default()
            .with_chunk_rows(rng.gen_range(3u32..12))
            .with_cache_chunks(rng.gen_range(1usize..8))
            .with_workers(rng.gen_range(0usize..3))
            .with_policy(WritePolicy::speculative());
        let run = |fault: Option<FaultConfig>| {
            let disk = SimDisk::instant();
            disk.storage().put("p.csv", text.clone().into_bytes());
            if let Some(f) = fault {
                disk.set_fault_plan(FaultPlan::new(f));
            }
            let engine = Engine::new(Database::new(disk));
            engine
                .register_table(
                    "p",
                    "p.csv",
                    Schema::uniform_ints(cols),
                    TextDialect::CSV,
                    config.clone(),
                )
                .unwrap();
            // Two passes: the second may serve from cache or the database,
            // so loading-path faults are exercised too.
            let q = Query::sum_of_columns("p", [0]);
            let a = engine.execute(&q).unwrap().result.rows;
            engine.operator("p").unwrap().drain_writes();
            let b = engine.execute(&q).unwrap().result.rows;
            (a, b)
        };
        let oracle = run(None);
        let faulted = run(Some(FaultConfig {
            p_transient: 0.25,
            p_torn: 0.2,
            p_bitflip: 0.15,
            max_consecutive: 3,
            ..FaultConfig::seeded(0xFA017 + case as u64)
        }));
        assert_eq!(faulted, oracle, "case {case} diverged under faults");
    }
}
