//! Cross-crate integration tests: the full stack — generator → device →
//! ScanRaw pipeline → database → engine — exercised together, including on a
//! bandwidth-throttled device and across operator lifecycles.

use scanraw_repro::prelude::*;
use scanraw_repro::rawfile::generate::{expected_column_sums, stage_csv, CsvSpec};
use scanraw_repro::simio::{AccessKind, DiskConfig, VirtualClock};
use std::time::Duration;

fn throttled_disk() -> SimDisk {
    // Virtual clock: throttling is accounted, not slept.
    let cfg = DiskConfig {
        read_bw: 64 * 1024 * 1024,
        write_bw: 64 * 1024 * 1024,
        cached_read_bw: 1024 * 1024 * 1024,
        seek_latency: Duration::from_millis(2),
        page_cache_bytes: 0, // always cold — deterministic accounting
        page_bytes: 256 * 1024,
    };
    SimDisk::new(cfg, VirtualClock::shared())
}

#[test]
fn full_stack_on_throttled_device() {
    let disk = throttled_disk();
    let spec = CsvSpec::new(10_000, 6, 77);
    let file_len = stage_csv(&disk, "t.csv", &spec);
    let engine = Engine::new(Database::new(disk.clone()));
    engine
        .register_table(
            "t",
            "t.csv",
            Schema::uniform_ints(6),
            TextDialect::CSV,
            ScanRawConfig::default()
                .with_chunk_rows(1_000)
                .with_workers(2)
                .with_policy(WritePolicy::speculative()),
        )
        .unwrap();

    let q = Query::sum_of_columns("t", 0..6);
    let out = engine.execute(&q).unwrap();
    let expected: i64 = expected_column_sums(&spec).iter().sum();
    assert_eq!(out.result.scalar().unwrap(), &Value::Int(expected));

    // Device accounting: the raw file was read exactly once, cold.
    let read = disk.stats().bytes(AccessKind::Read);
    assert!(
        read >= file_len,
        "must have read the whole file: {read} < {file_len}"
    );
    // Virtual time advanced by at least the raw read cost.
    let min_secs = file_len as f64 / (64.0 * 1024.0 * 1024.0);
    assert!(out.scan.elapsed.as_secs_f64() >= min_secs * 0.95);
}

#[test]
fn speculative_writes_cost_no_query_time_when_cpu_bound() {
    // With a virtual clock, I/O is free wall-clock-wise but accounted; this
    // verifies write bytes land on the device without failing the query.
    let disk = throttled_disk();
    stage_csv(&disk, "t.csv", &CsvSpec::new(5_000, 4, 3));
    let engine = Engine::new(Database::new(disk.clone()));
    engine
        .register_table(
            "t",
            "t.csv",
            Schema::uniform_ints(4),
            TextDialect::CSV,
            ScanRawConfig::default()
                .with_chunk_rows(500)
                .with_workers(1)
                .with_policy(WritePolicy::speculative()),
        )
        .unwrap();
    let q = Query::sum_of_columns("t", 0..4);
    engine.execute(&q).unwrap();
    engine.operator("t").unwrap().drain_writes();
    assert!(
        disk.stats().bytes(AccessKind::Write) > 0,
        "speculative loading stored chunks"
    );
}

#[test]
fn sequence_until_fully_loaded_then_reaped() {
    let disk = SimDisk::instant();
    let spec = CsvSpec::new(8_000, 3, 9);
    stage_csv(&disk, "t.csv", &spec);
    let engine = Engine::new(Database::new(disk));
    engine
        .register_table(
            "t",
            "t.csv",
            Schema::uniform_ints(3),
            TextDialect::CSV,
            ScanRawConfig::default()
                .with_chunk_rows(500) // 16 chunks
                .with_cache_chunks(4)
                .with_workers(2)
                .with_policy(WritePolicy::speculative()),
        )
        .unwrap();
    let q = Query::sum_of_columns("t", 0..3);
    let expected: i64 = expected_column_sums(&spec).iter().sum();

    let mut queries = 0;
    loop {
        queries += 1;
        let out = engine.execute(&q).unwrap();
        assert_eq!(out.result.scalar().unwrap(), &Value::Int(expected));
        let op = engine.operator("t").unwrap();
        op.drain_writes();
        if op.fully_loaded() {
            break;
        }
        assert!(queries < 20, "speculative loading must converge");
    }
    // Guaranteed progress: cache/4-of-16 → at most ~6 queries.
    assert!(queries <= 8, "took {queries} queries");
    assert_eq!(engine.registry().reap_fully_loaded(), 1);

    // A new query transparently creates a fresh operator which reads
    // everything back from the database (heap-scan regime).
    let out = engine.execute(&q).unwrap();
    assert_eq!(out.result.scalar().unwrap(), &Value::Int(expected));
    assert_eq!(out.scan.from_raw, 0, "{:?}", out.scan);
    assert_eq!(out.scan.from_db, 16);
}

#[test]
fn two_tables_share_one_database() {
    let disk = SimDisk::instant();
    let s1 = CsvSpec::new(2_000, 2, 1);
    let s2 = CsvSpec::new(3_000, 5, 2);
    stage_csv(&disk, "a.csv", &s1);
    stage_csv(&disk, "b.csv", &s2);
    let engine = Engine::new(Database::new(disk));
    engine
        .register_table(
            "a",
            "a.csv",
            Schema::uniform_ints(2),
            TextDialect::CSV,
            ScanRawConfig::default()
                .with_chunk_rows(256)
                .with_workers(2)
                .with_policy(WritePolicy::ExternalTables),
        )
        .unwrap();
    engine
        .register_table(
            "b",
            "b.csv",
            Schema::uniform_ints(5),
            TextDialect::CSV,
            ScanRawConfig::default()
                .with_chunk_rows(512)
                .with_workers(2)
                .with_policy(WritePolicy::Eager),
        )
        .unwrap();
    let ra = engine.execute(&Query::sum_of_columns("a", 0..2)).unwrap();
    let rb = engine.execute(&Query::sum_of_columns("b", 0..5)).unwrap();
    assert_eq!(
        ra.result.scalar().unwrap(),
        &Value::Int(expected_column_sums(&s1).iter().sum())
    );
    assert_eq!(
        rb.result.scalar().unwrap(),
        &Value::Int(expected_column_sums(&s2).iter().sum())
    );
    assert_eq!(engine.registry().len(), 2);
    assert!(engine.operator("b").unwrap().fully_loaded());
    assert!(!engine.operator("a").unwrap().fully_loaded());
}

#[test]
fn umbrella_prelude_compiles_and_works() {
    // The doc example from the umbrella crate, as a test.
    let disk = SimDisk::instant();
    scanraw_repro::rawfile::generate::stage_csv(&disk, "t.csv", &CsvSpec::new(1000, 4, 1));
    let engine = Engine::new(Database::new(disk));
    engine
        .register_table(
            "t",
            "t.csv",
            Schema::uniform_ints(4),
            TextDialect::CSV,
            ScanRawConfig::default().with_chunk_rows(100),
        )
        .unwrap();
    let out = engine.execute(&Query::sum_of_columns("t", 0..4)).unwrap();
    assert_eq!(out.result.rows_scanned, 1000);
}

#[test]
fn real_clock_throttling_bounds_wall_time() {
    use scanraw_repro::simio::RealClock;
    // 2 MB at 100 MB/s read ⇒ ≥ 20 ms wall time, cold.
    let cfg = DiskConfig {
        read_bw: 100 * 1024 * 1024,
        write_bw: 100 * 1024 * 1024,
        cached_read_bw: u64::MAX / 4,
        seek_latency: Duration::ZERO,
        page_cache_bytes: 0,
        page_bytes: 256 * 1024,
    };
    let disk = SimDisk::new(cfg, RealClock::shared());
    let spec = CsvSpec::new(20_000, 8, 4); // ≈ 1.7 MB
    let len = stage_csv(&disk, "t.csv", &spec);
    let engine = Engine::new(Database::new(disk));
    engine
        .register_table(
            "t",
            "t.csv",
            Schema::uniform_ints(8),
            TextDialect::CSV,
            ScanRawConfig::default()
                .with_chunk_rows(2_000)
                .with_workers(2),
        )
        .unwrap();
    let t0 = std::time::Instant::now();
    engine.execute(&Query::sum_of_columns("t", 0..8)).unwrap();
    let wall = t0.elapsed();
    let floor = Duration::from_secs_f64(len as f64 / (100.0 * 1024.0 * 1024.0));
    assert!(wall >= floor, "wall {wall:?} < I/O floor {floor:?}");
}
