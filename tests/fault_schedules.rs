//! Deterministic failure-schedule suite (ISSUE 3 headline artifact).
//!
//! Each test drives full query sequences through engines whose simulated
//! device runs a seeded [`FaultPlan`] — transient errors, torn writes,
//! read-path bit flips, latency spikes, permanent dead regions, and
//! whole-device crashes with restarts — and asserts three invariants on
//! every schedule:
//!
//! 1. **Oracle equality** — query results are identical to a fault-free run
//!    of the same schedule (faults may change *performance*, never answers);
//! 2. **Loading monotonicity** — the catalog's loaded cell count never
//!    decreases across queries, crashes, or restarts, and never counts a
//!    cell that cannot actually be read back (checksum-verified);
//! 3. **Completion** — every schedule terminates without panic or deadlock
//!    (the suite finishing is the assertion; stage threads join per query).
//!
//! The suite runs `SCANRAW_FAULT_SCHEDULES` seeds per test (default 64 —
//! 8 tests × 64 = 512 schedules). CI caps it for wall-time; run e.g.
//! `SCANRAW_FAULT_SCHEDULES=256 cargo test --features fault-inject
//! --test fault_schedules` for the extended local sweep.

#![cfg(feature = "fault-inject")]

use scanraw_repro::engine::query::ResultRow;
use scanraw_repro::prelude::*;
use scanraw_repro::rawfile::generate::{stage_csv, CsvSpec};
use scanraw_repro::simio::{AccessKind, FaultConfig, FaultPlan};
use scanraw_repro::storage::RecoveryReport;
use scanraw_repro::types::ChunkId;
use std::time::Duration;

/// Seeded schedules per test; override with `SCANRAW_FAULT_SCHEDULES=<n>`.
fn n_schedules() -> u64 {
    std::env::var("SCANRAW_FAULT_SCHEDULES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

/// One failure schedule: a table, a pipeline shape, a fault plan, and the
/// query sequence driven through it.
struct Schedule {
    spec: CsvSpec,
    cols: usize,
    config: ScanRawConfig,
    fault: FaultConfig,
    queries: Vec<Query>,
}

impl Schedule {
    /// Derives a small-but-varied schedule from one seed: 120–360 rows,
    /// 3–4 columns, 4–18 chunks, 0–2 workers.
    fn from_seed(seed: u64, fault: FaultConfig) -> Schedule {
        let cols = 3 + (seed % 2) as usize;
        let rows = 120 + (seed % 5) * 60;
        let chunk_rows = 20 + (seed % 3) as u32 * 15;
        let config = ScanRawConfig::default()
            .with_chunk_rows(chunk_rows)
            .with_cache_chunks(2 + (seed % 4) as usize)
            .with_workers((seed % 3) as usize)
            .with_policy(WritePolicy::speculative());
        let queries = vec![
            Query::sum_of_columns("t", 0..cols),
            Query::sum_of_columns("t", [(seed % cols as u64) as usize]),
            Query::sum_of_columns("t", 0..cols),
        ];
        Schedule {
            spec: CsvSpec::new(rows, cols, seed.wrapping_mul(0x9e37_79b9)),
            cols,
            config,
            fault,
            queries,
        }
    }

    fn with_policy(mut self, policy: WritePolicy) -> Schedule {
        self.config = self.config.with_policy(policy);
        self
    }
}

fn new_engine(disk: &SimDisk, s: &Schedule) -> Engine {
    let engine = Engine::new(Database::new(disk.clone()));
    engine
        .register_table(
            "t",
            "t.csv",
            Schema::uniform_ints(s.cols),
            TextDialect::CSV,
            s.config.clone(),
        )
        .unwrap();
    engine
}

/// The fault-free oracle: the same schedule on a clean twin device.
fn oracle_outcomes(s: &Schedule) -> Vec<(Vec<ResultRow>, u64)> {
    let disk = SimDisk::instant();
    stage_csv(&disk, "t.csv", &s.spec);
    let engine = new_engine(&disk, s);
    s.queries
        .iter()
        .map(|q| {
            let out = engine.execute(q).expect("oracle run is fault-free");
            (out.result.rows, out.result.rows_scanned)
        })
        .collect()
}

fn loaded_cells(db: &Database) -> usize {
    db.catalog().table("t").unwrap().read().loaded_cell_count()
}

/// Invariant 2b: every (chunk, column) the catalog marks loaded must read
/// back through the checksum — the loaded bitmap never lies.
fn assert_loaded_cells_readable(db: &Database, cols: usize) {
    let entry = db.catalog().table("t").unwrap();
    let all: Vec<usize> = (0..cols).collect();
    let per_chunk: Vec<(u32, Vec<usize>)> = {
        let t = entry.read();
        (0..t.n_chunks() as u32)
            .map(|id| (id, t.loaded_columns(ChunkId(id), &all)))
            .collect()
    };
    for (id, loaded) in per_chunk {
        if !loaded.is_empty() {
            db.load_chunk("t", ChunkId(id), &loaded)
                .unwrap_or_else(|e| panic!("loaded cell unreadable: chunk {id}: {e}"));
        }
    }
}

/// Restart after a simulated crash: device repaired (plan cleared), a fresh
/// database is rebuilt over the surviving bytes from the commit log.
fn restart(disk: &SimDisk, s: &Schedule) -> (Engine, RecoveryReport) {
    disk.clear_fault_plan();
    let engine = new_engine(disk, s);
    let report = engine.recover_table("t").expect("recovery must succeed");
    (engine, report)
}

/// Outcome of one schedule, for aggregate assertions across seeds.
#[derive(Default)]
struct ScheduleStats {
    crashes: u64,
    restarts: u64,
    final_cells: usize,
    degraded: bool,
}

/// Drives one schedule end to end, asserting the three invariants.
fn run_schedule(s: &Schedule) -> ScheduleStats {
    let oracle = oracle_outcomes(s);
    let disk = SimDisk::instant();
    stage_csv(&disk, "t.csv", &s.spec);
    disk.set_fault_plan(FaultPlan::new(s.fault.clone()));

    let mut stats = ScheduleStats::default();
    let mut engine = new_engine(&disk, s);
    let mut last_cells = 0usize;
    for (qi, q) in s.queries.iter().enumerate() {
        let mut attempts = 0;
        let out = loop {
            match engine.execute(q) {
                Ok(out) => break out,
                Err(e) => {
                    // Transient faults are retried under the budget and
                    // corruption is confined to the checksummed store (which
                    // falls back to raw), so only a crashed or permanently
                    // dead device may surface an error — and then recovery
                    // must bring the query back.
                    let plan = disk.clear_fault_plan();
                    let fatal = plan
                        .as_ref()
                        .map(|p| p.crashed() || p.counters().permanent > 0)
                        .unwrap_or(false);
                    assert!(fatal, "query failed without a fatal fault: {e}");
                    if plan.map(|p| p.crashed()).unwrap_or(false) {
                        stats.crashes += 1;
                    }
                    let (fresh, report) = restart(&disk, s);
                    stats.restarts += 1;
                    engine = fresh;
                    // Everything durably committed before the crash survives
                    // recovery: monotonicity holds across the restart.
                    assert!(
                        report.committed_cells >= last_cells,
                        "recovery lost committed cells: {} < {last_cells}",
                        report.committed_cells
                    );
                    attempts += 1;
                    assert!(attempts <= 2, "restart did not converge");
                }
            }
        };
        assert_eq!(
            (out.result.rows, out.result.rows_scanned),
            oracle[qi],
            "schedule diverged from fault-free oracle at query {qi}"
        );
        let op = engine.operator("t").unwrap();
        op.drain_writes();
        stats.degraded |= op.load_degraded();
        let cells = loaded_cells(engine.database());
        assert!(
            cells >= last_cells,
            "loading regressed: {cells} < {last_cells}"
        );
        last_cells = cells;
    }
    disk.clear_fault_plan();
    assert_loaded_cells_readable(engine.database(), s.cols);
    stats.final_cells = loaded_cells(engine.database());
    stats
}

#[test]
fn transient_read_faults_are_invisible_to_queries() {
    for seed in 0..n_schedules() {
        let fault = FaultConfig {
            p_transient: 0.3,
            // Streaks ≤ budget − 1 guarantee the READ retry loop wins.
            max_consecutive: 3,
            ..FaultConfig::seeded(seed)
        };
        run_schedule(&Schedule::from_seed(seed, fault));
    }
}

#[test]
fn torn_and_transient_db_writes_never_fake_loading() {
    let mut total_cells = 0usize;
    for seed in 0..n_schedules() {
        let fault = FaultConfig {
            target: "db/".into(),
            p_transient: 0.25,
            p_torn: 0.25,
            max_consecutive: 3,
            ..FaultConfig::seeded(seed)
        };
        total_cells += run_schedule(&Schedule::from_seed(seed, fault)).final_cells;
    }
    assert!(total_cells > 0, "some schedules must make loading progress");
}

#[test]
fn bitflip_db_corruption_is_detected_and_survived() {
    let mut total_flips = 0u64;
    for seed in 0..n_schedules() {
        let fault = FaultConfig {
            target: "db/".into(),
            p_bitflip: 0.3,
            max_consecutive: 3,
            ..FaultConfig::seeded(seed)
        };
        let s = Schedule::from_seed(seed, fault);
        let oracle = oracle_outcomes(&s);
        let disk = SimDisk::instant();
        stage_csv(&disk, "t.csv", &s.spec);
        // Load everything fault-free first so later queries actually read
        // the database and hit the corrupted transfers.
        let engine = new_engine(&disk, &s);
        for q in &s.queries {
            engine.execute(q).unwrap();
            engine.operator("t").unwrap().drain_writes();
        }
        disk.set_fault_plan(FaultPlan::new(s.fault.clone()));
        for (qi, q) in s.queries.iter().enumerate() {
            let out = engine.execute(q).expect("corrupt reads must not be fatal");
            assert_eq!((out.result.rows, out.result.rows_scanned), oracle[qi]);
        }
        if let Some(plan) = disk.clear_fault_plan() {
            total_flips += plan.counters().bitflip;
        }
        assert_loaded_cells_readable(engine.database(), s.cols);
    }
    assert!(total_flips > 0, "the sweep must actually inject bit flips");
}

#[test]
fn permanent_db_fault_degrades_to_external_tables() {
    let mut any_degraded = false;
    for seed in 0..n_schedules() {
        let fault = FaultConfig {
            target: "db/".into(),
            permanent_after: Some(seed % 8),
            ..FaultConfig::seeded(seed)
        };
        let stats = run_schedule(&Schedule::from_seed(seed, fault));
        any_degraded |= stats.degraded;
    }
    assert!(
        any_degraded,
        "early-permanent schedules must reach external-table mode"
    );
}

#[test]
fn crash_and_restart_schedules_preserve_all_invariants() {
    let mut crashes = 0u64;
    for seed in 0..n_schedules() {
        let fault = FaultConfig {
            crash_at_op: Some(1 + (seed.wrapping_mul(7919)) % 220),
            ..FaultConfig::seeded(seed)
        };
        crashes += run_schedule(&Schedule::from_seed(seed, fault)).crashes;
    }
    assert!(crashes > 0, "the sweep must actually crash some schedules");
}

#[test]
fn mixed_fault_storms_with_restarts() {
    for seed in 0..n_schedules() {
        let fault = FaultConfig {
            p_transient: 0.15,
            p_torn: 0.15,
            p_bitflip: 0.1,
            p_latency: 0.2,
            latency_spike: Duration::from_millis(2),
            max_consecutive: 3,
            // Roughly a third of the storms also crash mid-sequence.
            crash_at_op: (seed % 3 == 0).then_some(40 + seed % 300),
            ..FaultConfig::seeded(seed)
        };
        let policy = [
            WritePolicy::speculative(),
            WritePolicy::Eager,
            WritePolicy::Buffered,
        ][(seed % 3) as usize];
        run_schedule(&Schedule::from_seed(seed, fault).with_policy(policy));
    }
}

#[test]
fn crash_mid_safeguard_flush_recovers_without_phantom_or_duplicate_chunks() {
    let mut mid_flush_crashes = 0u64;
    for seed in 0..n_schedules() {
        let s = Schedule::from_seed(seed, FaultConfig::seeded(seed));
        let oracle = oracle_outcomes(&s);

        // Calibrate on a clean twin: how many device ops does the first
        // query (raw scan) take before the safeguard flush writes?
        let op_counts = |disk: &SimDisk| {
            let ops = disk.stats().ops();
            let reads = ops.iter().filter(|o| o.kind == AccessKind::Read).count();
            (reads as u64, (ops.len() - reads) as u64)
        };
        let (twin_reads, twin_writes) = {
            let disk = SimDisk::instant();
            stage_csv(&disk, "t.csv", &s.spec);
            let (r0, w0) = op_counts(&disk);
            let engine = new_engine(&disk, &s);
            engine.execute(&s.queries[0]).unwrap();
            engine.operator("t").unwrap().drain_writes();
            let (r1, w1) = op_counts(&disk);
            (r1 - r0, w1 - w0)
        };
        if twin_writes == 0 {
            continue; // nothing to flush at this shape; schedule is vacuous
        }

        let disk = SimDisk::instant();
        stage_csv(&disk, "t.csv", &s.spec);
        // Crash somewhere inside the write phase of the first query.
        let crash_at = twin_reads + 1 + seed % twin_writes;
        disk.set_fault_plan(FaultPlan::new(FaultConfig {
            crash_at_op: Some(crash_at),
            ..FaultConfig::seeded(seed)
        }));
        let engine = new_engine(&disk, &s);
        // The query itself may complete (crash during overlapped flush) or
        // fail (crash during its reads); both are legal crash points.
        let _ = engine.execute(&s.queries[0]);
        engine.operator("t").unwrap().drain_writes();
        let crashed = disk
            .clear_fault_plan()
            .map(|p| p.crashed())
            .unwrap_or(false);
        if !crashed {
            continue;
        }
        mid_flush_crashes += 1;

        // Restart: recovery must mark exactly the durably committed cells —
        // no phantom (unreadable) cells, no duplicates on re-recovery.
        let (engine, report) = restart(&disk, &s);
        assert_eq!(
            report.committed_cells,
            loaded_cells(engine.database()),
            "catalog must hold exactly the recovered cells"
        );
        assert_loaded_cells_readable(engine.database(), s.cols);
        let again = engine
            .database()
            .recover_table("t", Schema::uniform_ints(s.cols), "t.csv");
        assert_eq!(
            again.unwrap().committed_cells,
            0,
            "re-recovery must find zero new (duplicate) runs"
        );

        // The repaired engine answers the whole sequence oracle-identically
        // and the safeguard finishes the interrupted flush.
        for (qi, q) in s.queries.iter().enumerate() {
            let out = engine.execute(q).unwrap();
            assert_eq!((out.result.rows, out.result.rows_scanned), oracle[qi]);
            engine.operator("t").unwrap().drain_writes();
        }
        assert_loaded_cells_readable(engine.database(), s.cols);
    }
    assert!(
        mid_flush_crashes > 0,
        "the sweep must crash at least one safeguard flush"
    );
}

#[test]
fn same_seed_injects_identical_schedules() {
    // Determinism holds when a single thread owns the device op order;
    // ExternalTables keeps WRITE off the device so the READ stream is the
    // only accessor and the fault decision sequence is reproducible.
    for seed in 0..n_schedules() {
        let fault = FaultConfig {
            p_transient: 0.3,
            p_latency: 0.3,
            latency_spike: Duration::from_millis(1),
            max_consecutive: 3,
            ..FaultConfig::seeded(seed)
        };
        let run = |fault: FaultConfig| {
            let s = Schedule::from_seed(seed, fault).with_policy(WritePolicy::ExternalTables);
            let disk = SimDisk::instant();
            stage_csv(&disk, "t.csv", &s.spec);
            disk.set_fault_plan(FaultPlan::new(s.fault.clone()));
            let engine = new_engine(&disk, &s);
            let outs: Vec<_> = s
                .queries
                .iter()
                .map(|q| {
                    let out = engine.execute(q).unwrap();
                    (out.result.rows, out.result.rows_scanned)
                })
                .collect();
            let counters = disk.clear_fault_plan().unwrap().counters().clone();
            (outs, counters)
        };
        let a = run(fault.clone());
        let b = run(fault);
        assert_eq!(a.0, b.0, "results must be reproducible for seed {seed}");
        assert_eq!(a.1, b.1, "fault injection must replay exactly for {seed}");
    }
}
