//! Differential suite for column-granular loading (PR 10, satellite 3).
//!
//! A table is *partially* loaded — a priming projection query plus the
//! speculative write-back persists only the primed columns' cells — and a
//! seeded stream of projection queries then runs over the resulting mix of
//! db-resident and raw-only cells. Every answer must be bit-identical to a
//! full-reparse oracle: a clean twin device under
//! [`WritePolicy::ExternalTables`], which never touches the database and
//! re-tokenizes/re-parses the raw file for every query.
//!
//! The differential sweeps both [`ExecMode`]s, both hybrid-read settings
//! (including the mixed db-column + raw-reparse delivery of §3.2.1), and —
//! with `--features fault-inject` — 16 seeded fault schedules tearing and
//! failing database writes mid-sweep. A torn write may lose a column cell,
//! but it must never produce a half-loaded cell the catalog claims is
//! loaded, and it must never change an answer.

use scanraw_repro::engine::query::ResultRow;
use scanraw_repro::prelude::*;
use scanraw_repro::rawfile::generate::{stage_csv, CsvSpec};

const COLS: usize = 8;
const ROWS: u64 = 480;
const CHUNK_ROWS: u32 = 60; // → 8 chunks
const QUERIES_PER_SEED: usize = 5;

/// SplitMix64 — deterministic query-stream generation per seed.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_add(0x9e37_79b9_7f4a_7c15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// A non-empty random column subset, sorted.
    fn col_subset(&mut self) -> Vec<usize> {
        loop {
            let mask = self.below(1 << COLS);
            if mask != 0 {
                return (0..COLS).filter(|c| mask & (1 << c) != 0).collect();
            }
        }
    }
}

/// One seeded projection query: a random aggregate column set, an optional
/// half-selective filter on a random column, and (sometimes) an explicit
/// [`Query::select`] widening the projection beyond the referenced columns.
fn seeded_query(rng: &mut Rng) -> Query {
    let mut q = Query::sum_of_columns("t", rng.col_subset());
    if rng.below(2) == 0 {
        let col = rng.below(COLS as u64) as usize;
        q = q.with_filter(Predicate::between(col, 0i64, 1i64 << 30));
    }
    if rng.below(5) < 2 {
        q = q.select(rng.col_subset());
    }
    q
}

fn register(session: &Session, config: ScanRawConfig) {
    session
        .register_table(
            "t",
            "t.csv",
            Schema::uniform_ints(COLS),
            TextDialect::CSV,
            config.with_chunk_rows(CHUNK_ROWS).with_cache_chunks(3),
        )
        .unwrap();
}

/// The oracle: every query re-parsed from raw text on a clean twin, serial,
/// database never consulted.
fn full_reparse_oracle(spec: &CsvSpec, queries: &[Query]) -> Vec<(Vec<ResultRow>, u64)> {
    let disk = SimDisk::instant();
    stage_csv(&disk, "t.csv", spec);
    let session = Session::open(disk);
    register(
        &session,
        ScanRawConfig::default().with_policy(WritePolicy::ExternalTables),
    );
    queries
        .iter()
        .map(|q| {
            let out = session
                .run(ExecRequest::query(q.clone()).mode(ExecMode::Serial))
                .expect("oracle is fault-free")
                .into_single();
            (out.result.rows, out.result.rows_scanned)
        })
        .collect()
}

/// A session over a *partially loaded* table: one priming projection query
/// on columns {1, 4} under the speculative policy loads exactly those cells.
fn partially_loaded_session(spec: &CsvSpec, hybrid: bool, workers: usize) -> Session {
    let disk = SimDisk::instant();
    stage_csv(&disk, "t.csv", spec);
    let session = Session::open(disk);
    register(
        &session,
        ScanRawConfig::default()
            .with_workers(workers)
            .with_policy(WritePolicy::speculative())
            .with_hybrid_reads(hybrid),
    );
    session
        .run(ExecRequest::query(Query::sum_of_columns("t", [1usize, 4])))
        .expect("priming query")
        .into_single();
    let op = session.engine().operator("t").unwrap();
    op.drain_writes();
    op.cache().clear(); // force db/raw (not cache) delivery in the sweep
    let db = session.engine().database();
    let cells = db.catalog().table("t").unwrap().read().loaded_cell_count();
    assert!(cells > 0, "priming must load some cells");
    assert!(
        !db.fully_loaded("t").unwrap(),
        "table must stay partially loaded: only primed columns persist"
    );
    session
}

#[test]
fn projection_over_partially_loaded_tables_matches_full_reparse() {
    let mut hybrid_chunks = 0usize;
    for seed in 0..8u64 {
        let spec = CsvSpec::new(ROWS, COLS, seed.wrapping_mul(0x9e37_79b9));
        let mut rng = Rng::new(seed);
        let queries: Vec<Query> = (0..QUERIES_PER_SEED)
            .map(|_| seeded_query(&mut rng))
            .collect();
        let oracle = full_reparse_oracle(&spec, &queries);

        for (mode, workers) in [(ExecMode::Serial, 0), (ExecMode::Parallel, 2)] {
            for hybrid in [false, true] {
                let session = partially_loaded_session(&spec, hybrid, workers);
                for (qi, q) in queries.iter().enumerate() {
                    let out = session
                        .run(ExecRequest::query(q.clone()).mode(mode))
                        .unwrap()
                        .into_single();
                    assert_eq!(
                        (out.result.rows, out.result.rows_scanned),
                        oracle[qi],
                        "seed {seed} query {qi} diverged ({mode:?}, hybrid={hybrid})"
                    );
                    if hybrid {
                        hybrid_chunks += out.scan.from_hybrid;
                    } else {
                        assert_eq!(
                            out.scan.from_hybrid, 0,
                            "hybrid delivery requires opting in"
                        );
                    }
                }
            }
        }
    }
    assert!(
        hybrid_chunks > 0,
        "the sweep must exercise mixed db-column + raw-reparse delivery"
    );
}

#[cfg(feature = "fault-inject")]
mod faults {
    use super::*;
    use scanraw_repro::simio::{FaultConfig, FaultPlan};
    use scanraw_repro::types::ChunkId;

    /// Every (chunk, column) cell the catalog marks loaded must read back
    /// through its checksum: torn column stores never fake loading.
    fn assert_loaded_cells_readable(db: &Database) {
        let entry = db.catalog().table("t").unwrap();
        let all: Vec<usize> = (0..COLS).collect();
        let per_chunk: Vec<(u32, Vec<usize>)> = {
            let t = entry.read();
            (0..t.n_chunks() as u32)
                .map(|id| (id, t.loaded_columns(ChunkId(id), &all)))
                .collect()
        };
        for (id, loaded) in per_chunk {
            if !loaded.is_empty() {
                db.load_chunk("t", ChunkId(id), &loaded)
                    .unwrap_or_else(|e| panic!("loaded cell unreadable: chunk {id}: {e}"));
            }
        }
    }

    /// 16 seeded schedules: transient + torn faults on the database region
    /// while projection queries run over a partially loaded, hybrid-reading
    /// table in both exec modes. Faults throttle loading; they never change
    /// answers and never leave a half-written cell marked loaded.
    #[test]
    fn faulted_projection_sweep_stays_oracle_identical_across_16_schedules() {
        for seed in 0..16u64 {
            let spec = CsvSpec::new(ROWS, COLS, seed.wrapping_mul(0x51_7c_c1b7));
            let mut rng = Rng::new(seed ^ 0xdead_beef);
            let queries: Vec<Query> = (0..QUERIES_PER_SEED)
                .map(|_| seeded_query(&mut rng))
                .collect();
            let oracle = full_reparse_oracle(&spec, &queries);

            let workers = (seed % 3) as usize;
            let mode = if seed % 2 == 0 {
                ExecMode::Serial
            } else {
                ExecMode::Parallel
            };
            let session = partially_loaded_session(&spec, true, workers);
            let disk = session.engine().database().disk().clone();
            disk.set_fault_plan(FaultPlan::new(FaultConfig {
                target: "db/".into(),
                p_transient: 0.25,
                p_torn: 0.25,
                max_consecutive: 3,
                ..FaultConfig::seeded(seed)
            }));
            for (qi, q) in queries.iter().enumerate() {
                let out = session
                    .run(ExecRequest::query(q.clone()).mode(mode))
                    .unwrap_or_else(|e| panic!("seed {seed} query {qi}: {e}"))
                    .into_single();
                assert_eq!(
                    (out.result.rows, out.result.rows_scanned),
                    oracle[qi],
                    "seed {seed} query {qi} diverged under faults"
                );
                session.engine().operator("t").unwrap().drain_writes();
            }
            disk.clear_fault_plan();
            assert_loaded_cells_readable(session.engine().database());
        }
    }
}
