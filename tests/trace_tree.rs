//! Differential tests for the causal tracing subsystem (PR 6 tentpole).
//!
//! Every traced query must produce a *well-formed* span tree — exactly one
//! root, every span closed, parents opened before children, timestamps
//! monotone on the device clock — and the tree must attribute work
//! faithfully: each delivered chunk to exactly one `exec.chunk` span under
//! the query, retries and database fallbacks as child spans rather than
//! silent journal-only events. The invariants are checked across
//! [`ExecMode::Serial`] vs [`ExecMode::Parallel`] and, with
//! `--features fault-inject`, across 16 seeded fault schedules.

use scanraw_repro::prelude::*;
use scanraw_repro::rawfile::generate::{stage_csv, CsvSpec};

const ROWS: u64 = 4_000;
const COLS: usize = 4;
const CHUNK_ROWS: u32 = 500; // → 8 chunks

fn session_on(disk: SimDisk, mode: ExecMode, workers: usize) -> Session {
    let session = Session::open(disk).with_exec_mode(mode);
    session
        .register_table(
            "t",
            "t.csv",
            Schema::uniform_ints(COLS),
            TextDialect::CSV,
            ScanRawConfig::default()
                .with_chunk_rows(CHUNK_ROWS)
                .with_workers(workers)
                .with_cache_chunks(16)
                .with_policy(WritePolicy::speculative()),
        )
        .unwrap();
    session
}

fn staged_disk(seed: u64) -> SimDisk {
    let disk = SimDisk::instant();
    stage_csv(&disk, "t.csv", &CsvSpec::new(ROWS, COLS, seed));
    disk
}

/// Structural invariants beyond `QueryTrace::validate`: the root is the
/// `query` span, scan/merge hang off it, and per-chunk spans nest correctly.
fn assert_tree_shape(trace: &QueryTrace) {
    trace.validate().unwrap_or_else(|e| panic!("invalid: {e}"));
    let root = trace.root().expect("root span");
    assert_eq!(root.name, "query");
    // Scan spans are direct children of the query root.
    for scan in trace.spans_named("scan") {
        assert_eq!(scan.parent, Some(root.id), "scan under query root");
    }
    // Every per-chunk pipeline span has an ancestor chain ending at the root
    // (validate() checked parents exist and open before children; here we
    // check the *names* along the way are plausible containers).
    let by_id: std::collections::HashMap<u64, &SpanRecord> =
        trace.spans.iter().map(|s| (s.id.0, s)).collect();
    for span in &trace.spans {
        let mut cur = span;
        let mut hops = 0;
        while let Some(parent) = cur.parent {
            cur = by_id[&parent.0];
            hops += 1;
            assert!(hops <= 8, "span {} nests impossibly deep", span.name);
        }
        assert_eq!(cur.id, root.id, "{} reaches the root", span.name);
    }
    // Timestamps are monotone within each span (device clock never runs
    // backwards) — validate() already enforces end >= start; spot-check
    // children do not start before the trace root.
    for span in &trace.spans {
        assert!(span.start >= root.start, "{} starts after root", span.name);
    }
}

/// Chunk attribution: every delivered chunk shows up in exactly one
/// `exec.chunk` span (parallel mode), keyed by its `chunk` tag.
fn assert_exec_attribution(trace: &QueryTrace, delivered: usize) {
    let mut seen = std::collections::HashSet::new();
    for span in trace.spans_named("exec.chunk") {
        let chunk = span.tag("chunk").expect("exec.chunk tagged with chunk id");
        assert!(
            seen.insert(chunk.to_string()),
            "chunk {chunk} executed twice"
        );
        assert!(
            span.tag("worker").is_some(),
            "exec.chunk tagged with its worker"
        );
    }
    assert_eq!(
        seen.len(),
        delivered,
        "every delivered chunk has an EXEC span"
    );
}

#[test]
fn serial_and_parallel_traces_are_well_formed() {
    for mode in [ExecMode::Serial, ExecMode::Parallel] {
        for workers in [0, 2] {
            let session = session_on(staged_disk(7), mode, workers);
            let q = Query::sum_of_columns("t", 0..COLS);
            // Cold then warm: conversion-heavy and cache-served trees.
            let (cold, cold_trace) = session
                .run(ExecRequest::query(q.clone()).traced())
                .unwrap()
                .into_traced_single();
            assert_tree_shape(&cold_trace);
            let (warm, warm_trace) = session
                .run(ExecRequest::query(q.clone()).traced())
                .unwrap()
                .into_traced_single();
            assert_tree_shape(&warm_trace);
            assert_eq!(cold.result.rows, warm.result.rows);

            // The pipeline's per-chunk work is all attributed: 8 chunk-tagged
            // reads, plus at most one untagged span for the streaming loop's
            // EOF-probe read (a real device operation that returns no chunk).
            let tagged = cold_trace
                .spans_named("read.chunk")
                .filter(|s| s.tag("chunk").is_some())
                .count();
            assert_eq!(tagged, 8, "8 chunks read in mode {mode:?}/{workers}w");
            let reads = cold_trace.spans_named("read.chunk").count();
            assert!(
                (8..=9).contains(&reads),
                "at most one EOF probe in mode {mode:?}/{workers}w, got {reads}"
            );
            if mode == ExecMode::Parallel {
                assert_exec_attribution(&cold_trace, cold.scan.chunks_delivered);
                assert_exec_attribution(&warm_trace, warm.scan.chunks_delivered);
                assert_eq!(warm_trace.spans_named("merge").count(), 1);
            }
            // Speculative loading surfaced as write.chunk spans in the cold
            // tree (the safeguard flushes all 8 by scan end).
            assert_eq!(
                cold_trace.spans_named("write.chunk").count(),
                8,
                "all chunks written back under the cold trace"
            );
            // Disk activity is traced under the same tree.
            assert!(cold_trace.spans_named("disk.read").count() > 0);
            assert!(cold_trace.spans_named("disk.write").count() > 0);
        }
    }
}

#[test]
fn traces_are_deterministic_on_the_virtual_clock() {
    // Same seed, same config → identical span trees (names, parents, tags,
    // and virtual timestamps), independent of host scheduling. Worker pool
    // size 0 keeps conversion on one thread so even span *ordering* is fixed.
    let shape = |trace: &QueryTrace| -> Vec<(String, Option<u64>, u128)> {
        trace
            .spans
            .iter()
            .map(|s| {
                (
                    format!("{}:{}", s.name, s.tag("chunk").unwrap_or("")),
                    s.parent.map(|p| p.0),
                    s.start.as_nanos(),
                )
            })
            .collect()
    };
    let run = || {
        let session = session_on(staged_disk(7), ExecMode::Serial, 0);
        let (_, trace) = session
            .run(ExecRequest::query(Query::sum_of_columns("t", 0..COLS)).traced())
            .unwrap()
            .into_traced_single();
        trace
    };
    let (a, b) = (run(), run());
    assert_eq!(
        shape(&a),
        shape(&b),
        "virtual-clock traces are reproducible"
    );
}

#[test]
fn disabled_recorder_records_nothing_and_execute_traced_errors() {
    let session = session_on(staged_disk(7), ExecMode::Parallel, 2);
    let op = session.engine().operator("t").unwrap();
    op.obs().trace.set_enabled(false);
    let q = Query::sum_of_columns("t", 0..COLS);
    let out = session
        .run(ExecRequest::query(q.clone()))
        .unwrap()
        .into_single();
    assert_eq!(out.result.rows_scanned, ROWS);
    assert!(
        session.run(ExecRequest::query(q.clone()).traced()).is_err(),
        "no trace when disabled"
    );
    assert!(session.last_trace("t").is_none());

    // Re-enabling picks tracing back up on the same operator.
    op.obs().trace.set_enabled(true);
    let (_, trace) = session
        .run(ExecRequest::query(q).traced())
        .unwrap()
        .into_traced_single();
    assert_tree_shape(&trace);
}

#[cfg(feature = "fault-inject")]
mod faults {
    use super::*;
    use scanraw_repro::obs::ObsEvent;
    use scanraw_repro::simio::{FaultConfig, FaultPlan};
    use std::time::Duration;

    /// 16 seeded schedules: transient faults on database reads/writes force
    /// retries and fallbacks mid-query; the trace must surface every one of
    /// them as a child span — they never disappear from the tree.
    #[test]
    fn retries_and_fallbacks_appear_as_child_spans_across_16_schedules() {
        for seed in 0..16u64 {
            let disk = staged_disk(7);
            let session = session_on(disk.clone(), ExecMode::Parallel, 2);
            let q = Query::sum_of_columns("t", 0..COLS);
            // Load the table clean, then fault the db region for the warm
            // run so loaded-chunk reads retry and fall back.
            let (cold, _) = session
                .run(ExecRequest::query(q.clone()).traced())
                .unwrap()
                .into_traced_single();
            session.engine().operator("t").unwrap().drain_writes();
            session.engine().operator("t").unwrap().cache().clear();
            disk.set_fault_plan(FaultPlan::new(FaultConfig {
                target: "db/".into(),
                p_transient: 0.6,
                max_consecutive: 3,
                latency_spike: Duration::from_micros(50),
                ..FaultConfig::seeded(seed)
            }));
            let (warm, trace) = session
                .run(ExecRequest::query(q.clone()).traced())
                .unwrap()
                .into_traced_single();
            disk.clear_fault_plan();
            assert_eq!(cold.result.rows, warm.result.rows, "seed {seed}");
            trace
                .validate()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));

            // Journal ground truth for this query's window.
            let op = session.engine().operator("t").unwrap();
            let entries = op.obs().journal.entries();
            let since = entries
                .iter()
                .rev()
                .find(|e| matches!(e.event, ObsEvent::TraceStarted { .. }))
                .map(|e| e.seq)
                .expect("trace start journaled");
            let retries = entries
                .iter()
                .filter(|e| e.seq >= since && matches!(e.event, ObsEvent::IoRetry { .. }))
                .count();
            let fallbacks = entries
                .iter()
                .filter(|e| e.seq >= since && matches!(e.event, ObsEvent::DbReadFallback { .. }))
                .count();

            let retry_spans: Vec<_> = trace.spans_named("retry").collect();
            let fallback_spans = trace.spans_named("db.fallback").count();
            assert!(
                retry_spans.len() >= retries,
                "seed {seed}: {retries} journaled retries, {} retry spans",
                retry_spans.len()
            );
            assert_eq!(
                fallback_spans, fallbacks,
                "seed {seed}: every db fallback is a span"
            );
            // Retry spans are children (of read.chunk/write.chunk/...), never
            // roots, and carry their attempt tag.
            for r in &retry_spans {
                assert!(r.parent.is_some(), "seed {seed}: retry span has a parent");
                assert!(r.tag("attempt").is_some());
            }
        }
    }
}
