//! Offline stand-in for the `criterion` crate.
//!
//! A deliberately small timing harness exposing the slice of the criterion
//! API the workspace benches use: `Criterion` with the builder knobs,
//! `benchmark_group`/`bench_function`, `Bencher::{iter, iter_batched}`,
//! `Throughput`, `BatchSize`, and the `criterion_group!`/`criterion_main!`
//! macros. No statistics beyond a mean — it reports wall-clock per
//! iteration and optional throughput. When invoked by `cargo test` (the
//! harness sees a `--test` argument) every benchmark runs exactly once, so
//! bench targets double as smoke tests.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Units the per-iteration time is normalised against.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// How `iter_batched` amortises setup cost. The stand-in times every
/// routine call individually, so the variants only affect batching in name.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level harness configuration.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
            test_mode: false,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Reads harness-relevant CLI flags. `cargo test` runs `harness = false`
    /// bench binaries with `--test`; in that mode each benchmark executes a
    /// single iteration.
    pub fn configure_from_args(mut self) -> Self {
        if std::env::args().any(|a| a == "--test") {
            self.test_mode = true;
        }
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = BenchmarkGroup {
            criterion: self,
            name: String::new(),
            throughput: None,
        };
        group.bench_function(id, f);
        self
    }

    pub fn final_summary(&self) {}
}

/// A named group of related benchmarks sharing a throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        };
        let mut bencher = Bencher {
            iterations: if self.criterion.test_mode {
                1
            } else {
                self.criterion.sample_size as u64
            },
            elapsed: Duration::ZERO,
            executed: 0,
        };
        if !self.criterion.test_mode {
            // Minimal warm-up: a single untimed pass.
            let mut warm = Bencher {
                iterations: 1,
                elapsed: Duration::ZERO,
                executed: 0,
            };
            f(&mut warm);
        }
        f(&mut bencher);
        report(&label, &bencher, self.throughput);
        self
    }

    pub fn finish(self) {}
}

fn report(label: &str, b: &Bencher, throughput: Option<Throughput>) {
    if b.executed == 0 {
        println!("{label}: no iterations executed");
        return;
    }
    let per_iter = b.elapsed.as_secs_f64() / b.executed as f64;
    let mut line = format!("{label}: {:.3} ms/iter", per_iter * 1e3);
    match throughput {
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            let mibs = n as f64 / per_iter / (1024.0 * 1024.0);
            line.push_str(&format!(" ({mibs:.1} MiB/s)"));
        }
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            let eps = n as f64 / per_iter;
            line.push_str(&format!(" ({eps:.0} elem/s)"));
        }
        _ => {}
    }
    println!("{line}");
}

/// Handed to each benchmark closure; runs and times the routine.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
    executed: u64,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.executed += self.iterations;
    }

    /// Times `routine` with fresh untimed input from `setup` each iteration.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.executed += 1;
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_counts_all_iterations() {
        let mut b = Bencher {
            iterations: 5,
            elapsed: Duration::ZERO,
            executed: 0,
        };
        let mut calls = 0u64;
        b.iter(|| calls += 1);
        assert_eq!(calls, 5);
        assert_eq!(b.executed, 5);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut b = Bencher {
            iterations: 3,
            elapsed: Duration::ZERO,
            executed: 0,
        };
        let mut setups = 0u64;
        b.iter_batched(
            || {
                setups += 1;
                setups
            },
            |v| v * 2,
            BatchSize::PerIteration,
        );
        assert_eq!(setups, 3);
        assert_eq!(b.executed, 3);
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default().sample_size(2);
        c.test_mode = true;
        let mut ran = false;
        {
            let mut g = c.benchmark_group("g");
            g.throughput(Throughput::Bytes(10));
            g.bench_function("f", |b| b.iter(|| ran = true));
            g.finish();
        }
        assert!(ran);
    }
}
