//! Exercises the `deadlock-detect` lock-order detector.
//!
//! Run with `cargo test -p parking_lot --features deadlock-detect`; without
//! the feature the whole file compiles to nothing.
#![cfg(feature = "deadlock-detect")]

use parking_lot::{Mutex, RwLock};
use std::sync::Arc;
use std::thread;

/// Distinct payload types so the panic message names each lock usefully.
struct CatalogState(#[allow(dead_code)] u32);
struct CacheState(#[allow(dead_code)] u32);

#[test]
fn seeded_inversion_is_detected_without_deadlocking() {
    let catalog = Arc::new(Mutex::new(CatalogState(0)));
    let cache = Arc::new(Mutex::new(CacheState(0)));

    // Thread 1 establishes the order catalog -> cache and exits cleanly.
    {
        let (catalog, cache) = (catalog.clone(), cache.clone());
        thread::Builder::new()
            .name("order-setter".into())
            .spawn(move || {
                let g1 = catalog.lock();
                let g2 = cache.lock();
                drop(g2);
                drop(g1);
            })
            .expect("spawn")
            .join()
            .expect("no panic in the establishing thread");
    }

    // Thread 2 attempts the inverse order. No actual contention exists (the
    // first thread is long gone), yet the detector must flag the inversion —
    // that is the point: the bug is caught on the *order*, not on the hang.
    let result = thread::Builder::new()
        .name("order-breaker".into())
        .spawn(move || {
            let g2 = cache.lock();
            let g1 = catalog.lock(); // must panic here
            drop(g1);
            drop(g2);
        })
        .expect("spawn")
        .join();

    let panic = result.expect_err("inversion must panic");
    let msg = panic
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "<non-string panic>".into());
    assert!(msg.contains("lock-order inversion"), "message: {msg}");
    // Both sides of the inversion are named, with their held stacks.
    assert!(msg.contains("CacheState"), "message: {msg}");
    assert!(msg.contains("CatalogState"), "message: {msg}");
    assert!(msg.contains("order-breaker"), "message: {msg}");
    assert!(msg.contains("order-setter"), "message: {msg}");
}

#[test]
fn consistent_order_across_threads_is_fine() {
    struct A(#[allow(dead_code)] u8);
    struct B(#[allow(dead_code)] u8);
    let a = Arc::new(Mutex::new(A(0)));
    let b = Arc::new(Mutex::new(B(0)));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let (a, b) = (a.clone(), b.clone());
            thread::spawn(move || {
                for _ in 0..100 {
                    let ga = a.lock();
                    let gb = b.lock();
                    drop(gb);
                    drop(ga);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("consistent order never panics");
    }
}

#[test]
fn indirect_cycle_through_three_locks_is_detected() {
    struct X(#[allow(dead_code)] u8);
    struct Y(#[allow(dead_code)] u8);
    struct Z(#[allow(dead_code)] u8);
    let x = Arc::new(Mutex::new(X(0)));
    let y = Arc::new(Mutex::new(Y(0)));
    let z = Arc::new(Mutex::new(Z(0)));

    // x -> y and y -> z, sequentially (no contention).
    {
        let g = x.lock();
        let _ = y.lock();
        drop(g);
    }
    {
        let g = y.lock();
        let _ = z.lock();
        drop(g);
    }
    // z -> x closes the 3-cycle.
    let (xc, zc) = (x.clone(), z.clone());
    let result = thread::spawn(move || {
        let gz = zc.lock();
        let _gx = xc.lock(); // must panic: x reaches z via y
        drop(gz);
    })
    .join();
    assert!(result.is_err(), "3-cycle must be detected");
}

#[test]
fn rwlock_participates_in_ordering() {
    struct R(#[allow(dead_code)] u8);
    struct M(#[allow(dead_code)] u8);
    let r = Arc::new(RwLock::new(R(0)));
    let m = Arc::new(Mutex::new(M(0)));

    {
        let g = r.read();
        let _ = m.lock();
        drop(g);
    }
    let (rc, mc) = (r.clone(), m.clone());
    let result = thread::spawn(move || {
        let gm = mc.lock();
        let _gr = rc.write(); // inverse of the recorded r -> m order
        drop(gm);
    })
    .join();
    assert!(result.is_err(), "rwlock/mutex inversion must be detected");
}

#[test]
fn reentrant_read_of_same_rwlock_is_not_an_inversion() {
    let l = RwLock::new(0u32);
    let a = l.read();
    let b = l.read(); // same lock: no self-edge, no panic
    assert_eq!(*a + *b, 0);
}

#[test]
fn try_lock_does_not_create_order_edges() {
    struct P(#[allow(dead_code)] u8);
    struct Q(#[allow(dead_code)] u8);
    let p = Arc::new(Mutex::new(P(0)));
    let q = Arc::new(Mutex::new(Q(0)));

    // try_lock'd q while holding p: held, but records no p -> q edge.
    {
        let gp = p.lock();
        let gq = q.try_lock().expect("uncontended");
        drop(gq);
        drop(gp);
    }
    // The blocking inverse order q -> p is therefore still allowed.
    let (pc, qc) = (p.clone(), q.clone());
    thread::spawn(move || {
        let gq = qc.lock();
        let _gp = pc.lock();
        drop(gq);
    })
    .join()
    .expect("no edge from try_lock, so no cycle");
}
