//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! the narrow slice of `parking_lot` it actually uses: [`Mutex`] and
//! [`RwLock`] whose guards come straight from `std::sync`, with poisoning
//! swallowed (a panic while holding a lock does not poison it for everyone
//! else — the `parking_lot` semantics the rest of the code base assumes).

use std::sync::{self, LockResult, TryLockError};

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

fn ignore_poison<G>(r: LockResult<G>) -> G {
    match r {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Poison-free mutual exclusion, `parking_lot`-style: `lock()` returns the
/// guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        ignore_poison(self.0.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        ignore_poison(self.0.lock())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        ignore_poison(self.0.get_mut())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// Poison-free reader-writer lock, `parking_lot`-style: `read()`/`write()`
/// return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        ignore_poison(self.0.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        ignore_poison(self.0.read())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        ignore_poison(self.0.write())
    }

    pub fn get_mut(&mut self) -> &mut T {
        ignore_poison(self.0.get_mut())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
    }

    #[test]
    fn lock_survives_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poisoning attempt");
        })
        .join();
        // parking_lot semantics: no poisoning, the lock stays usable.
        assert_eq!(*m.lock(), 0);
    }
}
