//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! the narrow slice of `parking_lot` it actually uses: [`Mutex`] and
//! [`RwLock`] whose guards come straight from `std::sync`, with poisoning
//! swallowed (a panic while holding a lock does not poison it for everyone
//! else — the `parking_lot` semantics the rest of the code base assumes).
//!
//! With the `deadlock-detect` feature enabled, every blocking acquisition is
//! additionally recorded in a global lock-order graph (see [`deadlock`]);
//! the acquisition that would establish a cyclic order panics with both
//! threads' held-lock stacks instead of setting up a future deadlock. The
//! guards become thin wrappers (same `Deref` surface) that unwind the
//! per-thread held set on drop.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

#[cfg(feature = "deadlock-detect")]
mod deadlock;

use std::sync::{self, LockResult, TryLockError};

#[cfg(not(feature = "deadlock-detect"))]
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
#[cfg(not(feature = "deadlock-detect"))]
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
#[cfg(not(feature = "deadlock-detect"))]
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

fn ignore_poison<G>(r: LockResult<G>) -> G {
    match r {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The identity of a lock in the order graph: assigned on first acquisition,
/// process-unique for the lock's whole lifetime.
#[cfg(feature = "deadlock-detect")]
fn lock_id(slot: &sync::OnceLock<usize>) -> usize {
    *slot.get_or_init(deadlock::next_lock_id)
}

macro_rules! tracked_guard {
    ($name:ident, $std:ident $(, $mut_:ident)?) => {
        /// Guard that pops the holder's per-thread held-lock set on drop.
        #[cfg(feature = "deadlock-detect")]
        pub struct $name<'a, T: ?Sized> {
            inner: sync::$std<'a, T>,
            id: usize,
        }

        #[cfg(feature = "deadlock-detect")]
        impl<T: ?Sized> std::ops::Deref for $name<'_, T> {
            type Target = T;
            fn deref(&self) -> &T {
                &self.inner
            }
        }

        $(
            #[cfg(feature = "deadlock-detect")]
            impl<T: ?Sized> std::ops::$mut_ for $name<'_, T> {
                fn deref_mut(&mut self) -> &mut T {
                    &mut self.inner
                }
            }
        )?

        #[cfg(feature = "deadlock-detect")]
        impl<T: ?Sized> Drop for $name<'_, T> {
            fn drop(&mut self) {
                deadlock::release(self.id);
            }
        }

        #[cfg(feature = "deadlock-detect")]
        impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for $name<'_, T> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                self.inner.fmt(f)
            }
        }
    };
}

tracked_guard!(MutexGuard, MutexGuard, DerefMut);
tracked_guard!(RwLockReadGuard, RwLockReadGuard);
tracked_guard!(RwLockWriteGuard, RwLockWriteGuard, DerefMut);

/// Poison-free mutual exclusion, `parking_lot`-style: `lock()` returns the
/// guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    #[cfg(feature = "deadlock-detect")]
    id: sync::OnceLock<usize>,
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            #[cfg(feature = "deadlock-detect")]
            id: sync::OnceLock::new(),
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        ignore_poison(self.inner.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "deadlock-detect")]
        {
            // Check the order *before* blocking: an inversion panics here
            // instead of deadlocking under an unlucky interleaving.
            let id = lock_id(&self.id);
            deadlock::acquire_blocking(id, std::any::type_name::<T>());
            MutexGuard {
                inner: ignore_poison(self.inner.lock()),
                id,
            }
        }
        #[cfg(not(feature = "deadlock-detect"))]
        ignore_poison(self.inner.lock())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
            Err(TryLockError::WouldBlock) => return None,
        };
        #[cfg(feature = "deadlock-detect")]
        {
            let id = lock_id(&self.id);
            deadlock::acquire_try(id, std::any::type_name::<T>());
            Some(MutexGuard { inner, id })
        }
        #[cfg(not(feature = "deadlock-detect"))]
        Some(inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        ignore_poison(self.inner.get_mut())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// Poison-free reader-writer lock, `parking_lot`-style: `read()`/`write()`
/// return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    #[cfg(feature = "deadlock-detect")]
    id: sync::OnceLock<usize>,
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            #[cfg(feature = "deadlock-detect")]
            id: sync::OnceLock::new(),
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        ignore_poison(self.inner.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(feature = "deadlock-detect")]
        {
            let id = lock_id(&self.id);
            deadlock::acquire_blocking(id, std::any::type_name::<T>());
            RwLockReadGuard {
                inner: ignore_poison(self.inner.read()),
                id,
            }
        }
        #[cfg(not(feature = "deadlock-detect"))]
        ignore_poison(self.inner.read())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(feature = "deadlock-detect")]
        {
            let id = lock_id(&self.id);
            deadlock::acquire_blocking(id, std::any::type_name::<T>());
            RwLockWriteGuard {
                inner: ignore_poison(self.inner.write()),
                id,
            }
        }
        #[cfg(not(feature = "deadlock-detect"))]
        ignore_poison(self.inner.write())
    }

    pub fn get_mut(&mut self) -> &mut T {
        ignore_poison(self.inner.get_mut())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(7);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(*m.try_lock().expect("uncontended"), 7);
    }

    #[test]
    fn lock_survives_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poisoning attempt");
        })
        .join();
        // parking_lot semantics: no poisoning, the lock stays usable.
        assert_eq!(*m.lock(), 0);
    }
}
