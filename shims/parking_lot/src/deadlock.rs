//! Runtime lock-order detection (the `deadlock-detect` feature).
//!
//! The same idea as the kernel's lockdep, scaled to this workspace: every
//! *blocking* acquisition is recorded against the set of locks the acquiring
//! thread already holds, building a global directed graph of acquisition
//! orders. The first acquisition that would close a cycle panics — on the
//! *order violation*, not on an actual deadlock — so a single test run with
//! good coverage surfaces inversions that would hang only under an unlucky
//! interleaving in production.
//!
//! Nodes are lock identities — a monotonic id assigned on a lock's first
//! acquisition, so a freed allocation can never alias an old node. Each edge
//! stores the held stack and thread name at the moment it was created; the
//! panic message prints both sides of the inversion: the current thread's
//! held stack and the recorded stack that established the opposite order.
//!
//! `try_lock` pushes onto the held stack (a later blocking acquisition under
//! it is still an ordering fact) but creates no edges itself: a failed
//! `try_lock` backs off instead of blocking, so it cannot complete a cycle.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex as StdMutex, OnceLock};

/// Issues each lock a process-unique identity on first acquisition.
pub(crate) fn next_lock_id() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(1);
    // relaxed-ok: uniqueness only; no ordering with other state required
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// One lock the current thread holds.
#[derive(Clone)]
struct Held {
    id: usize,
    name: &'static str,
}

thread_local! {
    static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
}

/// Provenance of an acquisition-order edge: who established it, holding what.
struct EdgeSite {
    thread: String,
    /// Names of the held stack at edge creation, outermost first, with the
    /// acquired lock appended.
    stack: Vec<String>,
}

#[derive(Default)]
struct Graph {
    /// `a -> b`: some thread acquired `b` while holding `a`.
    edges: HashMap<usize, HashMap<usize, EdgeSite>>,
}

impl Graph {
    /// Is `to` reachable from `from` following recorded edges?
    fn reaches(&self, from: usize, to: usize) -> bool {
        let mut stack = vec![from];
        let mut seen = vec![from];
        while let Some(at) = stack.pop() {
            if at == to {
                return true;
            }
            if let Some(next) = self.edges.get(&at) {
                for &n in next.keys() {
                    if !seen.contains(&n) {
                        seen.push(n);
                        stack.push(n);
                    }
                }
            }
        }
        false
    }
}

fn graph() -> &'static StdMutex<Graph> {
    static GRAPH: OnceLock<StdMutex<Graph>> = OnceLock::new();
    GRAPH.get_or_init(|| StdMutex::new(Graph::default()))
}

fn current_thread_name() -> String {
    let t = std::thread::current();
    t.name().unwrap_or("<unnamed>").to_string()
}

/// Records a blocking acquisition of lock `id` (`name` is its type name).
/// Panics if the new ordering edges close a cycle in the global graph.
pub(crate) fn acquire_blocking(id: usize, name: &'static str) {
    let held: Vec<Held> = HELD.with(|h| h.borrow().clone());
    {
        let mut g = match graph().lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        for h in &held {
            if h.id == id {
                // Reentrant read of the same RwLock: not an ordering fact.
                continue;
            }
            // Adding h -> id closes a cycle iff id already reaches h.
            if g.reaches(id, h.id) {
                let opposite = g
                    .edges
                    .get(&id)
                    .and_then(|m| m.values().next())
                    .map(|site| {
                        format!(
                            "thread '{}' holding [{}]",
                            site.thread,
                            site.stack.join(" -> ")
                        )
                    })
                    .unwrap_or_else(|| "another thread (indirect path)".to_string());
                let ours: Vec<String> = held
                    .iter()
                    .map(|x| x.name.to_string())
                    .chain(std::iter::once(name.to_string()))
                    .collect();
                panic!(
                    "lock-order inversion: thread '{}' acquiring [{}] while the opposite \
                     order was established by {}; acquire these locks in one global order \
                     (see DESIGN.md 'Concurrency invariants')",
                    current_thread_name(),
                    ours.join(" -> "),
                    opposite,
                );
            }
            let stack: Vec<String> = held
                .iter()
                .map(|x| x.name.to_string())
                .chain(std::iter::once(name.to_string()))
                .collect();
            g.edges
                .entry(h.id)
                .or_default()
                .entry(id)
                .or_insert(EdgeSite {
                    thread: current_thread_name(),
                    stack,
                });
        }
    }
    HELD.with(|h| h.borrow_mut().push(Held { id, name }));
}

/// Records a successful `try_lock`: held, but no ordering edges.
pub(crate) fn acquire_try(id: usize, name: &'static str) {
    HELD.with(|h| h.borrow_mut().push(Held { id, name }));
}

/// The guard for lock `id` was dropped.
pub(crate) fn release(id: usize) {
    HELD.with(|h| {
        let mut held = h.borrow_mut();
        if let Some(pos) = held.iter().rposition(|x| x.id == id) {
            held.remove(pos);
        }
    });
}
