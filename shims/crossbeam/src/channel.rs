//! MPMC channels with the `crossbeam-channel` API.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Sending on a disconnected channel (all receivers dropped).
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Outcome of a timed send.
pub enum SendTimeoutError<T> {
    /// The channel stayed full for the whole timeout; the message is
    /// returned.
    Timeout(T),
    /// All receivers are gone; the message is returned.
    Disconnected(T),
}

impl<T> fmt::Debug for SendTimeoutError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendTimeoutError::Timeout(_) => f.write_str("Timeout(..)"),
            SendTimeoutError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

/// Receiving from an empty, disconnected channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Outcome of a non-blocking receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

/// Outcome of a timed receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

struct State<T> {
    queue: VecDeque<T>,
    /// `None` = unbounded.
    capacity: Option<usize>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Shared<T> {
    fn new(capacity: Option<usize>) -> Arc<Self> {
        Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                capacity,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        })
    }
}

/// The sending half; cheap to clone.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half; cheap to clone (MPMC).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a channel of unlimited capacity.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Shared::new(None);
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

/// Creates a channel holding at most `cap` messages.
///
/// Zero-capacity rendezvous channels are not supported by this stand-in; the
/// workspace's buffer capacities are validated to be at least 1.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap > 0, "rendezvous (zero-capacity) channels unsupported");
    let shared = Shared::new(Some(cap));
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Blocks until the message is enqueued or every receiver is gone.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.state.lock().expect("channel lock");
        loop {
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            let full = state.capacity.is_some_and(|cap| state.queue.len() >= cap);
            if !full {
                state.queue.push_back(msg);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            state = self.shared.not_full.wait(state).expect("channel lock");
        }
    }

    /// Blocks for at most `timeout`, returning the message on failure.
    pub fn send_timeout(&self, msg: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.state.lock().expect("channel lock");
        loop {
            if state.receivers == 0 {
                return Err(SendTimeoutError::Disconnected(msg));
            }
            let full = state.capacity.is_some_and(|cap| state.queue.len() >= cap);
            if !full {
                state.queue.push_back(msg);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(SendTimeoutError::Timeout(msg));
            }
            let (guard, _timed_out) = self
                .shared
                .not_full
                .wait_timeout(state, deadline - now)
                .expect("channel lock");
            state = guard;
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().expect("channel lock").senders += 1;
        Sender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("channel lock");
        state.senders -= 1;
        if state.senders == 0 {
            // Wake receivers so they observe the disconnect.
            drop(state);
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or the channel is empty with every
    /// sender gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.state.lock().expect("channel lock");
        loop {
            if let Some(msg) = state.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.shared.not_empty.wait(state).expect("channel lock");
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.state.lock().expect("channel lock");
        if let Some(msg) = state.queue.pop_front() {
            self.shared.not_full.notify_one();
            return Ok(msg);
        }
        if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Blocks for at most `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.state.lock().expect("channel lock");
        loop {
            if let Some(msg) = state.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _timed_out) = self
                .shared
                .not_empty
                .wait_timeout(state, deadline - now)
                .expect("channel lock");
            state = guard;
        }
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.state.lock().expect("channel lock").queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().expect("channel lock").receivers += 1;
        Receiver {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("channel lock");
        state.receivers -= 1;
        if state.receivers == 0 {
            // Wake blocked senders so they observe the disconnect.
            drop(state);
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn unbounded_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_after_drain() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        drop(tx);
        // Queued messages survive sender disconnection.
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn bounded_backpressure_and_timeout() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        match tx.send_timeout(2, Duration::from_millis(5)) {
            Err(SendTimeoutError::Timeout(2)) => {}
            other => panic!("expected timeout, got {other:?}"),
        }
        assert_eq!(rx.recv(), Ok(1));
        tx.send_timeout(2, Duration::from_millis(5)).unwrap();
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn recv_timeout_expires() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn mpmc_all_messages_arrive_once() {
        let (tx, rx) = bounded(4);
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..100 {
                        tx.send(p * 100 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let expected: Vec<i32> = (0..4)
            .flat_map(|p| (0..100).map(move |i| p * 100 + i))
            .collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn cloned_receivers_drain_queue_after_all_senders_drop() {
        let (tx, rx) = bounded(8);
        let rx2 = rx.clone();
        for i in 0..6 {
            tx.send(i).unwrap();
        }
        drop(tx);
        // Both receiver clones keep draining the surviving queue, and both
        // observe Disconnected (not a hang) once it is empty.
        let mut got = Vec::new();
        loop {
            match rx.try_recv() {
                Ok(v) => got.push(v),
                Err(TryRecvError::Disconnected) => break,
                Err(TryRecvError::Empty) => unreachable!("senders are gone"),
            }
            match rx2.try_recv() {
                Ok(v) => got.push(v),
                Err(TryRecvError::Disconnected) => break,
                Err(TryRecvError::Empty) => unreachable!("senders are gone"),
            }
        }
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(rx2.recv(), Err(RecvError));
    }

    #[test]
    fn send_timeout_unblocks_when_space_frees() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let sender = thread::spawn(move || {
            // Generous deadline: succeeds long before it, because the
            // consumer below frees the slot.
            tx.send_timeout(2, Duration::from_secs(5))
        });
        assert_eq!(rx.recv(), Ok(1));
        sender
            .join()
            .unwrap()
            .expect("send completes once space frees");
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn send_timeout_deadline_is_respected_under_sustained_fullness() {
        let (tx, _rx) = bounded(1);
        tx.send(1).unwrap();
        let t0 = std::time::Instant::now();
        let deadline = Duration::from_millis(30);
        match tx.send_timeout(2, deadline) {
            Err(SendTimeoutError::Timeout(2)) => {}
            other => panic!("expected timeout, got {other:?}"),
        }
        assert!(
            t0.elapsed() >= deadline,
            "send_timeout returned before its deadline"
        );
    }

    #[test]
    fn recv_timeout_sees_disconnect_mid_wait() {
        let (tx, rx) = unbounded::<u8>();
        let dropper = thread::spawn(move || {
            thread::sleep(Duration::from_millis(10));
            drop(tx);
        });
        // The blocked receiver must wake on disconnection well before the
        // deadline, not sleep it out.
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5)),
            Err(RecvTimeoutError::Disconnected)
        );
        dropper.join().unwrap();
    }

    #[test]
    fn contended_receivers_all_make_progress() {
        // Fairness in the weak-but-required sense: with a steady message
        // supply, every cloned receiver gets messages — no clone is starved
        // forever by its siblings.
        let (tx, rx) = bounded(2);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut count = 0u32;
                    while rx.recv().is_ok() {
                        count += 1;
                        thread::yield_now();
                    }
                    count
                })
            })
            .collect();
        drop(rx);
        for i in 0..600 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let counts: Vec<u32> = consumers.into_iter().map(|c| c.join().unwrap()).collect();
        assert_eq!(counts.iter().sum::<u32>(), 600);
        assert!(
            counts.iter().all(|&c| c > 0),
            "a receiver was starved: {counts:?}"
        );
    }
}
