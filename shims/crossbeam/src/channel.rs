//! MPMC channels with the `crossbeam-channel` API.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Sending on a disconnected channel (all receivers dropped).
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Outcome of a timed send.
pub enum SendTimeoutError<T> {
    /// The channel stayed full for the whole timeout; the message is
    /// returned.
    Timeout(T),
    /// All receivers are gone; the message is returned.
    Disconnected(T),
}

impl<T> fmt::Debug for SendTimeoutError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendTimeoutError::Timeout(_) => f.write_str("Timeout(..)"),
            SendTimeoutError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

/// Receiving from an empty, disconnected channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Outcome of a non-blocking receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

/// Outcome of a timed receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

struct State<T> {
    queue: VecDeque<T>,
    /// `None` = unbounded.
    capacity: Option<usize>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Shared<T> {
    fn new(capacity: Option<usize>) -> Arc<Self> {
        Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                capacity,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        })
    }
}

/// The sending half; cheap to clone.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half; cheap to clone (MPMC).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a channel of unlimited capacity.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Shared::new(None);
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

/// Creates a channel holding at most `cap` messages.
///
/// Zero-capacity rendezvous channels are not supported by this stand-in; the
/// workspace's buffer capacities are validated to be at least 1.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap > 0, "rendezvous (zero-capacity) channels unsupported");
    let shared = Shared::new(Some(cap));
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Blocks until the message is enqueued or every receiver is gone.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.state.lock().expect("channel lock");
        loop {
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            let full = state.capacity.is_some_and(|cap| state.queue.len() >= cap);
            if !full {
                state.queue.push_back(msg);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            state = self.shared.not_full.wait(state).expect("channel lock");
        }
    }

    /// Blocks for at most `timeout`, returning the message on failure.
    pub fn send_timeout(&self, msg: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.state.lock().expect("channel lock");
        loop {
            if state.receivers == 0 {
                return Err(SendTimeoutError::Disconnected(msg));
            }
            let full = state.capacity.is_some_and(|cap| state.queue.len() >= cap);
            if !full {
                state.queue.push_back(msg);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(SendTimeoutError::Timeout(msg));
            }
            let (guard, _timed_out) = self
                .shared
                .not_full
                .wait_timeout(state, deadline - now)
                .expect("channel lock");
            state = guard;
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().expect("channel lock").senders += 1;
        Sender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("channel lock");
        state.senders -= 1;
        if state.senders == 0 {
            // Wake receivers so they observe the disconnect.
            drop(state);
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or the channel is empty with every
    /// sender gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.state.lock().expect("channel lock");
        loop {
            if let Some(msg) = state.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.shared.not_empty.wait(state).expect("channel lock");
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.state.lock().expect("channel lock");
        if let Some(msg) = state.queue.pop_front() {
            self.shared.not_full.notify_one();
            return Ok(msg);
        }
        if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Blocks for at most `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.state.lock().expect("channel lock");
        loop {
            if let Some(msg) = state.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _timed_out) = self
                .shared
                .not_empty
                .wait_timeout(state, deadline - now)
                .expect("channel lock");
            state = guard;
        }
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.state.lock().expect("channel lock").queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().expect("channel lock").receivers += 1;
        Receiver {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("channel lock");
        state.receivers -= 1;
        if state.receivers == 0 {
            // Wake blocked senders so they observe the disconnect.
            drop(state);
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn unbounded_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_after_drain() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        drop(tx);
        // Queued messages survive sender disconnection.
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn bounded_backpressure_and_timeout() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        match tx.send_timeout(2, Duration::from_millis(5)) {
            Err(SendTimeoutError::Timeout(2)) => {}
            other => panic!("expected timeout, got {other:?}"),
        }
        assert_eq!(rx.recv(), Ok(1));
        tx.send_timeout(2, Duration::from_millis(5)).unwrap();
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn recv_timeout_expires() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn mpmc_all_messages_arrive_once() {
        let (tx, rx) = bounded(4);
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..100 {
                        tx.send(p * 100 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let expected: Vec<i32> = (0..4)
            .flat_map(|p| (0..100).map(move |i| p * 100 + i))
            .collect();
        assert_eq!(all, expected);
    }
}
