//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the `crossbeam::channel` slice the workspace uses: MPMC
//! bounded/unbounded channels with cloneable senders *and* receivers,
//! blocking, timed, and non-blocking operations, and crossbeam's
//! disconnection semantics (a channel disconnects when all handles on the
//! other side drop; queued messages remain receivable after the senders are
//! gone). Built on `std::sync::{Mutex, Condvar}` — slower than the real
//! lock-free implementation but semantically equivalent for the pipeline.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
pub mod channel;
