//! Offline stand-in for the `rand` crate.
//!
//! Deterministic pseudo-random generation for the data generators and tests:
//! a xoshiro256++ [`rngs::StdRng`] seeded via SplitMix64, and the
//! [`Rng`]/[`SeedableRng`] trait surface the workspace uses (`gen`,
//! `gen_range` over integer ranges, `gen_bool`). The streams differ from the
//! real `rand` crate's — all consumers derive expectations from the generated
//! data rather than hard-coding values.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
use std::ops::{Range, RangeInclusive};

/// Low-level entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value from a (half-open or inclusive) range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_uniform(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution of the real crate).
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    fn sample_uniform<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_uniform<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = rng.next_u64() as u128 % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_uniform<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = rng.next_u64() as u128 % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — deterministic, fast, and good enough for data
    /// generation and randomized tests.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per the xoshiro authors' recommendation.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(-400i64..400);
            assert!((-400..400).contains(&v));
            let u = r.gen_range(0u32..(1 << 31));
            assert!(u < 1 << 31);
            let w = r.gen_range(0..=60i64);
            assert!((0..=60).contains(&w));
            let x = r.gen_range(3usize..4);
            assert_eq!(x, 3);
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..2000).filter(|_| r.gen_bool(0.5)).count();
        assert!((800..1200).contains(&hits), "{hits}");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
