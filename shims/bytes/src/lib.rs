//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] is an immutable, cheaply cloneable byte buffer backed by
//! `Arc<[u8]>`. Clones share the allocation, which is the property the text
//! pipeline relies on when fanning a raw chunk out to multiple workers.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Immutable shared byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer (no allocation shared with anything).
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies `data` into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes {
            data: v.as_bytes().into(),
        }
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes {
            data: v.into_bytes().into(),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.data.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &*self.data == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &*self.data == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.as_ref().as_ptr(), b.as_ref().as_ptr()));
    }

    #[test]
    fn deref_to_slice() {
        let b = Bytes::from("abc");
        assert_eq!(&b[..], b"abc");
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
    }
}
