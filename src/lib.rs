//! # scanraw-repro — umbrella crate
//!
//! Reproduction of *"Parallel In-Situ Data Processing with Speculative
//! Loading"* (Cheng & Rusu, SIGMOD 2014). This crate re-exports the public
//! API of every workspace member so examples and downstream users can depend
//! on a single crate:
//!
//! * [`types`] — schemas, values, chunks, configuration;
//! * [`simio`] — the simulated storage device;
//! * [`rawfile`] — chunker, TOKENIZE/PARSE stages, CSV/SAM/BAM-sim formats,
//!   data generators;
//! * [`storage`] — the columnar database (catalog + column store);
//! * [`core`] — the ScanRaw operator itself (pipeline, scheduler, cache,
//!   speculative loading);
//! * [`engine`] — the query execution engine;
//! * [`pipesim`] — the discrete-event pipeline simulator used by the
//!   paper-scale experiments.
//!
//! ## Quick start
//!
//! ```
//! use scanraw_repro::prelude::*;
//!
//! // A device with instant I/O (tests); use DiskConfig::default() for the
//! // paper's throttled 436 MB/s device.
//! let disk = SimDisk::instant();
//! scanraw_repro::rawfile::generate::stage_csv(&disk, "t.csv", &CsvSpec::new(1000, 4, 1));
//!
//! // A Session wraps the engine, the database, and table registration.
//! let session = Session::open(disk);
//! session
//!     .register_table("t", "t.csv", Schema::uniform_ints(4), TextDialect::CSV,
//!                     ScanRawConfig::default().with_chunk_rows(100))
//!     .unwrap();
//!
//! // SELECT SUM(c0+c1+c2+c3) FROM t — instantly, no loading required;
//! // speculative loading stores chunks whenever the device would idle, and
//! // delivered chunks are evaluated in parallel on the conversion workers.
//! let out = session
//!     .run(ExecRequest::query(Query::sum_of_columns("t", 0..4)))
//!     .unwrap()
//!     .into_single();
//! assert_eq!(out.result.rows_scanned, 1000);
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
pub use scanraw as core;
pub use scanraw_engine as engine;
pub use scanraw_obs as obs;
pub use scanraw_pipesim as pipesim;
pub use scanraw_rawfile as rawfile;
pub use scanraw_simio as simio;
pub use scanraw_storage as storage;
pub use scanraw_types as types;

/// The most common imports in one place.
pub mod prelude {
    pub use scanraw::{
        ColumnHeat, ConvertScope, OperatorRegistry, ScanRaw, ScanRequest, ScanSummary,
    };
    pub use scanraw_engine::{
        AggExpr, AnalyzeReport, Col, Engine, ExecMode, ExecOutcome, ExecRequest, Expr, Predicate,
        Query, QueryBuilder, QueryOutcome, ServeConfig, ServeCounters, Server, Session,
        SharedOutcome, TenantId, Ticket,
    };
    pub use scanraw_obs::{Obs, ObsEvent, QueryTrace, SpanRecord, TraceId};
    pub use scanraw_rawfile::generate::CsvSpec;
    pub use scanraw_rawfile::TextDialect;
    pub use scanraw_simio::{DiskConfig, SimDisk};
    pub use scanraw_storage::Database;
    pub use scanraw_types::{
        DataType, Field, RangePredicate, ScanRawConfig, Schema, Value, WritePolicy,
    };
}
