//! The Figure 8 experiment in miniature, on the real operator: run the same
//! query repeatedly under four loading strategies and watch where chunks
//! come from and how the database fills up.
//!
//! ```sh
//! cargo run --release --example query_sequence
//! ```

use scanraw_repro::prelude::*;
use scanraw_repro::rawfile::generate::{stage_csv, CsvSpec};

fn run_sequence(policy: WritePolicy, queries: usize) {
    let disk = SimDisk::instant();
    let spec = CsvSpec::new(64_000, 8, 33);
    stage_csv(&disk, "t.csv", &spec);
    let session = Session::open(disk);
    session
        .register_table(
            "t",
            "t.csv",
            Schema::uniform_ints(8),
            TextDialect::CSV,
            ScanRawConfig::default()
                .with_chunk_rows(4_000) // 16 chunks
                .with_cache_chunks(4) // cache holds 1/4 of the file
                .with_workers(2)
                .with_policy(policy),
        )
        .expect("register");

    println!("\n--- {} ---", policy.label());
    println!("query   cache  db  raw  skipped  loaded-after");
    let q = Query::sum_of_columns("t", 0..8);
    for i in 1..=queries {
        let out = session
            .run(ExecRequest::query(q.clone()))
            .expect("query")
            .into_single();
        let op = session.engine().operator("t").expect("operator");
        op.drain_writes();
        println!(
            "{:>5}   {:>5} {:>3} {:>4}  {:>7}  {:>6} chunks{}",
            i,
            out.scan.from_cache,
            out.scan.from_db,
            out.scan.from_raw,
            out.scan.skipped,
            op.chunks_written(),
            if op.fully_loaded() {
                "  (fully loaded)"
            } else {
                ""
            },
        );
    }
}

fn main() {
    for policy in [
        WritePolicy::ExternalTables,
        WritePolicy::Eager,
        WritePolicy::Buffered,
        WritePolicy::Invisible {
            chunks_per_query: 3,
        },
        WritePolicy::speculative(),
    ] {
        run_sequence(policy, 6);
    }
    println!(
        "\nSpeculative loading pays nothing on query 1, makes guaranteed progress\n\
         every query (safeguard flush), and converges to database-only reads."
    );
}
