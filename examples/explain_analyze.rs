//! EXPLAIN ANALYZE over a cold and a warm scan: per-stage durations, chunk
//! sources, speculative-loading progress, and the JSON export.
//!
//! ```text
//! cargo run --release --example explain_analyze
//! ```

use scanraw_repro::prelude::*;

fn main() -> Result<(), scanraw_repro::types::Error> {
    let disk = SimDisk::instant();
    scanraw_repro::rawfile::generate::stage_csv(&disk, "t.csv", &CsvSpec::new(4_000, 4, 1));
    let session = Session::open(disk);
    session.register_table(
        "t",
        "t.csv",
        Schema::uniform_ints(4),
        TextDialect::CSV,
        ScanRawConfig::default()
            .with_chunk_rows(500)
            .with_policy(WritePolicy::speculative()),
    )?;

    let query = Query::sum_of_columns("t", 0..4);
    for run in ["cold", "warm"] {
        let report = session.explain_analyze(&query)?;
        println!("-- {run} run --");
        for (stage, t) in &report.stage_durations {
            println!("{stage:>9}: {t:?}");
        }
        println!(
            "sources: {} cache / {} db / {} raw; speculative {} + safeguard {}; hit rate {:?}",
            report.outcome.scan.from_cache,
            report.outcome.scan.from_db,
            report.outcome.scan.from_raw,
            report.speculative_chunks_written,
            report.safeguard_chunks_written,
            report.cache_hit_rate,
        );
    }

    // The final report as one JSON document.
    let report = session.explain_analyze(&query)?;
    println!("{}", report.to_json().to_json_pretty());
    Ok(())
}
