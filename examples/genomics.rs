//! The paper's motivating genomic workload (§1, §5.2): compute the
//! distribution of the CIGAR field across reads matching a sequence pattern
//! at positions in a range — a group-by aggregate with a pattern predicate —
//! over SAM text and over the BAM-like binary container.
//!
//! ```sh
//! cargo run --release --example genomics
//! ```

use scanraw_repro::engine::bamscan::execute_over_bam;
use scanraw_repro::prelude::*;
use scanraw_repro::rawfile::bamsim::stage_bam;
use scanraw_repro::rawfile::sam::{field, sam_schema, stage_sam, SamSpec};

fn main() {
    let disk = SimDisk::instant();

    // Synthetic stand-in for a 1000 Genomes alignment file.
    let spec = SamSpec {
        reads: 50_000,
        seed: 7,
        read_len: 100,
        ref_len: 50_000_000,
    };
    let (reads, sam_len) = stage_sam(&disk, "na12878.sam", &spec);
    let bam_len = stage_bam(&disk, "na12878.bam", &reads);
    println!(
        "staged {} reads: SAM {:.1} MB, BAM-sim {:.1} MB ({:.0}% of text)",
        reads.len(),
        sam_len as f64 / 1e6,
        bam_len as f64 / 1e6,
        100.0 * bam_len as f64 / sam_len as f64
    );

    // The variant-identification query: CIGAR distribution of reads whose
    // sequence contains a motif, restricted to a genomic region.
    let query = Query {
        table: "reads".into(),
        filter: Some(Predicate::And(
            Box::new(Predicate::like(field::SEQ, "%ACGTAC%")),
            Box::new(Predicate::between(field::POS, 1i64, 25_000_000i64)),
        )),
        group_by: vec![Col(field::CIGAR)],
        aggregates: vec![AggExpr::count()],
        pushdown: false,
        projection: None,
    };

    // Path 1: SQL over the SAM text file through ScanRaw.
    let session = Session::open(disk.clone());
    session
        .register_table(
            "reads",
            "na12878.sam",
            sam_schema(),
            TextDialect::TSV,
            ScanRawConfig::default()
                .with_chunk_rows(8_192)
                .with_workers(4)
                .with_policy(WritePolicy::speculative()),
        )
        .expect("register");
    let via_sam = session
        .run(ExecRequest::query(query.clone()))
        .expect("sam query")
        .into_single();

    // Path 2: the sequential access library over the binary container
    // (the "BAMTools" route — only MAP runs inside ScanRaw).
    let via_bam = execute_over_bam(&disk, "na12878.bam", &query).expect("bam query");

    assert_eq!(via_sam.result.rows, via_bam.rows, "paths must agree");
    println!(
        "{} reads match the pattern; {} distinct CIGAR values",
        via_sam.result.rows_scanned,
        via_sam.result.rows.len()
    );
    let mut top: Vec<_> = via_sam.result.rows.iter().collect();
    top.sort_by_key(|r| std::cmp::Reverse(r.aggregates[0].as_i64().unwrap_or(0)));
    println!("top CIGAR patterns:");
    for row in top.iter().take(5) {
        println!("  {:>12}  {}", row.keys[0].to_string(), row.aggregates[0]);
    }
    println!(
        "SAM path: {} chunks converted, {} queued for loading",
        via_sam.scan.from_raw, via_sam.scan.writes_queued
    );
}
