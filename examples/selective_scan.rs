//! Selective tokenizing/parsing and statistics-driven chunk skipping — the
//! READ-side optimizations of paper §2 and §3.2.1, on the real operator.
//!
//! ```sh
//! cargo run --release --example selective_scan
//! ```

use scanraw_repro::prelude::*;

fn main() {
    let disk = SimDisk::instant();

    // A file whose first column is ordered by chunk: chunk i holds values in
    // [i*10_000, i*10_000 + rows) — the clustered layout that makes min/max
    // chunk statistics effective.
    let chunks = 16u32;
    let rows_per_chunk = 5_000i64;
    let mut text = String::new();
    for c in 0..chunks as i64 {
        for r in 0..rows_per_chunk {
            let key = c * 10_000 + r;
            text.push_str(&format!("{key},{},{},{}\n", key % 97, key % 101, key % 7));
        }
    }
    disk.storage().put("ordered.csv", text.into_bytes());

    let session = Session::open(disk);
    session
        .register_table(
            "ordered",
            "ordered.csv",
            Schema::uniform_ints(4),
            TextDialect::CSV,
            ScanRawConfig::default()
                .with_chunk_rows(rows_per_chunk as u32)
                .with_workers(2),
        )
        .expect("register");

    // Query 1: full scan — converts everything, gathers per-chunk min/max
    // statistics as a side effect of conversion (§3.3).
    let full = Query::sum_of_columns("ordered", [0, 1, 2, 3]);
    let out = session
        .run(ExecRequest::query(full))
        .expect("full scan")
        .into_single();
    println!(
        "full scan: {} rows, {} chunks from raw (statistics collected)",
        out.result.rows_scanned, out.scan.from_raw
    );

    // Query 2: a narrow range over the clustered column — the scan consults
    // the catalog statistics and skips chunks that cannot match.
    let narrow = Query::sum_of_columns("ordered", [0, 3])
        .with_filter(Predicate::between(0, 30_000i64, 30_999i64));
    let out = session
        .run(ExecRequest::query(narrow))
        .expect("narrow scan")
        .into_single();
    println!(
        "narrow scan: {} rows matched, {} chunks skipped via min/max metadata, {} delivered",
        out.result.rows_scanned, out.scan.skipped, out.scan.chunks_delivered
    );
    assert_eq!(out.scan.skipped as u32, chunks - 1);

    // Direct operator use: the low-level engine behind the session exposes
    // the ScanRequest API.
    let op = session.engine().operator("ordered").expect("operator");
    let stream = op
        .scan(
            ScanRequest::projected(vec![0]) // parse only column 0
                .with_skip_predicate(RangePredicate::between(
                    0,
                    Value::Int(50_000),
                    Value::Int(50_999),
                )),
        )
        .expect("scan");
    let summary = stream.finish().expect("finish");
    println!(
        "projected scan of one column: {} chunk(s) touched, {} skipped",
        summary.chunks_delivered, summary.skipped
    );
}
