//! Quickstart: query a raw CSV file in place, watch speculative loading
//! store it into the database as a side effect of querying.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use scanraw_repro::prelude::*;
use scanraw_repro::rawfile::generate::{stage_csv, CsvSpec};

fn main() {
    // A simulated device with the paper's storage characteristics
    // (436 MB/s, page-cache model, read/write arbitration).
    let disk = SimDisk::new(
        DiskConfig::default(),
        scanraw_repro::simio::RealClock::shared(),
    );

    // Stage a synthetic raw file: 200k rows × 8 integer columns (~17 MB).
    let spec = CsvSpec::new(200_000, 8, 2024);
    let bytes = stage_csv(&disk, "events.csv", &spec);
    println!("staged events.csv: {:.1} MB raw text", bytes as f64 / 1e6);

    // Register the file as a table. ScanRaw attaches to the file, not to a
    // query: the operator (cache, learned layout, write thread) persists.
    let session = Session::open(disk);
    session
        .register_table(
            "events",
            "events.csv",
            Schema::uniform_ints(8),
            TextDialect::CSV,
            ScanRawConfig::default()
                .with_chunk_rows(20_000)
                .with_workers(4)
                .with_policy(WritePolicy::speculative()),
        )
        .expect("register table");

    // Query instantly — no loading step. The paper's micro-benchmark:
    // SELECT SUM(c0 + … + c7) FROM events.
    let query = Query::sum_of_columns("events", 0..8);
    for i in 1..=4 {
        let out = session
            .run(ExecRequest::query(query.clone()))
            .expect("query")
            .into_single();
        let op = session.engine().operator("events").expect("operator");
        op.drain_writes(); // let the speculative tail finish for reporting
        println!(
            "query {i}: sum={} in {:?} — chunks: {} cache / {} db / {} raw; {} loaded so far",
            out.result.scalar().expect("one row"),
            out.result.elapsed,
            out.scan.from_cache,
            out.scan.from_db,
            out.scan.from_raw,
            op.chunks_written(),
        );
    }

    let op = session.engine().operator("events").expect("operator");
    println!(
        "fully loaded: {} — ScanRaw has morphed into a heap scan",
        op.fully_loaded()
    );
}
