//! Multi-query processing over raw files — the paper's §7 future work,
//! implemented as shared-scan batch execution: several queries answered
//! from a single pass over the raw file.
//!
//! ```sh
//! cargo run --release --example multi_query
//! ```

use scanraw_repro::prelude::*;
use scanraw_repro::rawfile::generate::{stage_csv, CsvSpec};
use scanraw_repro::simio::AccessKind;

fn main() {
    let disk = SimDisk::instant();
    let spec = CsvSpec::new(100_000, 6, 77);
    let file_len = stage_csv(&disk, "metrics.csv", &spec);
    let session = Session::open(disk.clone());
    session
        .register_table(
            "metrics",
            "metrics.csv",
            Schema::uniform_ints(6),
            TextDialect::CSV,
            ScanRawConfig::default()
                .with_chunk_rows(10_000)
                .with_workers(4)
                .with_policy(WritePolicy::speculative()),
        )
        .expect("register");

    // Three analysts, three questions, one file.
    let queries = vec![
        Query::sum_of_columns("metrics", 0..6),
        Query {
            table: "metrics".into(),
            filter: Some(Predicate::between(0, 0i64, 1i64 << 29)),
            group_by: vec![],
            aggregates: vec![AggExpr::count(), AggExpr::avg(Expr::col(1))],
            pushdown: false,
            projection: None,
        },
        Query {
            table: "metrics".into(),
            filter: None,
            group_by: vec![],
            aggregates: vec![AggExpr::min(Expr::col(2)), AggExpr::max(Expr::col(2))],
            pushdown: false,
            projection: None,
        },
    ];

    let before = disk.stats().bytes(AccessKind::Read);
    let outcomes = session
        .run(ExecRequest::batch(queries))
        .expect("shared batch")
        .outcomes;
    let read = disk.stats().bytes(AccessKind::Read) - before;

    println!(
        "answered {} queries with one scan: {:.1} MB file, {:.1} MB read from the device",
        outcomes.len(),
        file_len as f64 / 1e6,
        read as f64 / 1e6
    );
    for (i, o) in outcomes.iter().enumerate() {
        let aggs: Vec<String> = o.result.rows[0]
            .aggregates
            .iter()
            .map(|v| v.to_string())
            .collect();
        // Each duration runs from the query attaching to the shared
        // pipeline to its own fold finishing — not from the batch start.
        println!(
            "  q{}: [{}] over {} matching rows in {:?}",
            i + 1,
            aggs.join(", "),
            o.result.rows_scanned,
            o.result.elapsed
        );
    }
    println!(
        "scan sources: {} cache / {} db / {} raw; {} loads queued by speculation",
        outcomes[0].scan.from_cache,
        outcomes[0].scan.from_db,
        outcomes[0].scan.from_raw,
        outcomes[0].scan.writes_queued
    );
}
