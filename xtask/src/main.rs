//! Workspace automation: `cargo xtask <task>`.
//!
//! Tasks:
//! - `lint` — run the scanraw-lint concurrency analyzer over the workspace
//!   and exit non-zero on any unsilenced finding.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // xtask/ sits directly under the workspace root.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().map(PathBuf::from).unwrap_or(manifest)
}

fn task_lint() -> ExitCode {
    let root = workspace_root();
    let findings = match scanraw_lint::run(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("xtask lint: failed to read workspace sources: {e}");
            return ExitCode::FAILURE;
        }
    };
    if findings.is_empty() {
        println!("xtask lint: clean (rules L001-L006, 0 findings)");
        return ExitCode::SUCCESS;
    }
    for f in &findings {
        println!("{f}");
    }
    let mut by_rule: Vec<(&str, usize)> = Vec::new();
    for f in &findings {
        match by_rule.iter_mut().find(|(id, _)| *id == f.rule.id()) {
            Some((_, n)) => *n += 1,
            None => by_rule.push((f.rule.id(), 1)),
        }
    }
    let summary: Vec<String> = by_rule.iter().map(|(id, n)| format!("{id}: {n}")).collect();
    eprintln!(
        "xtask lint: {} finding(s) ({}); silence false positives with `// lint-ok: <RULE> <reason>`",
        findings.len(),
        summary.join(", ")
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let task = std::env::args().nth(1).unwrap_or_default();
    match task.as_str() {
        "lint" => task_lint(),
        "" => {
            eprintln!("usage: cargo xtask <task>\n\ntasks:\n  lint    run the concurrency lint catalog (L001-L006)");
            ExitCode::FAILURE
        }
        other => {
            eprintln!("xtask: unknown task `{other}` (available: lint)");
            ExitCode::FAILURE
        }
    }
}
