//! Workspace automation: `cargo xtask <task>`.
//!
//! Tasks:
//! - `lint` — run the scanraw-lint analyzer (rules L001–L018) over the
//!   workspace and exit non-zero on any unsilenced, unbaselined finding.
//! - `bench` — build and run the PR5 serial-vs-parallel benchmark and the
//!   PR10 column-granularity benchmark, writing `BENCH_PR5.json` and
//!   `BENCH_PR10.json` at the workspace root. Pass `--smoke` for the small
//!   CI-sized configuration; other arguments are forwarded to the binaries.
//! - `trace` — run a seeded traced workload and export its validated span
//!   tree as Chrome trace-event JSON (`scanraw.trace.json`, loadable in
//!   Perfetto / `about://tracing`) plus a folded-stack flamegraph file
//!   (`scanraw.folded`). Pass `--smoke` for the small CI configuration.
//!
//! `lint` options:
//! - `--format text|json|sarif|github|callgraph|effects` — output format
//!   (default `text`; `callgraph` prints the resolved call graph as DOT,
//!   `effects` the effect-annotated call graph as DOT)
//! - `--output <path>` — additionally write the JSON report to `<path>`
//! - `--baseline <path>` — baseline file (default `lint-baseline.txt` at the
//!   workspace root when it exists). L011/L012/L016 findings can never be
//!   baselined — fix them or audit the site in source.
//! - `--no-baseline` — ignore any baseline file
//! - `--update-baseline` — rewrite the baseline to accept current findings
//!   (except L011/L012/L016, which are refused)
//! - `--timing` — print the per-phase wall-clock breakdown to stderr
//! - `--budget-ms <n>` — fail when the full analysis (all phases) exceeds
//!   `n` milliseconds; implies `--timing`. CI enforces 2000.
//! - `--explain <RULE>` — print the rule's full documentation and exit

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

use std::path::PathBuf;
use std::process::ExitCode;

use scanraw_lint::output;

const DEFAULT_BASELINE: &str = "lint-baseline.txt";

fn workspace_root() -> PathBuf {
    // xtask/ sits directly under the workspace root.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().map(PathBuf::from).unwrap_or(manifest)
}

struct LintOpts {
    format: String,
    output: Option<PathBuf>,
    baseline: Option<PathBuf>,
    no_baseline: bool,
    update_baseline: bool,
    timing: bool,
    budget_ms: Option<u64>,
    explain: Option<String>,
}

fn parse_lint_opts(args: &[String]) -> Result<LintOpts, String> {
    let mut opts = LintOpts {
        format: "text".to_string(),
        output: None,
        baseline: None,
        no_baseline: false,
        update_baseline: false,
        timing: false,
        budget_ms: None,
        explain: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => {
                let v = it.next().ok_or("--format needs a value")?;
                if !matches!(
                    v.as_str(),
                    "text" | "json" | "sarif" | "github" | "callgraph" | "effects"
                ) {
                    return Err(format!(
                        "unknown format `{v}` (expected text, json, sarif, github, callgraph, \
                         or effects)"
                    ));
                }
                opts.format = v.clone();
            }
            "--output" => {
                opts.output = Some(PathBuf::from(it.next().ok_or("--output needs a path")?))
            }
            "--baseline" => {
                opts.baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a path")?))
            }
            "--no-baseline" => opts.no_baseline = true,
            "--update-baseline" => opts.update_baseline = true,
            "--timing" => opts.timing = true,
            "--budget-ms" => {
                let v = it.next().ok_or("--budget-ms needs a value")?;
                let ms = v
                    .parse::<u64>()
                    .map_err(|_| format!("--budget-ms: `{v}` is not a number"))?;
                opts.budget_ms = Some(ms);
                opts.timing = true;
            }
            "--explain" => {
                opts.explain = Some(it.next().ok_or("--explain needs a rule id")?.clone())
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

/// Rules that may never be baselined: a wait-for cycle, a blocking call
/// under a guard, or un-retried device I/O must be fixed or audited at the
/// site, where the next reader sees the reasoning — not parked in a sidecar
/// file.
const UNBASELINEABLE: &[&str] = &["L011", "L012", "L016"];

fn task_lint(args: &[String]) -> ExitCode {
    let opts = match parse_lint_opts(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(id) = &opts.explain {
        let Some(rule) = scanraw_lint::Rule::from_id(id) else {
            eprintln!("xtask lint: unknown rule `{id}` (expected L001-L018)");
            return ExitCode::FAILURE;
        };
        print!("{}", rule.explain());
        return ExitCode::SUCCESS;
    }
    let root = workspace_root();
    let report = match scanraw_lint::run_report(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask lint: failed to read workspace sources: {e}");
            return ExitCode::FAILURE;
        }
    };
    if opts.timing {
        let total: std::time::Duration = report.timing.iter().map(|p| p.duration).sum();
        for p in &report.timing {
            eprintln!("xtask lint: phase {:<12} {:>8.2?}", p.name, p.duration);
        }
        eprintln!("xtask lint: phase {:<12} {:>8.2?}", "total", total);
        if let Some(ms) = opts.budget_ms {
            let budget = std::time::Duration::from_millis(ms);
            if total > budget {
                eprintln!(
                    "xtask lint: analysis took {total:.2?}, over the {budget:.2?} budget — \
                     the analyzer's own cost must stay bounded"
                );
                return ExitCode::FAILURE;
            }
            eprintln!("xtask lint: within the {budget:.2?} budget");
        }
    }
    if opts.format == "callgraph" {
        print!("{}", report.callgraph_dot);
        return ExitCode::SUCCESS;
    }
    if opts.format == "effects" {
        print!("{}", report.effects_dot);
        return ExitCode::SUCCESS;
    }
    let findings = report.findings;

    if opts.update_baseline {
        let path = opts
            .baseline
            .clone()
            .unwrap_or_else(|| root.join(DEFAULT_BASELINE));
        let refused: Vec<&scanraw_lint::Finding> = findings
            .iter()
            .filter(|f| UNBASELINEABLE.contains(&f.rule.id()))
            .collect();
        if !refused.is_empty() {
            for f in &refused {
                eprintln!("xtask lint: refusing to baseline {f}");
            }
            eprintln!(
                "xtask lint: {} L011/L012/L016 finding(s) cannot be baselined; fix them or \
                 audit the site with `// unblock-ok:` / `// lint-ok: <RULE> <reason>`",
                refused.len()
            );
            return ExitCode::FAILURE;
        }
        if let Err(e) = std::fs::write(&path, output::write_baseline(&findings)) {
            eprintln!("xtask lint: cannot write baseline {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "xtask lint: baseline updated ({} finding(s) accepted in {})",
            findings.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    // Apply the baseline: explicit path > default file when present > none.
    let baseline_path = if opts.no_baseline {
        None
    } else {
        match opts.baseline {
            Some(p) => Some(p),
            None => {
                let p = root.join(DEFAULT_BASELINE);
                p.is_file().then_some(p)
            }
        }
    };
    let (findings, suppressed, stale) = match &baseline_path {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => {
                let entries = output::parse_baseline(&text);
                let banned: Vec<&output::BaselineEntry> = entries
                    .iter()
                    .filter(|b| UNBASELINEABLE.contains(&b.rule.as_str()))
                    .collect();
                if !banned.is_empty() {
                    for b in &banned {
                        eprintln!(
                            "xtask lint: illegal baseline entry (L011/L012/L016 cannot be \
                             baselined): {} {} {}",
                            b.rule, b.file, b.message
                        );
                    }
                    return ExitCode::FAILURE;
                }
                output::apply_baseline(findings, &entries)
            }
            Err(e) => {
                eprintln!("xtask lint: cannot read baseline {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        },
        None => (findings, 0, Vec::new()),
    };

    if let Some(path) = &opts.output {
        if let Err(e) = std::fs::write(path, output::to_json(&findings)) {
            eprintln!("xtask lint: cannot write report {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }

    match opts.format.as_str() {
        "json" => print!("{}", output::to_json(&findings)),
        "sarif" => print!("{}", output::to_sarif(&findings)),
        "github" => print!("{}", output::to_github(&findings)),
        _ => {
            for f in &findings {
                println!("{f}");
            }
        }
    }

    for b in &stale {
        eprintln!(
            "xtask lint: stale baseline entry (no longer matches anything): {} {} {}",
            b.rule, b.file, b.message
        );
    }

    if findings.is_empty() {
        if opts.format == "text" {
            match suppressed {
                0 => println!("xtask lint: clean (rules L001-L018, 0 findings)"),
                n => println!("xtask lint: clean (rules L001-L018, {n} baselined finding(s))"),
            }
        }
        // Stale baseline entries are an error: the file must only shrink.
        return if stale.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    if opts.format == "text" {
        let mut by_rule: Vec<(&str, usize)> = Vec::new();
        for f in &findings {
            match by_rule.iter_mut().find(|(id, _)| *id == f.rule.id()) {
                Some((_, n)) => *n += 1,
                None => by_rule.push((f.rule.id(), 1)),
            }
        }
        let summary: Vec<String> = by_rule.iter().map(|(id, n)| format!("{id}: {n}")).collect();
        eprintln!(
            "xtask lint: {} finding(s) ({}); silence false positives with `// lint-ok: <RULE> <reason>` or the baseline file",
            findings.len(),
            summary.join(", ")
        );
    }
    ExitCode::FAILURE
}

/// Runs a scanraw-bench binary in release mode, forwarding `args`.
fn run_bench_bin(task: &str, bin: &str, args: &[String]) -> ExitCode {
    let root = workspace_root();
    let mut cmd = std::process::Command::new(env!("CARGO"));
    cmd.current_dir(&root)
        .args([
            "run",
            "--release",
            "-p",
            "scanraw-bench",
            "--bin",
            bin,
            "--",
        ])
        .args(args);
    match cmd.status() {
        Ok(status) if status.success() => ExitCode::SUCCESS,
        Ok(status) => {
            eprintln!("xtask {task}: {bin} exited with {status}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask {task}: failed to spawn cargo: {e}");
            ExitCode::FAILURE
        }
    }
}

fn task_bench(args: &[String]) -> ExitCode {
    let pr5 = run_bench_bin("bench", "pr5", args);
    if pr5 != ExitCode::SUCCESS {
        return pr5;
    }
    run_bench_bin("bench", "pr10", args)
}

fn task_trace(args: &[String]) -> ExitCode {
    run_bench_bin("trace", "trace", args)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => task_lint(&args[1..]),
        Some("bench") => task_bench(&args[1..]),
        Some("trace") => task_trace(&args[1..]),
        None => {
            eprintln!(
                "usage: cargo xtask <task>\n\ntasks:\n  lint    run the static analysis catalog (L001-L018)\n          options: --format text|json|sarif|github|callgraph|effects, --output <path>,\n                   --baseline <path>, --no-baseline, --update-baseline,\n                   --timing, --budget-ms <n>, --explain <RULE>\n  bench   run the PR5 serial-vs-parallel and PR10 column-granularity\n          benchmarks (writes BENCH_PR5.json and BENCH_PR10.json)\n          options: --smoke (small CI configuration)\n  trace   run a seeded traced workload and export its span tree\n          (writes scanraw.trace.json for Perfetto and scanraw.folded)\n          options: --smoke (small CI configuration)"
            );
            ExitCode::FAILURE
        }
        Some(other) => {
            eprintln!("xtask: unknown task `{other}` (available: lint, bench, trace)");
            ExitCode::FAILURE
        }
    }
}
