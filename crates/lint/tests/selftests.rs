//! Seeded-violation self-tests: every semantic rule (L007–L014) must catch
//! a deliberately planted bug in a miniature fixture workspace, end-to-end
//! through the public [`scanraw_lint::lint_workspace`] API. If a rule ever
//! stops firing on its canonical bug, these fail before the real workspace
//! quietly rots.

use scanraw_lint::{lint_workspace, Rule, WorkspaceFiles};

fn ws(
    sources: &[(&str, &str)],
    manifests: &[(&str, &str)],
    docs: &[(&str, &str)],
) -> WorkspaceFiles {
    WorkspaceFiles {
        sources: sources
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect(),
        manifests: manifests
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect(),
        docs: docs
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect(),
    }
}

const CORE_TOML: &str = "[package]\nname = \"scanraw\"\n[features]\nturbo = []\n";

/// A catalog document with one metrics block and one events block.
fn design(metrics: &str, events: &str) -> String {
    format!(
        "# fixture\n\n<!-- lint-catalog:metrics -->\n```text\n{metrics}\n```\n\n<!-- lint-catalog:events -->\n```text\n{events}\n```\n"
    )
}

#[test]
fn l007_catches_planted_wildcard_arm() {
    let fixture = ws(
        &[(
            "crates/core/src/proto.rs",
            r#"
pub enum CtrlMsg { Start, Stop, Tick }

pub fn dispatch(m: &CtrlMsg) -> u32 {
    match m {
        CtrlMsg::Start => 1,
        _ => 0, // planted: swallows Stop and Tick
    }
}
"#,
        )],
        &[("crates/core/Cargo.toml", CORE_TOML)],
        &[],
    );
    let findings = lint_workspace(&fixture);
    let l007: Vec<_> = findings.iter().filter(|f| f.rule == Rule::L007).collect();
    assert_eq!(l007.len(), 1, "{findings:?}");
    assert_eq!(l007[0].file, "crates/core/src/proto.rs");
    assert!(l007[0].message.contains("CtrlMsg"));
    assert!(
        l007[0].message.contains("Stop") && l007[0].message.contains("Tick"),
        "must name the swallowed variants: {}",
        l007[0].message
    );
}

#[test]
fn l008_catches_planted_chunk_leak_on_early_return() {
    let fixture = ws(
        &[(
            "crates/core/src/stage.rs",
            r#"
pub fn forward(buf: &Buffer, out: &Sender) -> Result<(), Error> {
    let chunk = buf.pop();
    let meta = catalog_lookup()?; // planted: error path drops `chunk`
    out.send(chunk, meta);
    Ok(())
}
"#,
        )],
        &[("crates/core/Cargo.toml", CORE_TOML)],
        &[],
    );
    let findings = lint_workspace(&fixture);
    let l008: Vec<_> = findings.iter().filter(|f| f.rule == Rule::L008).collect();
    assert_eq!(l008.len(), 1, "{findings:?}");
    assert!(l008[0].message.contains("chunk"), "{}", l008[0].message);
    assert!(l008[0].message.contains('?'), "{}", l008[0].message);
}

#[test]
fn l009_catches_planted_undeclared_feature() {
    let fixture = ws(
        &[(
            "crates/core/src/lib.rs",
            "#[cfg(feature = \"trubo\")] // planted typo\npub fn fast() {}\n",
        )],
        &[("crates/core/Cargo.toml", CORE_TOML)],
        &[],
    );
    let findings = lint_workspace(&fixture);
    let l009: Vec<_> = findings.iter().filter(|f| f.rule == Rule::L009).collect();
    assert_eq!(l009.len(), 1, "{findings:?}");
    assert!(l009[0].message.contains("trubo"), "{}", l009[0].message);
}

#[test]
fn l009_catches_planted_missing_feature_forward() {
    let engine_toml = "[package]\nname = \"scanraw-engine\"\n[dependencies]\nscanraw = { path = \"../core\" }\n[features]\nturbo = [] # planted: does not forward scanraw/turbo\n";
    let fixture = ws(
        &[],
        &[
            ("crates/core/Cargo.toml", CORE_TOML),
            ("crates/engine/Cargo.toml", engine_toml),
        ],
        &[],
    );
    let findings = lint_workspace(&fixture);
    let l009: Vec<_> = findings.iter().filter(|f| f.rule == Rule::L009).collect();
    assert_eq!(l009.len(), 1, "{findings:?}");
    assert_eq!(l009[0].file, "crates/engine/Cargo.toml");
    assert!(
        l009[0]
            .message
            .contains("not forwarded to dependency `scanraw`"),
        "{}",
        l009[0].message
    );
}

#[test]
fn l009_catches_planted_ungated_use_of_gated_pub_item() {
    let engine_toml = "[package]\nname = \"scanraw-engine\"\n[dependencies]\nscanraw = { path = \"../core\" }\n[features]\nturbo = [\"scanraw/turbo\"]\n";
    let fixture = ws(
        &[
            (
                "crates/core/src/lib.rs",
                "#[cfg(feature = \"turbo\")]\npub fn boost() {}\n",
            ),
            (
                "crates/engine/src/lib.rs",
                "pub fn go() { scanraw::boost(); } // planted: breaks default build\n",
            ),
        ],
        &[
            ("crates/core/Cargo.toml", CORE_TOML),
            ("crates/engine/Cargo.toml", engine_toml),
        ],
        &[],
    );
    let findings = lint_workspace(&fixture);
    let l009: Vec<_> = findings.iter().filter(|f| f.rule == Rule::L009).collect();
    assert_eq!(l009.len(), 1, "{findings:?}");
    assert!(l009[0].message.contains("boost"), "{}", l009[0].message);
    assert!(
        l009[0].message.contains("crates/engine/src/lib.rs"),
        "{}",
        l009[0].message
    );
}

#[test]
fn l010_catches_planted_undocumented_metric() {
    let fixture = ws(
        &[
            (
                "crates/obs/src/journal.rs",
                "pub enum ObsEvent { CacheHit }",
            ),
            (
                "crates/core/src/cache.rs",
                "fn wire(m: &Metrics) { m.counter(\"cache.chunk.bogus\").inc(); } // planted",
            ),
        ],
        &[
            ("crates/core/Cargo.toml", CORE_TOML),
            (
                "crates/obs/Cargo.toml",
                "[package]\nname = \"scanraw-obs\"\n",
            ),
        ],
        &[("DESIGN.md", &design("cache.chunk.hit", "CacheHit"))],
    );
    let findings = lint_workspace(&fixture);
    let l010: Vec<_> = findings.iter().filter(|f| f.rule == Rule::L010).collect();
    // Planted metric is undocumented AND the cataloged one is now unused.
    assert_eq!(l010.len(), 2, "{findings:?}");
    assert!(l010
        .iter()
        .any(|f| f.file == "crates/core/src/cache.rs" && f.message.contains("cache.chunk.bogus")));
    assert!(l010
        .iter()
        .any(|f| f.file == "DESIGN.md" && f.message.contains("cache.chunk.hit")));
}

#[test]
fn l010_catches_planted_uncataloged_event() {
    let fixture = ws(
        &[
            (
                "crates/obs/src/journal.rs",
                "pub enum ObsEvent { CacheHit, ChunkSkipped }",
            ),
            (
                "crates/core/src/sched.rs",
                "fn f(j: &Journal) { j.record(ObsEvent::ChunkSkipped); } // planted: not cataloged",
            ),
        ],
        &[
            ("crates/core/Cargo.toml", CORE_TOML),
            (
                "crates/obs/Cargo.toml",
                "[package]\nname = \"scanraw-obs\"\n",
            ),
        ],
        &[("DESIGN.md", &design("", "CacheHit"))],
    );
    let findings = lint_workspace(&fixture);
    let l010: Vec<_> = findings.iter().filter(|f| f.rule == Rule::L010).collect();
    // Use site + definition site both flagged.
    assert_eq!(l010.len(), 2, "{findings:?}");
    assert!(l010.iter().all(|f| f.message.contains("ChunkSkipped")));
}

#[test]
fn clean_fixture_stays_clean() {
    // The inverse control: a fixture with none of the planted bugs produces
    // zero findings, so the self-tests above isolate exactly one cause each.
    let engine_toml = "[package]\nname = \"scanraw-engine\"\n[dependencies]\nscanraw = { path = \"../core\" }\n[features]\nturbo = [\"scanraw/turbo\"]\n";
    let fixture = ws(
        &[
            (
                "crates/core/src/proto.rs",
                r#"
pub enum CtrlMsg { Start, Stop }
pub fn dispatch(m: &CtrlMsg) -> u32 {
    match m {
        CtrlMsg::Start => 1,
        CtrlMsg::Stop => 0,
    }
}
fn forward(buf: &Buffer, out: &Sender) -> Result<(), Error> {
    let chunk = buf.pop();
    out.send(chunk);
    Ok(())
}
"#,
            ),
            (
                "crates/obs/src/journal.rs",
                "pub enum ObsEvent { CacheHit }",
            ),
            (
                "crates/core/src/cache.rs",
                "fn wire(m: &Metrics, j: &Journal) { m.counter(\"cache.chunk.hit\").inc(); j.record(ObsEvent::CacheHit); }",
            ),
        ],
        &[
            ("crates/core/Cargo.toml", CORE_TOML),
            ("crates/engine/Cargo.toml", engine_toml),
            ("crates/obs/Cargo.toml", "[package]\nname = \"scanraw-obs\"\n"),
        ],
        &[(
            "DESIGN.md",
            &design_with_effects("cache.chunk.hit", "CacheHit", "crates/core:\ncrates/obs:"),
        )],
    );
    let findings = lint_workspace(&fixture);
    assert!(findings.is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------------------
// L011: wait-for cycles through channels and condvars
// ---------------------------------------------------------------------------

#[test]
fn l011_catches_lock_channel_cycle() {
    let fixture = ws(
        &[(
            "crates/core/src/pump.rs",
            r#"fn consumer(state: &Mutex<u32>, work_rx: &Receiver<u32>) {
    let g = state.lock();
    let v = work_rx.recv(); // lint-ok: L004 fixture
    drop(v);
    drop(g);
}

fn producer(state: &Mutex<u32>, work_tx: &Sender<u32>) {
    let g = state.lock();
    work_tx.send(1); // lint-ok: L004 fixture
    drop(g);
}
"#,
        )],
        &[("crates/core/Cargo.toml", CORE_TOML)],
        &[],
    );
    let findings = lint_workspace(&fixture);
    let l011: Vec<_> = findings.iter().filter(|f| f.rule == Rule::L011).collect();
    assert_eq!(l011.len(), 1, "{findings:?}");
    assert!(l011[0].message.contains("cycle"), "{}", l011[0].message);
}

#[test]
fn l011_catches_condvar_cycle() {
    let fixture = ws(
        &[(
            "crates/core/src/gate.rs",
            r#"fn waiter(outer: &Mutex<u32>, inner: &Mutex<u32>, ready: &Condvar) {
    let g = outer.lock();
    let slot = inner.lock();
    let slot = ready.wait(slot);
    drop(slot);
    drop(g);
}

fn notifier(outer: &Mutex<u32>, ready: &Condvar) {
    let g = outer.lock();
    ready.notify_one();
    drop(g);
}
"#,
        )],
        &[("crates/core/Cargo.toml", CORE_TOML)],
        &[],
    );
    let findings = lint_workspace(&fixture);
    let l011: Vec<_> = findings.iter().filter(|f| f.rule == Rule::L011).collect();
    assert_eq!(l011.len(), 1, "{findings:?}");
    assert!(l011[0].message.contains("ready"), "{}", l011[0].message);
}

#[test]
fn l011_clean_when_producer_sends_outside_lock() {
    let fixture = ws(
        &[(
            "crates/core/src/pump.rs",
            r#"fn consumer(state: &Mutex<u32>, work_rx: &Receiver<u32>) {
    let g = state.lock();
    let v = work_rx.recv(); // lint-ok: L004 fixture
    drop(v);
    drop(g);
}

fn producer(state: &Mutex<u32>, work_tx: &Sender<u32>) {
    let g = state.lock();
    drop(g);
    work_tx.send(1);
}
"#,
        )],
        &[("crates/core/Cargo.toml", CORE_TOML)],
        &[],
    );
    let findings = lint_workspace(&fixture);
    let l011: Vec<_> = findings.iter().filter(|f| f.rule == Rule::L011).collect();
    assert!(l011.is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------------------
// L012: blocking call reachable while a lock guard is held
// ---------------------------------------------------------------------------

#[test]
fn l012_catches_recv_one_call_deep_under_guard() {
    let fixture = ws(
        &[(
            "crates/core/src/drainer.rs",
            r#"fn drain(state: &Mutex<u32>, done_rx: &Receiver<u32>) {
    let g = state.lock();
    wait_done(done_rx);
    drop(g);
}

fn wait_done(done_rx: &Receiver<u32>) {
    let v = done_rx.recv();
    drop(v);
}
"#,
        )],
        &[("crates/core/Cargo.toml", CORE_TOML)],
        &[],
    );
    let findings = lint_workspace(&fixture);
    let l012: Vec<_> = findings.iter().filter(|f| f.rule == Rule::L012).collect();
    assert_eq!(l012.len(), 1, "{findings:?}");
    assert!(l012[0].message.contains("recv"), "{}", l012[0].message);
}

#[test]
fn l012_catches_sleep_two_calls_deep_under_guard() {
    let fixture = ws(
        &[(
            "crates/core/src/retry.rs",
            r#"fn flush(state: &Mutex<u32>) {
    let g = state.lock();
    step(1);
    drop(g);
}

fn step(n: u32) {
    pause(n);
}

fn pause(n: u32) {
    thread::sleep(Duration::from_millis(n as u64));
}
"#,
        )],
        &[("crates/core/Cargo.toml", CORE_TOML)],
        &[],
    );
    let findings = lint_workspace(&fixture);
    let l012: Vec<_> = findings.iter().filter(|f| f.rule == Rule::L012).collect();
    assert_eq!(l012.len(), 1, "{findings:?}");
    assert!(l012[0].message.contains("sleep"), "{}", l012[0].message);
}

#[test]
fn l012_clean_when_guard_dropped_before_blocking_call() {
    let fixture = ws(
        &[(
            "crates/core/src/drainer.rs",
            r#"fn drain(state: &Mutex<u32>, done_rx: &Receiver<u32>) {
    let g = state.lock();
    drop(g);
    wait_done(done_rx);
}

fn wait_done(done_rx: &Receiver<u32>) {
    let v = done_rx.recv();
    drop(v);
}
"#,
        )],
        &[("crates/core/Cargo.toml", CORE_TOML)],
        &[],
    );
    let findings = lint_workspace(&fixture);
    let l012: Vec<_> = findings.iter().filter(|f| f.rule == Rule::L012).collect();
    assert!(l012.is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------------------
// L013: panic sites reachable from spawned-thread roots
// ---------------------------------------------------------------------------

#[test]
fn l013_catches_unwrap_reachable_from_spawn() {
    let fixture = ws(
        &[(
            "crates/core/src/worker.rs",
            r#"fn spawn_worker() {
    thread::spawn(move || {
        decode(None);
    });
}

fn decode(x: Option<u32>) -> u32 {
    x.unwrap()
}
"#,
        )],
        &[("crates/core/Cargo.toml", CORE_TOML)],
        &[],
    );
    let findings = lint_workspace(&fixture);
    let l013: Vec<_> = findings.iter().filter(|f| f.rule == Rule::L013).collect();
    assert_eq!(l013.len(), 1, "{findings:?}");
    assert!(l013[0].message.contains("unwrap"), "{}", l013[0].message);
}

#[test]
fn l013_catches_panic_macro_two_calls_deep_from_spawn() {
    let fixture = ws(
        &[(
            "crates/core/src/pumploop.rs",
            r#"fn spawn_pump() {
    thread::spawn(move || {
        pump(1);
    });
}

fn pump(n: u32) {
    check(n);
}

fn check(n: u32) {
    if n > 0 {
        panic!("bad frame");
    }
}
"#,
        )],
        &[("crates/core/Cargo.toml", CORE_TOML)],
        &[],
    );
    let findings = lint_workspace(&fixture);
    let l013: Vec<_> = findings.iter().filter(|f| f.rule == Rule::L013).collect();
    assert_eq!(l013.len(), 1, "{findings:?}");
    assert!(l013[0].message.contains("panic"), "{}", l013[0].message);
}

#[test]
fn l013_clean_when_panicky_fn_is_not_reachable_from_any_spawn() {
    let fixture = ws(
        &[(
            "crates/core/src/worker.rs",
            r#"fn spawn_worker() {
    thread::spawn(move || {
        tick(1);
    });
}

fn tick(n: u32) -> u32 {
    n + 1
}

fn decode(x: Option<u32>) -> u32 {
    x.unwrap()
}
"#,
        )],
        &[("crates/core/Cargo.toml", CORE_TOML)],
        &[],
    );
    let findings = lint_workspace(&fixture);
    let l013: Vec<_> = findings.iter().filter(|f| f.rule == Rule::L013).collect();
    assert!(l013.is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------------------
// L014: unordered-iteration flow into order-sensitive sinks
// ---------------------------------------------------------------------------

#[test]
fn l014_catches_hashset_iteration_into_push_str() {
    let fixture = ws(
        &[(
            "crates/core/src/export.rs",
            r#"fn export(seen: HashSet<String>, out: &mut String) {
    for name in seen.iter() {
        out.push_str(name);
    }
}
"#,
        )],
        &[("crates/core/Cargo.toml", CORE_TOML)],
        &[],
    );
    let findings = lint_workspace(&fixture);
    let l014: Vec<_> = findings.iter().filter(|f| f.rule == Rule::L014).collect();
    assert_eq!(l014.len(), 1, "{findings:?}");
    assert!(l014[0].message.contains("push_str"), "{}", l014[0].message);
}

#[test]
fn l014_catches_hashmap_iteration_into_writeln_macro() {
    let fixture = ws(
        &[(
            "crates/core/src/dump.rs",
            r#"fn dump(lanes: HashMap<u32, Lane>, out: &mut String) {
    for (id, lane) in lanes.iter() {
        writeln!(out, "{id} {}", lane.name).ok();
    }
}
"#,
        )],
        &[("crates/core/Cargo.toml", CORE_TOML)],
        &[],
    );
    let findings = lint_workspace(&fixture);
    let l014: Vec<_> = findings.iter().filter(|f| f.rule == Rule::L014).collect();
    assert_eq!(l014.len(), 1, "{findings:?}");
    assert!(l014[0].message.contains("writeln"), "{}", l014[0].message);
}

#[test]
fn l014_clean_when_entries_are_sorted_before_the_sink() {
    let fixture = ws(
        &[(
            "crates/core/src/dump.rs",
            r#"fn dump(lanes: HashMap<u32, Lane>, out: &mut String) {
    let mut rows: Vec<_> = lanes.into_iter().collect();
    rows.sort_by_key(|(k, _)| *k);
    for (_, lane) in rows {
        out.push_str(&lane.name);
    }
}
"#,
        )],
        &[("crates/core/Cargo.toml", CORE_TOML)],
        &[],
    );
    let findings = lint_workspace(&fixture);
    let l014: Vec<_> = findings.iter().filter(|f| f.rule == Rule::L014).collect();
    assert!(l014.is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------------------
// L015: banned effects reachable inside deterministic zones
// ---------------------------------------------------------------------------

#[test]
fn l015_catches_wall_clock_directly_in_zone() {
    let fixture = ws(
        &[(
            "crates/core/src/merge.rs",
            r#"// lint-zone: deterministic
fn merge_kernel(a: u32) -> u32 {
    let t = Instant::now(); // planted
    drop(t);
    a
}
"#,
        )],
        &[("crates/core/Cargo.toml", CORE_TOML)],
        &[],
    );
    let findings = lint_workspace(&fixture);
    let l015: Vec<_> = findings.iter().filter(|f| f.rule == Rule::L015).collect();
    assert_eq!(l015.len(), 1, "{findings:?}");
    assert!(
        l015[0].message.contains("merge_kernel"),
        "{}",
        l015[0].message
    );
    assert!(l015[0].message.contains("WallClock"), "{}", l015[0].message);
}

#[test]
fn l015_catches_effect_two_calls_deep_with_witness_path() {
    let fixture = ws(
        &[(
            "crates/core/src/merge.rs",
            r#"// lint-zone: deterministic
fn merge_kernel(a: u32) -> u32 {
    stamp(a)
}

fn stamp(a: u32) -> u32 {
    note(a)
}

fn note(a: u32) -> u32 {
    let t = SystemTime::now(); // planted, two calls below the zone
    drop(t);
    a
}
"#,
        )],
        &[("crates/core/Cargo.toml", CORE_TOML)],
        &[],
    );
    let findings = lint_workspace(&fixture);
    let l015: Vec<_> = findings.iter().filter(|f| f.rule == Rule::L015).collect();
    assert_eq!(l015.len(), 1, "{findings:?}");
    // The finding must carry the concrete call chain to the seed.
    assert!(l015[0].message.contains("via"), "{}", l015[0].message);
    assert!(l015[0].message.contains("stamp"), "{}", l015[0].message);
    assert!(
        l015[0].message.contains("SystemTime"),
        "{}",
        l015[0].message
    );
}

#[test]
fn l015_clean_when_the_seed_is_audited() {
    let fixture = ws(
        &[(
            "crates/core/src/merge.rs",
            r#"// lint-zone: deterministic
fn merge_kernel(a: u32) -> u32 {
    stamp(a)
}

fn stamp(a: u32) -> u32 {
    // effect-ok: metrics timestamp on a side channel, never in zone output
    let t = Instant::now();
    drop(t);
    a
}
"#,
        )],
        &[("crates/core/Cargo.toml", CORE_TOML)],
        &[],
    );
    let findings = lint_workspace(&fixture);
    let l015: Vec<_> = findings.iter().filter(|f| f.rule == Rule::L015).collect();
    assert!(l015.is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------------------
// L016: device I/O not dominated by the retry layer
// ---------------------------------------------------------------------------

#[test]
fn l016_catches_bare_device_read() {
    let fixture = ws(
        &[(
            "crates/storage/src/store.rs",
            r#"pub fn load_block(disk: &SimDisk) -> Vec<u8> {
    disk.read("f", 0, 16) // planted: no retry anywhere above
}
"#,
        )],
        &[(
            "crates/storage/Cargo.toml",
            "[package]\nname = \"scanraw-storage\"\n",
        )],
        &[],
    );
    let findings = lint_workspace(&fixture);
    let l016: Vec<_> = findings.iter().filter(|f| f.rule == Rule::L016).collect();
    assert_eq!(l016.len(), 1, "{findings:?}");
    assert!(
        l016[0].message.contains("load_block"),
        "{}",
        l016[0].message
    );
    assert!(
        l016[0].message.contains("with_retry"),
        "{}",
        l016[0].message
    );
}

#[test]
fn l016_catches_one_unretried_caller_among_retried_ones() {
    let fixture = ws(
        &[(
            "crates/core/src/io.rs",
            r#"fn scan_path(disk: &SimDisk, p: &Policy) {
    with_retry(p, || load(disk));
}

fn fallback_path(disk: &SimDisk) {
    load(disk); // planted: bypasses the retry layer
}

fn load(disk: &SimDisk) -> Vec<u8> {
    disk.read("f", 0, 16)
}

fn with_retry<T>(p: &Policy, mut op: impl FnMut() -> T) -> T {
    op()
}
"#,
        )],
        &[("crates/core/Cargo.toml", CORE_TOML)],
        &[],
    );
    let findings = lint_workspace(&fixture);
    let l016: Vec<_> = findings.iter().filter(|f| f.rule == Rule::L016).collect();
    assert_eq!(l016.len(), 1, "{findings:?}");
    assert!(
        l016[0].message.contains("fallback_path"),
        "must name the unretried caller: {}",
        l016[0].message
    );
}

#[test]
fn l016_clean_when_every_path_is_retried() {
    let fixture = ws(
        &[(
            "crates/core/src/io.rs",
            r#"fn scan_path(disk: &SimDisk, p: &Policy) {
    with_retry(p, || load(disk));
}

fn other_path(disk: &SimDisk, p: &Policy) {
    io_retry(p, || load(disk));
}

fn load(disk: &SimDisk) -> Vec<u8> {
    disk.read("f", 0, 16)
}

fn io_retry<T>(p: &Policy, op: impl FnMut() -> T) -> T {
    with_retry(p, op)
}

fn with_retry<T>(p: &Policy, mut op: impl FnMut() -> T) -> T {
    op()
}
"#,
        )],
        &[("crates/core/Cargo.toml", CORE_TOML)],
        &[],
    );
    let findings = lint_workspace(&fixture);
    let l016: Vec<_> = findings.iter().filter(|f| f.rule == Rule::L016).collect();
    assert!(l016.is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------------------
// L017: workspace Results silently discarded
// ---------------------------------------------------------------------------

#[test]
fn l017_catches_let_underscore_discard() {
    let fixture = ws(
        &[
            (
                "crates/storage/src/api.rs",
                "pub fn flush(n: u32) -> Result<()> { Ok(()) }\n",
            ),
            (
                "crates/core/src/writer.rs",
                "fn seal(n: u32) {\n    let _ = flush(n); // planted\n}\n",
            ),
        ],
        &[
            ("crates/core/Cargo.toml", CORE_TOML),
            (
                "crates/storage/Cargo.toml",
                "[package]\nname = \"scanraw-storage\"\n",
            ),
        ],
        &[],
    );
    let findings = lint_workspace(&fixture);
    let l017: Vec<_> = findings.iter().filter(|f| f.rule == Rule::L017).collect();
    assert_eq!(l017.len(), 1, "{findings:?}");
    assert!(l017[0].message.contains("flush"), "{}", l017[0].message);
    assert!(l017[0].message.contains("`_`"), "{}", l017[0].message);
}

#[test]
fn l017_catches_unwrap_or_swallowing_the_error() {
    let fixture = ws(
        &[
            (
                "crates/storage/src/api.rs",
                "pub fn fetch(n: u32) -> Result<u32, IoError> { Ok(n) }\n",
            ),
            (
                "crates/core/src/reader.rs",
                "fn peek(n: u32) -> u32 {\n    fetch(n).unwrap_or(0) // planted\n}\n",
            ),
        ],
        &[
            ("crates/core/Cargo.toml", CORE_TOML),
            (
                "crates/storage/Cargo.toml",
                "[package]\nname = \"scanraw-storage\"\n",
            ),
        ],
        &[],
    );
    let findings = lint_workspace(&fixture);
    let l017: Vec<_> = findings.iter().filter(|f| f.rule == Rule::L017).collect();
    assert_eq!(l017.len(), 1, "{findings:?}");
    assert!(l017[0].message.contains("unwrap_or"), "{}", l017[0].message);
}

#[test]
fn l017_clean_when_results_are_consumed() {
    let fixture = ws(
        &[
            (
                "crates/storage/src/api.rs",
                "pub fn flush(n: u32) -> Result<()> { Ok(()) }\npub fn fetch(n: u32) -> Result<u32, IoError> { Ok(n) }\n",
            ),
            (
                "crates/core/src/writer.rs",
                "fn seal(n: u32) -> Result<u32> {\n    flush(n)?;\n    let v = fetch(n)?;\n    Ok(v)\n}\n",
            ),
        ],
        &[
            ("crates/core/Cargo.toml", CORE_TOML),
            (
                "crates/storage/Cargo.toml",
                "[package]\nname = \"scanraw-storage\"\n",
            ),
        ],
        &[],
    );
    let findings = lint_workspace(&fixture);
    let l017: Vec<_> = findings.iter().filter(|f| f.rule == Rule::L017).collect();
    assert!(l017.is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------------------
// L018: per-crate effect-contract drift
// ---------------------------------------------------------------------------

/// A catalog document with metrics, events, and effects blocks.
fn design_with_effects(metrics: &str, events: &str, effects: &str) -> String {
    format!(
        "{}\n<!-- lint-catalog:effects -->\n```text\n{effects}\n```\n",
        design(metrics, events)
    )
}

#[test]
fn l018_catches_exhibited_but_undeclared_effect() {
    let fixture = ws(
        &[(
            "crates/core/src/timing.rs",
            "fn stamp() -> Instant {\n    Instant::now() // planted: contract says effect-free\n}\n",
        )],
        &[("crates/core/Cargo.toml", CORE_TOML)],
        &[("DESIGN.md", &design_with_effects("", "", "crates/core:"))],
    );
    let findings = lint_workspace(&fixture);
    let l018: Vec<_> = findings.iter().filter(|f| f.rule == Rule::L018).collect();
    assert_eq!(l018.len(), 1, "{findings:?}");
    assert_eq!(l018[0].file, "crates/core/src/timing.rs");
    assert!(l018[0].message.contains("WallClock"), "{}", l018[0].message);
}

#[test]
fn l018_catches_declared_effect_no_code_exhibits() {
    let fixture = ws(
        &[(
            "crates/core/src/pure.rs",
            "fn add(a: u32, b: u32) -> u32 {\n    a + b\n}\n",
        )],
        &[("crates/core/Cargo.toml", CORE_TOML)],
        &[(
            "DESIGN.md",
            &design_with_effects("", "", "crates/core: EnvRead"),
        )],
    );
    let findings = lint_workspace(&fixture);
    let l018: Vec<_> = findings.iter().filter(|f| f.rule == Rule::L018).collect();
    assert_eq!(l018.len(), 1, "{findings:?}");
    assert_eq!(l018[0].file, "DESIGN.md");
    assert!(l018[0].message.contains("EnvRead"), "{}", l018[0].message);
    assert!(
        l018[0].message.contains("no code exhibits"),
        "{}",
        l018[0].message
    );
}

#[test]
fn l018_clean_when_contract_matches_inferred_effects() {
    let fixture = ws(
        &[(
            "crates/core/src/timing.rs",
            "fn stamp() -> Instant {\n    Instant::now()\n}\n",
        )],
        &[("crates/core/Cargo.toml", CORE_TOML)],
        &[(
            "DESIGN.md",
            &design_with_effects("", "", "crates/core: WallClock"),
        )],
    );
    let findings = lint_workspace(&fixture);
    let l018: Vec<_> = findings.iter().filter(|f| f.rule == Rule::L018).collect();
    assert!(l018.is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------------------
// Rule catalog exhaustiveness
// ---------------------------------------------------------------------------

#[test]
fn every_rule_has_explain_text_and_round_trips() {
    for rule in Rule::ALL {
        let id = rule.id();
        assert_eq!(Rule::from_id(id), Some(rule), "{id} must round-trip");
        assert!(!rule.description().is_empty(), "{id} needs a description");
        let text = rule.explain();
        assert!(
            text.lines().next().is_some_and(|l| l.contains(id)),
            "{id}: explain text must lead with the rule id:\n{text}"
        );
        assert!(
            text.contains("Why:"),
            "{id}: explain text needs a Why section"
        );
        assert!(
            text.contains("Escape:"),
            "{id}: explain text needs an Escape section"
        );
    }
}
