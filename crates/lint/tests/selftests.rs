//! Seeded-violation self-tests: every semantic rule (L007–L010) must catch
//! a deliberately planted bug in a miniature fixture workspace, end-to-end
//! through the public [`scanraw_lint::lint_workspace`] API. If a rule ever
//! stops firing on its canonical bug, these fail before the real workspace
//! quietly rots.

use scanraw_lint::{lint_workspace, Rule, WorkspaceFiles};

fn ws(
    sources: &[(&str, &str)],
    manifests: &[(&str, &str)],
    docs: &[(&str, &str)],
) -> WorkspaceFiles {
    WorkspaceFiles {
        sources: sources
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect(),
        manifests: manifests
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect(),
        docs: docs
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect(),
    }
}

const CORE_TOML: &str = "[package]\nname = \"scanraw\"\n[features]\nturbo = []\n";

/// A catalog document with one metrics block and one events block.
fn design(metrics: &str, events: &str) -> String {
    format!(
        "# fixture\n\n<!-- lint-catalog:metrics -->\n```text\n{metrics}\n```\n\n<!-- lint-catalog:events -->\n```text\n{events}\n```\n"
    )
}

#[test]
fn l007_catches_planted_wildcard_arm() {
    let fixture = ws(
        &[(
            "crates/core/src/proto.rs",
            r#"
pub enum CtrlMsg { Start, Stop, Tick }

pub fn dispatch(m: &CtrlMsg) -> u32 {
    match m {
        CtrlMsg::Start => 1,
        _ => 0, // planted: swallows Stop and Tick
    }
}
"#,
        )],
        &[("crates/core/Cargo.toml", CORE_TOML)],
        &[],
    );
    let findings = lint_workspace(&fixture);
    let l007: Vec<_> = findings.iter().filter(|f| f.rule == Rule::L007).collect();
    assert_eq!(l007.len(), 1, "{findings:?}");
    assert_eq!(l007[0].file, "crates/core/src/proto.rs");
    assert!(l007[0].message.contains("CtrlMsg"));
    assert!(
        l007[0].message.contains("Stop") && l007[0].message.contains("Tick"),
        "must name the swallowed variants: {}",
        l007[0].message
    );
}

#[test]
fn l008_catches_planted_chunk_leak_on_early_return() {
    let fixture = ws(
        &[(
            "crates/core/src/stage.rs",
            r#"
pub fn forward(buf: &Buffer, out: &Sender) -> Result<(), Error> {
    let chunk = buf.pop();
    let meta = catalog_lookup()?; // planted: error path drops `chunk`
    out.send(chunk, meta);
    Ok(())
}
"#,
        )],
        &[("crates/core/Cargo.toml", CORE_TOML)],
        &[],
    );
    let findings = lint_workspace(&fixture);
    let l008: Vec<_> = findings.iter().filter(|f| f.rule == Rule::L008).collect();
    assert_eq!(l008.len(), 1, "{findings:?}");
    assert!(l008[0].message.contains("chunk"), "{}", l008[0].message);
    assert!(l008[0].message.contains('?'), "{}", l008[0].message);
}

#[test]
fn l009_catches_planted_undeclared_feature() {
    let fixture = ws(
        &[(
            "crates/core/src/lib.rs",
            "#[cfg(feature = \"trubo\")] // planted typo\npub fn fast() {}\n",
        )],
        &[("crates/core/Cargo.toml", CORE_TOML)],
        &[],
    );
    let findings = lint_workspace(&fixture);
    let l009: Vec<_> = findings.iter().filter(|f| f.rule == Rule::L009).collect();
    assert_eq!(l009.len(), 1, "{findings:?}");
    assert!(l009[0].message.contains("trubo"), "{}", l009[0].message);
}

#[test]
fn l009_catches_planted_missing_feature_forward() {
    let engine_toml = "[package]\nname = \"scanraw-engine\"\n[dependencies]\nscanraw = { path = \"../core\" }\n[features]\nturbo = [] # planted: does not forward scanraw/turbo\n";
    let fixture = ws(
        &[],
        &[
            ("crates/core/Cargo.toml", CORE_TOML),
            ("crates/engine/Cargo.toml", engine_toml),
        ],
        &[],
    );
    let findings = lint_workspace(&fixture);
    let l009: Vec<_> = findings.iter().filter(|f| f.rule == Rule::L009).collect();
    assert_eq!(l009.len(), 1, "{findings:?}");
    assert_eq!(l009[0].file, "crates/engine/Cargo.toml");
    assert!(
        l009[0]
            .message
            .contains("not forwarded to dependency `scanraw`"),
        "{}",
        l009[0].message
    );
}

#[test]
fn l009_catches_planted_ungated_use_of_gated_pub_item() {
    let engine_toml = "[package]\nname = \"scanraw-engine\"\n[dependencies]\nscanraw = { path = \"../core\" }\n[features]\nturbo = [\"scanraw/turbo\"]\n";
    let fixture = ws(
        &[
            (
                "crates/core/src/lib.rs",
                "#[cfg(feature = \"turbo\")]\npub fn boost() {}\n",
            ),
            (
                "crates/engine/src/lib.rs",
                "pub fn go() { scanraw::boost(); } // planted: breaks default build\n",
            ),
        ],
        &[
            ("crates/core/Cargo.toml", CORE_TOML),
            ("crates/engine/Cargo.toml", engine_toml),
        ],
        &[],
    );
    let findings = lint_workspace(&fixture);
    let l009: Vec<_> = findings.iter().filter(|f| f.rule == Rule::L009).collect();
    assert_eq!(l009.len(), 1, "{findings:?}");
    assert!(l009[0].message.contains("boost"), "{}", l009[0].message);
    assert!(
        l009[0].message.contains("crates/engine/src/lib.rs"),
        "{}",
        l009[0].message
    );
}

#[test]
fn l010_catches_planted_undocumented_metric() {
    let fixture = ws(
        &[
            (
                "crates/obs/src/journal.rs",
                "pub enum ObsEvent { CacheHit }",
            ),
            (
                "crates/core/src/cache.rs",
                "fn wire(m: &Metrics) { m.counter(\"cache.chunk.bogus\").inc(); } // planted",
            ),
        ],
        &[
            ("crates/core/Cargo.toml", CORE_TOML),
            (
                "crates/obs/Cargo.toml",
                "[package]\nname = \"scanraw-obs\"\n",
            ),
        ],
        &[("DESIGN.md", &design("cache.chunk.hit", "CacheHit"))],
    );
    let findings = lint_workspace(&fixture);
    let l010: Vec<_> = findings.iter().filter(|f| f.rule == Rule::L010).collect();
    // Planted metric is undocumented AND the cataloged one is now unused.
    assert_eq!(l010.len(), 2, "{findings:?}");
    assert!(l010
        .iter()
        .any(|f| f.file == "crates/core/src/cache.rs" && f.message.contains("cache.chunk.bogus")));
    assert!(l010
        .iter()
        .any(|f| f.file == "DESIGN.md" && f.message.contains("cache.chunk.hit")));
}

#[test]
fn l010_catches_planted_uncataloged_event() {
    let fixture = ws(
        &[
            (
                "crates/obs/src/journal.rs",
                "pub enum ObsEvent { CacheHit, ChunkSkipped }",
            ),
            (
                "crates/core/src/sched.rs",
                "fn f(j: &Journal) { j.record(ObsEvent::ChunkSkipped); } // planted: not cataloged",
            ),
        ],
        &[
            ("crates/core/Cargo.toml", CORE_TOML),
            (
                "crates/obs/Cargo.toml",
                "[package]\nname = \"scanraw-obs\"\n",
            ),
        ],
        &[("DESIGN.md", &design("", "CacheHit"))],
    );
    let findings = lint_workspace(&fixture);
    let l010: Vec<_> = findings.iter().filter(|f| f.rule == Rule::L010).collect();
    // Use site + definition site both flagged.
    assert_eq!(l010.len(), 2, "{findings:?}");
    assert!(l010.iter().all(|f| f.message.contains("ChunkSkipped")));
}

#[test]
fn clean_fixture_stays_clean() {
    // The inverse control: a fixture with none of the planted bugs produces
    // zero findings, so the self-tests above isolate exactly one cause each.
    let engine_toml = "[package]\nname = \"scanraw-engine\"\n[dependencies]\nscanraw = { path = \"../core\" }\n[features]\nturbo = [\"scanraw/turbo\"]\n";
    let fixture = ws(
        &[
            (
                "crates/core/src/proto.rs",
                r#"
pub enum CtrlMsg { Start, Stop }
pub fn dispatch(m: &CtrlMsg) -> u32 {
    match m {
        CtrlMsg::Start => 1,
        CtrlMsg::Stop => 0,
    }
}
fn forward(buf: &Buffer, out: &Sender) -> Result<(), Error> {
    let chunk = buf.pop();
    out.send(chunk);
    Ok(())
}
"#,
            ),
            (
                "crates/obs/src/journal.rs",
                "pub enum ObsEvent { CacheHit }",
            ),
            (
                "crates/core/src/cache.rs",
                "fn wire(m: &Metrics, j: &Journal) { m.counter(\"cache.chunk.hit\").inc(); j.record(ObsEvent::CacheHit); }",
            ),
        ],
        &[
            ("crates/core/Cargo.toml", CORE_TOML),
            ("crates/engine/Cargo.toml", engine_toml),
            ("crates/obs/Cargo.toml", "[package]\nname = \"scanraw-obs\"\n"),
        ],
        &[("DESIGN.md", &design("cache.chunk.hit", "CacheHit"))],
    );
    let findings = lint_workspace(&fixture);
    assert!(findings.is_empty(), "{findings:?}");
}
