//! Golden-file tests for the machine-readable output formats.
//!
//! One fixture workspace with a violation from each semantic rule family is
//! linted, formatted as JSON and SARIF, and compared byte-for-byte against
//! checked-in golden files — which pins both the report schema and the
//! (file, line, rule) finding order. Regenerate deliberately with:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test -p scanraw-lint --test golden
//! ```
//!
//! Shape assertions go through `scanraw-obs`'s JSON parser, so "the report
//! is valid JSON with the documented fields" is checked by an actual parse,
//! not substring luck.

use scanraw_lint::{lint_workspace, output, Finding, WorkspaceFiles};
use scanraw_obs::json;
use std::path::PathBuf;

/// A fixture with one finding from each semantic rule family — L007–L010,
/// the interprocedural L011–L014, and the effect rules L015–L018 — at fixed
/// lines. Kept small so golden diffs stay reviewable.
fn fixture_ws() -> WorkspaceFiles {
    let sources = [
        (
            "crates/core/src/proto.rs",
            r#"pub enum CtrlMsg { Start, Stop }

fn dispatch(m: &CtrlMsg) -> u32 {
    match m {
        CtrlMsg::Start => 1,
        _ => 0,
    }
}

fn forward(buf: &Buffer, out: &Sender) -> Result<(), Error> {
    let chunk = buf.pop();
    let meta = lookup()?;
    out.send(chunk, meta);
    Ok(())
}

fn wire(m: &Metrics) {
    m.counter("cache.chunk.bogus").inc();
}
"#,
        ),
        (
            "crates/obs/src/journal.rs",
            "pub enum ObsEvent { CacheHit }",
        ),
        (
            "crates/storage/src/zone.rs",
            r#"pub fn flush(n: u32) -> Result<()> {
    Ok(())
}

// lint-zone: deterministic
fn merge_rows(a: u32) -> u32 {
    stamp(a)
}

fn stamp(a: u32) -> u32 {
    let t = Instant::now();
    drop(t);
    a
}

fn load_block(disk: &SimDisk) -> Vec<u8> {
    disk.read("f", 0, 16)
}

fn seal(n: u32) {
    let _ = flush(n);
}
"#,
        ),
        (
            "crates/core/src/pipeline.rs",
            r#"fn consumer(state: &Mutex<u32>, jobs_rx: &Receiver<u32>) {
    let g = state.lock();
    let v = jobs_rx.recv(); // lint-ok: L004 fixture
    drop(v);
    drop(g);
}

fn producer(state: &Mutex<u32>, jobs_tx: &Sender<u32>) {
    let g = state.lock();
    jobs_tx.send(1); // lint-ok: L004 fixture
    drop(g);
}

fn drain(state: &Mutex<u32>, done_rx: &Receiver<u32>) {
    let g = state.lock();
    wait_done(done_rx);
    drop(g);
}

fn wait_done(done_rx: &Receiver<u32>) {
    let v = done_rx.recv();
    drop(v);
}

fn spawn_worker() {
    thread::spawn(move || {
        decode(None);
    });
}

fn decode(x: Option<u32>) -> u32 {
    x.unwrap()
}

fn export(seen: HashSet<String>, out: &mut String) {
    for name in seen.iter() {
        out.push_str(name);
    }
}
"#,
        ),
    ];
    let manifests = [
        (
            "crates/core/Cargo.toml",
            "[package]\nname = \"scanraw\"\n[dependencies]\nscanraw-obs = { path = \"../obs\" }\n[features]\nturbo = []\n",
        ),
        (
            "crates/obs/Cargo.toml",
            "[package]\nname = \"scanraw-obs\"\n[features]\nturbo = []\n",
        ),
        (
            "crates/storage/Cargo.toml",
            "[package]\nname = \"scanraw-storage\"\n",
        ),
    ];
    // The effects contract covers what `zone.rs` exhibits, plus one stale
    // declaration (`crates/obs: EnvRead`) planted for L018.
    let docs = [(
        "DESIGN.md",
        "# fixture\n\n<!-- lint-catalog:metrics -->\n```text\ncache.chunk.hit\n```\n\n<!-- lint-catalog:events -->\n```text\nCacheHit\n```\n\n<!-- lint-catalog:effects -->\n```text\ncrates/core: UnorderedIter\ncrates/storage: WallClock, DeviceIo\ncrates/obs: EnvRead\n```\n",
    )];
    WorkspaceFiles {
        sources: sources
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect(),
        manifests: manifests
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect(),
        docs: docs
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect(),
    }
}

fn fixture_findings() -> Vec<Finding> {
    lint_workspace(&fixture_ws())
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "{name} drifted from its golden file; if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn fixture_produces_stable_finding_set() {
    let findings = fixture_findings();
    // The fixture plants exactly these, in (file, line, rule) order.
    let got: Vec<(String, u32, String)> = findings
        .iter()
        .map(|f| (f.file.clone(), f.line, f.rule.id().to_string()))
        .collect();
    assert_eq!(
        got,
        vec![
            ("DESIGN.md".to_string(), 5, "L010".to_string()),
            ("DESIGN.md".to_string(), 17, "L018".to_string()),
            ("crates/core/Cargo.toml".to_string(), 6, "L009".to_string()),
            (
                "crates/core/src/pipeline.rs".to_string(),
                3,
                "L011".to_string()
            ),
            (
                "crates/core/src/pipeline.rs".to_string(),
                16,
                "L012".to_string()
            ),
            (
                "crates/core/src/pipeline.rs".to_string(),
                32,
                "L013".to_string()
            ),
            (
                "crates/core/src/pipeline.rs".to_string(),
                36,
                "L014".to_string()
            ),
            (
                "crates/core/src/proto.rs".to_string(),
                6,
                "L007".to_string()
            ),
            (
                "crates/core/src/proto.rs".to_string(),
                12,
                "L008".to_string()
            ),
            (
                "crates/core/src/proto.rs".to_string(),
                18,
                "L010".to_string()
            ),
            (
                "crates/storage/src/zone.rs".to_string(),
                6,
                "L015".to_string()
            ),
            (
                "crates/storage/src/zone.rs".to_string(),
                17,
                "L016".to_string()
            ),
            (
                "crates/storage/src/zone.rs".to_string(),
                21,
                "L017".to_string()
            ),
        ],
        "{findings:?}"
    );
}

#[test]
fn json_output_matches_golden_and_parses() {
    let findings = fixture_findings();
    let out = output::to_json(&findings);
    check_golden("report.json", &out);

    let doc = json::parse(&out).expect("report must be valid JSON");
    assert_eq!(doc.get("version").and_then(|v| v.as_u64()), Some(1));
    assert_eq!(
        doc.get("tool").and_then(|v| v.as_str()),
        Some("scanraw-lint")
    );
    let items = doc
        .get("findings")
        .and_then(|v| v.as_array())
        .expect("findings array");
    assert_eq!(items.len(), findings.len());
    for item in items {
        for key in ["rule", "file", "message", "hint"] {
            assert!(
                item.get(key).and_then(|v| v.as_str()).is_some(),
                "finding missing string field `{key}`"
            );
        }
        assert!(item.get("line").and_then(|v| v.as_u64()).is_some());
    }
    let summary = doc.get("summary").expect("summary object");
    assert_eq!(
        summary.get("total").and_then(|v| v.as_u64()),
        Some(findings.len() as u64)
    );
    let by_rule = summary
        .get("by_rule")
        .and_then(|v| v.as_object())
        .expect("by_rule object");
    assert_eq!(by_rule.get("L010").and_then(|v| v.as_u64()), Some(2));
}

#[test]
fn sarif_output_matches_golden_and_parses() {
    let findings = fixture_findings();
    let out = output::to_sarif(&findings);
    check_golden("report.sarif", &out);

    let doc = json::parse(&out).expect("SARIF must be valid JSON");
    assert_eq!(doc.get("version").and_then(|v| v.as_str()), Some("2.1.0"));
    let runs = doc.get("runs").and_then(|v| v.as_array()).expect("runs");
    assert_eq!(runs.len(), 1);
    let driver = runs[0]
        .get("tool")
        .and_then(|t| t.get("driver"))
        .expect("tool.driver");
    assert_eq!(
        driver.get("name").and_then(|v| v.as_str()),
        Some("scanraw-lint")
    );
    let rules = driver
        .get("rules")
        .and_then(|v| v.as_array())
        .expect("rule table");
    assert_eq!(rules.len(), 18, "all rules L001-L018 in the table");
    let results = runs[0]
        .get("results")
        .and_then(|v| v.as_array())
        .expect("results");
    assert_eq!(results.len(), findings.len());
    for r in results {
        assert!(r.get("ruleId").and_then(|v| v.as_str()).is_some());
        assert_eq!(r.get("level").and_then(|v| v.as_str()), Some("error"));
        let loc = r
            .get("locations")
            .and_then(|v| v.as_array())
            .and_then(|a| a.first())
            .and_then(|l| l.get("physicalLocation"))
            .expect("physicalLocation");
        assert!(loc
            .get("artifactLocation")
            .and_then(|a| a.get("uri"))
            .and_then(|v| v.as_str())
            .is_some());
        assert!(loc
            .get("region")
            .and_then(|r| r.get("startLine"))
            .and_then(|v| v.as_u64())
            .is_some());
    }
}

#[test]
fn callgraph_dot_matches_golden() {
    let report = scanraw_lint::lint_workspace_report(&fixture_ws());
    let dot = &report.callgraph_dot;
    check_golden("callgraph.dot", dot);

    // Structural invariants independent of the byte-exact golden: the spawn
    // root is boxed, the blocking receiver is red, and the resolved
    // `drain -> wait_done` edge is present.
    assert!(dot.starts_with("digraph callgraph {"));
    assert!(dot.contains("pipeline.rs:spawn_worker@26\" shape=box"));
    assert!(dot.contains("color=red"));
    let node_of = |needle: &str| {
        dot.lines()
            .find(|l| l.contains(needle))
            .and_then(|l| l.split_whitespace().next())
            .map(str::to_string)
            .unwrap_or_else(|| panic!("no node labeled {needle} in:\n{dot}"))
    };
    let drain = node_of("pipeline.rs:drain");
    let wait_done = node_of("pipeline.rs:wait_done");
    assert!(dot.contains(&format!("{drain} -> {wait_done};")));
}

#[test]
fn effects_dot_matches_golden() {
    let report = scanraw_lint::lint_workspace_report(&fixture_ws());
    let dot = &report.effects_dot;
    check_golden("effects.dot", dot);

    // Structural invariants independent of the byte-exact golden: the clean
    // zone root is blue, the unaudited clock seed is red, effect sets appear
    // in node labels, and the zone -> seed edge is present.
    assert!(dot.starts_with("digraph effects {"));
    let node_of = |needle: &str| {
        dot.lines()
            .find(|l| l.contains(needle))
            .and_then(|l| l.split_whitespace().next())
            .map(str::to_string)
            .unwrap_or_else(|| panic!("no node labeled {needle} in:\n{dot}"))
    };
    let merge = node_of("zone.rs:merge_rows");
    let stamp = node_of("zone.rs:stamp");
    let merge_line = dot
        .lines()
        .find(|l| l.contains("zone.rs:merge_rows"))
        .unwrap();
    let stamp_line = dot.lines().find(|l| l.contains("zone.rs:stamp")).unwrap();
    assert!(merge_line.contains("color=blue"), "{merge_line}");
    assert!(merge_line.contains("[WallClock]"), "{merge_line}");
    assert!(stamp_line.contains("color=red"), "{stamp_line}");
    assert!(dot.contains(&format!("{merge} -> {stamp};")));
}

#[test]
fn empty_report_is_valid_json_in_both_formats() {
    let j = json::parse(&output::to_json(&[])).expect("empty JSON report parses");
    assert_eq!(
        j.get("summary")
            .and_then(|s| s.get("total"))
            .and_then(|v| v.as_u64()),
        Some(0)
    );
    let s = json::parse(&output::to_sarif(&[])).expect("empty SARIF parses");
    let results = s
        .get("runs")
        .and_then(|v| v.as_array())
        .and_then(|a| a.first())
        .and_then(|r| r.get("results"))
        .and_then(|v| v.as_array())
        .expect("results array");
    assert!(results.is_empty());
}
