//! scanraw-lint: a concurrency-focused static analyzer for this workspace.
//!
//! The ScanRaw pipeline is thread-rich — a READ thread, a worker pool, a
//! scheduler, a persistent WRITE thread — and its correctness rests on a
//! handful of conventions the compiler does not check: which atomics may be
//! `Relaxed`, that worker closures never panic, that locks are taken in one
//! global order, that nobody blocks on a channel while holding a guard, that
//! every `Condvar::wait` sits in a predicate loop, and that the public API
//! documents its failure modes. This crate checks them, lexically, with zero
//! dependencies. Run it as `cargo xtask lint`.
//!
//! Findings are silenced in-source with `// lint-ok: <RULE> <reason>` (or
//! `// relaxed-ok: <reason>` for L001) on the same line or the line above;
//! the reason is mandatory by convention and reviewed like code.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod callgraph;
pub mod determinism;
pub mod effects;
pub mod explain;
pub mod features;
pub mod flow;
pub mod interproc;
pub mod lexer;
pub mod lockgraph;
pub mod manifest;
pub mod model;
pub mod obscatalog;
pub mod output;
pub mod parser;
pub mod protocol;
pub mod resolve;
pub mod resultflow;
pub mod rules;
pub mod waitgraph;

use model::SourceFile;
use std::fmt;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Rule identifiers, one per check in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Cross-module `Ordering::Relaxed` without a `relaxed-ok:` audit note.
    L001,
    /// `unwrap`/`expect` inside spawned worker closures (core, simio).
    L002,
    /// Lock-acquisition-order cycle across the workspace.
    L003,
    /// Blocking channel `send`/`recv` while a lock guard is live.
    L004,
    /// `Condvar::wait` outside a predicate loop.
    L005,
    /// Missing `# Errors`/`# Panics` docs on public API (types, core).
    L006,
    /// Wildcard arm in a `match` on a workspace protocol enum.
    L007,
    /// Buffer/cache resource leaked on an early-exit path.
    L008,
    /// Feature-gate inconsistency: undeclared feature, broken forwarding
    /// chain, or gated pub item without a compiled-off story.
    L009,
    /// Observability-catalog drift: metric/event used but not documented in
    /// DESIGN.md, or documented but unused.
    L010,
    /// Wait-for cycle through a channel/condvar node in the unified
    /// lock+channel+condvar graph (cross-crate).
    L011,
    /// Blocking operation reached while a lock guard is live, through any
    /// number of calls (interprocedural).
    L012,
    /// Panic site reachable from a spawned-thread root via the call graph.
    L013,
    /// Unordered `HashMap`/`HashSet` iteration flowing into an
    /// order-sensitive sink (merge, output, journal/trace export).
    L014,
    /// Wall-clock/entropy/environment effect transitively reachable inside
    /// a declared deterministic zone (`// lint-zone: deterministic`).
    L015,
    /// Device I/O on a READ/WRITE-path crate not dominated by a
    /// `with_retry` wrapper call.
    L016,
    /// Workspace `Result` silently discarded (`let _ =`, bare `.ok()`,
    /// `.unwrap_or*`) in a pipeline crate.
    L017,
    /// Effect-contract drift: a crate's effects disagree with its declared
    /// set in the DESIGN.md effect catalog.
    L018,
}

impl Rule {
    pub fn id(self) -> &'static str {
        match self {
            Rule::L001 => "L001",
            Rule::L002 => "L002",
            Rule::L003 => "L003",
            Rule::L004 => "L004",
            Rule::L005 => "L005",
            Rule::L006 => "L006",
            Rule::L007 => "L007",
            Rule::L008 => "L008",
            Rule::L009 => "L009",
            Rule::L010 => "L010",
            Rule::L011 => "L011",
            Rule::L012 => "L012",
            Rule::L013 => "L013",
            Rule::L014 => "L014",
            Rule::L015 => "L015",
            Rule::L016 => "L016",
            Rule::L017 => "L017",
            Rule::L018 => "L018",
        }
    }

    /// Parses a rule id (`"L011"`). Used by `--explain` and the baseline
    /// guard.
    pub fn from_id(id: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.id() == id)
    }

    /// The full rationale/example/escape-hatch text for `--explain`,
    /// sourced from the same doc block rustdoc renders (see [`explain`]).
    pub fn explain(self) -> &'static str {
        match self {
            Rule::L001 => explain::L001,
            Rule::L002 => explain::L002,
            Rule::L003 => explain::L003,
            Rule::L004 => explain::L004,
            Rule::L005 => explain::L005,
            Rule::L006 => explain::L006,
            Rule::L007 => explain::L007,
            Rule::L008 => explain::L008,
            Rule::L009 => explain::L009,
            Rule::L010 => explain::L010,
            Rule::L011 => explain::L011,
            Rule::L012 => explain::L012,
            Rule::L013 => explain::L013,
            Rule::L014 => explain::L014,
            Rule::L015 => explain::L015,
            Rule::L016 => explain::L016,
            Rule::L017 => explain::L017,
            Rule::L018 => explain::L018,
        }
    }

    /// One-line rule description, used by the SARIF rule table.
    pub fn description(self) -> &'static str {
        match self {
            Rule::L001 => "Cross-module Ordering::Relaxed without an audit note",
            Rule::L002 => "unwrap/expect inside spawned worker closures",
            Rule::L003 => "Lock-acquisition-order cycle across the workspace",
            Rule::L004 => "Blocking channel op while a lock guard is live",
            Rule::L005 => "Condvar::wait outside a predicate loop",
            Rule::L006 => "Missing # Errors/# Panics docs on public API",
            Rule::L007 => "Wildcard arm in a match on a workspace protocol enum",
            Rule::L008 => "Buffer/cache resource leaked on an early-exit path",
            Rule::L009 => "Feature declaration, forwarding chain, or gate inconsistency",
            Rule::L010 => "Metric/event drift between code and the DESIGN.md catalog",
            Rule::L011 => "Wait-for cycle through a channel/condvar across the workspace",
            Rule::L012 => "Blocking call reached while a lock guard is live (interprocedural)",
            Rule::L013 => "Panic reachable from a spawned-thread root through the call graph",
            Rule::L014 => "Unordered iteration flowing into an order-sensitive sink",
            Rule::L015 => "Nondeterministic effect reachable inside a declared deterministic zone",
            Rule::L016 => "Device I/O on a READ/WRITE path not covered by the retry layer",
            Rule::L017 => "Workspace Result silently discarded in a pipeline crate",
            Rule::L018 => "Effect-contract drift between code and the DESIGN.md effect catalog",
        }
    }

    pub const ALL: [Rule; 18] = [
        Rule::L001,
        Rule::L002,
        Rule::L003,
        Rule::L004,
        Rule::L005,
        Rule::L006,
        Rule::L007,
        Rule::L008,
        Rule::L009,
        Rule::L010,
        Rule::L011,
        Rule::L012,
        Rule::L013,
        Rule::L014,
        Rule::L015,
        Rule::L016,
        Rule::L017,
        Rule::L018,
    ];
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One unsilenced finding.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: Rule,
    /// Workspace-relative path.
    pub file: String,
    pub line: u32,
    pub message: String,
    /// How to fix it (or how to silence it when it is a false positive).
    pub hint: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    fix: {}",
            self.file, self.line, self.rule, self.message, self.hint
        )
    }
}

/// Lints in-memory sources; `files` is `(workspace-relative path, contents)`.
/// This is the pure core — the tests and the xtask binary both go through it.
/// Runs the source-only rules (L001–L008, plus the interprocedural
/// L011–L013 with same-crate-only resolution, L014, the effect rules
/// L015/L016, and L017); the workspace-level rules need manifests and docs
/// too — see [`lint_workspace`].
pub fn lint_sources(files: &[(String, String)]) -> Vec<Finding> {
    let parsed: Vec<SourceFile> = files
        .iter()
        .map(|(rel, src)| SourceFile::parse(rel.clone(), src))
        .collect();
    let mut findings = rules::run_all(&parsed);
    let cg = interproc::check(&parsed, &[], &mut findings);
    for f in &parsed {
        determinism::check_file(f, &mut findings);
    }
    effects::check(&parsed, &cg, &[], &mut findings);
    resultflow::check(&parsed, &mut findings);
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings
}

/// Everything the full analyzer consumes, all as
/// `(workspace-relative path, contents)` pairs.
#[derive(Debug, Default)]
pub struct WorkspaceFiles {
    /// `.rs` sources.
    pub sources: Vec<(String, String)>,
    /// `Cargo.toml` manifests (root, crates, shims, xtask).
    pub manifests: Vec<(String, String)>,
    /// Catalog documents (DESIGN.md).
    pub docs: Vec<(String, String)>,
}

/// One timed phase of a full analyzer run (see `--timing`).
#[derive(Debug)]
pub struct PhaseTiming {
    pub name: &'static str,
    pub duration: Duration,
}

/// A full analyzer run: findings, the per-phase wall-clock breakdown, and
/// the call-graph/effect-graph DOT dumps (for the CI artifacts and the
/// golden tests).
#[derive(Debug)]
pub struct LintReport {
    pub findings: Vec<Finding>,
    pub timing: Vec<PhaseTiming>,
    pub callgraph_dot: String,
    pub effects_dot: String,
}

/// Parses sources in parallel across std threads — the parse phase
/// dominates wall time and is embarrassingly parallel; every later phase
/// (resolution, graphs, rules over shared state) stays single-threaded.
fn parse_parallel(sources: &[(String, String)]) -> Vec<SourceFile> {
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(sources.len().max(1));
    if workers <= 1 {
        return sources
            .iter()
            .map(|(rel, src)| SourceFile::parse(rel.clone(), src))
            .collect();
    }
    let chunk = sources.len().div_ceil(workers);
    std::thread::scope(|s| {
        let handles: Vec<_> = sources
            .chunks(chunk)
            .map(|part| {
                s.spawn(move || {
                    part.iter()
                        .map(|(rel, src)| SourceFile::parse(rel.clone(), src))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parse worker panicked"))
            .collect()
    })
}

/// Runs the full rule set — L001–L008 over sources, the interprocedural
/// L011–L013 and per-file L014, the effect-inference rules L015/L016/L018
/// and the Result-flow pass L017, L009 over sources + manifests, L010 over
/// sources + docs — and reports per-phase timing plus the call-graph and
/// effect-graph dumps. Findings come back sorted by (file, line, rule),
/// which makes every output format byte-stable.
pub fn lint_workspace_report(ws: &WorkspaceFiles) -> LintReport {
    let mut timing = Vec::new();
    let mut timed = |name: &'static str, start: Instant| {
        timing.push(PhaseTiming {
            name,
            duration: start.elapsed(),
        });
    };

    let t = Instant::now();
    let parsed = parse_parallel(&ws.sources);
    timed("parse", t);

    let t = Instant::now();
    let mut findings = rules::run_all(&parsed);
    timed("rules", t);

    let t = Instant::now();
    let manifests: Vec<manifest::Manifest> = ws
        .manifests
        .iter()
        .map(|(rel, text)| manifest::parse(rel, text))
        .collect();
    let cg = interproc::check(&parsed, &manifests, &mut findings);
    let callgraph_dot = cg.to_dot();
    timed("interproc", t);

    let t = Instant::now();
    for f in &parsed {
        determinism::check_file(f, &mut findings);
    }
    timed("determinism", t);

    let t = Instant::now();
    let ea = effects::check(&parsed, &cg, &ws.docs, &mut findings);
    let effects_dot = ea.to_dot(&cg);
    resultflow::check(&parsed, &mut findings);
    timed("effects", t);

    let t = Instant::now();
    features::check(&parsed, &manifests, &mut findings);
    obscatalog::check(&parsed, &ws.docs, &mut findings);
    timed("workspace", t);

    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    LintReport {
        findings,
        timing,
        callgraph_dot,
        effects_dot,
    }
}

/// [`lint_workspace_report`] when only the findings matter.
pub fn lint_workspace(ws: &WorkspaceFiles) -> Vec<Finding> {
    lint_workspace_report(ws).findings
}

/// Collects the `.rs` files under `root` that the linter analyzes: crate and
/// shim sources plus the root binary, excluding build output, integration
/// test directories, and benches (test-support code legitimately unwraps).
///
/// # Errors
///
/// Returns `Err` when a directory or file under `root` cannot be read.
pub fn collect_workspace_sources(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    let mut stack: Vec<PathBuf> = vec![
        root.join("crates"),
        root.join("shims"),
        root.join("src"),
        root.join("xtask"),
    ];
    while let Some(dir) = stack.pop() {
        if !dir.is_dir() {
            continue;
        }
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .collect::<std::io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default();
            if path.is_dir() {
                if matches!(name, "target" | "tests" | "benches" | "examples" | ".git") {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/");
                files.push((rel, std::fs::read_to_string(&path)?));
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Collects everything the full analyzer reads: the `.rs` sources plus the
/// Cargo.toml manifests (root, crates, shims, xtask) and the DESIGN.md
/// catalog document.
///
/// # Errors
///
/// Returns `Err` when a directory or file under `root` cannot be read.
pub fn collect_workspace(root: &Path) -> std::io::Result<WorkspaceFiles> {
    let mut ws = WorkspaceFiles {
        sources: collect_workspace_sources(root)?,
        ..WorkspaceFiles::default()
    };
    let mut manifest_paths: Vec<PathBuf> =
        vec![root.join("Cargo.toml"), root.join("xtask/Cargo.toml")];
    for group in ["crates", "shims"] {
        let dir = root.join(group);
        if !dir.is_dir() {
            continue;
        }
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .collect::<std::io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path().join("Cargo.toml"))
            .collect();
        entries.sort();
        manifest_paths.extend(entries);
    }
    for path in manifest_paths {
        if !path.is_file() {
            continue;
        }
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        ws.manifests.push((rel, std::fs::read_to_string(&path)?));
    }
    let design = root.join("DESIGN.md");
    if design.is_file() {
        ws.docs
            .push(("DESIGN.md".to_string(), std::fs::read_to_string(&design)?));
    }
    Ok(ws)
}

/// Lints the workspace rooted at `root` with the full rule set. Returns the
/// findings; the caller decides the exit code.
///
/// # Errors
///
/// Returns `Err` when workspace sources cannot be read from disk.
pub fn run(root: &Path) -> std::io::Result<Vec<Finding>> {
    let ws = collect_workspace(root)?;
    Ok(lint_workspace(&ws))
}

/// Like [`run`], but returns the full report (timing + call-graph DOT) with
/// the workspace-collection phase included in the timing breakdown.
///
/// # Errors
///
/// Returns `Err` when workspace sources cannot be read from disk.
pub fn run_report(root: &Path) -> std::io::Result<LintReport> {
    let t = Instant::now();
    let ws = collect_workspace(root)?;
    let collect = PhaseTiming {
        name: "collect",
        duration: t.elapsed(),
    };
    let mut report = lint_workspace_report(&ws);
    report.timing.insert(0, collect);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_one(rel: &str, src: &str) -> Vec<Finding> {
        lint_sources(&[(rel.to_string(), src.to_string())])
    }

    #[test]
    fn l001_requires_two_modules() {
        let src = "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }";
        // One module: no finding.
        assert!(lint_one("crates/a/src/lib.rs", src).is_empty());
        // Two modules touching the same receiver name: findings in both.
        let fs = lint_sources(&[
            ("crates/a/src/lib.rs".into(), src.into()),
            ("crates/a/src/other.rs".into(), src.into()),
        ]);
        assert_eq!(fs.len(), 2);
        assert!(fs.iter().all(|f| f.rule == Rule::L001));
    }

    #[test]
    fn l001_annotation_silences() {
        let a = "fn f(c: &AtomicU64) { c.load(Ordering::Relaxed); } // relaxed-ok: stat";
        let b =
            "fn g(c: &AtomicU64) {\n    // relaxed-ok: stat\n    c.store(1, Ordering::Relaxed);\n}";
        let fs = lint_sources(&[
            ("crates/a/src/lib.rs".into(), a.into()),
            ("crates/a/src/other.rs".into(), b.into()),
        ]);
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn l002_unwrap_in_spawn_flagged_only_in_scoped_crates() {
        let src = r#"
fn f(rx: Receiver<u32>) {
    thread::spawn(move || {
        let v = rx.recv().unwrap();
        drop(v);
    });
}
"#;
        let fs = lint_one("crates/core/src/worker.rs", src);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].rule, Rule::L002);
        // Out of scope: shims may unwrap.
        assert!(lint_one("shims/crossbeam/src/channel.rs", src).is_empty());
    }

    #[test]
    fn l003_inversion_across_functions() {
        let src = r#"
fn ab(a: &Mutex<u32>, b: &Mutex<u32>) {
    let ga = a.lock();
    let gb = b.lock();
    drop(gb);
    drop(ga);
}
fn ba(a: &Mutex<u32>, b: &Mutex<u32>) {
    let gb = b.lock();
    let ga = a.lock();
    drop(ga);
    drop(gb);
}
"#;
        let fs = lint_one("crates/a/src/lib.rs", src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, Rule::L003);
        assert!(fs[0].message.contains("a -> b"));
        assert!(fs[0].message.contains("b -> a"));
    }

    #[test]
    fn l003_consistent_order_is_clean() {
        let src = r#"
fn ab(a: &Mutex<u32>, b: &Mutex<u32>) {
    let ga = a.lock();
    let gb = b.lock();
    drop(gb);
    drop(ga);
}
fn ab2(a: &Mutex<u32>, b: &Mutex<u32>) {
    let ga = a.lock();
    let gb = b.lock();
    drop(gb);
    drop(ga);
}
"#;
        assert!(lint_one("crates/a/src/lib.rs", src).is_empty());
    }

    #[test]
    fn l003_scope_exit_releases_guard() {
        // The inner guard dies with its block, so the second acquisition
        // does not create an edge.
        let src = r#"
fn f(a: &Mutex<u32>, b: &Mutex<u32>) {
    {
        let ga = a.lock();
        drop(ga);
    }
    let gb = b.lock();
    drop(gb);
}
fn g(b: &Mutex<u32>, a: &Mutex<u32>) {
    {
        let gb = b.lock();
        drop(gb);
    }
    let ga = a.lock();
    drop(ga);
}
"#;
        assert!(lint_one("crates/a/src/lib.rs", src).is_empty());
    }

    #[test]
    fn l004_send_under_guard() {
        let src = r#"
fn f(m: &Mutex<u32>, tx: &Sender<u32>) {
    let g = m.lock();
    tx.send(*g);
}
"#;
        let fs = lint_one("crates/a/src/lib.rs", src);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].rule, Rule::L004);
    }

    #[test]
    fn l004_send_after_drop_is_clean() {
        let src = r#"
fn f(m: &Mutex<u32>, tx: &Sender<u32>) {
    let g = m.lock();
    let v = *g;
    drop(g);
    tx.send(v);
}
"#;
        assert!(lint_one("crates/a/src/lib.rs", src).is_empty());
    }

    #[test]
    fn l005_wait_needs_loop() {
        let bad = r#"
fn f(cv: &Condvar, m: &Mutex<bool>) {
    let g = m.lock();
    let g = cv.wait(g);
    drop(g);
}
"#;
        let good = r#"
fn f(cv: &Condvar, m: &Mutex<bool>) {
    let mut g = m.lock();
    while !*g {
        g = cv.wait(g);
    }
}
"#;
        let fs = lint_one("crates/a/src/lib.rs", bad);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].rule, Rule::L005);
        assert!(lint_one("crates/a/src/lib.rs", good).is_empty());
    }

    #[test]
    fn l006_result_needs_errors_section() {
        let bad = "pub fn f() -> Result<(), E> { Ok(()) }";
        let good = "/// Does f.\n///\n/// # Errors\n/// Never, actually.\npub fn f() -> Result<(), E> { Ok(()) }";
        let fs = lint_one("crates/types/src/lib.rs", bad);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].rule, Rule::L006);
        assert!(lint_one("crates/types/src/lib.rs", good).is_empty());
        // Out of scope crates are not checked.
        assert!(lint_one("crates/obs/src/lib.rs", bad).is_empty());
    }

    #[test]
    fn l006_panic_needs_panics_section() {
        let bad = "pub fn f(x: Option<u32>) -> u32 { x.expect(\"x\") }";
        let fs = lint_one("crates/core/src/lib.rs", bad);
        assert_eq!(fs.len(), 1);
        assert!(fs[0].message.contains("# Panics"));
        let good =
            "/// # Panics\n/// When `x` is None.\npub fn f(x: Option<u32>) -> u32 { x.expect(\"x\") }";
        assert!(lint_one("crates/core/src/lib.rs", good).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = r#"
#[cfg(test)]
mod tests {
    fn f(rx: Receiver<u32>) {
        thread::spawn(move || {
            rx.recv().unwrap();
        });
    }
    pub fn g() -> Result<(), E> { Ok(()) }
}
"#;
        assert!(lint_one("crates/core/src/worker.rs", src).is_empty());
    }

    #[test]
    fn findings_are_sorted_and_display_well() {
        let src = r#"
fn f(m: &Mutex<u32>, tx: &Sender<u32>) {
    let g = m.lock();
    tx.send(*g);
}
"#;
        let fs = lint_one("crates/a/src/lib.rs", src);
        let shown = fs[0].to_string();
        assert!(shown.contains("crates/a/src/lib.rs:4"));
        assert!(shown.contains("[L004]"));
        assert!(shown.contains("fix:"));
    }
}
