//! The rule catalog.
//!
//! | rule | checks |
//! |------|--------|
//! | L001 | `Ordering::Relaxed` on an atomic touched from >1 module without a `// relaxed-ok:` audit annotation |
//! | L002 | `unwrap()` / `expect()` inside `spawn`ed closure bodies in `crates/core` and `crates/simio` |
//! | L003 | lock-acquisition-order extraction per function + cycle detection across the workspace |
//! | L004 | blocking channel `send` / `recv` while a lock guard is live in the same scope |
//! | L005 | `Condvar::wait` / `wait_timeout` not wrapped in a predicate loop |
//! | L006 | public `Result` fns / panicking fns missing `# Errors` / `# Panics` docs in `crates/types` and `crates/core` |
//! | L007 | wildcard arm in a `match` on a workspace protocol enum (see `protocol`) |
//! | L008 | buffer/cache resource leaked on an early-exit path (see `flow`) |
//!
//! L001–L006 are lexical heuristics over the token stream — deliberately so:
//! they run in milliseconds with zero dependencies, and anything they get
//! wrong is silenced in-source with `// lint-ok: <RULE> <reason>`, which
//! doubles as an audit trail. L007/L008 run over the semantic layer in
//! `parser`; the workspace-level rules L009/L010 need manifests and docs and
//! live behind [`crate::lint_workspace`].

use crate::lexer::{TokKind, Token};
use crate::lockgraph::{LockGraph, Site};
use crate::model::{match_brace, match_paren, SourceFile};
use crate::{Finding, Rule};
use std::collections::BTreeMap;

const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_nand",
    "fetch_or",
    "fetch_xor",
    "fetch_min",
    "fetch_max",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

fn is_punct(t: &Token, s: &str) -> bool {
    t.kind == TokKind::Punct && t.text == s
}

fn is_ident(t: &Token, s: &str) -> bool {
    t.kind == TokKind::Ident && t.text == s
}

/// Runs every rule over the file set.
pub fn run_all(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    findings.extend(l001_relaxed_cross_module(files));
    findings.extend(l002_unwrap_in_spawn(files));
    let (l003, l004) = l003_l004_lock_order(files);
    findings.extend(l003);
    findings.extend(l004);
    findings.extend(l005_condvar_predicate_loop(files));
    findings.extend(l006_missing_error_panic_docs(files));
    let enums = crate::protocol::collect_protocol_enums(files);
    for f in files {
        crate::protocol::check_file(f, &enums, &mut findings);
        crate::flow::check_file(f, &mut findings);
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings
}

/// The identifier the atomic operation is called on: for
/// `counters.from_raw.fetch_add(1, Ordering::Relaxed)` this is `from_raw`;
/// indexing like `totals[i].fetch_add(..)` resolves to `totals`. Shared
/// with the interprocedural layer (channel/lock naming).
pub(crate) fn receiver_of_call(tokens: &[Token], method_idx: usize) -> Option<String> {
    // tokens[method_idx] is the method name; tokens[method_idx - 1] must be `.`.
    if method_idx < 2 || !is_punct(&tokens[method_idx - 1], ".") {
        return None;
    }
    let mut i = method_idx - 2;
    if is_punct(&tokens[i], "]") {
        // Walk back over the index expression to its `[`.
        let mut depth = 0usize;
        loop {
            if is_punct(&tokens[i], "]") {
                depth += 1;
            } else if is_punct(&tokens[i], "[") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if i == 0 {
                return None;
            }
            i -= 1;
        }
        if i == 0 {
            return None;
        }
        i -= 1;
    }
    if is_punct(&tokens[i], ")") {
        // A call result like `x.col(i).load(..)` — walk back over the args.
        let mut depth = 0usize;
        loop {
            if is_punct(&tokens[i], ")") {
                depth += 1;
            } else if is_punct(&tokens[i], "(") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if i == 0 {
                return None;
            }
            i -= 1;
        }
        if i == 0 {
            return None;
        }
        i -= 1;
    }
    (tokens[i].kind == TokKind::Ident).then(|| tokens[i].text.clone())
}

/// L001: every `Ordering::Relaxed` site is grouped by the receiver of the
/// atomic call; a receiver relaxed from more than one module needs a
/// `// relaxed-ok: <reason>` audit annotation at each site.
fn l001_relaxed_cross_module(files: &[SourceFile]) -> Vec<Finding> {
    struct Sitef {
        file: usize,
        line: u32,
        annotated: bool,
    }
    // receiver -> sites
    let mut atoms: BTreeMap<String, Vec<Sitef>> = BTreeMap::new();
    for (fi, f) in files.iter().enumerate() {
        let toks = &f.tokens;
        for i in 0..toks.len() {
            if !(is_ident(&toks[i], "Ordering")
                && i + 2 < toks.len()
                && is_punct(&toks[i + 1], "::")
                && is_ident(&toks[i + 2], "Relaxed"))
            {
                continue;
            }
            if f.in_test_code(i) {
                continue;
            }
            // Find the atomic method this ordering is an argument of.
            let mut method = None;
            let lo = i.saturating_sub(16);
            for j in (lo..i).rev() {
                if toks[j].kind == TokKind::Ident
                    && ATOMIC_METHODS.contains(&toks[j].text.as_str())
                    && j + 1 < toks.len()
                    && is_punct(&toks[j + 1], "(")
                {
                    method = Some(j);
                    break;
                }
            }
            let Some(m) = method else { continue };
            let recv = receiver_of_call(toks, m).unwrap_or_else(|| "<atomic>".to_string());
            let line = toks[i].line;
            atoms.entry(recv).or_default().push(Sitef {
                file: fi,
                line,
                annotated: f.has_annotation(line, "relaxed-ok:"),
            });
        }
    }
    let mut out = Vec::new();
    for (recv, sites) in atoms {
        let mut modules: Vec<usize> = sites.iter().map(|s| s.file).collect();
        modules.sort_unstable();
        modules.dedup();
        if modules.len() < 2 {
            continue;
        }
        for s in sites.iter().filter(|s| !s.annotated) {
            out.push(Finding {
                rule: Rule::L001,
                file: files[s.file].rel.clone(),
                line: s.line,
                message: format!(
                    "atomic `{recv}` uses Ordering::Relaxed and is touched from {} modules",
                    modules.len()
                ),
                hint: "audit the ordering: upgrade to Acquire/Release if it synchronizes data, \
                       or annotate the site with `// relaxed-ok: <reason>`"
                    .to_string(),
            });
        }
    }
    out
}

/// L002: `unwrap()` / `expect()` inside a closure passed to `spawn(...)` in
/// `crates/core` and `crates/simio` — a panic there kills a pipeline worker
/// silently instead of surfacing through the scan's error channel.
fn l002_unwrap_in_spawn(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        if !(f.rel.starts_with("crates/core/src") || f.rel.starts_with("crates/simio/src")) {
            continue;
        }
        let toks = &f.tokens;
        for i in 0..toks.len() {
            if !(is_ident(&toks[i], "spawn") && i + 1 < toks.len() && is_punct(&toks[i + 1], "(")) {
                continue;
            }
            if f.in_test_code(i) {
                continue;
            }
            let call_end = match_paren(toks, i + 1);
            // Locate a closure `|…| { body }` inside the call.
            let mut j = i + 2;
            while j < call_end && !is_punct(&toks[j], "|") {
                j += 1;
            }
            if j >= call_end {
                continue; // no closure argument
            }
            // Skip the parameter list `|…|`.
            j += 1;
            while j < call_end && !is_punct(&toks[j], "|") {
                j += 1;
            }
            j += 1;
            // Body must be a braced block for a body range; expression
            // closures can't hide much.
            while j < call_end && !is_punct(&toks[j], "{") {
                j += 1;
            }
            if j >= call_end {
                continue;
            }
            let body_end = match_brace(toks, j).min(call_end);
            for k in j..body_end {
                if toks[k].kind == TokKind::Ident
                    && (toks[k].text == "unwrap" || toks[k].text == "expect")
                    && k >= 1
                    && is_punct(&toks[k - 1], ".")
                    && k + 1 < toks.len()
                    && is_punct(&toks[k + 1], "(")
                {
                    let line = toks[k].line;
                    if f.has_annotation(line, "lint-ok: L002") {
                        continue;
                    }
                    out.push(Finding {
                        rule: Rule::L002,
                        file: f.rel.clone(),
                        line,
                        message: format!("`{}()` inside a spawned thread body", toks[k].text),
                        hint: "propagate the error through the scan's error channel (send \
                               `Err(..)` on the output channel) so the failure lands in the \
                               ScanSummary instead of killing the worker"
                            .to_string(),
                    });
                }
            }
        }
    }
    out
}

const GUARD_METHODS: &[&str] = &["lock", "read", "write"];

/// L003 + L004 share the per-function scope walk: track live lock guards,
/// build the global acquisition graph (L003) and flag blocking channel ops
/// under a live guard (L004).
fn l003_l004_lock_order(files: &[SourceFile]) -> (Vec<Finding>, Vec<Finding>) {
    let mut graph = LockGraph::default();
    let mut l004 = Vec::new();

    for f in files {
        for func in &f.functions {
            let Some((bstart, bend)) = func.body else {
                continue;
            };
            if f.in_test_code(func.sig.0) {
                continue;
            }
            scan_fn_scope(f, &func.name, bstart, bend, &mut graph, &mut l004);
        }
    }

    let mut l003 = Vec::new();
    for cycle in graph.cycles() {
        // One finding per cycle, anchored at its first edge; a `lint-ok:
        // L003` on any edge site declares the order intentional and
        // silences the cycle.
        let silenced = cycle.iter().any(|(_, _, site)| {
            files
                .iter()
                .find(|f| f.rel == site.file)
                .is_some_and(|f| f.has_annotation(site.line, "lint-ok: L003"))
        });
        if silenced {
            continue;
        }
        let path: Vec<String> = cycle
            .iter()
            .map(|(a, b, s)| format!("{a} -> {b} ({}:{} in {})", s.file, s.line, s.func))
            .collect();
        let first = &cycle[0].2;
        l003.push(Finding {
            rule: Rule::L003,
            file: first.file.clone(),
            line: first.line,
            message: format!("lock-order cycle: {}", path.join(", ")),
            hint: "acquire these locks in one global order everywhere (see DESIGN.md \
                   'Concurrency invariants'); or annotate with `// lint-ok: L003 <reason>` \
                   if the cycle is unreachable"
                .to_string(),
        });
    }
    (l003, l004)
}

struct ActiveGuard {
    bound: String,
    lock: String,
    depth: i32,
}

/// True when the token window starting at `i` is an acquisition:
/// `recv.lock()` / `.read()` / `.write()` with zero arguments. Returns the
/// method index. Shared with the wait-graph walk.
pub(crate) fn acquisition_at(tokens: &[Token], i: usize) -> Option<usize> {
    if tokens[i].kind == TokKind::Ident
        && GUARD_METHODS.contains(&tokens[i].text.as_str())
        && i >= 2
        && is_punct(&tokens[i - 1], ".")
        && i + 2 < tokens.len()
        && is_punct(&tokens[i + 1], "(")
        && is_punct(&tokens[i + 2], ")")
    {
        Some(i)
    } else {
        None
    }
}

fn scan_fn_scope(
    f: &SourceFile,
    fn_name: &str,
    bstart: usize,
    bend: usize,
    graph: &mut LockGraph,
    l004: &mut Vec<Finding>,
) {
    let toks = &f.tokens;
    let mut guards: Vec<ActiveGuard> = Vec::new();
    let mut depth = 0i32;
    let mut i = bstart;
    while i < bend {
        let t = &toks[i];
        if is_punct(t, "{") {
            depth += 1;
        } else if is_punct(t, "}") {
            depth -= 1;
            guards.retain(|g| g.depth <= depth);
        } else if is_ident(t, "drop")
            && i + 3 < bend
            && is_punct(&toks[i + 1], "(")
            && toks[i + 2].kind == TokKind::Ident
            && is_punct(&toks[i + 3], ")")
        {
            let name = &toks[i + 2].text;
            guards.retain(|g| &g.bound != name);
            i += 4;
            continue;
        } else if is_ident(t, "let") {
            // `let [mut] name = expr;` — if expr *ends* in an acquisition
            // (optionally followed by `.expect(..)`/`.unwrap()`), the bound
            // value is a guard that lives to the end of this block.
            let mut j = i + 1;
            if j < bend && is_ident(&toks[j], "mut") {
                j += 1;
            }
            let bound = (j < bend && toks[j].kind == TokKind::Ident).then(|| toks[j].text.clone());
            // Find the end of the statement at balanced depth.
            let mut k = j;
            let (mut p, mut br, mut bk) = (0i32, 0i32, 0i32);
            let mut last_acq: Option<(usize, usize)> = None; // (method idx, end idx after `)`)
            while k < bend {
                let tk = &toks[k];
                match tk.text.as_str() {
                    "(" if tk.kind == TokKind::Punct => p += 1,
                    ")" if tk.kind == TokKind::Punct => p -= 1,
                    "{" if tk.kind == TokKind::Punct => br += 1,
                    "}" if tk.kind == TokKind::Punct => br -= 1,
                    "[" if tk.kind == TokKind::Punct => bk += 1,
                    "]" if tk.kind == TokKind::Punct => bk -= 1,
                    ";" if tk.kind == TokKind::Punct && p == 0 && br == 0 && bk == 0 => break,
                    _ => {}
                }
                if let Some(m) = acquisition_at(toks, k) {
                    record_acquisition(f, fn_name, toks, m, &guards, graph);
                    last_acq = Some((m, m + 3));
                }
                k += 1;
            }
            // Guard-ness: acquisition is the tail of the initializer.
            if let (Some(bound), Some((m, acq_end))) = (bound, last_acq) {
                let mut tail = acq_end;
                // Allow one trailing `.expect("…")` / `.unwrap()`.
                if tail + 1 < bend
                    && is_punct(&toks[tail], ".")
                    && (is_ident(&toks[tail + 1], "expect") || is_ident(&toks[tail + 1], "unwrap"))
                {
                    if let Some(open) =
                        (tail + 2 < bend && is_punct(&toks[tail + 2], "(")).then_some(tail + 2)
                    {
                        tail = match_paren(toks, open);
                    }
                }
                if tail == k {
                    let lock = receiver_of_call(toks, m).unwrap_or_else(|| "<lock>".to_string());
                    guards.push(ActiveGuard { bound, lock, depth });
                }
            }
            i = k + 1;
            continue;
        } else if let Some(m) = acquisition_at(toks, i) {
            record_acquisition(f, fn_name, toks, m, &guards, graph);
            i = m + 3;
            continue;
        } else if !guards.is_empty()
            && t.kind == TokKind::Ident
            && (t.text == "send" || t.text == "recv")
            && i >= 1
            && is_punct(&toks[i - 1], ".")
            && i + 1 < bend
            && is_punct(&toks[i + 1], "(")
        {
            let line = t.line;
            if !f.has_annotation(line, "lint-ok: L004") {
                let held: Vec<&str> = guards.iter().map(|g| g.lock.as_str()).collect();
                l004.push(Finding {
                    rule: Rule::L004,
                    file: f.rel.clone(),
                    line,
                    message: format!(
                        "blocking channel `{}` while holding lock guard(s) [{}]",
                        t.text,
                        held.join(", ")
                    ),
                    hint: "drop the guard before blocking (narrow the scope or `drop(guard)`), \
                           or use a try_/timeout variant; a full channel here can deadlock the \
                           pipeline"
                        .to_string(),
                });
            }
        }
        i += 1;
    }
}

fn record_acquisition(
    f: &SourceFile,
    fn_name: &str,
    toks: &[Token],
    method_idx: usize,
    guards: &[ActiveGuard],
    graph: &mut LockGraph,
) {
    let Some(new_lock) = receiver_of_call(toks, method_idx) else {
        return;
    };
    for g in guards {
        graph.add_edge(
            g.lock.clone(),
            new_lock.clone(),
            Site {
                file: f.rel.clone(),
                line: toks[method_idx].line,
                func: fn_name.to_string(),
            },
        );
    }
}

/// L005: `condvar.wait(guard)` / `wait_timeout(..)` must sit inside a
/// `loop`/`while` so the predicate is re-checked after every (possibly
/// spurious) wakeup.
fn l005_condvar_predicate_loop(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        for func in &f.functions {
            let Some((bstart, bend)) = func.body else {
                continue;
            };
            if f.in_test_code(func.sig.0) {
                continue;
            }
            let toks = &f.tokens;
            let mut loop_stack: Vec<bool> = Vec::new();
            let mut pending_loop = false;
            let mut i = bstart;
            while i < bend {
                let t = &toks[i];
                if is_ident(t, "loop") || is_ident(t, "while") {
                    pending_loop = true;
                } else if is_punct(t, "{") {
                    loop_stack.push(pending_loop);
                    pending_loop = false;
                } else if is_punct(t, "}") {
                    loop_stack.pop();
                } else if t.kind == TokKind::Ident
                    && (t.text == "wait" || t.text == "wait_timeout")
                    && i >= 1
                    && is_punct(&toks[i - 1], ".")
                    && i + 1 < bend
                    && is_punct(&toks[i + 1], "(")
                    && i + 2 < bend
                    && !is_punct(&toks[i + 2], ")")
                {
                    // Zero-arg `.wait()` is not a Condvar wait (those take
                    // the guard); requiring an argument avoids unrelated
                    // APIs.
                    if !loop_stack.iter().any(|&l| l) && !f.has_annotation(t.line, "lint-ok: L005")
                    {
                        out.push(Finding {
                            rule: Rule::L005,
                            file: f.rel.clone(),
                            line: t.line,
                            message: format!(
                                "`{}` outside a predicate loop in `{}`",
                                t.text, func.name
                            ),
                            hint: "wrap the wait in `while !predicate { guard = cv.wait(guard) }` \
                                   — condition variables wake spuriously and after missed \
                                   notifications"
                                .to_string(),
                        });
                    }
                }
                i += 1;
            }
        }
    }
    out
}

/// L006: public API documentation of failure modes in `crates/types` and
/// `crates/core`: a `pub fn` returning `Result` documents `# Errors`; a
/// `pub fn` that can panic (macro panics, `unwrap`/`expect`) documents
/// `# Panics`.
fn l006_missing_error_panic_docs(files: &[SourceFile]) -> Vec<Finding> {
    const PANIC_MACROS: &[&str] = &[
        "panic",
        "unreachable",
        "todo",
        "unimplemented",
        "assert",
        "assert_eq",
        "assert_ne",
    ];
    let mut out = Vec::new();
    for f in files {
        if !(f.rel.starts_with("crates/types/src") || f.rel.starts_with("crates/core/src")) {
            continue;
        }
        let toks = &f.tokens;
        for func in &f.functions {
            if !func.is_pub || f.in_test_code(func.sig.0) {
                continue;
            }
            let Some((bstart, bend)) = func.body else {
                continue;
            };
            // Return type: tokens between `->` and the body `{`.
            let mut returns_result = false;
            let mut seen_arrow = false;
            for t in &toks[func.sig.0..func.sig.1] {
                if is_punct(t, "->") {
                    seen_arrow = true;
                } else if seen_arrow && is_ident(t, "Result") {
                    returns_result = true;
                    break;
                }
            }
            let mut can_panic = false;
            for i in bstart..bend {
                let t = &toks[i];
                if t.kind == TokKind::Ident
                    && i + 1 < bend
                    && is_punct(&toks[i + 1], "!")
                    && PANIC_MACROS.contains(&t.text.as_str())
                {
                    can_panic = true;
                    break;
                }
                if t.kind == TokKind::Ident
                    && (t.text == "unwrap" || t.text == "expect")
                    && i >= 1
                    && is_punct(&toks[i - 1], ".")
                    && i + 1 < bend
                    && is_punct(&toks[i + 1], "(")
                {
                    can_panic = true;
                    break;
                }
            }
            let silenced = f.has_annotation(func.line, "lint-ok: L006");
            if returns_result && !func.doc.contains("# Errors") && !silenced {
                out.push(Finding {
                    rule: Rule::L006,
                    file: f.rel.clone(),
                    line: func.line,
                    message: format!(
                        "pub fn `{}` returns Result without `# Errors` docs",
                        func.name
                    ),
                    hint: "add a `# Errors` doc section describing when and why it fails"
                        .to_string(),
                });
            }
            if can_panic && !func.doc.contains("# Panics") && !silenced {
                out.push(Finding {
                    rule: Rule::L006,
                    file: f.rel.clone(),
                    line: func.line,
                    message: format!("pub fn `{}` can panic without `# Panics` docs", func.name),
                    hint: "add a `# Panics` doc section (or remove the panic path)".to_string(),
                });
            }
        }
    }
    out
}
