//! The static wait-for model behind L011/L012: one directed graph whose
//! nodes are locks (`lock:x`), channel facets (`chan:c.data`,
//! `chan:c.cap`), and condvars (`cv:c`), built from guard-tracked walks of
//! every call-graph node and closed over resolved calls.
//!
//! Channel semantics use **two nodes per channel** so that a send and a
//! recv at the same site do not fabricate a 2-cycle:
//!
//! * `recv(c)` while holding `L` — the receiver waits for data:
//!   `lock:L → chan:c.data`; and freeing capacity requires this receiver,
//!   so `chan:c.cap → lock:L`.
//! * `send(c)` while holding `M` — producing data requires `M`:
//!   `chan:c.data → lock:M`; and a bounded send waits for capacity:
//!   `lock:M → chan:c.cap`.
//! * `cv.wait(g)` releases the waited lock, so only *other* held guards
//!   edge into `cv:c`; `notify_*` under `M` adds `cv:c → lock:M`.
//!
//! A cycle through a `chan:`/`cv:` node is an L011 finding (pure lock
//! cycles stay L003's). Unguarded sends/recvs add no edges — if *any*
//! producer needs the lock the cycle appears; a lock-free alternative
//! producer is a documented source of false positives, silenced with
//! `// lint-ok: L011 <reason>`.

use crate::callgraph::{channel_name, CallGraph, Op};
use crate::lexer::{TokKind, Token};
use crate::lockgraph::{LockGraph, Site};
use crate::model::{match_paren, SourceFile};
use crate::resolve::Resolver;
use crate::rules::{acquisition_at, receiver_of_call};
use crate::{Finding, Rule};

/// Result of the unified walk: the wait-for graph plus the L012 findings
/// collected along the way (the walk already knows guard liveness, so the
/// rule falls out of it).
pub struct WaitAnalysis {
    pub graph: LockGraph,
    pub l012: Vec<Finding>,
}

fn is_punct(t: &Token, s: &str) -> bool {
    t.kind == TokKind::Punct && t.text == s
}

fn is_ident(t: &Token, s: &str) -> bool {
    t.kind == TokKind::Ident && t.text == s
}

struct Guard {
    bound: String,
    lock: String,
    depth: i32,
}

/// Walks every call-graph node and assembles the wait-for graph + L012.
pub fn build(files: &[SourceFile], resolver: &Resolver, cg: &CallGraph) -> WaitAnalysis {
    let mut graph = LockGraph::default();
    let mut l012 = Vec::new();
    for node in &cg.nodes {
        walk_node(files, resolver, cg, node, &mut graph, &mut l012);
    }
    WaitAnalysis { graph, l012 }
}

/// Adds the wait-for edges implied by `op` occurring while `locks` are held.
fn op_edges(graph: &mut LockGraph, op: &Op, locks: &[&str], site: &Site) {
    for l in locks {
        let lock = format!("lock:{l}");
        match op {
            Op::Recv(c) => {
                graph.add_edge(lock.clone(), format!("chan:{c}.data"), site.clone());
                graph.add_edge(format!("chan:{c}.cap"), lock, site.clone());
            }
            Op::Send(c) => {
                graph.add_edge(format!("chan:{c}.data"), lock.clone(), site.clone());
                graph.add_edge(lock, format!("chan:{c}.cap"), site.clone());
            }
            Op::CvWait(c) => {
                graph.add_edge(lock, format!("cv:{c}"), site.clone());
            }
            Op::Sleep | Op::Join | Op::Io(_) => {}
        }
    }
}

#[allow(clippy::too_many_lines)]
fn walk_node(
    files: &[SourceFile],
    resolver: &Resolver,
    cg: &CallGraph,
    node: &crate::callgraph::Node,
    graph: &mut LockGraph,
    l012: &mut Vec<Finding>,
) {
    let f = &files[node.file];
    let toks = &f.tokens;
    let fn_name = &f.functions[node.func].name;
    let (bstart, bend) = node.body;
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0i32;
    // Guard whose binding statement is still being scanned: pushed when the
    // statement ends so mid-initializer ops are not "under" it yet.
    let mut pending: Option<(Guard, usize)> = None;
    let mut i = bstart;
    while i < bend {
        if let Some(&(hs, he)) = node.holes.iter().find(|&&(hs, _)| i == hs) {
            i = he.max(hs + 1);
            continue;
        }
        if let Some((_, end)) = &pending {
            if i >= *end {
                let (g, _) = pending.take().unwrap();
                guards.push(g);
            }
        }
        let t = &toks[i];
        if is_punct(t, "{") {
            depth += 1;
        } else if is_punct(t, "}") {
            depth -= 1;
            guards.retain(|g| g.depth <= depth);
        } else if is_ident(t, "drop")
            && i + 3 < bend
            && is_punct(&toks[i + 1], "(")
            && toks[i + 2].kind == TokKind::Ident
            && is_punct(&toks[i + 3], ")")
        {
            let name = &toks[i + 2].text;
            guards.retain(|g| &g.bound != name);
            i += 4;
            continue;
        } else if is_ident(t, "let") && pending.is_none() {
            if let Some((g, end)) = guard_binding(toks, i, bend, depth) {
                pending = Some((g, end));
            }
        } else if let Some(m) = acquisition_at(toks, i) {
            // Lock-under-lock: edges into the unified graph (typed nodes).
            if let Some(new_lock) = receiver_of_call(toks, m) {
                let site = Site {
                    file: f.rel.clone(),
                    line: toks[m].line,
                    func: fn_name.clone(),
                };
                for g in &guards {
                    graph.add_edge(
                        format!("lock:{}", g.lock),
                        format!("lock:{new_lock}"),
                        site.clone(),
                    );
                }
            }
        } else if t.kind == TokKind::Ident && i + 1 < bend && is_punct(&toks[i + 1], "(") {
            let method = i >= 1 && is_punct(&toks[i - 1], ".");
            let name = t.text.as_str();
            let site = Site {
                file: f.rel.clone(),
                line: t.line,
                func: fn_name.clone(),
            };
            let held: Vec<&str> = guards.iter().map(|g| g.lock.as_str()).collect();
            if method && (name == "send" || name == "recv") {
                let chan = receiver_of_call(toks, i)
                    .map(|r| channel_name(&r))
                    .unwrap_or_else(|| "chan".to_string());
                let op = if name == "send" {
                    Op::Send(chan)
                } else {
                    Op::Recv(chan)
                };
                op_edges(graph, &op, &held, &site);
                // Same-scope send/recv under a guard is L004's report.
            } else if method && (name == "notify_one" || name == "notify_all") {
                if let Some(cv) = receiver_of_call(toks, i) {
                    for l in &held {
                        graph.add_edge(format!("cv:{cv}"), format!("lock:{l}"), site.clone());
                    }
                }
            } else if method
                && (name == "wait" || name == "wait_timeout")
                && i + 2 < bend
                && !is_punct(&toks[i + 2], ")")
            {
                let cv = receiver_of_call(toks, i).unwrap_or_else(|| "condvar".to_string());
                // The waited guard is the first argument; it is released by
                // the wait itself. Only *other* held guards block.
                let arg = toks.get(i + 2).map(|a| a.text.clone()).unwrap_or_default();
                let others: Vec<&str> = guards
                    .iter()
                    .filter(|g| g.bound != arg)
                    .map(|g| g.lock.as_str())
                    .collect();
                op_edges(graph, &Op::CvWait(cv.clone()), &others, &site);
                if !others.is_empty() {
                    push_l012(
                        l012,
                        f,
                        t.line,
                        format!(
                            "`{cv}.wait()` while also holding lock guard(s) [{}]",
                            others.join(", ")
                        ),
                    );
                }
            } else if !held.is_empty() && (name == "sleep" || (method && name == "join")) {
                let what = if name == "sleep" {
                    "`thread::sleep`"
                } else {
                    "`join()`"
                };
                push_l012(
                    l012,
                    f,
                    t.line,
                    format!("{what} while holding lock guard(s) [{}]", held.join(", ")),
                );
            } else {
                let argc = crate::model::count_args(toks, i + 1);
                // `guard.lock()`-family acquisitions and `unwrap`/`expect`
                // are not calls to workspace functions; `disk.read(a, b, c)`
                // and friends still resolve thanks to arity matching.
                let acquisition_like = method
                    && argc == Some(0)
                    && matches!(name, "lock" | "read" | "write" | "try_lock");
                if method && matches!(name, "unwrap" | "expect") || acquisition_like {
                    i += 1;
                    continue;
                }
                // A call: consult callee summaries when guards are live.
                let callees = resolver.resolve(files, name, node.file, argc);
                let mut reported = false;
                for r in callees {
                    // A same-name candidate that is this very function is
                    // either recursion (already covered by the direct sites
                    // above) or delegation misresolved to self; skip it.
                    if (r.file, r.func) == (node.file, node.func) && node.spawn_line.is_none() {
                        continue;
                    }
                    let Some(id) = cg.node_of(r) else { continue };
                    if !held.is_empty() {
                        for op in &cg.ops[id] {
                            op_edges(graph, op, &held, &site);
                        }
                        if !reported {
                            if let Some(bp) = &cg.block_path[id] {
                                let mut chain = vec![cg.nodes[id].display.clone()];
                                chain.extend(bp.via.iter().cloned());
                                push_l012(
                                    l012,
                                    f,
                                    t.line,
                                    format!(
                                        "call to `{name}` may block ({}) while holding lock \
                                         guard(s) [{}]; path: {}",
                                        bp.op.describe(),
                                        held.join(", "),
                                        chain.join(" -> ")
                                    ),
                                );
                                reported = true;
                            }
                        }
                    }
                }
            }
        }
        i += 1;
    }
}

fn push_l012(out: &mut Vec<Finding>, f: &SourceFile, line: u32, message: String) {
    if f.has_annotation(line, "unblock-ok:") || f.has_annotation(line, "lint-ok: L012") {
        return;
    }
    out.push(Finding {
        rule: Rule::L012,
        file: f.rel.clone(),
        line,
        message,
        hint: "drop the guard before the blocking operation (narrow the scope or \
               `drop(guard)`), or audit the site with `// unblock-ok: <reason>` if the callee \
               cannot actually block here"
            .to_string(),
    });
}

/// If the `let` at `i` binds a guard (initializer tail is a zero-arg
/// `.lock()`/`.read()`/`.write()`, optionally `.unwrap()`/`.expect(..)`),
/// returns the guard plus the statement-end token index.
fn guard_binding(toks: &[Token], i: usize, bend: usize, depth: i32) -> Option<(Guard, usize)> {
    let mut j = i + 1;
    if j < bend && is_ident(&toks[j], "mut") {
        j += 1;
    }
    let bound = (j < bend && toks[j].kind == TokKind::Ident).then(|| toks[j].text.clone())?;
    let mut k = j;
    let (mut p, mut br, mut bk) = (0i32, 0i32, 0i32);
    let mut last_acq: Option<(usize, usize)> = None;
    while k < bend {
        let tk = &toks[k];
        match tk.text.as_str() {
            "(" if tk.kind == TokKind::Punct => p += 1,
            ")" if tk.kind == TokKind::Punct => p -= 1,
            "{" if tk.kind == TokKind::Punct => br += 1,
            "}" if tk.kind == TokKind::Punct => br -= 1,
            "[" if tk.kind == TokKind::Punct => bk += 1,
            "]" if tk.kind == TokKind::Punct => bk -= 1,
            ";" if tk.kind == TokKind::Punct && p == 0 && br == 0 && bk == 0 => break,
            _ => {}
        }
        if let Some(m) = acquisition_at(toks, k) {
            last_acq = Some((m, m + 3));
        }
        k += 1;
    }
    let (m, acq_end) = last_acq?;
    let mut tail = acq_end;
    if tail + 1 < bend
        && is_punct(&toks[tail], ".")
        && (is_ident(&toks[tail + 1], "expect") || is_ident(&toks[tail + 1], "unwrap"))
    {
        if let Some(open) = (tail + 2 < bend && is_punct(&toks[tail + 2], "(")).then_some(tail + 2)
        {
            tail = match_paren(toks, open);
        }
    }
    if tail != k {
        return None;
    }
    let lock = receiver_of_call(toks, m).unwrap_or_else(|| "<lock>".to_string());
    Some((Guard { bound, lock, depth }, k))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(src: &str) -> WaitAnalysis {
        let files = vec![SourceFile::parse("crates/a/src/lib.rs", src)];
        let resolver = Resolver::build(&files, &[]);
        let cg = CallGraph::build(&files, &resolver);
        build(&files, &resolver, &cg)
    }

    #[test]
    fn recv_and_send_under_same_lock_cycle_through_data_node() {
        let wa = analyze(
            "fn consumer(m: &Mutex<u32>, work_rx: &Receiver<u32>) {\n    let g = m.lock();\n    let v = work_rx.recv(); // lint-ok: L004 test fixture\n    drop(v); drop(g);\n}\nfn producer(m: &Mutex<u32>, work_tx: &Sender<u32>) {\n    let g = m.lock();\n    work_tx.send(1); // lint-ok: L004 test fixture\n    drop(g);\n}\n",
        );
        let cycles = wa.graph.cycles();
        assert!(
            cycles
                .iter()
                .any(|c| c.iter().any(|(a, _, _)| a.starts_with("chan:"))),
            "{cycles:?}"
        );
    }

    #[test]
    fn send_and_recv_same_site_is_not_a_cycle() {
        // One function both sends and receives under the lock: the data and
        // cap facets keep the edges from closing on themselves spuriously
        // into a single-channel 2-cycle of the same facet.
        let wa = analyze(
            "fn pump(m: &Mutex<u32>, a_tx: &Sender<u32>, b_rx: &Receiver<u32>) {\n    let g = m.lock();\n    a_tx.send(1); // lint-ok: L004 test fixture\n    drop(g);\n}\n",
        );
        assert!(wa.graph.cycles().is_empty());
    }

    #[test]
    fn interprocedural_block_under_guard_is_l012() {
        let wa = analyze(
            "fn outer(m: &Mutex<u32>, rx: &Receiver<u32>) {\n    let g = m.lock();\n    helper(rx);\n    drop(g);\n}\nfn helper(rx: &Receiver<u32>) { flush(rx); }\nfn flush(done_rx: &Receiver<u32>) { done_rx.recv(); }\n",
        );
        assert_eq!(wa.l012.len(), 1, "{:?}", wa.l012);
        assert!(wa.l012[0].message.contains("helper"));
        assert!(wa.l012[0].message.contains("recv"));
        assert!(wa.l012[0].message.contains("path:"));
    }

    #[test]
    fn unblock_ok_audits_the_site() {
        let wa = analyze(
            "fn outer(m: &Mutex<u32>, rx: &Receiver<u32>) {\n    let g = m.lock();\n    helper(rx); // unblock-ok: helper only blocks at shutdown\n    drop(g);\n}\nfn helper(done_rx: &Receiver<u32>) { done_rx.recv(); }\n",
        );
        assert!(wa.l012.is_empty(), "{:?}", wa.l012);
    }

    #[test]
    fn call_after_drop_is_clean() {
        let wa = analyze(
            "fn outer(m: &Mutex<u32>, rx: &Receiver<u32>) {\n    let g = m.lock();\n    drop(g);\n    helper(rx);\n}\nfn helper(done_rx: &Receiver<u32>) { done_rx.recv(); }\n",
        );
        assert!(wa.l012.is_empty(), "{:?}", wa.l012);
    }
}
