//! A small hand-rolled Rust lexer.
//!
//! The same tokenization discipline as `scanraw_rawfile::tokenize` — a single
//! forward pass that records positions — applied to Rust source instead of
//! CSV. It produces just enough structure for the rule catalog: identifiers,
//! punctuation (with `::`, `->` and `=>` fused), literals, lifetimes, and a
//! side table of comments with line ranges (the carrier for `relaxed-ok:` /
//! `lint-ok:` audit annotations).
//!
//! It is deliberately *not* a full lexer: token texts are borrowed slices of
//! the source, numeric literals are scanned coarsely, and shebangs /
//! `cfg_attr` tricks are out of scope. Every construct that appears in this
//! workspace — nested block comments, raw strings, byte strings, char
//! literals vs. lifetimes — is handled.

/// What a token is, at the granularity the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (the rules match on text).
    Ident,
    /// Punctuation; multi-char for `::`, `->`, `=>`, single-char otherwise.
    Punct,
    /// String / raw-string / byte-string literal (text excludes quotes).
    Str,
    /// Character or byte literal.
    Char,
    /// Numeric literal (coarse: includes suffixes).
    Num,
    /// Lifetime or loop label, without the leading `'`.
    Lifetime,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

/// A comment (line or block) with its covered line range, 1-based inclusive.
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: u32,
    pub end_line: u32,
    pub text: String,
    /// `///`, `//!`, `/**` or `/*!`.
    pub doc: bool,
}

/// Lexer output: the token stream plus the comment side table.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens and comments. Never fails: unterminated literals
/// simply run to end-of-file (the compiler is the arbiter of validity; the
/// linter only needs a best-effort stream).
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    macro_rules! push_tok {
        ($kind:expr, $text:expr, $line:expr) => {
            out.tokens.push(Token {
                kind: $kind,
                text: $text,
                line: $line,
            })
        };
    }

    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i;
            while i < n && b[i] != '\n' {
                i += 1;
            }
            let text: String = b[start..i].iter().collect();
            let doc = text.starts_with("///") || text.starts_with("//!");
            out.comments.push(Comment {
                line,
                end_line: line,
                text,
                doc,
            });
            continue;
        }
        // Block comment (nested).
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let start = i;
            let start_line = line;
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    if b[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            let text: String = b[start..i.min(n)].iter().collect();
            let doc = text.starts_with("/**") || text.starts_with("/*!");
            out.comments.push(Comment {
                line: start_line,
                end_line: line,
                text,
                doc,
            });
            continue;
        }
        // Raw strings / raw identifiers / byte strings, before plain idents.
        if c == 'r' || c == 'b' {
            let mut j = i;
            let mut is_byte = false;
            if b[j] == 'b' {
                is_byte = true;
                j += 1;
            }
            let _ = is_byte;
            let raw = j < n && b[j] == 'r';
            if raw {
                j += 1;
            }
            if raw && j < n && (b[j] == '"' || b[j] == '#') {
                // Raw (byte) string: r"…", r#"…"#, br##"…"## …
                let mut hashes = 0usize;
                while j < n && b[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < n && b[j] == '"' {
                    j += 1;
                    let text_start = j;
                    let tok_line = line;
                    let mut closed = false;
                    while j < n {
                        if b[j] == '\n' {
                            line += 1;
                        }
                        if b[j] == '"' {
                            let mut k = j + 1;
                            let mut seen = 0usize;
                            while k < n && b[k] == '#' && seen < hashes {
                                seen += 1;
                                k += 1;
                            }
                            if seen == hashes {
                                push_tok!(
                                    TokKind::Str,
                                    b[text_start..j].iter().collect(),
                                    tok_line
                                );
                                i = k;
                                closed = true;
                                break;
                            }
                        }
                        j += 1;
                    }
                    if !closed {
                        // Unterminated raw string: emit what we have and
                        // stop — without this the outer loop never advances
                        // `i` and the lexer spins forever.
                        push_tok!(TokKind::Str, b[text_start..].iter().collect(), tok_line);
                        i = n;
                    }
                    continue;
                }
                // `r#ident` raw identifier: fall through to ident lexing
                // below, skipping the `r#` prefix.
                if hashes == 1 && j < n && is_ident_start(b[j]) {
                    let start = j;
                    while j < n && is_ident_continue(b[j]) {
                        j += 1;
                    }
                    push_tok!(TokKind::Ident, b[start..j].iter().collect(), line);
                    i = j;
                    continue;
                }
            }
            if c == 'b' && i + 1 < n && (b[i + 1] == '"' || b[i + 1] == '\'') {
                // Byte string / byte char: delegate to the quote handling
                // below by skipping the `b` prefix.
                i += 1;
                // fall through to the '"' / '\'' branches on next iteration
                continue;
            }
            // Plain identifier starting with r/b.
        }
        // Plain string literal.
        if c == '"' {
            let tok_line = line;
            i += 1;
            let start = i;
            while i < n && b[i] != '"' {
                if b[i] == '\\' {
                    // A `\` line continuation escapes the newline itself;
                    // still count it or every later token's line drifts.
                    if i + 1 < n && b[i + 1] == '\n' {
                        line += 1;
                    }
                    i += 2;
                    continue;
                }
                if b[i] == '\n' {
                    line += 1;
                }
                i += 1;
            }
            push_tok!(TokKind::Str, b[start..i.min(n)].iter().collect(), tok_line);
            i += 1; // closing quote
            continue;
        }
        // Char literal vs lifetime/label.
        if c == '\'' {
            if i + 1 < n && b[i + 1] == '\\' {
                // Escaped char literal: '\n', '\u{..}', '\'', …. Skip the
                // backslash *and* the escaped character before hunting the
                // closing quote, or `'\''` terminates on its own escaped
                // quote and the real closing quote leaks into the stream
                // (where it fuses with following code as a bogus lifetime).
                let tok_line = line;
                let start = i + 1;
                i += 3;
                while i < n && b[i] != '\'' {
                    i += 1;
                }
                push_tok!(TokKind::Char, b[start..i.min(n)].iter().collect(), tok_line);
                i += 1;
                continue;
            }
            if i + 2 < n && is_ident_start(b[i + 1]) && b[i + 2] == '\'' {
                // Single-char literal like 'x'.
                push_tok!(TokKind::Char, b[i + 1].to_string(), line);
                i += 3;
                continue;
            }
            if i + 1 < n && is_ident_start(b[i + 1]) {
                // Lifetime or loop label.
                let start = i + 1;
                let mut j = start;
                while j < n && is_ident_continue(b[j]) {
                    j += 1;
                }
                push_tok!(TokKind::Lifetime, b[start..j].iter().collect(), line);
                i = j;
                continue;
            }
            // Something like '(' as a char: '(' …
            if i + 2 < n && b[i + 2] == '\'' {
                push_tok!(TokKind::Char, b[i + 1].to_string(), line);
                i += 3;
                continue;
            }
            // Lone quote (invalid source); skip.
            i += 1;
            continue;
        }
        // Identifier / keyword.
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_continue(b[i]) {
                i += 1;
            }
            push_tok!(TokKind::Ident, b[start..i].iter().collect(), line);
            continue;
        }
        // Number (coarse: digits, `_`, alphanumeric suffixes, and a dot when
        // followed by a digit so method calls like `1.max(x)` stay intact).
        if c.is_ascii_digit() {
            let start = i;
            while i < n
                && (is_ident_continue(b[i])
                    || (b[i] == '.' && i + 1 < n && b[i + 1].is_ascii_digit()))
            {
                i += 1;
            }
            push_tok!(TokKind::Num, b[start..i].iter().collect(), line);
            continue;
        }
        // Punctuation; fuse the three digraphs the rules care about.
        if c == ':' && i + 1 < n && b[i + 1] == ':' {
            push_tok!(TokKind::Punct, "::".to_string(), line);
            i += 2;
            continue;
        }
        if c == '-' && i + 1 < n && b[i + 1] == '>' {
            push_tok!(TokKind::Punct, "->".to_string(), line);
            i += 2;
            continue;
        }
        if c == '=' && i + 1 < n && b[i + 1] == '>' {
            push_tok!(TokKind::Punct, "=>".to_string(), line);
            i += 2;
            continue;
        }
        push_tok!(TokKind::Punct, c.to_string(), line);
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_and_digraphs() {
        let t = kinds("Ordering::Relaxed -> x => y");
        assert_eq!(t[0], (TokKind::Ident, "Ordering".into()));
        assert_eq!(t[1], (TokKind::Punct, "::".into()));
        assert_eq!(t[2], (TokKind::Ident, "Relaxed".into()));
        assert_eq!(t[3], (TokKind::Punct, "->".into()));
        assert_eq!(t[5], (TokKind::Punct, "=>".into()));
    }

    #[test]
    fn strings_do_not_leak_tokens() {
        let t = kinds(r#"let s = "Ordering::Relaxed unwrap()";"#);
        assert!(t
            .iter()
            .all(|(k, x)| *k != TokKind::Ident || (x != "Ordering" && x != "unwrap")));
    }

    #[test]
    fn raw_strings_and_escapes() {
        let t = kinds("let s = r#\"a \" b\"#; let c = '\\n'; let q = \"x\\\"y\";");
        let strs: Vec<&String> = t
            .iter()
            .filter(|(k, _)| *k == TokKind::Str)
            .map(|(_, x)| x)
            .collect();
        assert_eq!(strs[0], "a \" b");
        assert_eq!(strs[1], "x\\\"y");
    }

    #[test]
    fn lifetime_vs_char() {
        let t = kinds("fn f<'a>(x: &'a str) { let c = 'x'; }");
        assert!(t.iter().any(|(k, x)| *k == TokKind::Lifetime && x == "a"));
        assert!(t.iter().any(|(k, x)| *k == TokKind::Char && x == "x"));
    }

    #[test]
    fn comments_collected_with_lines() {
        let l = lex("// one\nlet x = 1; // two\n/* three\nspans */\n/// doc\nfn f() {}\n");
        assert_eq!(l.comments.len(), 4);
        assert_eq!(l.comments[0].line, 1);
        assert_eq!(l.comments[1].line, 2);
        assert_eq!((l.comments[2].line, l.comments[2].end_line), (3, 4));
        assert!(l.comments[3].doc);
        // Tokens still track lines past multi-line comments.
        let f = l.tokens.iter().find(|t| t.text == "fn").unwrap();
        assert_eq!(f.line, 6);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* a /* b */ c */ fn f() {}");
        assert_eq!(l.comments.len(), 1);
        assert_eq!(l.tokens[0].text, "fn");
    }

    #[test]
    fn unterminated_raw_string_terminates_lexer() {
        // Regression: an unterminated raw string used to spin forever when
        // the opening quote was the last character.
        let l = lex("let s = r\"");
        assert!(l.tokens.iter().any(|t| t.kind == TokKind::Str));
        let l = lex("let s = r#\"abc");
        let s = l.tokens.iter().find(|t| t.kind == TokKind::Str).unwrap();
        assert_eq!(s.text, "abc");
    }

    #[test]
    fn escaped_newline_in_string_keeps_lines_aligned() {
        // Regression: the `\`-continuation newline was skipped without
        // counting, shifting every later token up a line (and with it the
        // `lint-ok:` annotation lookup).
        let l = lex("let s = \"a\\\nb\";\nfn f() {}\n");
        let f = l.tokens.iter().find(|t| t.text == "fn").unwrap();
        assert_eq!(f.line, 3);
    }

    #[test]
    fn escaped_quote_char_literal() {
        // Regression: '\'' used to stop at its own escaped quote, leaking
        // the real closing quote back into the stream where it fused with
        // following identifiers as a bogus lifetime.
        let t = kinds("let q = '\\''; let x = send;");
        assert!(t.iter().any(|(k, x)| *k == TokKind::Char && x == "\\'"));
        assert!(t.iter().any(|(k, x)| *k == TokKind::Ident && x == "send"));
        assert!(!t.iter().any(|(k, _)| *k == TokKind::Lifetime));
        // '\u{7f}' still lexes as one char token.
        let t = kinds("let c = '\\u{7f}';");
        assert!(t.iter().any(|(k, x)| *k == TokKind::Char && x == "\\u{7f}"));
    }
}
