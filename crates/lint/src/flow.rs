//! L008 — chunk/resource flow.
//!
//! A chunk pulled out of a bounded buffer, a cache slot taken, a permit
//! acquired: in this pipeline such a value must reach a `push`/`store`/
//! `release`/return on *every* path, or the resource is silently lost — a
//! cache slot leaks, backpressure accounting drifts, a chunk vanishes from
//! the pipeline. The compiler cannot see this (dropping is always legal);
//! this rule walks each function's statement tree and flags acquire bindings
//! that an early `return`/`break`/`continue`/`?` can drop before any use.
//!
//! Intraprocedural and deliberately coarse: *any* mention of the binding
//! counts as consumption (passing to a function, pushing, even `drop(x)` —
//! an explicit drop is a decision, not an accident). The rule only fires
//! when a path exits with the value provably untouched. Scope is the
//! pipeline crates (`core`, `engine`, `storage`, `simio`, `rawfile`);
//! silence sites with `// lint-ok: L008 <reason>`.

use crate::lexer::TokKind;
use crate::model::{match_paren, SourceFile};
use crate::parser::{self, Block, ExitKind, Stmt};
use crate::{Finding, Rule};

/// Methods whose zero-argument call hands the caller ownership of a pooled
/// resource. The empty-argument requirement keeps `Iterator::take(n)` and
/// `mem::take(&mut x)` out.
const ACQUIRE_METHODS: &[&str] = &["pop", "pop_front", "take", "acquire"];

const SCOPE: &[&str] = &[
    "crates/core/",
    "crates/engine/",
    "crates/storage/",
    "crates/simio/",
    "crates/rawfile/",
];

fn is_punct(f: &SourceFile, i: usize, s: &str) -> bool {
    f.tokens
        .get(i)
        .is_some_and(|t| t.kind == TokKind::Punct && t.text == s)
}

/// Does `[start, end)` contain a tail-position acquire call — `.pop()` /
/// `.take()` / … possibly followed by `.unwrap()` / `.expect("…")` / `?`?
fn is_acquire_init(f: &SourceFile, start: usize, end: usize) -> bool {
    let toks = &f.tokens;
    let mut i = start;
    while i + 2 < end {
        if is_punct(f, i, ".")
            && toks[i + 1].kind == TokKind::Ident
            && ACQUIRE_METHODS.contains(&toks[i + 1].text.as_str())
            && is_punct(f, i + 2, "(")
            && is_punct(f, i + 3, ")")
        {
            // Verify the rest of the init is only unwrap/expect/`?`.
            let mut j = i + 4;
            while j < end {
                let t = &toks[j];
                let ok = (t.kind == TokKind::Punct
                    && matches!(t.text.as_str(), "." | "?" | ";" | ")" | "("))
                    || (t.kind == TokKind::Ident
                        && matches!(t.text.as_str(), "unwrap" | "expect" | "else"))
                    || t.kind == TokKind::Str;
                if t.kind == TokKind::Punct && t.text == "{" {
                    return true; // let-else / if-let body begins
                }
                if !ok {
                    return false;
                }
                if t.kind == TokKind::Punct && t.text == "(" {
                    j = match_paren(toks, j);
                    continue;
                }
                j += 1;
            }
            return true;
        }
        i += 1;
    }
    false
}

/// Any token in `[start, end)` is the ident `needle`.
fn mentions(f: &SourceFile, start: usize, end: usize, needle: &str) -> bool {
    f.tokens[start.min(f.tokens.len())..end.min(f.tokens.len())]
        .iter()
        .any(|t| t.kind == TokKind::Ident && t.text == needle)
}

/// An acquire binding extracted from a statement: the bound name and where
/// the consumption scan starts.
enum Acquired {
    /// `let x = buf.pop();` / `let Some(x) = buf.pop() else { … };` —
    /// scan continues in the *enclosing* block after this statement.
    Local(String),
    /// `if let Some(x) = buf.pop() { … }` / `while let …` — the binding
    /// lives only in the statement's first block.
    Scoped(String),
}

fn acquire_binding(f: &SourceFile, stmt: &Stmt) -> Option<Acquired> {
    let (start, end) = stmt.range;
    let first = &f.tokens[start];
    if first.kind == TokKind::Ident && first.text == "let" {
        let name = stmt.binding.clone()?;
        let init = stmt.init_start?;
        if is_acquire_init(f, init, end) {
            return Some(Acquired::Local(name));
        }
        return None;
    }
    // `if let PAT = EXPR {` / `while let PAT = EXPR {`
    if first.kind == TokKind::Ident
        && matches!(first.text.as_str(), "if" | "while")
        && f.tokens.get(start + 1).is_some_and(|t| t.text == "let")
    {
        // Binding: sole ident inside `Pat(x)` or a bare ident pattern.
        let mut eq = None;
        for i in start + 2..end {
            if is_punct(f, i, "=") {
                eq = Some(i);
                break;
            }
            if is_punct(f, i, "{") {
                break;
            }
        }
        let eq = eq?;
        let name = if is_punct(f, start + 3, "(")
            && f.tokens
                .get(start + 4)
                .is_some_and(|t| t.kind == TokKind::Ident)
            && is_punct(f, start + 5, ")")
        {
            f.tokens[start + 4].text.clone()
        } else if f.tokens[start + 2].kind == TokKind::Ident && eq == start + 3 {
            f.tokens[start + 2].text.clone()
        } else {
            return None;
        };
        if name == "_" {
            return None;
        }
        // Init: `=` to the body `{`.
        let mut body = eq + 1;
        let (mut p, mut bk) = (0i32, 0i32);
        while body < end {
            let t = &f.tokens[body];
            match t.text.as_str() {
                "(" if t.kind == TokKind::Punct => p += 1,
                ")" if t.kind == TokKind::Punct => p -= 1,
                "[" if t.kind == TokKind::Punct => bk += 1,
                "]" if t.kind == TokKind::Punct => bk -= 1,
                "{" if t.kind == TokKind::Punct && p == 0 && bk == 0 => break,
                _ => {}
            }
            body += 1;
        }
        if is_acquire_init(f, eq + 1, body) {
            return Some(Acquired::Scoped(name));
        }
    }
    None
}

/// Outcome of walking one statement sequence for `needle`.
enum Verdict {
    /// A statement touched the binding (or every exit handled it).
    Consumed,
    /// Leak found and reported.
    Leaked,
    /// Fell off the end without any mention.
    Untouched,
}

/// Scans `stmts` for the fate of `needle`; reports the first leak.
fn scan(
    f: &SourceFile,
    stmts: &[Stmt],
    needle: &str,
    bind_line: u32,
    findings: &mut Vec<Finding>,
) -> Verdict {
    for stmt in stmts {
        let (s, e) = stmt.range;
        let touched = mentions(f, s, e, needle);
        if stmt.exit != ExitKind::None {
            if touched {
                return Verdict::Consumed;
            }
            report(
                f,
                stmt.line,
                needle,
                bind_line,
                exit_name(stmt.exit),
                findings,
            );
            return Verdict::Leaked;
        }
        if touched {
            return Verdict::Consumed;
        }
        if stmt.has_question {
            report(f, stmt.line, needle, bind_line, "`?`", findings);
            return Verdict::Leaked;
        }
        // Untouched statement with nested blocks: any branch that exits the
        // function before the binding is used drops it. A `break` inside a
        // loop *statement* only exits that inner loop, so it cannot drop a
        // binding that lives outside it.
        let breaks_leak = !is_loop_stmt(f, stmt);
        for (bi, b) in stmt.blocks.iter().enumerate() {
            if stmt.else_block == Some(bi) {
                continue; // let-else else-block: binding not in scope
            }
            if let Some(line) = exit_without_mention(f, b, needle, breaks_leak) {
                report(f, line.0, needle, bind_line, line.1, findings);
                return Verdict::Leaked;
            }
        }
    }
    Verdict::Untouched
}

fn is_loop_stmt(f: &SourceFile, stmt: &Stmt) -> bool {
    let t = &f.tokens[stmt.range.0];
    t.kind == TokKind::Ident && matches!(t.text.as_str(), "loop" | "while" | "for")
}

/// Finds an exit inside `block` (recursively) that drops `needle` — a
/// `return` or top-level `?` always, a `break`/`continue` only while the
/// binding's scope is the loop being exited (`breaks_leak`). Scanning stops
/// at the first mention of `needle` on a path.
fn exit_without_mention(
    f: &SourceFile,
    block: &Block,
    needle: &str,
    breaks_leak: bool,
) -> Option<(u32, &'static str)> {
    for stmt in &block.stmts {
        let (s, e) = stmt.range;
        if mentions(f, s, e, needle) {
            return None; // this path handles the binding; stop here
        }
        match stmt.exit {
            ExitKind::Return => return Some((stmt.line, "return")),
            ExitKind::Break if breaks_leak => return Some((stmt.line, "break")),
            ExitKind::Continue if breaks_leak => return Some((stmt.line, "continue")),
            _ => {}
        }
        if stmt.has_question {
            return Some((stmt.line, "`?`"));
        }
        let inner_breaks = breaks_leak && !is_loop_stmt(f, stmt);
        for b in &stmt.blocks {
            if let Some(hit) = exit_without_mention(f, b, needle, inner_breaks) {
                return Some(hit);
            }
        }
    }
    None
}

fn exit_name(e: ExitKind) -> &'static str {
    match e {
        ExitKind::Return => "return",
        ExitKind::Break => "break",
        ExitKind::Continue => "continue",
        ExitKind::None => "fallthrough",
    }
}

fn report(
    f: &SourceFile,
    line: u32,
    needle: &str,
    bind_line: u32,
    how: &str,
    findings: &mut Vec<Finding>,
) {
    if f.has_annotation(line, "lint-ok: L008") || f.has_annotation(bind_line, "lint-ok: L008") {
        return;
    }
    let message = if how == "dropped" {
        format!("resource `{needle}` acquired on line {bind_line} is never forwarded or released")
    } else {
        format!(
            "resource `{needle}` acquired on line {bind_line} is dropped by {how} before being \
             forwarded or released"
        )
    };
    findings.push(Finding {
        rule: Rule::L008,
        file: f.rel.clone(),
        line,
        message,
        hint: format!(
            "push/store/release `{needle}` (or drop it explicitly) on this path; \
             silence with `// lint-ok: L008 <reason>` if the drop is intended"
        ),
    });
}

fn walk(f: &SourceFile, block: &Block, findings: &mut Vec<Finding>) {
    for (idx, stmt) in block.stmts.iter().enumerate() {
        for b in &stmt.blocks {
            walk(f, b, findings);
        }
        match acquire_binding(f, stmt) {
            Some(Acquired::Local(name)) => {
                // A `?` on the acquire statement itself cannot drop the
                // binding (it fails before binding), so start after it.
                match scan(f, &block.stmts[idx + 1..], &name, stmt.line, findings) {
                    Verdict::Untouched => {
                        report(f, stmt.line, &name, stmt.line, "dropped", findings)
                    }
                    Verdict::Consumed | Verdict::Leaked => {}
                }
            }
            Some(Acquired::Scoped(name)) => {
                if let Some(body) = stmt.blocks.first() {
                    match scan(f, &body.stmts, &name, stmt.line, findings) {
                        Verdict::Untouched => {
                            report(f, stmt.line, &name, stmt.line, "dropped", findings)
                        }
                        Verdict::Consumed | Verdict::Leaked => {}
                    }
                }
            }
            None => {}
        }
    }
}

/// Runs L008 over one file.
pub fn check_file(f: &SourceFile, findings: &mut Vec<Finding>) {
    if !SCOPE.iter().any(|p| f.rel.starts_with(p)) {
        return;
    }
    for func in &f.functions {
        let Some((s, e)) = func.body else { continue };
        if f.in_test_code(s) {
            continue;
        }
        let block = parser::parse_block(f, s, e);
        walk(f, &block, &mut *findings);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let f = SourceFile::parse("crates/core/src/buf.rs", src);
        let mut out = Vec::new();
        check_file(&f, &mut out);
        out
    }

    #[test]
    fn question_mark_between_acquire_and_use_leaks() {
        let fs = run(r#"
fn f(b: &Buf, out: &Tx) -> Result<(), E> {
    let c = b.pop();
    let m = meta()?;
    out.send(c, m);
    Ok(())
}
"#);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, Rule::L008);
        assert!(fs[0].message.contains('?'), "{}", fs[0].message);
    }

    #[test]
    fn early_return_branch_leaks() {
        let fs = run(r#"
fn f(b: &Buf, out: &Tx) -> Result<(), E> {
    let c = b.pop();
    if jammed() {
        return Err(E::Jam);
    }
    out.send(c);
    Ok(())
}
"#);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("return"), "{}", fs[0].message);
    }

    #[test]
    fn branch_that_releases_is_clean() {
        let fs = run(r#"
fn f(b: &Buf, out: &Tx) -> Result<(), E> {
    let c = b.pop();
    if jammed() {
        b.push(c);
        return Err(E::Jam);
    }
    out.send(c);
    Ok(())
}
"#);
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn explicit_drop_is_consumption() {
        let fs = run(r#"
fn f(b: &Buf) {
    let c = b.pop();
    drop(c);
}
"#);
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn never_forwarded_flagged_at_binding() {
        let fs = run("fn f(b: &Buf) { let c = b.pop(); log(\"got one\"); }");
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(
            fs[0].message.contains("never forwarded"),
            "{}",
            fs[0].message
        );
    }

    #[test]
    fn let_else_exit_does_not_count_as_leak() {
        // The else-block runs only when the binding never existed.
        let fs = run(r#"
fn f(b: &Buf, out: &Tx) -> Result<(), E> {
    let Some(c) = b.pop() else {
        return Ok(());
    };
    out.send(c);
    Ok(())
}
"#);
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn while_let_body_consuming_is_clean() {
        let fs = run(r#"
fn f(b: &Buf, out: &Tx) {
    while let Some(c) = b.pop() {
        out.send(c);
    }
}
"#);
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn if_let_body_break_before_use_leaks() {
        let fs = run(r#"
fn f(b: &Buf, out: &Tx) {
    loop {
        if let Some(c) = b.pop() {
            if full() {
                break;
            }
            out.send(c);
        }
    }
}
"#);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("break"), "{}", fs[0].message);
    }

    #[test]
    fn iterator_take_with_args_not_an_acquire() {
        let fs = run(r#"
fn f(v: &[u32]) -> Vec<u32> {
    let head = v.iter().take(3).copied().collect();
    maybe()?;
    head
}
"#);
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn annotation_silences() {
        let fs = run(
            "fn f(b: &Buf) {\n    // lint-ok: L008 metrics probe discards sample\n    let c = b.pop();\n    log();\n}",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn out_of_scope_crates_skipped() {
        let f = SourceFile::parse("crates/obs/src/x.rs", "fn f(b: &Buf) { let c = b.pop(); }");
        let mut out = Vec::new();
        check_file(&f, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn acquire_with_unwrap_then_leak_detected() {
        let fs = run(r#"
fn f(b: &Buf, out: &Tx) -> Result<(), E> {
    let c = b.pop().unwrap();
    guard()?;
    out.send(c);
    Ok(())
}
"#);
        assert_eq!(fs.len(), 1, "{fs:?}");
    }
}
