//! Crate-aware symbol resolution: the layer that turns a call name at a
//! site into candidate function definitions elsewhere in the workspace.
//!
//! Resolution is deliberately heuristic — there is no type information.
//! The precision levers, in order:
//!
//! 1. **Crate attribution.** Every source file belongs to one crate,
//!    identified by its directory (`crates/core`, `shims/parking_lot`,
//!    `xtask`, `src` for the root crate). Names resolve within the caller's
//!    own crate first.
//! 2. **The manifest crate graph.** Cross-crate candidates are only
//!    considered in the caller's dependency closure (from `Cargo.toml`
//!    `[dependencies]`), and only `pub fn`s qualify.
//! 3. **`use` imports.** When the calling file imports specific workspace
//!    crates (`use scanraw_obs::…`), those crates are tried before the full
//!    dependency closure.
//! 4. **Arity matching.** A call site with a countable argument list only
//!    resolves to definitions with the same non-`self` parameter count.
//!    This is what keeps `guard.read()` (zero args) from resolving to a
//!    three-parameter `Disk::read`, the single worst noise source of
//!    name-only resolution.
//! 5. **Ambiguity cutoff.** A name with more than [`MAX_CANDIDATES`]
//!    definitions (common words like `new`, `get`, `len`) resolves to
//!    nothing rather than to noise. This is the documented unsoundness:
//!    widely-shared method names are invisible to the call graph.

use crate::lexer::TokKind;
use crate::manifest::Manifest;
use crate::model::{count_args, SourceFile};
use std::collections::{BTreeMap, BTreeSet};

/// Above this many same-name candidates the resolver gives up (see module
/// docs — precision beats recall for the rules built on top).
pub const MAX_CANDIDATES: usize = 6;

/// A function definition: indexes into the parsed file set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct FnRef {
    pub file: usize,
    pub func: usize,
}

/// The workspace crate graph, keyed by crate *directory* (which exists even
/// when no manifests are supplied, e.g. from `lint_sources` in tests).
#[derive(Debug, Default)]
pub struct CrateMap {
    /// package name (underscored, as it appears in `use` paths) -> crate dir.
    name_to_dir: BTreeMap<String, String>,
    /// crate dir -> directly depended-on crate dirs.
    deps: BTreeMap<String, Vec<String>>,
}

impl CrateMap {
    /// Builds the graph from parsed manifests. Package names are normalized
    /// `-` → `_` so they match `use` paths. The root package's sources live
    /// under `src/`, so its dir maps to `"src"`.
    pub fn build(manifests: &[Manifest]) -> CrateMap {
        let mut map = CrateMap::default();
        for m in manifests {
            if m.package.is_empty() {
                continue;
            }
            let dir = if m.dir().is_empty() {
                "src".to_string()
            } else {
                m.dir().to_string()
            };
            map.name_to_dir.insert(m.package.replace('-', "_"), dir);
        }
        for m in manifests {
            if m.package.is_empty() {
                continue;
            }
            let dir = if m.dir().is_empty() {
                "src".to_string()
            } else {
                m.dir().to_string()
            };
            let deps = m
                .deps
                .iter()
                .filter_map(|d| map.name_to_dir.get(&d.replace('-', "_")).cloned())
                .collect();
            map.deps.insert(dir, deps);
        }
        map
    }

    /// The crate dir owning a workspace-relative source path:
    /// `crates/core/src/x.rs` → `crates/core`, `src/lib.rs` → `src`,
    /// `xtask/src/main.rs` → `xtask`.
    pub fn crate_of(path: &str) -> String {
        let mut parts = path.split('/');
        match (parts.next(), parts.next()) {
            (Some(top @ ("crates" | "shims")), Some(second)) => format!("{top}/{second}"),
            (Some(top), _) => top.to_string(),
            _ => String::new(),
        }
    }

    /// Dir for a package name as written in `use` paths (underscored).
    pub fn dir_of_name(&self, name: &str) -> Option<&str> {
        self.name_to_dir.get(name).map(String::as_str)
    }

    /// Transitive dependency closure of `dir` (excluding `dir` itself), in
    /// deterministic order.
    pub fn dep_closure(&self, dir: &str) -> Vec<String> {
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut stack: Vec<String> = self.deps.get(dir).cloned().unwrap_or_default();
        let mut out = Vec::new();
        while let Some(d) = stack.pop() {
            if d != dir && seen.insert(d.clone()) {
                if let Some(next) = self.deps.get(&d) {
                    stack.extend(next.iter().cloned());
                }
                out.push(d);
            }
        }
        out.sort();
        out
    }
}

/// The symbol index: per-crate function tables plus per-file import sets.
#[derive(Debug)]
pub struct Resolver {
    pub crates: CrateMap,
    /// file index -> owning crate dir.
    pub file_crate: Vec<String>,
    /// crate dir -> fn name -> definitions in that crate.
    index: BTreeMap<String, BTreeMap<String, Vec<FnRef>>>,
    /// file index -> workspace crate dirs referenced by its `use` items.
    imports: Vec<BTreeSet<String>>,
}

impl Resolver {
    /// Indexes every function in `files` under its crate, and records which
    /// workspace crates each file imports.
    pub fn build(files: &[SourceFile], manifests: &[Manifest]) -> Resolver {
        let crates = CrateMap::build(manifests);
        let mut file_crate = Vec::with_capacity(files.len());
        let mut index: BTreeMap<String, BTreeMap<String, Vec<FnRef>>> = BTreeMap::new();
        let mut imports = Vec::with_capacity(files.len());
        for (fi, f) in files.iter().enumerate() {
            let dir = CrateMap::crate_of(&f.rel);
            for (ni, func) in f.functions.iter().enumerate() {
                index
                    .entry(dir.clone())
                    .or_default()
                    .entry(func.name.clone())
                    .or_default()
                    .push(FnRef { file: fi, func: ni });
            }
            imports.push(collect_imports(f, &crates));
            file_crate.push(dir);
        }
        Resolver {
            crates,
            file_crate,
            index,
            imports,
        }
    }

    /// Candidate definitions for a call to `name` from `from_file`, with
    /// `argc` arguments at the site (`None` = uncountable, skip the arity
    /// filter). Same crate first; then crates the file imports; then the
    /// full dependency closure. Cross-crate candidates must be `pub`;
    /// candidates whose countable parameter list disagrees with `argc` are
    /// dropped. More than [`MAX_CANDIDATES`] matches resolves to nothing.
    pub fn resolve(
        &self,
        files: &[SourceFile],
        name: &str,
        from_file: usize,
        argc: Option<usize>,
    ) -> Vec<FnRef> {
        let home = &self.file_crate[from_file];
        let local = self.lookup(home, name, files, false, argc);
        if !local.is_empty() {
            return Self::capped(local);
        }
        let imported: Vec<FnRef> = self.imports[from_file]
            .iter()
            .flat_map(|dir| self.lookup(dir, name, files, true, argc))
            .collect();
        if !imported.is_empty() {
            return Self::capped(imported);
        }
        let closure: Vec<FnRef> = self
            .crates
            .dep_closure(home)
            .iter()
            .flat_map(|dir| self.lookup(dir, name, files, true, argc))
            .collect();
        Self::capped(closure)
    }

    fn lookup(
        &self,
        dir: &str,
        name: &str,
        files: &[SourceFile],
        pub_only: bool,
        argc: Option<usize>,
    ) -> Vec<FnRef> {
        self.index
            .get(dir)
            .and_then(|m| m.get(name))
            .map(|refs| {
                refs.iter()
                    .filter(|r| !pub_only || files[r.file].functions[r.func].is_pub)
                    .filter(|r| arity_agrees(files, **r, argc))
                    .copied()
                    .collect()
            })
            .unwrap_or_default()
    }

    fn capped(v: Vec<FnRef>) -> Vec<FnRef> {
        if v.len() > MAX_CANDIDATES {
            Vec::new()
        } else {
            v
        }
    }
}

/// True when the definition's parameter count is unknown or matches the
/// call site's argument count (itself optional).
fn arity_agrees(files: &[SourceFile], r: FnRef, argc: Option<usize>) -> bool {
    let (Some(argc), Some(params)) = (argc, param_count(&files[r.file], r.func)) else {
        return true;
    };
    argc == params
}

/// Non-`self` parameter count of a function definition, from its signature
/// tokens. `None` when the parameter list cannot be located or counted
/// (callers then skip arity filtering for this candidate).
pub fn param_count(f: &SourceFile, func: usize) -> Option<usize> {
    let info = f.functions.get(func)?;
    let toks = &f.tokens;
    let (start, end) = info.sig;
    // `fn name` then optionally `<generics>` — skip to the matching `>`
    // (`->` is a fused token, so it cannot end the generics early).
    let mut i = start;
    while i < end && !(toks[i].kind == TokKind::Ident && toks[i].text == "fn") {
        i += 1;
    }
    i += 2; // past `fn name`
    if i < end && toks[i].kind == TokKind::Punct && toks[i].text == "<" {
        let mut angle = 0i32;
        while i < end {
            if toks[i].kind == TokKind::Punct {
                match toks[i].text.as_str() {
                    "<" => angle += 1,
                    ">" => {
                        angle -= 1;
                        if angle == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    if i >= end || toks[i].kind != TokKind::Punct || toks[i].text != "(" {
        return None;
    }
    let mut n = count_args(toks, i)?;
    // A leading receiver (`&self`, `&mut self`, `mut self`, `self: …`) is
    // not a call-site argument.
    let mut j = i + 1;
    while j < end
        && (toks[j].text == "&" || toks[j].text == "mut" || toks[j].kind == TokKind::Lifetime)
    {
        j += 1;
    }
    if j < end && toks[j].kind == TokKind::Ident && toks[j].text == "self" && n > 0 {
        n -= 1;
    }
    Some(n)
}

/// Workspace crate dirs named in a file's `use` items: `use scanraw_obs::x;`
/// contributes `scanraw_obs`'s dir when the crate map knows it.
fn collect_imports(f: &SourceFile, crates: &CrateMap) -> BTreeSet<String> {
    use crate::lexer::TokKind;
    let mut out = BTreeSet::new();
    let toks = &f.tokens;
    let mut i = 0usize;
    while i + 1 < toks.len() {
        if toks[i].kind == TokKind::Ident && toks[i].text == "use" {
            let root = &toks[i + 1];
            if root.kind == TokKind::Ident {
                if let Some(dir) = crates.dir_of_name(&root.text) {
                    out.insert(dir.to_string());
                }
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest;

    fn ws() -> (Vec<SourceFile>, Vec<Manifest>) {
        let files = vec![
            SourceFile::parse(
                "crates/a/src/lib.rs",
                "use scanraw_b::helper;\npub fn top() { helper(); local(); }\nfn local() {}\n",
            ),
            SourceFile::parse(
                "crates/b/src/lib.rs",
                "pub fn helper() {}\nfn hidden() {}\n",
            ),
        ];
        let manifests = vec![
            manifest::parse(
                "crates/a/Cargo.toml",
                "[package]\nname = \"scanraw-a\"\n[dependencies]\nscanraw-b.workspace = true\n",
            ),
            manifest::parse("crates/b/Cargo.toml", "[package]\nname = \"scanraw-b\"\n"),
        ];
        (files, manifests)
    }

    #[test]
    fn crate_of_paths() {
        assert_eq!(CrateMap::crate_of("crates/core/src/x.rs"), "crates/core");
        assert_eq!(CrateMap::crate_of("shims/rand/src/lib.rs"), "shims/rand");
        assert_eq!(CrateMap::crate_of("src/lib.rs"), "src");
        assert_eq!(CrateMap::crate_of("xtask/src/main.rs"), "xtask");
    }

    #[test]
    fn same_crate_wins_then_deps() {
        let (files, manifests) = ws();
        let r = Resolver::build(&files, &manifests);
        let local = r.resolve(&files, "local", 0, None);
        assert_eq!(local.len(), 1);
        assert_eq!(local[0].file, 0);
        let cross = r.resolve(&files, "helper", 0, None);
        assert_eq!(cross.len(), 1);
        assert_eq!(cross[0].file, 1);
    }

    #[test]
    fn cross_crate_requires_pub() {
        let (files, manifests) = ws();
        let r = Resolver::build(&files, &manifests);
        assert!(r.resolve(&files, "hidden", 0, None).is_empty());
    }

    #[test]
    fn no_manifests_means_same_crate_only() {
        let (files, _) = ws();
        let r = Resolver::build(&files, &[]);
        assert!(r.resolve(&files, "helper", 0, None).is_empty());
        assert_eq!(r.resolve(&files, "local", 0, None).len(), 1);
    }

    #[test]
    fn ambiguity_cutoff() {
        let mut src = String::new();
        for i in 0..8 {
            src.push_str(&format!("pub fn get{}() {{}}\n", i));
        }
        src.push_str(&"fn get() {}\n".repeat(7));
        let files = vec![SourceFile::parse("crates/a/src/lib.rs", &src)];
        let r = Resolver::build(&files, &[]);
        assert!(r.resolve(&files, "get", 0, None).is_empty());
        assert_eq!(r.resolve(&files, "get0", 0, None).len(), 1);
    }

    #[test]
    fn arity_filters_candidates() {
        let files = vec![SourceFile::parse(
            "crates/a/src/lib.rs",
            "pub fn read(name: &str, offset: u64, len: u64) -> u64 { offset + len }\n",
        )];
        let r = Resolver::build(&files, &[]);
        // `guard.read()` (zero args) must not resolve to the 3-parameter fn.
        assert!(r.resolve(&files, "read", 0, Some(0)).is_empty());
        assert_eq!(r.resolve(&files, "read", 0, Some(3)).len(), 1);
        assert_eq!(r.resolve(&files, "read", 0, None).len(), 1);
    }

    #[test]
    fn param_count_skips_receivers_and_generics() {
        let f = SourceFile::parse(
            "crates/a/src/lib.rs",
            "impl X {\n    fn a(&self) -> u32 { 0 }\n    fn b(&mut self, x: u32, m: HashMap<u32, u32>) {}\n}\nfn c<T: Into<String>>(x: T, (lo, hi): (u32, u32)) -> u32 { 0 }\nfn d() {}\n",
        );
        let by_name = |name: &str| {
            let i = f.functions.iter().position(|x| x.name == name).unwrap();
            param_count(&f, i)
        };
        assert_eq!(by_name("a"), Some(0));
        assert_eq!(by_name("b"), Some(2));
        assert_eq!(by_name("c"), Some(2));
        assert_eq!(by_name("d"), Some(0));
    }
}
