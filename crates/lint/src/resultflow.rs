//! L017 — swallowed fallible results in the pipeline crates.
//!
//! The fault-tolerance story (PR 3) assumes every I/O error either heals
//! inside `with_retry` or propagates to the scan's error channel. A
//! workspace `Result` that is discarded — `let _ = flush(..)`, a chained
//! `.ok()` whose `Option` nobody reads, or `.unwrap_or*` silently
//! substituting a default — is a failure the operator never sees.
//!
//! The pass is intraprocedural over the existing statement trees
//! ([`crate::parser::parse_block`]). Fallibility is lexical-but-anchored:
//! a call name counts only when *every* workspace definition of that name
//! returns a workspace-error `Result` (a bare `Result<T>` alias, or an
//! explicit error type containing `Error`/`IoError`) — names that also
//! have infallible definitions are ambiguous and skipped, mirroring the
//! resolver's precision-over-recall stance. `?`, `match`, and named
//! bindings are consumption and never flagged. Silence a reviewed
//! fallback with `// lint-ok: L017 <reason>`.

use crate::lexer::{TokKind, Token};
use crate::model::{match_paren, SourceFile};
use crate::parser::{parse_block, Block};
use crate::{Finding, Rule};
use std::collections::{BTreeMap, BTreeSet};

/// Crates where a lost failure is a correctness bug: the pipeline and its
/// persistence/observability layers. `bench` and the shims may discard.
const SCOPE: &[&str] = &[
    "crates/core/",
    "crates/engine/",
    "crates/storage/",
    "crates/simio/",
    "crates/rawfile/",
    "crates/obs/",
];

/// `.unwrap_or*` variants that drop the error value.
const SWALLOWERS: &[&str] = &["unwrap_or", "unwrap_or_default", "unwrap_or_else"];

fn is_punct(t: &Token, s: &str) -> bool {
    t.kind == TokKind::Punct && t.text == s
}

/// Function names whose every workspace definition returns a
/// workspace-error `Result`.
fn fallible_names(files: &[SourceFile]) -> BTreeSet<String> {
    let mut fallible: BTreeMap<String, bool> = BTreeMap::new();
    for f in files {
        for func in &f.functions {
            let is_fallible = returns_error_result(&f.tokens[func.sig.0..func.sig.1]);
            fallible
                .entry(func.name.clone())
                .and_modify(|all| *all &= is_fallible)
                .or_insert(is_fallible);
        }
    }
    fallible
        .into_iter()
        .filter_map(|(name, all)| all.then_some(name))
        .collect()
}

/// True when the signature's return type is `Result<..>` with a
/// workspace-style error: a single-argument `Result<T>` (the crate alias)
/// or an explicit second argument mentioning `Error`/`IoError`.
fn returns_error_result(sig: &[Token]) -> bool {
    let Some(arrow) = sig.iter().position(|t| is_punct(t, "->")) else {
        return false;
    };
    let Some(res) =
        (arrow..sig.len()).find(|&i| sig[i].kind == TokKind::Ident && sig[i].text == "Result")
    else {
        return false;
    };
    let Some(open) = sig.get(res + 1).filter(|t| is_punct(t, "<")) else {
        // Bare `-> Result` (fully aliased): treat as fallible.
        return true;
    };
    let _ = open;
    // Split the generic list at the top-level comma, if any.
    let mut depth = 0i32;
    let mut split = None;
    let mut end = sig.len();
    for (i, t) in sig.iter().enumerate().skip(res + 1) {
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "<" => depth += 1,
            ">" => {
                depth -= 1;
                if depth == 0 {
                    end = i;
                    break;
                }
            }
            ">>" => {
                depth -= 2;
                if depth <= 0 {
                    end = i;
                    break;
                }
            }
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "," if depth == 1 => split = split.or(Some(i)),
            _ => {}
        }
    }
    match split {
        // `Result<T>` — the workspace alias defaults the error type.
        None => true,
        Some(c) => sig[c..end]
            .iter()
            .any(|t| t.kind == TokKind::Ident && (t.text == "Error" || t.text == "IoError")),
    }
}

/// Runs L017 over the file set, appending findings.
pub fn check(files: &[SourceFile], findings: &mut Vec<Finding>) {
    let fallible = fallible_names(files);
    if fallible.is_empty() {
        return;
    }
    for f in files {
        if !SCOPE.iter().any(|p| f.rel.starts_with(p)) {
            continue;
        }
        for func in &f.functions {
            let Some((bstart, bend)) = func.body else {
                continue;
            };
            if f.in_test_code(func.sig.0) {
                continue;
            }
            let block = parse_block(f, bstart, bend);
            walk(f, &block, &fallible, findings);
        }
    }
}

fn walk(f: &SourceFile, block: &Block, fallible: &BTreeSet<String>, findings: &mut Vec<Finding>) {
    for stmt in &block.stmts {
        for b in &stmt.blocks {
            walk(f, b, fallible, findings);
        }
        // Token spans belonging to nested blocks are theirs, not this
        // statement's top level.
        let nested: Vec<(usize, usize)> = stmt
            .blocks
            .iter()
            .flat_map(|b| b.stmts.iter().map(|s| s.range))
            .collect();
        let toks = &f.tokens;
        let (start, end) = stmt.range;
        // The parser normalizes `let _` to no binding; recover the discard
        // from the statement's leading tokens.
        let let_discard = toks.get(start).is_some_and(|t| t.text == "let")
            && toks.get(start + 1).is_some_and(|t| t.text == "_")
            && toks.get(start + 2).is_some_and(|t| is_punct(t, "="));
        let binding = if let_discard {
            Some("_")
        } else {
            stmt.binding.as_deref()
        };
        let mut i = start;
        while i < end {
            if let Some(&(_, ne)) = nested.iter().find(|&&(ns, ne)| ns <= i && i < ne) {
                i = ne;
                continue;
            }
            let t = &toks[i];
            let is_call = t.kind == TokKind::Ident
                && fallible.contains(&t.text)
                && toks.get(i + 1).is_some_and(|n| is_punct(n, "("));
            if !is_call {
                i += 1;
                continue;
            }
            let name = t.text.clone();
            let line = t.line;
            let after = match_paren(toks, i + 1).min(end);
            let disposition = classify(toks, after, end, binding);
            i = after;
            let Some(how) = disposition else { continue };
            if f.has_annotation(line, "lint-ok: L017") {
                continue;
            }
            findings.push(Finding {
                rule: Rule::L017,
                file: f.rel.clone(),
                line,
                message: format!("the `Result` of `{name}(..)` is silently discarded ({how})"),
                hint: "propagate with `?` or handle the error branch explicitly (journal it, \
                       count it, degrade loudly); audit an intended fallback with \
                       `// lint-ok: L017 <reason>`"
                    .to_string(),
            });
        }
    }
}

/// How the `Result` produced just before token `after` is disposed of, when
/// that disposal swallows the error. `None` = consumed properly.
fn classify(toks: &[Token], after: usize, end: usize, binding: Option<&str>) -> Option<String> {
    if binding == Some("_") {
        return Some("bound to `_`".to_string());
    }
    // A chained `.method(` directly after the call's closing paren.
    let chained = |at: usize| -> Option<(&str, usize)> {
        let dot = toks.get(at)?;
        if !is_punct(dot, ".") {
            return None;
        }
        let name = toks.get(at + 1)?;
        let open = toks.get(at + 2)?;
        (name.kind == TokKind::Ident && is_punct(open, "("))
            .then(|| (name.text.as_str(), match_paren(toks, at + 2)))
    };
    if let Some((m, close)) = chained(after) {
        if SWALLOWERS.contains(&m) {
            return Some(format!("`.{m}(..)` drops the error value"));
        }
        if m == "ok" && binding.is_none() {
            // `f(..).ok();` as a bare statement — the Option is unread.
            let next = toks.get(close).map(|t| t.text.as_str());
            if close >= end || next == Some(";") {
                return Some("`.ok()` with the `Option` unread".to_string());
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEFS: &str = "pub fn flush(n: u32) -> Result<()> { Ok(()) }\npub fn fetch(n: u32) -> Result<u32, IoError> { Ok(n) }\n";

    fn run(body: &str) -> Vec<Finding> {
        let files = vec![
            SourceFile::parse("crates/storage/src/api.rs".to_string(), DEFS),
            SourceFile::parse("crates/core/src/x.rs".to_string(), body),
        ];
        let mut out = Vec::new();
        check(&files, &mut out);
        out
    }

    #[test]
    fn let_underscore_is_flagged() {
        let fs = run("fn f() {\n    let _ = flush(1);\n}\n");
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, Rule::L017);
        assert!(fs[0].message.contains("flush"), "{}", fs[0].message);
        assert!(fs[0].message.contains("`_`"), "{}", fs[0].message);
    }

    #[test]
    fn bare_ok_statement_is_flagged() {
        let fs = run("fn f() {\n    fetch(3).ok();\n}\n");
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains(".ok()"), "{}", fs[0].message);
    }

    #[test]
    fn unwrap_or_is_flagged() {
        let fs = run("fn f() -> u32 {\n    fetch(3).unwrap_or(0)\n}\n");
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("unwrap_or"), "{}", fs[0].message);
    }

    #[test]
    fn question_mark_and_named_binding_are_clean() {
        let fs = run(
            "fn f() -> Result<u32> {\n    flush(1)?;\n    let v = fetch(3)?;\n    let kept = fetch(4).ok();\n    Ok(v + kept.unwrap_or(0))\n}\n",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn ambiguous_names_and_out_of_scope_are_clean() {
        // `get` has both a fallible and an infallible definition: skipped.
        let files = vec![
            SourceFile::parse(
                "crates/storage/src/api.rs".to_string(),
                "pub fn get(n: u32) -> Result<u32> { Ok(n) }\npub fn noisy(n: u32) -> Result<()> { Ok(()) }\n",
            ),
            SourceFile::parse(
                "crates/types/src/alt.rs".to_string(),
                "pub fn get(n: u32) -> u32 { n }\n",
            ),
            SourceFile::parse(
                "crates/core/src/x.rs".to_string(),
                "fn f() {\n    let _ = get(1);\n}\n",
            ),
            SourceFile::parse(
                "crates/bench/src/x.rs".to_string(),
                "fn g() {\n    let _ = noisy(1);\n}\n",
            ),
        ];
        let mut out = Vec::new();
        check(&files, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn annotation_silences() {
        let fs = run(
            "fn f() {\n    // lint-ok: L017 shutdown path, the journal is already sealed\n    let _ = flush(1);\n}\n",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn non_workspace_result_is_not_tracked() {
        // `write` here returns `Result<usize, ParseIntError>` — not a
        // workspace error type, so discarding it is out of L017's scope.
        let files = vec![
            SourceFile::parse(
                "crates/core/src/x.rs".to_string(),
                "pub fn emit(n: u32) -> Result<usize, ParseIntError> { Ok(n as usize) }\nfn f() {\n    let _ = emit(1);\n}\n",
            ),
        ];
        let mut out = Vec::new();
        check(&files, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }
}
