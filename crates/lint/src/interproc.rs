//! The interprocedural rule pass: builds the resolver, the call graph, and
//! the unified wait-for graph once, then derives
//!
//! * **L011** — wait-for cycles that pass through a channel or condvar node
//!   (pure lock cycles remain L003's report);
//! * **L012** — blocking reached while a lock guard is live, through any
//!   number of calls (collected during the wait-graph walk);
//! * **L013** — panic sites (`unwrap`/`expect`/panic-family macros) in
//!   functions reachable from a spawned-thread root. Sites lexically inside
//!   the spawn closure itself are L002's domain and are skipped here;
//!   `assert!`-family macros are deliberate invariant checks and exempt.

use crate::callgraph::CallGraph;
use crate::manifest::Manifest;
use crate::model::SourceFile;
use crate::resolve::Resolver;
use crate::{waitgraph, Finding, Rule};

/// Crates whose panic sites L013 reports — the pipeline crates where a
/// worker panic silently kills a thread.
const L013_SCOPE: &[&str] = &[
    "crates/core/",
    "crates/engine/",
    "crates/storage/",
    "crates/simio/",
    "crates/obs/",
];

/// Runs the interprocedural rules, appending to `findings`. Also returns
/// the call graph so callers (the DOT dump, timing) can reuse it.
pub fn check(
    files: &[SourceFile],
    manifests: &[Manifest],
    findings: &mut Vec<Finding>,
) -> CallGraph {
    let resolver = Resolver::build(files, manifests);
    let cg = CallGraph::build(files, &resolver);
    let wa = waitgraph::build(files, &resolver, &cg);
    l011_wait_cycles(files, &wa, findings);
    findings.extend(wa.l012);
    l013_panic_reachability(files, &cg, findings);
    cg
}

fn l011_wait_cycles(
    files: &[SourceFile],
    wa: &waitgraph::WaitAnalysis,
    findings: &mut Vec<Finding>,
) {
    // A channel whose both endpoints sit under the same lock produces the
    // same deadlock twice — once through the data facet, once through the
    // capacity facet. Normalize facets away and report each shape once.
    let mut seen: std::collections::BTreeSet<Vec<String>> = std::collections::BTreeSet::new();
    for cycle in wa.graph.cycles() {
        // Pure lock-order cycles are L003's; L011 owns the mixed ones.
        if !cycle
            .iter()
            .any(|(a, _, _)| a.starts_with("chan:") || a.starts_with("cv:"))
        {
            continue;
        }
        let mut key: Vec<String> = cycle
            .iter()
            .map(|(a, _, _)| {
                a.strip_suffix(".data")
                    .or_else(|| a.strip_suffix(".cap"))
                    .unwrap_or(a)
                    .to_string()
            })
            .collect();
        key.sort();
        if !seen.insert(key) {
            continue;
        }
        let silenced = cycle.iter().any(|(_, _, site)| {
            files
                .iter()
                .find(|f| f.rel == site.file)
                .is_some_and(|f| f.has_annotation(site.line, "lint-ok: L011"))
        });
        if silenced {
            continue;
        }
        let path: Vec<String> = cycle
            .iter()
            .map(|(a, b, s)| format!("{a} -> {b} ({}:{} in {})", s.file, s.line, s.func))
            .collect();
        let first = &cycle[0].2;
        findings.push(Finding {
            rule: Rule::L011,
            file: first.file.clone(),
            line: first.line,
            message: format!(
                "wait-for cycle through a channel/condvar: {}",
                path.join(", ")
            ),
            hint: "break the cycle: drop the guard before the channel op, or route the \
                   counterparty's lock acquisition outside the send/recv; annotate an edge \
                   with `// lint-ok: L011 <reason>` only if an unguarded producer keeps the \
                   channel live"
                .to_string(),
        });
    }
}

fn l013_panic_reachability(files: &[SourceFile], cg: &CallGraph, findings: &mut Vec<Finding>) {
    for (&id, &(root, _)) in &cg.from_root {
        let node = &cg.nodes[id];
        // The spawn closure's own body is L002's report.
        if node.spawn_line.is_some() {
            continue;
        }
        let f = &files[node.file];
        if !L013_SCOPE.iter().any(|p| f.rel.starts_with(p)) {
            continue;
        }
        // Reconstruct one call path root -> … -> node for the message.
        let mut chain = vec![node.display.clone()];
        let mut at = id;
        while let Some(&(_, Some(prev))) = cg.from_root.get(&at) {
            chain.push(cg.nodes[prev].display.clone());
            at = prev;
            if chain.len() >= 5 {
                break;
            }
        }
        chain.reverse();
        let root_disp = &cg.nodes[root].display;
        for p in &node.panics {
            if f.has_annotation(p.line, "lint-ok: L013") {
                continue;
            }
            findings.push(Finding {
                rule: Rule::L013,
                file: f.rel.clone(),
                line: p.line,
                message: format!(
                    "`{}` is reachable from the thread spawned at {root_disp} (path: {})",
                    p.what,
                    chain.join(" -> ")
                ),
                hint: "a panic here kills a pipeline worker silently: propagate the error to \
                       the scan's error channel instead, or audit with `// lint-ok: L013 \
                       <reason>` if the invariant provably holds"
                    .to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(srcs: &[(&str, &str)]) -> Vec<Finding> {
        let files: Vec<SourceFile> = srcs
            .iter()
            .map(|(rel, src)| SourceFile::parse((*rel).to_string(), src))
            .collect();
        let mut findings = Vec::new();
        check(&files, &[], &mut findings);
        findings
    }

    #[test]
    fn l013_reports_called_fn_not_closure_body() {
        let fs = run(&[(
            "crates/core/src/worker.rs",
            "fn run(rx: Receiver<u32>) {\n    thread::spawn(move || {\n        step(None);\n    });\n}\nfn step(x: Option<u32>) {\n    let v = x.unwrap();\n    drop(v);\n}\n",
        )]);
        let l013: Vec<_> = fs.iter().filter(|f| f.rule == Rule::L013).collect();
        assert_eq!(l013.len(), 1, "{fs:?}");
        assert_eq!(l013[0].line, 7);
        assert!(l013[0].message.contains("worker.rs:run@2"));
    }

    #[test]
    fn l013_out_of_scope_crate_is_clean() {
        let fs = run(&[(
            "crates/bench/src/lib.rs",
            "fn run() { thread::spawn(move || { step(None); }); }\nfn step(x: Option<u32>) { x.unwrap(); }\n",
        )]);
        assert!(fs.iter().all(|f| f.rule != Rule::L013), "{fs:?}");
    }

    #[test]
    fn l013_unreached_panic_is_clean() {
        let fs = run(&[(
            "crates/core/src/worker.rs",
            "fn run() { thread::spawn(move || { safe(); }); }\nfn safe() {}\nfn risky(x: Option<u32>) { x.unwrap(); }\n",
        )]);
        assert!(fs.iter().all(|f| f.rule != Rule::L013), "{fs:?}");
    }

    #[test]
    fn l011_cross_function_channel_lock_cycle() {
        let fs = run(&[(
            "crates/core/src/sched.rs",
            "fn consumer(state: &Mutex<u32>, work_rx: &Receiver<u32>) {\n    let g = state.lock();\n    let v = work_rx.recv(); // lint-ok: L004 fixture\n    drop(v); drop(g);\n}\nfn producer(state: &Mutex<u32>, work_tx: &Sender<u32>) {\n    let g = state.lock();\n    work_tx.send(1); // lint-ok: L004 fixture\n    drop(g);\n}\n",
        )]);
        let l011: Vec<_> = fs.iter().filter(|f| f.rule == Rule::L011).collect();
        assert_eq!(l011.len(), 1, "{fs:?}");
        assert!(
            l011[0].message.contains("chan:work."),
            "{}",
            l011[0].message
        );
        assert!(l011[0].message.contains("lock:state"));
    }

    #[test]
    fn l011_silenced_by_annotation() {
        let fs = run(&[(
            "crates/core/src/sched.rs",
            "fn consumer(state: &Mutex<u32>, work_rx: &Receiver<u32>) {\n    let g = state.lock();\n    // lint-ok: L011 shutdown-only path, producer never holds state\n    let v = work_rx.recv(); // lint-ok: L004 fixture\n    drop(v); drop(g);\n}\nfn producer(state: &Mutex<u32>, work_tx: &Sender<u32>) {\n    let g = state.lock();\n    work_tx.send(1); // lint-ok: L004 fixture\n    drop(g);\n}\n",
        )]);
        assert!(fs.iter().all(|f| f.rule != Rule::L011), "{fs:?}");
    }
}
