//! The static lock-acquisition graph behind L003.
//!
//! Nodes are lock names (the receiver identifier of a `.lock()` / `.read()` /
//! `.write()` call); a directed edge `A -> B` records that somewhere in the
//! workspace `B` is acquired while a guard for `A` is live. A cycle in this
//! graph is a potential deadlock: two threads can take the locks in opposite
//! orders.

use std::collections::BTreeMap;

/// Where an acquisition edge was observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Site {
    pub file: String,
    pub line: u32,
    pub func: String,
}

/// Directed graph of observed lock-acquisition orders.
#[derive(Debug, Default)]
pub struct LockGraph {
    /// from -> (to -> first site observed).
    edges: BTreeMap<String, BTreeMap<String, Site>>,
}

impl LockGraph {
    /// Records that `to` is acquired while `from` is held, at `site`.
    /// The first site observed for an edge wins (it anchors the report).
    pub fn add_edge(&mut self, from: String, to: String, site: Site) {
        self.edges
            .entry(from)
            .or_default()
            .entry(to)
            .or_insert(site);
    }

    /// All distinct elementary cycles, each as a list of
    /// `(from, to, site)` edges. Cycles are deduplicated by their node set
    /// rotated to start at the lexicographically smallest node, so `a->b->a`
    /// and `b->a->b` report once.
    pub fn cycles(&self) -> Vec<Vec<(String, String, Site)>> {
        let mut found: Vec<Vec<String>> = Vec::new();
        for start in self.edges.keys() {
            let mut path = vec![start.clone()];
            self.dfs(start, start, &mut path, &mut found);
        }
        // Canonicalize: rotate each cycle to start at its smallest node,
        // then dedup.
        let mut canon: Vec<Vec<String>> = found
            .into_iter()
            .map(|cyc| {
                let min = cyc
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, s)| s.as_str())
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                let mut rot = cyc[min..].to_vec();
                rot.extend_from_slice(&cyc[..min]);
                rot
            })
            .collect();
        canon.sort();
        canon.dedup();

        canon
            .into_iter()
            .map(|nodes| {
                let k = nodes.len();
                (0..k)
                    .map(|i| {
                        let from = nodes[i].clone();
                        let to = nodes[(i + 1) % k].clone();
                        let site = self.edges[&from][&to].clone();
                        (from, to, site)
                    })
                    .collect()
            })
            .collect()
    }

    fn dfs(&self, start: &str, at: &str, path: &mut Vec<String>, found: &mut Vec<Vec<String>>) {
        let Some(nexts) = self.edges.get(at) else {
            return;
        };
        for next in nexts.keys() {
            if next == start {
                found.push(path.clone());
                continue;
            }
            // Only explore nodes > start to avoid re-finding rotations, and
            // skip nodes already on the path (elementary cycles only).
            if next.as_str() < start || path.iter().any(|p| p == next) {
                continue;
            }
            path.push(next.clone());
            self.dfs(start, next, path, found);
            path.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(line: u32) -> Site {
        Site {
            file: "f.rs".into(),
            line,
            func: "f".into(),
        }
    }

    #[test]
    fn no_cycle_in_dag() {
        let mut g = LockGraph::default();
        g.add_edge("a".into(), "b".into(), site(1));
        g.add_edge("b".into(), "c".into(), site(2));
        g.add_edge("a".into(), "c".into(), site(3));
        assert!(g.cycles().is_empty());
    }

    #[test]
    fn two_node_cycle_reported_once() {
        let mut g = LockGraph::default();
        g.add_edge("a".into(), "b".into(), site(1));
        g.add_edge("b".into(), "a".into(), site(2));
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 2);
        assert_eq!(cycles[0][0].0, "a");
    }

    #[test]
    fn self_edge_is_a_cycle() {
        let mut g = LockGraph::default();
        g.add_edge("a".into(), "a".into(), site(7));
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 1);
        assert_eq!(cycles[0][0].2.line, 7);
    }

    #[test]
    fn three_node_cycle() {
        let mut g = LockGraph::default();
        g.add_edge("x".into(), "y".into(), site(1));
        g.add_edge("y".into(), "z".into(), site(2));
        g.add_edge("z".into(), "x".into(), site(3));
        assert_eq!(g.cycles().len(), 1);
        assert_eq!(g.cycles()[0].len(), 3);
    }

    #[test]
    fn first_site_wins() {
        let mut g = LockGraph::default();
        g.add_edge("a".into(), "b".into(), site(1));
        g.add_edge("a".into(), "b".into(), site(99));
        g.add_edge("b".into(), "a".into(), site(2));
        let cycles = g.cycles();
        assert_eq!(cycles[0][0].2.line, 1);
    }
}
