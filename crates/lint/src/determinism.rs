//! L014: merge determinism. The serial≡parallel differential suite (PR 5)
//! and the bit-identical-merge guarantee rest on nothing order-sensitive
//! consuming `HashMap`/`HashSet` iteration order. This pass flags, per
//! function, an iteration over a known-unordered container whose results
//! flow into an order-sensitive sink — `Accumulator::merge`, string/output
//! building (`push_str`, `write!`/`writeln!`), or journal/trace export
//! (`event`, `record`, `emit`, `export`) — with no intervening ordering
//! step (a `sort*` call, a `BTreeMap`/`BTreeSet` re-collection, or keyed
//! `entry()` insertion, which is order-insensitive by construction).
//!
//! Containers are recognized lexically: `name: HashMap<…>` /
//! `name: HashSet<…>` type ascriptions (lets, params, struct fields) and
//! `name = HashMap::new()`-style initializers in the same file. Silence a
//! false positive with `// lint-ok: L014 <reason>`.

use crate::lexer::{TokKind, Token};
use crate::model::SourceFile;
use crate::rules::receiver_of_call;
use crate::{Finding, Rule};
use std::collections::BTreeSet;

/// Iteration methods that expose container order (shared with the effect
/// seeder).
pub(crate) const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
];

/// Order-sensitive sinks (call names; `write`/`writeln` match as macros).
const SINKS: &[&str] = &["merge", "push_str", "event", "record", "emit", "export"];

/// Tokens that neutralize ordering concerns between iteration and sink.
const NEUTRALIZERS: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "BTreeMap",
    "BTreeSet",
    "entry",
];

fn is_punct(t: &Token, s: &str) -> bool {
    t.kind == TokKind::Punct && t.text == s
}

fn is_ident(t: &Token, s: &str) -> bool {
    t.kind == TokKind::Ident && t.text == s
}

/// Files the rule applies to: the product crates, not the analyzer or the
/// benchmark/test-support code.
fn in_scope(rel: &str) -> bool {
    rel.starts_with("crates/") && !rel.starts_with("crates/lint/") || rel.starts_with("src/")
}

/// Names bound to a `HashMap`/`HashSet` anywhere in the file (shared with
/// the effect seeder).
pub(crate) fn unordered_names(toks: &[Token]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        let t = &toks[i].text;
        if t != "HashMap" && t != "HashSet" {
            continue;
        }
        // `name : HashMap<…>` — walk back over `&`/`mut` to the ident.
        let mut j = i;
        while j >= 1 && (is_punct(&toks[j - 1], "&") || is_ident(&toks[j - 1], "mut")) {
            j -= 1;
        }
        if j >= 2 && is_punct(&toks[j - 1], ":") && toks[j - 2].kind == TokKind::Ident {
            names.insert(toks[j - 2].text.clone());
            continue;
        }
        // `name = HashMap::new()` / `with_capacity` / `from(..)`.
        if i >= 2 && is_punct(&toks[i - 1], "=") && toks[i - 2].kind == TokKind::Ident {
            names.insert(toks[i - 2].text.clone());
        }
    }
    names
}

/// Runs L014 over one file.
pub fn check_file(f: &SourceFile, findings: &mut Vec<Finding>) {
    if !in_scope(&f.rel) {
        return;
    }
    let toks = &f.tokens;
    let unordered = unordered_names(toks);
    if unordered.is_empty() {
        return;
    }
    for func in &f.functions {
        let Some((bstart, bend)) = func.body else {
            continue;
        };
        if f.in_test_code(func.sig.0) {
            continue;
        }
        // Iteration sites over unordered containers inside this body.
        let mut sites: Vec<(usize, String)> = Vec::new();
        let mut i = bstart;
        while i < bend {
            let t = &toks[i];
            if t.kind == TokKind::Ident
                && ITER_METHODS.contains(&t.text.as_str())
                && i >= 1
                && is_punct(&toks[i - 1], ".")
                && i + 1 < bend
                && is_punct(&toks[i + 1], "(")
            {
                if let Some(recv) = receiver_of_call(toks, i) {
                    if unordered.contains(&recv) {
                        sites.push((i, recv));
                    }
                }
            } else if is_ident(t, "for") {
                // `for pat in <expr> {` — unordered ident in the expr means
                // the loop walks container order.
                let mut j = i + 1;
                while j < bend && !is_ident(&toks[j], "in") {
                    j += 1;
                }
                let start = j + 1;
                let mut k = start;
                while k < bend && !is_punct(&toks[k], "{") {
                    if toks[k].kind == TokKind::Ident && unordered.contains(&toks[k].text) {
                        sites.push((k, toks[k].text.clone()));
                        break;
                    }
                    k += 1;
                }
            }
            i += 1;
        }
        // A `for x in hm.iter()` matches both the loop scan and the method
        // scan; one site per (line, receiver) is enough.
        sites.sort_by_key(|(idx, _)| *idx);
        sites.dedup_by_key(|(idx, recv)| (toks[*idx].line, recv.clone()));
        // For each site, look for a sink downstream with no neutralizer
        // between.
        for (site, recv) in sites {
            let mut neutralized = false;
            let mut hit: Option<(usize, String)> = None;
            for k in site + 1..bend {
                let t = &toks[k];
                if t.kind != TokKind::Ident {
                    continue;
                }
                if NEUTRALIZERS.contains(&t.text.as_str()) {
                    neutralized = true;
                    break;
                }
                let is_sink_call =
                    SINKS.contains(&t.text.as_str()) && k + 1 < bend && is_punct(&toks[k + 1], "(");
                let is_sink_macro = (t.text == "write" || t.text == "writeln")
                    && k + 1 < bend
                    && is_punct(&toks[k + 1], "!");
                if is_sink_call || is_sink_macro {
                    hit = Some((k, t.text.clone()));
                    break;
                }
            }
            if neutralized {
                continue;
            }
            let Some((_, sink)) = hit else { continue };
            let line = toks[site].line;
            if f.has_annotation(line, "lint-ok: L014") {
                continue;
            }
            findings.push(Finding {
                rule: Rule::L014,
                file: f.rel.clone(),
                line,
                message: format!(
                    "iteration over unordered `{recv}` flows into `{sink}` in `{}` without an \
                     intervening sort",
                    func.name
                ),
                hint: "sort the items (or collect into a BTreeMap) before they reach an \
                       order-sensitive sink — unordered iteration breaks the bit-identical \
                       merge/export guarantee; silence a false positive with `// lint-ok: \
                       L014 <reason>`"
                    .to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rel: &str, src: &str) -> Vec<Finding> {
        let f = SourceFile::parse(rel.to_string(), src);
        let mut out = Vec::new();
        check_file(&f, &mut out);
        out
    }

    #[test]
    fn for_loop_into_merge_is_flagged() {
        let fs = run(
            "crates/engine/src/agg.rs",
            "fn combine(groups: HashMap<u32, Acc>, total: &mut Acc) {\n    for (_, acc) in groups {\n        total.merge(acc);\n    }\n}\n",
        );
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, Rule::L014);
        assert!(fs[0].message.contains("groups"));
    }

    #[test]
    fn sorted_before_sink_is_clean() {
        let fs = run(
            "crates/obs/src/export.rs",
            "fn dump(lanes: HashMap<u32, Lane>, out: &mut String) {\n    let mut v: Vec<_> = lanes.into_iter().collect();\n    v.sort_by_key(|(k, _)| *k);\n    for (_, lane) in v {\n        out.push_str(&lane.name);\n    }\n}\n",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn keyed_entry_insertion_is_clean() {
        let fs = run(
            "crates/engine/src/agg.rs",
            "fn absorb(&mut self, other: HashMap<u32, Acc>) {\n    for (k, acc) in other {\n        self.groups.entry(k).or_default().merge(acc);\n    }\n}\n",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn iter_chain_into_writeln_is_flagged() {
        let fs = run(
            "crates/obs/src/export.rs",
            "fn dump(seen: HashSet<String>, out: &mut String) {\n    for name in seen.iter() {\n        writeln!(out, \"{name}\").ok();\n    }\n}\n",
        );
        assert_eq!(fs.len(), 1, "{fs:?}");
    }

    #[test]
    fn annotation_and_scope_exemptions() {
        let annotated = run(
            "crates/obs/src/export.rs",
            "fn dump(seen: HashSet<String>, out: &mut String) {\n    // lint-ok: L014 order is cosmetic here\n    for name in seen.iter() {\n        out.push_str(name);\n    }\n}\n",
        );
        assert!(annotated.is_empty(), "{annotated:?}");
        let out_of_scope = run(
            "crates/lint/src/x.rs",
            "fn dump(seen: HashSet<String>, out: &mut String) {\n    for name in seen.iter() {\n        out.push_str(name);\n    }\n}\n",
        );
        assert!(out_of_scope.is_empty());
    }
}
