//! One authoritative explanation per rule, readable two ways: as the
//! rustdoc on each constant *and* as the string `cargo xtask lint
//! --explain L0NN` prints. The `rule_doc!` macro emits both from the same
//! doc-comment lines, so the printed text cannot drift from the docs.

macro_rules! rule_doc {
    ($(#[doc = $d:expr])* $name:ident) => {
        $(#[doc = $d])*
        pub const $name: &str = concat!($($d, "\n"),*);
    };
}

rule_doc! {
    /// L001 — cross-module `Ordering::Relaxed` without an audit note.
    ///
    /// Why: a Relaxed atomic shared across modules is usually meant to
    /// synchronize something; Relaxed gives no happens-before edge, so a
    /// reader can observe stale data forever.
    ///
    /// Example: `counters.rows.fetch_add(1, Ordering::Relaxed)` read from
    /// another module's reporting path.
    ///
    /// Escape: `// relaxed-ok: <reason>` on the site or the line above,
    /// when the value is a statistic and staleness is acceptable.
    L001
}

rule_doc! {
    /// L002 — `unwrap()`/`expect()` inside spawned worker closures
    /// (crates/core, crates/simio).
    ///
    /// Why: a panic in a worker thread kills it silently; the scan hangs or
    /// loses data instead of failing with an error.
    ///
    /// Example: `thread::spawn(move || { rx.recv().unwrap(); })`.
    ///
    /// Escape: `// lint-ok: L002 <reason>`; prefer sending `Err(..)` on the
    /// scan's output channel.
    L002
}

rule_doc! {
    /// L003 — lock-acquisition-order cycle across the workspace.
    ///
    /// Why: two threads taking the same locks in opposite orders can each
    /// hold one and wait for the other: deadlock.
    ///
    /// Example: fn A locks `catalog` then `cache`; fn B locks `cache` then
    /// `catalog`.
    ///
    /// Escape: `// lint-ok: L003 <reason>` on any edge of the cycle, when
    /// the two orders are provably never concurrent. The global order lives
    /// in DESIGN.md "Concurrency invariants".
    L003
}

rule_doc! {
    /// L004 — blocking channel `send`/`recv` while a lock guard is live in
    /// the same scope.
    ///
    /// Why: a full (or empty) channel blocks while the guard starves every
    /// other thread needing the lock; with a lock-needing counterparty it
    /// deadlocks (see L011 for the interprocedural version).
    ///
    /// Example: `let g = state.lock(); tx.send(item);`.
    ///
    /// Escape: `// lint-ok: L004 <reason>`; prefer dropping the guard or a
    /// try_/timeout variant.
    L004
}

rule_doc! {
    /// L005 — `Condvar::wait` outside a predicate loop.
    ///
    /// Why: condition variables wake spuriously and after missed
    /// notifications; a single un-looped wait proceeds on a false premise.
    ///
    /// Example: `let g = cv.wait(g);` not wrapped in `while !*g { … }`.
    ///
    /// Escape: `// lint-ok: L005 <reason>` (rarely right).
    L005
}

rule_doc! {
    /// L006 — missing `# Errors`/`# Panics` docs on public API
    /// (crates/types, crates/core).
    ///
    /// Why: failure modes are part of the contract; undocumented ones leak
    /// panics into callers that believed the API total.
    ///
    /// Escape: `// lint-ok: L006 <reason>`; prefer writing the section.
    L006
}

rule_doc! {
    /// L007 — wildcard arm in a `match` on a workspace protocol enum
    /// (`*Event`/`*Cmd`/`*Msg`/`*Cause`/`*Error`).
    ///
    /// Why: `_ =>` swallows variants added later; protocol handling must
    /// fail to compile when the protocol grows.
    ///
    /// Escape: `// lint-ok: L007 <reason>`; prefer listing every variant.
    L007
}

rule_doc! {
    /// L008 — buffer/cache resource leaked on an early-exit path.
    ///
    /// Why: a popped/taken/acquired resource that an early `return`, `?`,
    /// or `break` abandons is lost accounting — chunk leaks surface as
    /// stalls later.
    ///
    /// Escape: `// lint-ok: L008 <reason>`; prefer restructuring so every
    /// path hands the value off.
    L008
}

rule_doc! {
    /// L009 — feature declaration, forwarding chain, or gate inconsistency.
    ///
    /// Why: a `cfg(feature)` on an undeclared feature silently compiles
    /// out; a missing forward (`dep/feat`) makes a workspace feature
    /// half-enabled.
    ///
    /// Escape: baseline entry (Cargo.toml has no comment channel); prefer
    /// fixing the declaration.
    L009
}

rule_doc! {
    /// L010 — metric/event drift between code and the DESIGN.md catalog.
    ///
    /// Why: the observability catalog is the contract dashboards and tests
    /// read; an unregistered metric or a stale catalog row both lie.
    ///
    /// Escape: baseline entry; prefer updating DESIGN.md's catalog markers.
    L010
}

rule_doc! {
    /// L011 — wait-for cycle through a channel or condvar, across crates.
    ///
    /// Why: locks are not the only wait edges. A thread that `recv`s while
    /// holding lock `L` waits for a producer; if every producer must take
    /// `L` to send, nobody progresses — a deadlock no lock-order rule sees.
    /// The analyzer unifies lock-order edges with channel data/capacity
    /// facets and condvar edges into one graph and reports cycles that pass
    /// through a `chan:`/`cv:` node.
    ///
    /// Example: scheduler holds `state` and `recv`s acks; the writer must
    /// lock `state` before `send`ing acks.
    ///
    /// Escape: `// lint-ok: L011 <reason>` on an edge site — only when an
    /// unguarded producer provably keeps the channel live. L011 cannot be
    /// baselined: fix or audit in source.
    L011
}

rule_doc! {
    /// L012 — blocking call while a lock guard is live, interprocedural.
    ///
    /// Why: the guard-holding frame may be many calls above the block:
    /// `flush()` three frames down does `recv`, `sleep`, `join`, or disk
    /// I/O, and every other thread needing the lock stalls behind it. The
    /// call graph propagates each function's transitive blocking set;
    /// the walk flags calls made under a live guard into a blocking
    /// closure. Plain `.lock()` nesting is L003's domain and not counted.
    ///
    /// Example: `let g = cache.lock(); flush_writes();` where
    /// `flush_writes → barrier → ack_rx.recv()`.
    ///
    /// Escape: `// unblock-ok: <reason>` (or `// lint-ok: L012 <reason>`)
    /// on the call site, when the callee's blocking path is unreachable
    /// from here. L012 cannot be baselined: fix or audit in source.
    L012
}

rule_doc! {
    /// L013 — panic reachable from a spawned-thread root through calls.
    ///
    /// Why: L002 sees `unwrap` in the closure body; a worker dies just as
    /// silently when the panic is three helpers deep. Reachability from
    /// every `spawn` site is closed over the call graph; `unwrap`,
    /// `expect`, and `panic!`-family macros in reached functions are
    /// reported (in core/engine/storage/simio/obs). `assert!` is exempt as
    /// a deliberate invariant check; slice indexing is out of scope
    /// (documented unsoundness).
    ///
    /// Escape: `// lint-ok: L013 <reason>` on the panic site, when the
    /// invariant provably holds on every worker path.
    L013
}

rule_doc! {
    /// L014 — unordered iteration flowing into an order-sensitive sink.
    ///
    /// Why: the serial≡parallel differential guarantee and the journal/
    /// trace exports promise byte-identical output; `HashMap`/`HashSet`
    /// iteration order is arbitrary and changes across runs. Iterating an
    /// unordered container into `merge`, string/output building, or
    /// journal/trace recording without a sort (or BTree re-collection, or
    /// keyed `entry()` insertion) breaks that promise nondeterministically.
    ///
    /// Example: `for (k, v) in groups { out.push_str(&render(k, v)); }`.
    ///
    /// Escape: `// lint-ok: L014 <reason>` on the iteration site, when the
    /// sink is provably order-insensitive.
    L014
}

rule_doc! {
    /// L015 — nondeterministic effect reachable inside a declared
    /// deterministic zone.
    ///
    /// Why: the oracle-identical fault-schedule suite, the bit-identical
    /// parallel merge, and the virtual-clock serving/tracing guarantees all
    /// assume the zoned code never observes wall clock, OS entropy, or the
    /// environment. The analyzer infers per-function effect sets from
    /// lexical seeds (`Instant::now`, `SystemTime::now`, `RandomState` /
    /// default-hashed `HashMap` construction, `std::env`) and closes them
    /// over the call graph; a `// lint-zone: deterministic` marker above a
    /// fn (or at file level) asserts the zone, and any banned effect the
    /// zone transitively reaches is reported with one concrete call path.
    ///
    /// Example: a merge kernel three calls above a helper that stamps
    /// `Instant::now()` into its output.
    ///
    /// Escape: `// effect-ok: <reason>` on the seed site removes that seed
    /// from inference everywhere (it is audited); `// lint-ok: L015
    /// <reason>` on the zone fn silences the zone.
    L015
}

rule_doc! {
    /// L016 — device I/O on a READ/WRITE path not covered by the retry
    /// layer.
    ///
    /// Why: the PR 3 fault-tolerance contract says every device interaction
    /// on the scan and persistence paths heals transient faults inside
    /// `with_retry`. A bare `disk.read`/`write_at`/`append` outside it is a
    /// crash on the first injected fault. Coverage is computed to a fixed
    /// point: a seed is covered when it sits lexically inside a call to
    /// `with_retry` (or a forwarding wrapper like `io_retry`, detected
    /// because it takes a closure and calls a known wrapper), or when every
    /// caller of its function reaches it under such a call.
    ///
    /// Example: `self.db.load_chunk(..)` on a fallback path, outside the
    /// `io_retry` closure its sibling call sites use.
    ///
    /// Escape: `// lint-ok: L016 <reason>` on the I/O site, when the path
    /// deliberately bypasses retry (e.g. startup recovery that treats any
    /// failure as corruption). L016 cannot be baselined: fix or audit in
    /// source.
    L016
}

rule_doc! {
    /// L017 — workspace `Result` silently discarded in a pipeline crate.
    ///
    /// Why: an error that is dropped (`let _ = flush(..)`), chained into an
    /// unread `.ok()`, or replaced by `.unwrap_or*` never reaches the
    /// scan's error channel or the journal — the operator sees a healthy
    /// pipeline losing data. Only calls whose every workspace definition
    /// returns a workspace-error `Result` are tracked (ambiguous names are
    /// skipped); `?`, `match`, and named bindings are consumption.
    ///
    /// Example: `let _ = store_chunk(&table, &chunk);` on the WRITE path.
    ///
    /// Escape: `// lint-ok: L017 <reason>` on the call site, when the
    /// fallback is the designed degradation and is observable elsewhere.
    L017
}

rule_doc! {
    /// L018 — effect-contract drift between code and the DESIGN.md effect
    /// catalog.
    ///
    /// Why: each crate declares the ambient effects it is allowed
    /// (WallClock, OsEntropy, EnvRead, RealIo, UnorderedIter, DeviceIo) in
    /// a `lint-catalog:effects` fenced block; reviewers reason about
    /// determinism and fault tolerance from that table. The check runs both
    /// directions: an effect the code exhibits but the contract omits, and
    /// a declared effect no code exhibits, both fail. Contracts count
    /// audited (`effect-ok`) seeds too — declaring the effect is the
    /// allowance; the audit only escapes zone inference.
    ///
    /// Example: someone adds `Instant::now()` to `crates/storage` without
    /// widening its contract.
    ///
    /// Escape: update the catalog block (the usual fix), or `// lint-ok:
    /// L018 <reason>` on the seed site for a deliberate one-off.
    L018
}
