//! L009 — feature-gate consistency.
//!
//! The `deadlock-detect` and `fault-inject` features thread through six
//! crates; Cargo checks none of the invariants that make them usable:
//!
//! * **(a) declaration** — a `cfg(feature = "X")` in crate C only ever
//!   fires if C's own Cargo.toml declares `X`; a typo'd or undeclared
//!   feature silently compiles the gated code out forever.
//! * **(b) forwarding** — when crate C declares feature `F` and depends on
//!   crate D which also declares `F`, C's `F` must forward `"D/F"`, or
//!   enabling the feature at the top of the stack leaves D compiled without
//!   it — precisely the half-enabled build the PR-2/3 chains rely on never
//!   happening.
//! * **(c) compiled-off story** — a feature-gated `pub` item either has a
//!   `#[cfg(not(feature = …))]` counterpart or every cross-crate use must
//!   itself sit under the same gate; otherwise the default build breaks.
//!
//! Source-level findings are silenced with `// lint-ok: L009 <reason>`;
//! manifest-level findings (Cargo.toml has no lint comments) go through the
//! baseline file.

use crate::lexer::TokKind;
use crate::manifest::Manifest;
use crate::model::SourceFile;
use crate::parser::{self, CfgGate};
use crate::{Finding, Rule};

/// The manifest owning `rel`: longest manifest-directory prefix wins (the
/// root manifest, dir `""`, matches everything as a fallback).
fn owner<'a>(manifests: &'a [Manifest], rel: &str) -> Option<&'a Manifest> {
    manifests
        .iter()
        .filter(|m| {
            let d = m.dir();
            d.is_empty() || rel.starts_with(&format!("{d}/"))
        })
        .max_by_key(|m| m.dir().len())
}

fn by_package<'a>(manifests: &'a [Manifest], name: &str) -> Option<&'a Manifest> {
    manifests.iter().find(|m| m.package == name)
}

/// Runs all three L009 sub-checks.
pub fn check(files: &[SourceFile], manifests: &[Manifest], findings: &mut Vec<Finding>) {
    let gates: Vec<Vec<CfgGate>> = files.iter().map(parser::cfg_gates).collect();

    // (a) every used feature is declared by the owning crate.
    for (f, fgates) in files.iter().zip(&gates) {
        let Some(m) = owner(manifests, &f.rel) else {
            continue;
        };
        for g in fgates {
            if m.declares(&g.feature) {
                continue;
            }
            if f.has_annotation(g.line, "lint-ok: L009") {
                continue;
            }
            findings.push(Finding {
                rule: Rule::L009,
                file: f.rel.clone(),
                line: g.line,
                message: format!(
                    "cfg(feature = \"{}\") but `{}` is not declared in {}",
                    g.feature, g.feature, m.rel
                ),
                hint: format!(
                    "declare `{}` under [features] in {} or fix the feature name",
                    g.feature, m.rel
                ),
            });
        }
    }

    // (b) forwarding chains are complete.
    for m in manifests {
        if m.package.is_empty() {
            continue;
        }
        for feat in &m.features {
            for dep in &m.deps {
                let Some(dm) = by_package(manifests, dep) else {
                    continue;
                };
                if !dm.declares(&feat.name) {
                    continue;
                }
                let want = format!("{dep}/{}", feat.name);
                let optional = format!("{dep}?/{}", feat.name);
                if feat.entries.iter().any(|e| e == &want || e == &optional) {
                    continue;
                }
                findings.push(Finding {
                    rule: Rule::L009,
                    file: m.rel.clone(),
                    line: feat.line,
                    message: format!(
                        "feature `{}` is not forwarded to dependency `{dep}`, which declares it \
                         — enabling it on `{}` leaves `{dep}` compiled without it",
                        feat.name, m.package
                    ),
                    hint: format!("add \"{want}\" to the `{}` feature array", feat.name),
                });
            }
        }
    }

    // (c) gated pub items have a compiled-off story.
    for (fi, (f, fgates)) in files.iter().zip(&gates).enumerate() {
        let Some(fm) = owner(manifests, &f.rel) else {
            continue;
        };
        for g in fgates {
            if !g.is_pub || g.negated || g.inner {
                continue;
            }
            let mut names: Vec<&str> = g.use_names.iter().map(|s| s.as_str()).collect();
            if let Some((_, n)) = &g.item {
                names.push(n.as_str());
            }
            for name in names {
                // Counterpart in the same file?
                let has_counterpart = fgates.iter().any(|o| {
                    o.negated
                        && o.feature == g.feature
                        && (o.item.as_ref().is_some_and(|(_, n)| n == name)
                            || o.use_names.iter().any(|n| n == name))
                });
                if has_counterpart {
                    continue;
                }
                // Otherwise every cross-crate mention must itself be gated.
                let mut offender = None;
                'files: for (oi, (of, ogates)) in files.iter().zip(&gates).enumerate() {
                    if oi == fi {
                        continue;
                    }
                    let om = owner(manifests, &of.rel);
                    if om.map(|m| m.rel.as_str()) == Some(fm.rel.as_str()) {
                        continue; // same crate: gated internally with the item
                    }
                    for (ti, t) in of.tokens.iter().enumerate() {
                        if t.kind != TokKind::Ident || t.text != name {
                            continue;
                        }
                        // Test code is exempt: dev-dependencies may enable
                        // the feature unconditionally for the test build
                        // (storage's fault regression tests do exactly this).
                        if of.in_test_code(ti) {
                            continue;
                        }
                        let covered = ogates.iter().any(|og| {
                            !og.negated
                                && og.feature == g.feature
                                && og.span.0 <= ti
                                && ti < og.span.1
                        });
                        if !covered {
                            offender = Some((of.rel.clone(), t.line));
                            break 'files;
                        }
                    }
                }
                let Some((orel, oline)) = offender else {
                    continue;
                };
                if f.has_annotation(g.line, "lint-ok: L009") {
                    continue;
                }
                findings.push(Finding {
                    rule: Rule::L009,
                    file: f.rel.clone(),
                    line: g.line,
                    message: format!(
                        "pub item `{name}` is gated on feature `{}` with no \
                         cfg(not(feature))-counterpart, but {orel}:{oline} uses it outside the gate",
                        g.feature
                    ),
                    hint: format!(
                        "add a #[cfg(not(feature = \"{}\"))] stub for `{name}` or gate the use site",
                        g.feature
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest;

    fn run(srcs: &[(&str, &str)], tomls: &[(&str, &str)]) -> Vec<Finding> {
        let files: Vec<SourceFile> = srcs
            .iter()
            .map(|(rel, src)| SourceFile::parse(*rel, src))
            .collect();
        let manifests: Vec<Manifest> = tomls
            .iter()
            .map(|(rel, text)| manifest::parse(rel, text))
            .collect();
        let mut out = Vec::new();
        check(&files, &manifests, &mut out);
        out
    }

    const A_TOML: &str = "[package]\nname = \"a\"\n[features]\nturbo = []\n";

    #[test]
    fn undeclared_feature_flagged() {
        let fs = run(
            &[(
                "crates/a/src/lib.rs",
                "#[cfg(feature = \"tubro\")]\nfn x() {}\n",
            )],
            &[("crates/a/Cargo.toml", A_TOML)],
        );
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("tubro"));
        assert!(run(
            &[(
                "crates/a/src/lib.rs",
                "#[cfg(feature = \"turbo\")]\nfn x() {}\n",
            )],
            &[("crates/a/Cargo.toml", A_TOML)],
        )
        .is_empty());
    }

    #[test]
    fn missing_forward_flagged() {
        let b_toml = "[package]\nname = \"b\"\n[dependencies]\na = { path = \"../a\" }\n[features]\nturbo = []\n";
        let fs = run(
            &[],
            &[
                ("crates/a/Cargo.toml", A_TOML),
                ("crates/b/Cargo.toml", b_toml),
            ],
        );
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("not forwarded to dependency `a`"));
        assert_eq!(fs[0].file, "crates/b/Cargo.toml");

        let fixed = "[package]\nname = \"b\"\n[dependencies]\na = { path = \"../a\" }\n[features]\nturbo = [\"a/turbo\"]\n";
        assert!(run(
            &[],
            &[
                ("crates/a/Cargo.toml", A_TOML),
                ("crates/b/Cargo.toml", fixed)
            ]
        )
        .is_empty());
    }

    #[test]
    fn dev_deps_do_not_require_forwarding() {
        let b_toml = "[package]\nname = \"b\"\n[dev-dependencies]\na = { path = \"../a\" }\n[features]\nturbo = []\n";
        assert!(run(
            &[],
            &[
                ("crates/a/Cargo.toml", A_TOML),
                ("crates/b/Cargo.toml", b_toml)
            ]
        )
        .is_empty());
    }

    #[test]
    fn gated_pub_item_with_ungated_cross_crate_use_flagged() {
        let b_toml = "[package]\nname = \"b\"\n[dependencies]\na = { path = \"../a\" }\n[features]\nturbo = [\"a/turbo\"]\n";
        let fs = run(
            &[
                (
                    "crates/a/src/lib.rs",
                    "#[cfg(feature = \"turbo\")]\npub fn boost() {}\n",
                ),
                ("crates/b/src/lib.rs", "fn f() { a::boost(); }\n"),
            ],
            &[
                ("crates/a/Cargo.toml", A_TOML),
                ("crates/b/Cargo.toml", b_toml),
            ],
        );
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("boost"), "{}", fs[0].message);
        assert!(fs[0].message.contains("crates/b/src/lib.rs:1"));
    }

    #[test]
    fn gated_use_site_is_clean() {
        let b_toml = "[package]\nname = \"b\"\n[dependencies]\na = { path = \"../a\" }\n[features]\nturbo = [\"a/turbo\"]\n";
        let fs = run(
            &[
                (
                    "crates/a/src/lib.rs",
                    "#[cfg(feature = \"turbo\")]\npub fn boost() {}\n",
                ),
                (
                    "crates/b/src/lib.rs",
                    "#[cfg(feature = \"turbo\")]\nfn f() { a::boost(); }\n",
                ),
            ],
            &[
                ("crates/a/Cargo.toml", A_TOML),
                ("crates/b/Cargo.toml", b_toml),
            ],
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn counterpart_stub_is_clean() {
        let b_toml = "[package]\nname = \"b\"\n[dependencies]\na = { path = \"../a\" }\n[features]\nturbo = [\"a/turbo\"]\n";
        let fs = run(
            &[
                (
                    "crates/a/src/lib.rs",
                    "#[cfg(feature = \"turbo\")]\npub fn boost() {}\n#[cfg(not(feature = \"turbo\"))]\npub fn boost() {}\n",
                ),
                ("crates/b/src/lib.rs", "fn f() { a::boost(); }\n"),
            ],
            &[("crates/a/Cargo.toml", A_TOML), ("crates/b/Cargo.toml", b_toml)],
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn file_level_gate_covers_uses() {
        let b_toml = "[package]\nname = \"b\"\n[dependencies]\na = { path = \"../a\" }\n[features]\nturbo = [\"a/turbo\"]\n";
        let fs = run(
            &[
                (
                    "crates/a/src/lib.rs",
                    "#[cfg(feature = \"turbo\")]\npub fn boost() {}\n",
                ),
                (
                    "crates/b/src/gated.rs",
                    "#![cfg(feature = \"turbo\")]\nfn f() { a::boost(); }\n",
                ),
            ],
            &[
                ("crates/a/Cargo.toml", A_TOML),
                ("crates/b/Cargo.toml", b_toml),
            ],
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn test_code_use_is_exempt() {
        // Dev-dependencies may force the feature on for the test build.
        let b_toml = "[package]\nname = \"b\"\n[dependencies]\na = { path = \"../a\" }\n[features]\nturbo = [\"a/turbo\"]\n";
        let fs = run(
            &[
                (
                    "crates/a/src/lib.rs",
                    "#[cfg(feature = \"turbo\")]\npub fn boost() {}\n",
                ),
                (
                    "crates/b/src/lib.rs",
                    "#[cfg(test)]\nmod tests {\n    fn f() { a::boost(); }\n}\n",
                ),
            ],
            &[
                ("crates/a/Cargo.toml", A_TOML),
                ("crates/b/Cargo.toml", b_toml),
            ],
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn same_crate_use_is_exempt() {
        let fs = run(
            &[
                (
                    "crates/a/src/lib.rs",
                    "#[cfg(feature = \"turbo\")]\npub fn boost() {}\n",
                ),
                ("crates/a/src/other.rs", "fn f() { crate::boost(); }\n"),
            ],
            &[("crates/a/Cargo.toml", A_TOML)],
        );
        assert!(fs.is_empty(), "{fs:?}");
    }
}
