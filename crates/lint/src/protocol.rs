//! L007 — protocol exhaustiveness.
//!
//! The pipeline's control plane is a handful of message/error enums:
//! scheduler events, write commands, journal events, the workspace error
//! type. A `match` on one of these with a `_` (or bare-binding) catch-all
//! silently swallows any variant added later — exactly the drift this rule
//! exists to force into the open. Any match whose arms name a workspace
//! protocol enum must list every remaining variant explicitly.
//!
//! A *protocol enum* is an enum defined under `crates/` whose name ends in
//! `Event`, `Cmd`, `Msg`, `Cause`, `Error`, or `ErrorKind`. Matches inside
//! `#[cfg(test)]` code are exempt; individual sites are silenced with
//! `// lint-ok: L007 <reason>`.

use crate::lexer::TokKind;
use crate::model::SourceFile;
use crate::parser::{self, MatchArm, MatchExpr};
use crate::{Finding, Rule};
use std::collections::BTreeMap;

const PROTOCOL_SUFFIXES: &[&str] = &["Event", "Cmd", "Msg", "Cause", "Error", "ErrorKind"];

fn is_protocol_name(name: &str) -> bool {
    PROTOCOL_SUFFIXES.iter().any(|s| {
        name.ends_with(s)
            // Require a real suffix: `Event` itself qualifies, `PreventX`
            // does not (the char before the suffix must be lowercase-to-
            // uppercase boundary, i.e. the suffix starts a capitalized word).
            && (name.len() == s.len()
                || name[..name.len() - s.len()]
                    .chars()
                    .last()
                    .is_some_and(|c| c.is_lowercase() || c.is_numeric()))
    })
}

/// A workspace protocol enum: defining file plus variant list.
#[derive(Debug, Clone)]
pub struct ProtocolEnum {
    pub file: String,
    pub variants: Vec<String>,
}

/// Collects protocol enums from all files under `crates/`.
pub fn collect_protocol_enums(files: &[SourceFile]) -> BTreeMap<String, ProtocolEnum> {
    let mut out: BTreeMap<String, ProtocolEnum> = BTreeMap::new();
    for f in files {
        if !f.rel.starts_with("crates/") {
            continue;
        }
        for e in parser::enums(f) {
            if !is_protocol_name(&e.name) || f.in_test_code(e.tok) {
                continue;
            }
            // Same-name enums in different files (should not happen in this
            // workspace): keep the union of variants so the missing-variant
            // report never invents one.
            out.entry(e.name.clone())
                .and_modify(|p| {
                    for v in &e.variants {
                        if !p.variants.contains(v) {
                            p.variants.push(v.clone());
                        }
                    }
                })
                .or_insert(ProtocolEnum {
                    file: f.rel.clone(),
                    variants: e.variants,
                });
        }
    }
    out
}

/// The enum a match scrutinizes, judged from its arm patterns: the first
/// pattern path `E::V` (after stripping `&`/`ref`/`mut`/`(`) where `E` is a
/// known protocol enum. Looking at patterns instead of the scrutinee
/// expression sidesteps type inference entirely.
fn matched_protocol<'a>(
    f: &SourceFile,
    m: &MatchExpr,
    enums: &'a BTreeMap<String, ProtocolEnum>,
) -> Option<(&'a str, &'a ProtocolEnum)> {
    for arm in &m.arms {
        let (start, end) = arm.pat;
        let mut i = start;
        while i < end {
            let t = &f.tokens[i];
            if t.kind == TokKind::Punct && matches!(t.text.as_str(), "&" | "(") {
                i += 1;
                continue;
            }
            if t.kind == TokKind::Ident && matches!(t.text.as_str(), "ref" | "mut") {
                i += 1;
                continue;
            }
            break;
        }
        if i + 2 < end
            && f.tokens[i].kind == TokKind::Ident
            && f.tokens[i + 1].text == "::"
            && f.tokens[i + 2].kind == TokKind::Ident
        {
            if let Some((name, pe)) = enums.get_key_value(f.tokens[i].text.as_str()) {
                if pe.variants.iter().any(|v| v == &f.tokens[i + 2].text) {
                    return Some((name.as_str(), pe));
                }
            }
        }
    }
    None
}

/// True when the arm is a catch-all: `_`, or a single bare binding that is
/// not one of the enum's variants (an unqualified variant name via
/// `use E::*` is a legitimate exhaustive arm).
fn is_wildcard_arm(f: &SourceFile, arm: &MatchArm, pe: &ProtocolEnum) -> bool {
    let (start, end) = arm.pat;
    let toks: Vec<_> = f.tokens[start..end].iter().collect();
    match toks.as_slice() {
        [t] if t.kind == TokKind::Punct && t.text == "_" => true,
        [t] if t.kind == TokKind::Ident
            && !pe.variants.iter().any(|v| v == &t.text)
            && !matches!(t.text.as_str(), "ref" | "mut") =>
        {
            true
        }
        _ => false,
    }
}

/// Variants of `enum_name` the arm patterns name via `E::V` paths.
fn mentioned_variants(f: &SourceFile, m: &MatchExpr, enum_name: &str) -> Vec<String> {
    let mut out = Vec::new();
    for arm in &m.arms {
        let (start, end) = arm.pat;
        let mut i = start;
        while i + 2 < end {
            if f.tokens[i].kind == TokKind::Ident
                && f.tokens[i].text == enum_name
                && f.tokens[i + 1].text == "::"
                && f.tokens[i + 2].kind == TokKind::Ident
            {
                let v = f.tokens[i + 2].text.clone();
                if !out.contains(&v) {
                    out.push(v);
                }
            }
            i += 1;
        }
    }
    out
}

/// Runs L007 over one file against the workspace enum table.
pub fn check_file(
    f: &SourceFile,
    enums: &BTreeMap<String, ProtocolEnum>,
    findings: &mut Vec<Finding>,
) {
    for m in parser::matches(f) {
        if f.in_test_code(m.tok) {
            continue;
        }
        let Some((name, pe)) = matched_protocol(f, &m, enums) else {
            continue;
        };
        for arm in &m.arms {
            if !is_wildcard_arm(f, arm, pe) {
                continue;
            }
            if f.has_annotation(arm.line, "lint-ok: L007")
                || f.has_annotation(m.line, "lint-ok: L007")
            {
                continue;
            }
            let mentioned = mentioned_variants(f, &m, name);
            let missing: Vec<&str> = pe
                .variants
                .iter()
                .filter(|v| !mentioned.contains(v))
                .map(|v| v.as_str())
                .collect();
            let missing_txt = if missing.is_empty() {
                String::from("all variants are already listed — drop the arm")
            } else {
                format!("unhandled: {}", missing.join(", "))
            };
            findings.push(Finding {
                rule: Rule::L007,
                file: f.rel.clone(),
                line: arm.line,
                message: format!(
                    "wildcard arm in match on protocol enum `{name}` ({missing_txt})"
                ),
                hint: format!(
                    "list every `{name}` variant explicitly so new variants force a decision here; \
                     silence with `// lint-ok: L007 <reason>` if exhaustiveness is genuinely unwanted"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let parsed: Vec<SourceFile> = files
            .iter()
            .map(|(rel, src)| SourceFile::parse(*rel, src))
            .collect();
        let enums = collect_protocol_enums(&parsed);
        let mut out = Vec::new();
        for f in &parsed {
            check_file(f, &enums, &mut out);
        }
        out
    }

    const ENUM_DEF: &str = "pub enum PipeEvent { Started, Stopped, Failed }";

    #[test]
    fn wildcard_on_protocol_enum_flagged() {
        let user = r#"
fn f(e: &PipeEvent) -> u32 {
    match e {
        PipeEvent::Started => 1,
        _ => 0,
    }
}
"#;
        let fs = run(&[
            ("crates/a/src/lib.rs", ENUM_DEF),
            ("crates/b/src/lib.rs", user),
        ]);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, Rule::L007);
        assert!(
            fs[0].message.contains("Stopped, Failed"),
            "{}",
            fs[0].message
        );
    }

    #[test]
    fn bare_binding_catch_all_flagged() {
        let user = "fn f(e: PipeEvent) -> u32 { match e { PipeEvent::Started => 1, other => 0 } }";
        let fs = run(&[
            ("crates/a/src/lib.rs", ENUM_DEF),
            ("crates/b/src/lib.rs", user),
        ]);
        assert_eq!(fs.len(), 1, "{fs:?}");
    }

    #[test]
    fn exhaustive_match_is_clean() {
        let user = "fn f(e: PipeEvent) -> u32 { match e { PipeEvent::Started => 1, PipeEvent::Stopped => 2, PipeEvent::Failed => 3 } }";
        assert!(run(&[
            ("crates/a/src/lib.rs", ENUM_DEF),
            ("crates/b/src/lib.rs", user),
        ])
        .is_empty());
    }

    #[test]
    fn non_protocol_enum_ignored() {
        let files = [
            ("crates/a/src/lib.rs", "pub enum Shape { Dot, Line }"),
            (
                "crates/b/src/lib.rs",
                "fn f(s: Shape) -> u32 { match s { Shape::Dot => 1, _ => 0 } }",
            ),
        ];
        assert!(run(&files).is_empty());
    }

    #[test]
    fn wildcard_on_non_enum_scrutinee_ignored() {
        // Match on Option — arms start with Some/None, not a protocol path.
        let user = "fn f(x: Option<u32>) -> u32 { match x { Some(v) => v, _ => 0 } }";
        assert!(run(&[
            ("crates/a/src/lib.rs", ENUM_DEF),
            ("crates/b/src/lib.rs", user),
        ])
        .is_empty());
    }

    #[test]
    fn annotation_silences() {
        let user = "fn f(e: PipeEvent) -> u32 {\n    match e {\n        PipeEvent::Started => 1,\n        // lint-ok: L007 report counts only these\n        _ => 0,\n    }\n}";
        assert!(run(&[
            ("crates/a/src/lib.rs", ENUM_DEF),
            ("crates/b/src/lib.rs", user),
        ])
        .is_empty());
    }

    #[test]
    fn guarded_wildcard_still_flagged() {
        let user = "fn f(e: PipeEvent) -> u32 { match e { PipeEvent::Started => 1, _ if true => 2, PipeEvent::Stopped => 3, PipeEvent::Failed => 4 } }";
        let fs = run(&[
            ("crates/a/src/lib.rs", ENUM_DEF),
            ("crates/b/src/lib.rs", user),
        ]);
        assert_eq!(fs.len(), 1, "{fs:?}");
    }

    #[test]
    fn test_code_exempt() {
        let user = "#[cfg(test)]\nmod tests {\n    fn f(e: PipeEvent) -> u32 { match e { PipeEvent::Started => 1, _ => 0 } }\n}";
        assert!(run(&[
            ("crates/a/src/lib.rs", ENUM_DEF),
            ("crates/b/src/lib.rs", user),
        ])
        .is_empty());
    }

    #[test]
    fn suffix_match_requires_word_boundary() {
        assert!(is_protocol_name("ObsEvent"));
        assert!(is_protocol_name("WriteCmd"));
        assert!(is_protocol_name("IoErrorKind"));
        assert!(is_protocol_name("Error"));
        assert!(!is_protocol_name("PreventX"));
        assert!(!is_protocol_name("Eventual"));
        assert!(!is_protocol_name("SEvent".trim_end_matches("SEvent"))); // empty
    }
}
