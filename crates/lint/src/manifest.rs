//! Minimal Cargo.toml reader for the L009 feature-consistency checks.
//!
//! Parses just the subset the workspace actually uses: `[package] name`,
//! dependency keys under `[dependencies]` / `[dev-dependencies]`, and
//! `[features]` arrays (single-line or multiline). Anything else — profiles,
//! workspace tables, metadata — is skipped. Line-based and total: malformed
//! input yields fewer parsed entries, never an error.

/// One feature declaration: its name, forwarded entries (`"dep/feat"` or
/// plain `"feat"`), and the line it starts on.
#[derive(Debug, Clone)]
pub struct FeatureDecl {
    pub name: String,
    pub entries: Vec<String>,
    pub line: u32,
}

/// The parsed subset of one Cargo.toml.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// Workspace-relative path of the manifest file.
    pub rel: String,
    /// `[package] name`, empty for a virtual manifest.
    pub package: String,
    /// Dependency keys from `[dependencies]` (dev-deps excluded). Keys are
    /// the names used in feature-forward entries (`key/feature`).
    pub deps: Vec<String>,
    /// Dependency keys from `[dev-dependencies]`.
    pub dev_deps: Vec<String>,
    pub features: Vec<FeatureDecl>,
}

impl Manifest {
    pub fn feature(&self, name: &str) -> Option<&FeatureDecl> {
        self.features.iter().find(|f| f.name == name)
    }

    pub fn declares(&self, name: &str) -> bool {
        self.feature(name).is_some()
    }

    /// Directory of the manifest, workspace-relative ("" for the root).
    pub fn dir(&self) -> &str {
        self.rel.rsplit_once('/').map(|(d, _)| d).unwrap_or("")
    }
}

#[derive(PartialEq, Clone, Copy)]
enum Section {
    Package,
    Deps,
    DevDeps,
    Features,
    Other,
}

/// Strips a trailing `#` comment that is not inside a double-quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Extracts all double-quoted strings from a fragment.
fn quoted_strings(s: &str, out: &mut Vec<String>) {
    let mut rest = s;
    while let Some(start) = rest.find('"') {
        let tail = &rest[start + 1..];
        let Some(len) = tail.find('"') else { break };
        out.push(tail[..len].to_string());
        rest = &tail[len + 1..];
    }
}

/// Parses one manifest. `rel` is the workspace-relative path, used in
/// findings.
pub fn parse(rel: &str, text: &str) -> Manifest {
    let mut m = Manifest {
        rel: rel.to_string(),
        package: String::new(),
        deps: Vec::new(),
        dev_deps: Vec::new(),
        features: Vec::new(),
    };
    let mut section = Section::Other;
    let mut pending: Option<FeatureDecl> = None; // open multiline array
    for (idx, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(decl) = pending.as_mut() {
            let closed = line.contains(']');
            let frag = line.split(']').next().unwrap_or("");
            let mut items = Vec::new();
            quoted_strings(frag, &mut items);
            decl.entries.extend(items);
            if closed {
                m.features.push(pending.take().unwrap());
            }
            continue;
        }
        if line.starts_with('[') {
            section = match line.trim_matches(['[', ']']) {
                "package" => Section::Package,
                "dependencies" => Section::Deps,
                "dev-dependencies" => Section::DevDeps,
                "features" => Section::Features,
                _ => Section::Other,
            };
            continue;
        }
        let Some((key_raw, value)) = line.split_once('=') else {
            continue;
        };
        // `scanraw-types.workspace = true` → key `scanraw-types`.
        let key = key_raw
            .trim()
            .trim_matches('"')
            .split('.')
            .next()
            .unwrap_or("")
            .to_string();
        let value = value.trim();
        match section {
            Section::Package if key == "name" => {
                m.package = value.trim_matches('"').to_string();
            }
            Section::Deps => m.deps.push(key),
            Section::DevDeps => m.dev_deps.push(key),
            Section::Features => {
                let mut decl = FeatureDecl {
                    name: key,
                    entries: Vec::new(),
                    line: idx as u32 + 1,
                };
                if let Some(open) = value.find('[') {
                    let body = &value[open + 1..];
                    if let Some(close) = body.find(']') {
                        quoted_strings(&body[..close], &mut decl.entries);
                        m.features.push(decl);
                    } else {
                        quoted_strings(body, &mut decl.entries);
                        pending = Some(decl);
                    }
                }
            }
            _ => {}
        }
    }
    if let Some(decl) = pending {
        m.features.push(decl);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
[package]
name = "scanraw-engine"
version.workspace = true

[dependencies]
scanraw-types.workspace = true
scanraw.workspace = true
parking_lot.workspace = true

[dev-dependencies]
rand.workspace = true
scanraw-simio = { workspace = true, features = ["fault-inject"] }

[features]
# a comment
deadlock-detect = ["parking_lot/deadlock-detect"]
fault-inject = [
    "scanraw/fault-inject",      # forwarded down
    "scanraw-simio/fault-inject",
]
bare = []
"#;

    #[test]
    fn parses_package_deps_and_features() {
        let m = parse("crates/engine/Cargo.toml", SAMPLE);
        assert_eq!(m.package, "scanraw-engine");
        assert_eq!(m.deps, vec!["scanraw-types", "scanraw", "parking_lot"]);
        assert_eq!(m.dev_deps, vec!["rand", "scanraw-simio"]);
        assert_eq!(m.features.len(), 3);
        let f = m.feature("fault-inject").unwrap();
        assert_eq!(
            f.entries,
            vec!["scanraw/fault-inject", "scanraw-simio/fault-inject"]
        );
        assert!(m.feature("bare").unwrap().entries.is_empty());
        assert_eq!(m.feature("deadlock-detect").unwrap().entries.len(), 1);
    }

    #[test]
    fn feature_lines_point_at_declarations() {
        let m = parse("crates/engine/Cargo.toml", SAMPLE);
        let d = m.feature("deadlock-detect").unwrap();
        // Line numbers are 1-based into the sample text.
        assert_eq!(
            SAMPLE.lines().nth(d.line as usize - 1).unwrap().trim(),
            "deadlock-detect = [\"parking_lot/deadlock-detect\"]"
        );
    }

    #[test]
    fn virtual_manifest_has_no_package() {
        let m = parse(
            "Cargo.toml",
            "[workspace]\nmembers = [\"crates/*\"]\n[workspace.dependencies]\nrand = { path = \"shims/rand\" }\n",
        );
        assert_eq!(m.package, "");
        assert!(m.deps.is_empty());
    }

    #[test]
    fn dir_strips_filename() {
        assert_eq!(parse("crates/engine/Cargo.toml", "").dir(), "crates/engine");
        assert_eq!(parse("Cargo.toml", "").dir(), "");
    }
}
