//! L010 — observability-catalog drift.
//!
//! DESIGN.md §7 documents every metric name and journal event the stack
//! emits; dashboards and the EXPLAIN ANALYZE renderer are written against
//! that catalog. Nothing ties it to the code, so it rots: a renamed counter
//! strands a dashboard, an undocumented event is invisible to operators.
//! This rule closes the loop in both directions:
//!
//! * every metric name passed to a `Metrics` registry method in the
//!   pipeline crates must match a catalog entry, and every catalog entry
//!   must match at least one use;
//! * every `ObsEvent::Variant` used in code must be cataloged, every
//!   cataloged event must exist on the enum, and every enum variant must be
//!   cataloged.
//!
//! The catalog is machine-readable: fenced blocks in DESIGN.md introduced by
//! `<!-- lint-catalog:metrics -->` and `<!-- lint-catalog:events -->`
//! markers, one entry per line. Metric entries may use `{a,b}` alternation
//! and `*` segment wildcards (`disk.{read,write}.ops`,
//! `pipeline.stage.*.nanos`); runtime-formatted names (`format!` with `{}`)
//! match wildcard segments. Source findings are silenced with
//! `// lint-ok: L010 <reason>`; catalog-side findings go through the
//! baseline file.

use crate::lexer::TokKind;
use crate::model::SourceFile;
use crate::parser;
use crate::{Finding, Rule};
use std::collections::BTreeMap;

/// The journal event enum the rule tracks.
const EVENT_ENUM: &str = "ObsEvent";
/// Crate owning the event enum (uses inside it are definitional, not emits).
const EVENT_HOME: &str = "crates/obs/";

/// Crates whose metric registrations must be cataloged. `bench` is excluded
/// on purpose: its `bench.*` namespace is per-experiment scratch.
const METRIC_SCOPE: &[&str] = &[
    "crates/core/",
    "crates/engine/",
    "crates/storage/",
    "crates/simio/",
    "crates/rawfile/",
    "crates/pipesim/",
    "crates/obs/",
];

/// `Metrics` registry methods whose first string argument is a metric name.
const REGISTRY_METHODS: &[&str] = &[
    "counter",
    "gauge",
    "histogram",
    "duration_histogram",
    "counter_value",
    "gauge_value",
    "histogram_snapshot",
];

const METRICS_MARKER: &str = "<!-- lint-catalog:metrics -->";
const EVENTS_MARKER: &str = "<!-- lint-catalog:events -->";

/// One catalog entry with its DESIGN.md line.
#[derive(Debug, Clone)]
pub(crate) struct Entry {
    pub(crate) text: String,
    pub(crate) line: u32,
}

/// Entries of the fenced block following `marker`, or None when the marker
/// is absent. Shared with the L018 effect-contract check.
pub(crate) fn catalog_block(doc: &str, marker: &str) -> Option<Vec<Entry>> {
    let mut entries = Vec::new();
    let mut lines = doc.lines().enumerate();
    lines.find(|(_, l)| l.trim() == marker)?;
    let mut in_fence = false;
    for (idx, line) in lines {
        let t = line.trim();
        if t.starts_with("```") {
            if in_fence {
                break;
            }
            in_fence = true;
            continue;
        }
        if !in_fence || t.is_empty() || t.starts_with('#') {
            continue;
        }
        entries.push(Entry {
            text: t.to_string(),
            line: idx as u32 + 1,
        });
    }
    Some(entries)
}

/// Expands one `{a,b}`-alternation level at a time: `d.{r,w}.{x,y}` →
/// 4 concrete patterns (each may still hold `*` wildcards).
fn expand(pattern: &str) -> Vec<String> {
    let Some(open) = pattern.find('{') else {
        return vec![pattern.to_string()];
    };
    let Some(close) = pattern[open..].find('}').map(|c| open + c) else {
        return vec![pattern.to_string()];
    };
    let mut out = Vec::new();
    for alt in pattern[open + 1..close].split(',') {
        let candidate = format!(
            "{}{}{}",
            &pattern[..open],
            alt.trim(),
            &pattern[close + 1..]
        );
        out.extend(expand(&candidate));
    }
    out
}

/// Segment-wise match; a `*` segment on either side matches anything.
fn segments_match(a: &str, b: &str) -> bool {
    let sa: Vec<&str> = a.split('.').collect();
    let sb: Vec<&str> = b.split('.').collect();
    sa.len() == sb.len()
        && sa
            .iter()
            .zip(&sb)
            .all(|(x, y)| *x == "*" || *y == "*" || x == y)
}

fn pattern_matches(catalog: &str, used: &str) -> bool {
    expand(catalog).iter().any(|p| segments_match(p, used))
}

/// A metric name used in code: normalized pattern plus the site.
#[derive(Debug)]
struct UsedMetric {
    pattern: String,
    file: String,
    line: u32,
}

/// `format!`-style names: every `{...}` hole becomes a `*` segment.
fn normalize_used(name: &str) -> String {
    let mut out = String::new();
    let mut rest = name;
    while let Some(open) = rest.find('{') {
        out.push_str(&rest[..open]);
        out.push('*');
        match rest[open..].find('}') {
            Some(close) => rest = &rest[open + close + 1..],
            None => {
                rest = "";
                break;
            }
        }
    }
    out.push_str(rest);
    out
}

/// Collects `const NAME: &str = "metric.name";` definitions for resolving
/// registry calls that pass a named constant.
fn const_table(files: &[SourceFile]) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for f in files {
        let toks = &f.tokens;
        for i in 0..toks.len().saturating_sub(2) {
            if toks[i].kind == TokKind::Ident
                && toks[i].text == "const"
                && toks[i + 1].kind == TokKind::Ident
            {
                // const NAME [: type] = "literal"
                for j in i + 2..(i + 10).min(toks.len()) {
                    if toks[j].kind == TokKind::Punct && toks[j].text == "=" {
                        if toks.get(j + 1).is_some_and(|t| t.kind == TokKind::Str) {
                            out.insert(toks[i + 1].text.clone(), toks[j + 1].text.clone());
                        }
                        break;
                    }
                    if toks[j].kind == TokKind::Punct && toks[j].text == ";" {
                        break;
                    }
                }
            }
        }
    }
    out
}

/// Every metric name passed to a registry method in the scoped crates
/// (non-test code).
fn used_metrics(files: &[SourceFile], consts: &BTreeMap<String, String>) -> Vec<UsedMetric> {
    let mut out = Vec::new();
    for f in files {
        if !METRIC_SCOPE.iter().any(|p| f.rel.starts_with(p)) {
            continue;
        }
        let toks = &f.tokens;
        for i in 0..toks.len().saturating_sub(1) {
            if !(toks[i].kind == TokKind::Ident
                && REGISTRY_METHODS.contains(&toks[i].text.as_str())
                && toks[i + 1].kind == TokKind::Punct
                && toks[i + 1].text == "(")
            {
                continue;
            }
            // Require method position (`.counter(`) so free functions named
            // `histogram` etc. don't register.
            if !(i > 0 && toks[i - 1].kind == TokKind::Punct && toks[i - 1].text == ".") {
                continue;
            }
            if f.in_test_code(i) {
                continue;
            }
            let end = crate::model::match_paren(toks, i + 1);
            // First string literal inside the call (covers `&format!("…")`),
            // else the first constant whose value we know.
            let mut name = None;
            for t in &toks[i + 2..end] {
                if t.kind == TokKind::Str {
                    name = Some(t.text.clone());
                    break;
                }
                if t.kind == TokKind::Ident {
                    if let Some(v) = consts.get(&t.text) {
                        name = Some(v.clone());
                        break;
                    }
                }
            }
            let Some(name) = name else { continue };
            out.push(UsedMetric {
                pattern: normalize_used(&name),
                file: f.rel.clone(),
                line: toks[i].line,
            });
        }
    }
    out
}

/// Runs L010. `docs` carries (workspace-relative path, contents) for the
/// catalog document(s); the rule is inert when none contain the markers.
pub fn check(files: &[SourceFile], docs: &[(String, String)], findings: &mut Vec<Finding>) {
    let Some((doc_rel, doc)) = docs
        .iter()
        .find(|(_, d)| d.contains(METRICS_MARKER) || d.contains(EVENTS_MARKER))
    else {
        if let Some((rel, _)) = docs.first() {
            findings.push(Finding {
                rule: Rule::L010,
                file: rel.clone(),
                line: 1,
                message: format!(
                    "no `{METRICS_MARKER}` / `{EVENTS_MARKER}` catalog markers found — \
                     the observability catalog is not machine-checkable"
                ),
                hint: "add the lint-catalog fenced blocks to the observability section".into(),
            });
        }
        return;
    };

    let metrics_catalog = catalog_block(doc, METRICS_MARKER).unwrap_or_default();
    let events_catalog = catalog_block(doc, EVENTS_MARKER).unwrap_or_default();

    // --- metrics, both directions -----------------------------------------
    let consts = const_table(files);
    let used = used_metrics(files, &consts);
    for u in &used {
        if metrics_catalog
            .iter()
            .any(|e| pattern_matches(&e.text, &u.pattern))
        {
            continue;
        }
        let src = files.iter().find(|f| f.rel == u.file);
        if src.is_some_and(|f| f.has_annotation(u.line, "lint-ok: L010")) {
            continue;
        }
        findings.push(Finding {
            rule: Rule::L010,
            file: u.file.clone(),
            line: u.line,
            message: format!(
                "metric `{}` is not in the {doc_rel} observability catalog",
                u.pattern
            ),
            hint: format!(
                "add it to the `lint-catalog:metrics` block in {doc_rel} (or fix the name)"
            ),
        });
    }
    for e in &metrics_catalog {
        if used.iter().any(|u| pattern_matches(&e.text, &u.pattern)) {
            continue;
        }
        findings.push(Finding {
            rule: Rule::L010,
            file: doc_rel.clone(),
            line: e.line,
            message: format!(
                "cataloged metric `{}` is never registered by any scoped crate",
                e.text
            ),
            hint: "remove the stale catalog entry or restore the metric".into(),
        });
    }

    // --- events, three directions ------------------------------------------
    let defined: Vec<(String, String, u32)> = files
        .iter()
        .filter(|f| f.rel.starts_with(EVENT_HOME))
        .flat_map(|f| {
            parser::enums(f)
                .into_iter()
                .filter(|e| e.name == EVENT_ENUM)
                .flat_map(|e| {
                    let rel = f.rel.clone();
                    let line = e.line;
                    e.variants.into_iter().map(move |v| (v, rel.clone(), line))
                })
                .collect::<Vec<_>>()
        })
        .collect();
    let cataloged: Vec<&Entry> = events_catalog.iter().collect();

    for f in files {
        if f.rel.starts_with(EVENT_HOME) {
            continue;
        }
        let toks = &f.tokens;
        for i in 0..toks.len().saturating_sub(2) {
            if !(toks[i].kind == TokKind::Ident
                && toks[i].text == EVENT_ENUM
                && toks[i + 1].text == "::"
                && toks[i + 2].kind == TokKind::Ident)
            {
                continue;
            }
            if f.in_test_code(i) {
                continue;
            }
            let variant = &toks[i + 2].text;
            if cataloged.iter().any(|e| &e.text == variant) {
                continue;
            }
            if f.has_annotation(toks[i].line, "lint-ok: L010") {
                continue;
            }
            findings.push(Finding {
                rule: Rule::L010,
                file: f.rel.clone(),
                line: toks[i].line,
                message: format!(
                    "journal event `{EVENT_ENUM}::{variant}` is not in the {doc_rel} event catalog"
                ),
                hint: format!("add `{variant}` to the `lint-catalog:events` block in {doc_rel}"),
            });
        }
    }
    for e in &cataloged {
        if defined.iter().any(|(v, _, _)| v == &e.text) {
            continue;
        }
        findings.push(Finding {
            rule: Rule::L010,
            file: doc_rel.clone(),
            line: e.line,
            message: format!(
                "cataloged event `{}` does not exist on `{EVENT_ENUM}`",
                e.text
            ),
            hint: "remove the stale catalog entry or restore the variant".into(),
        });
    }
    for (v, rel, line) in &defined {
        if cataloged.iter().any(|e| &e.text == v) {
            continue;
        }
        findings.push(Finding {
            rule: Rule::L010,
            file: rel.clone(),
            line: *line,
            message: format!(
                "`{EVENT_ENUM}::{v}` is defined but missing from the {doc_rel} event catalog"
            ),
            hint: format!("add `{v}` to the `lint-catalog:events` block in {doc_rel}"),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(metrics: &str, events: &str) -> (String, String) {
        (
            "DESIGN.md".to_string(),
            format!(
                "# x\n\n{METRICS_MARKER}\n```text\n{metrics}\n```\n\n{EVENTS_MARKER}\n```text\n{events}\n```\n"
            ),
        )
    }

    fn run(srcs: &[(&str, &str)], d: (String, String)) -> Vec<Finding> {
        let files: Vec<SourceFile> = srcs
            .iter()
            .map(|(rel, src)| SourceFile::parse(*rel, src))
            .collect();
        let mut out = Vec::new();
        check(&files, &[d], &mut out);
        out
    }

    const EVENT_DEF: &str = "pub enum ObsEvent { CacheHit, CacheMiss }";

    #[test]
    fn undocumented_metric_flagged() {
        let fs = run(
            &[
                ("crates/obs/src/journal.rs", EVENT_DEF),
                (
                    "crates/core/src/cache.rs",
                    "fn f(m: &Metrics) { m.counter(\"cache.chunk.hit\").inc(); m.counter(\"cache.bogus\").inc(); }",
                ),
            ],
            doc("cache.chunk.hit", "CacheHit\nCacheMiss"),
        );
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("cache.bogus"), "{}", fs[0].message);
    }

    #[test]
    fn alternation_and_wildcards_match() {
        let fs = run(
            &[
                ("crates/obs/src/journal.rs", EVENT_DEF),
                (
                    "crates/core/src/x.rs",
                    r#"fn f(m: &Metrics) {
    m.counter("disk.read.ops");
    m.counter("disk.write.ops");
    m.duration_histogram(&format!("pipeline.stage.{}.nanos", n));
}"#,
                ),
            ],
            doc(
                "disk.{read,write}.ops\npipeline.stage.*.nanos",
                "CacheHit\nCacheMiss",
            ),
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn stale_catalog_metric_flagged_at_doc_line() {
        let fs = run(
            &[("crates/obs/src/journal.rs", EVENT_DEF)],
            doc("ghost.metric", "CacheHit\nCacheMiss"),
        );
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].file, "DESIGN.md");
        assert!(fs[0].message.contains("ghost.metric"));
    }

    #[test]
    fn const_indirection_resolved() {
        let fs = run(
            &[
                ("crates/obs/src/journal.rs", EVENT_DEF),
                (
                    "crates/core/src/retry.rs",
                    "pub(crate) const RETRY: &str = \"scanraw.io.retries\";\nfn f(m: &Metrics) { m.counter(RETRY).inc(); }",
                ),
            ],
            doc("scanraw.io.retries", "CacheHit\nCacheMiss"),
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn uncataloged_event_use_flagged() {
        let fs = run(
            &[
                ("crates/obs/src/journal.rs", EVENT_DEF),
                (
                    "crates/core/src/x.rs",
                    "fn f(j: &Journal) { j.record(ObsEvent::CacheMiss); }",
                ),
            ],
            doc("", "CacheHit"),
        );
        // CacheMiss used-but-uncataloged + defined-but-uncataloged.
        assert_eq!(fs.len(), 2, "{fs:?}");
        assert!(fs.iter().any(|f| f.file == "crates/core/src/x.rs"));
        assert!(fs.iter().any(|f| f.file == "crates/obs/src/journal.rs"));
    }

    #[test]
    fn ghost_catalog_event_flagged() {
        let fs = run(
            &[("crates/obs/src/journal.rs", EVENT_DEF)],
            doc("", "CacheHit\nCacheMiss\nNeverHappened"),
        );
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("NeverHappened"));
    }

    #[test]
    fn missing_markers_reported_once() {
        let fs = run(
            &[("crates/obs/src/journal.rs", EVENT_DEF)],
            ("DESIGN.md".to_string(), "# no catalog here\n".to_string()),
        );
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("not machine-checkable"));
    }

    #[test]
    fn bench_namespace_out_of_scope() {
        let fs = run(
            &[
                ("crates/obs/src/journal.rs", EVENT_DEF),
                (
                    "crates/bench/src/bin/fig5.rs",
                    "fn f(m: &Metrics) { m.counter(\"bench.chunk.trials\").add(3); }",
                ),
            ],
            doc("", "CacheHit\nCacheMiss"),
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn expand_handles_nested_alternation() {
        let mut e = expand("d.{r,w}.{a,b}");
        e.sort();
        assert_eq!(e, vec!["d.r.a", "d.r.b", "d.w.a", "d.w.b"]);
    }
}
