//! Lightweight recursive-descent structure on top of the token stream.
//!
//! The token-stream rules (L001–L006) get away with window matching; the
//! semantic rules need real shape. This module parses just enough of it:
//!
//! * **enum items** — name and variant list, so L007 can tell which matches
//!   scrutinize a workspace protocol enum and which variants an arm names;
//! * **match expressions** — scrutinee, arms split into pattern / guard /
//!   body token ranges, so wildcard arms are recognized structurally instead
//!   of by grepping for `_ =>`;
//! * **`cfg` gates** — every `#[cfg(...)]` / `#![cfg(...)]` mentioning
//!   `feature = "..."`, with the gated item's kind, name, and token span,
//!   for the L009 feature-consistency checks;
//! * **statement trees** — fn bodies split into statements with nested
//!   blocks, early exits (`return`/`break`/`continue`), and top-level `?`
//!   markers, the substrate for the L008 resource-flow walk.
//!
//! Everything stays heuristic and total: malformed input degrades to fewer
//! parsed structures, never to a panic — the compiler is the arbiter of
//! validity, the linter only needs a best-effort view.

use crate::lexer::{TokKind, Token};
use crate::model::{match_brace, match_paren, SourceFile};

fn is_punct(t: &Token, s: &str) -> bool {
    t.kind == TokKind::Punct && t.text == s
}

fn is_ident(t: &Token, s: &str) -> bool {
    t.kind == TokKind::Ident && t.text == s
}

// ---------------------------------------------------------------------------
// Enum items
// ---------------------------------------------------------------------------

/// One `enum` item: name, variants, and where it lives.
#[derive(Debug, Clone)]
pub struct EnumDef {
    pub name: String,
    pub variants: Vec<String>,
    pub line: u32,
    /// Token index of the `enum` keyword.
    pub tok: usize,
}

/// Extracts every `enum` item in the file, including ones inside modules.
pub fn enums(f: &SourceFile) -> Vec<EnumDef> {
    let toks = &f.tokens;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 2 < toks.len() {
        if !is_ident(&toks[i], "enum") {
            i += 1;
            continue;
        }
        let name_tok = &toks[i + 1];
        if name_tok.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        // Find the body `{` past any generics `<...>`.
        let mut j = i + 2;
        let mut angle = 0i32;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "<" if toks[j].kind == TokKind::Punct => angle += 1,
                ">" if toks[j].kind == TokKind::Punct => angle -= 1,
                "{" if toks[j].kind == TokKind::Punct && angle <= 0 => break,
                ";" if toks[j].kind == TokKind::Punct => break, // not an enum item
                _ => {}
            }
            j += 1;
        }
        if j >= toks.len() || !is_punct(&toks[j], "{") {
            i += 1;
            continue;
        }
        let end = match_brace(toks, j);
        let mut variants = Vec::new();
        // Walk the body at depth 1: a variant is an identifier at the start
        // of an entry; its payload `(..)`/`{..}` and discriminant are
        // skipped to the next `,` at depth 1.
        let mut k = j + 1;
        while k < end.saturating_sub(1) {
            let t = &toks[k];
            if is_punct(t, "#") && k + 1 < end && is_punct(&toks[k + 1], "[") {
                // Attribute: skip to its `]`.
                let mut depth = 0usize;
                let mut a = k + 1;
                while a < end {
                    if is_punct(&toks[a], "[") {
                        depth += 1;
                    } else if is_punct(&toks[a], "]") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    a += 1;
                }
                k = a + 1;
                continue;
            }
            if t.kind == TokKind::Ident {
                variants.push(t.text.clone());
                // Skip to the `,` closing this entry (payload braces/parens
                // balanced).
                let (mut p, mut br, mut bk) = (0i32, 0i32, 0i32);
                while k < end.saturating_sub(1) {
                    let e = &toks[k];
                    match e.text.as_str() {
                        "(" if e.kind == TokKind::Punct => p += 1,
                        ")" if e.kind == TokKind::Punct => p -= 1,
                        "{" if e.kind == TokKind::Punct => br += 1,
                        "}" if e.kind == TokKind::Punct => br -= 1,
                        "[" if e.kind == TokKind::Punct => bk += 1,
                        "]" if e.kind == TokKind::Punct => bk -= 1,
                        "," if e.kind == TokKind::Punct && p == 0 && br == 0 && bk == 0 => break,
                        _ => {}
                    }
                    k += 1;
                }
            }
            k += 1;
        }
        out.push(EnumDef {
            name: name_tok.text.clone(),
            variants,
            line: toks[i].line,
            tok: i,
        });
        i = end;
    }
    out
}

// ---------------------------------------------------------------------------
// Match expressions
// ---------------------------------------------------------------------------

/// One arm of a match: token ranges for the pattern (guard excluded), the
/// optional `if` guard, and the body.
#[derive(Debug, Clone)]
pub struct MatchArm {
    pub pat: (usize, usize),
    pub guard: Option<(usize, usize)>,
    pub body: (usize, usize),
    pub line: u32,
}

/// One `match` expression with its parsed arms.
#[derive(Debug, Clone)]
pub struct MatchExpr {
    /// Token range of the scrutinee (between `match` and the body `{`).
    pub scrutinee: (usize, usize),
    pub arms: Vec<MatchArm>,
    pub line: u32,
    /// Token index of the `match` keyword.
    pub tok: usize,
}

/// Extracts every `match` expression (including nested ones — the scan is
/// token-linear, so a match inside an arm body is found independently).
pub fn matches(f: &SourceFile) -> Vec<MatchExpr> {
    let toks = &f.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !is_ident(&toks[i], "match") {
            continue;
        }
        // `matches!` lexes as the ident `matches`, not `match`; but a macro
        // named `match` cannot exist, so any `match` ident is the keyword.
        // Scrutinee: tokens to the body `{` at zero paren/bracket depth
        // (scrutinee position forbids bare struct literals, so the first
        // such `{` opens the body).
        let mut j = i + 1;
        let (mut p, mut bk) = (0i32, 0i32);
        while j < toks.len() {
            let t = &toks[j];
            match t.text.as_str() {
                "(" if t.kind == TokKind::Punct => p += 1,
                ")" if t.kind == TokKind::Punct => p -= 1,
                "[" if t.kind == TokKind::Punct => bk += 1,
                "]" if t.kind == TokKind::Punct => bk -= 1,
                "{" if t.kind == TokKind::Punct && p <= 0 && bk <= 0 => break,
                // A `;` or `}` first means this wasn't a match expression
                // after all (e.g. half-parsed macro soup); bail.
                ";" | "}" if t.kind == TokKind::Punct && p <= 0 && bk <= 0 => {
                    j = toks.len();
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        if j >= toks.len() {
            continue;
        }
        let body_open = j;
        let body_end = match_brace(toks, body_open); // exclusive, past `}`
        let mut arms = Vec::new();
        let mut k = body_open + 1;
        while k < body_end.saturating_sub(1) {
            // Pattern: tokens to `=>` at zero depth; a top-level `if` starts
            // the guard.
            let pat_start = k;
            let mut guard_start = None;
            let (mut p, mut br, mut bk) = (0i32, 0i32, 0i32);
            let mut arrow = None;
            let mut m = k;
            while m < body_end - 1 {
                let t = &toks[m];
                match t.text.as_str() {
                    "(" if t.kind == TokKind::Punct => p += 1,
                    ")" if t.kind == TokKind::Punct => p -= 1,
                    "{" if t.kind == TokKind::Punct => br += 1,
                    "}" if t.kind == TokKind::Punct => br -= 1,
                    "[" if t.kind == TokKind::Punct => bk += 1,
                    "]" if t.kind == TokKind::Punct => bk -= 1,
                    "if" if t.kind == TokKind::Ident
                        && p == 0
                        && br == 0
                        && bk == 0
                        && guard_start.is_none() =>
                    {
                        guard_start = Some(m)
                    }
                    "=>" if t.kind == TokKind::Punct && p == 0 && br == 0 && bk == 0 => {
                        arrow = Some(m);
                        break;
                    }
                    _ => {}
                }
                m += 1;
            }
            let Some(arrow) = arrow else { break };
            let pat_end = guard_start.unwrap_or(arrow);
            // Body: a block, or an expression to the `,` at zero depth (or
            // the end of the match body).
            let body_start = arrow + 1;
            let body_stop;
            let next;
            if body_start < body_end - 1 && is_punct(&toks[body_start], "{") {
                body_stop = match_brace(toks, body_start).min(body_end - 1);
                next = if body_stop < body_end - 1 && is_punct(&toks[body_stop], ",") {
                    body_stop + 1
                } else {
                    body_stop
                };
            } else {
                let (mut p, mut br, mut bk) = (0i32, 0i32, 0i32);
                let mut m = body_start;
                while m < body_end - 1 {
                    let t = &toks[m];
                    match t.text.as_str() {
                        "(" if t.kind == TokKind::Punct => p += 1,
                        ")" if t.kind == TokKind::Punct => p -= 1,
                        "{" if t.kind == TokKind::Punct => br += 1,
                        "}" if t.kind == TokKind::Punct => br -= 1,
                        "[" if t.kind == TokKind::Punct => bk += 1,
                        "]" if t.kind == TokKind::Punct => bk -= 1,
                        "," if t.kind == TokKind::Punct && p == 0 && br == 0 && bk == 0 => break,
                        _ => {}
                    }
                    m += 1;
                }
                body_stop = m;
                next = (m + 1).min(body_end - 1);
            }
            arms.push(MatchArm {
                pat: (pat_start, pat_end),
                guard: guard_start.map(|g| (g, arrow)),
                body: (body_start, body_stop),
                line: toks[pat_start].line,
            });
            if next <= k {
                break; // no forward progress; malformed body
            }
            k = next;
        }
        out.push(MatchExpr {
            scrutinee: (i + 1, body_open),
            arms,
            line: toks[i].line,
            tok: i,
        });
    }
    out
}

// ---------------------------------------------------------------------------
// cfg gates
// ---------------------------------------------------------------------------

/// What kind of thing a `#[cfg]` attribute gates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GatedKind {
    Fn,
    Struct,
    Enum,
    Mod,
    Trait,
    Type,
    Const,
    Static,
    Use,
    Impl,
    /// Struct field, struct-literal entry, or other expression position.
    Other,
}

/// One `#[cfg(...)]` / `#![cfg(...)]` site that mentions a feature.
#[derive(Debug, Clone)]
pub struct CfgGate {
    /// The feature name from `feature = "..."` (first one in the attribute).
    pub feature: String,
    /// True when the feature appears under `not(...)`.
    pub negated: bool,
    pub line: u32,
    /// Token span of the attribute plus the gated item (for `#![cfg]`, the
    /// rest of the file).
    pub span: (usize, usize),
    /// Gated item kind and name, when one could be extracted.
    pub item: Option<(GatedKind, String)>,
    /// Names introduced by a gated `use` re-export (leaf idents).
    pub use_names: Vec<String>,
    pub is_pub: bool,
    /// Inner attribute `#![cfg(...)]` — gates the whole enclosing scope.
    pub inner: bool,
}

/// Extracts every cfg gate mentioning `feature = "..."`. `cfg_attr` and
/// non-feature cfgs (`cfg(test)`, `cfg(unix)`) are ignored.
pub fn cfg_gates(f: &SourceFile) -> Vec<CfgGate> {
    let toks = &f.tokens;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 3 < toks.len() {
        if !is_punct(&toks[i], "#") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        let inner = j < toks.len() && is_punct(&toks[j], "!");
        if inner {
            j += 1;
        }
        if !(j + 1 < toks.len() && is_punct(&toks[j], "[") && is_ident(&toks[j + 1], "cfg")) {
            i += 1;
            continue;
        }
        if !(j + 2 < toks.len() && is_punct(&toks[j + 2], "(")) {
            i += 1;
            continue;
        }
        let args_end = match_paren(toks, j + 2); // exclusive, past `)`
                                                 // Find `feature = "name"`, tracking whether we're under `not(`.
        let mut feature = None;
        let mut negated = false;
        let mut not_depth: Vec<i32> = Vec::new(); // paren depths where not( opened
        let mut depth = 0i32;
        let mut a = j + 2;
        while a < args_end {
            let t = &toks[a];
            if is_punct(t, "(") {
                depth += 1;
            } else if is_punct(t, ")") {
                depth -= 1;
                not_depth.retain(|&d| d <= depth);
            } else if is_ident(t, "not") && a + 1 < args_end && is_punct(&toks[a + 1], "(") {
                not_depth.push(depth + 1);
            } else if is_ident(t, "feature")
                && a + 2 < args_end
                && is_punct(&toks[a + 1], "=")
                && toks[a + 2].kind == TokKind::Str
                && feature.is_none()
            {
                feature = Some(toks[a + 2].text.clone());
                negated = !not_depth.is_empty();
            }
            a += 1;
        }
        let attr_end = args_end + 1; // past the closing `]`
        let Some(feature) = feature else {
            i = attr_end;
            continue;
        };
        if inner {
            out.push(CfgGate {
                feature,
                negated,
                line: toks[i].line,
                span: (i, toks.len()),
                item: None,
                use_names: Vec::new(),
                is_pub: false,
                inner: true,
            });
            i = attr_end;
            continue;
        }
        // Identify the gated item: skip further attributes, then read the
        // item prefix.
        let mut k = attr_end;
        while k + 1 < toks.len() && is_punct(&toks[k], "#") && is_punct(&toks[k + 1], "[") {
            // skip stacked attribute
            let mut depth = 0usize;
            let mut b = k + 1;
            while b < toks.len() {
                if is_punct(&toks[b], "[") {
                    depth += 1;
                } else if is_punct(&toks[b], "]") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                b += 1;
            }
            k = b + 1;
        }
        let mut is_pub = false;
        while k < toks.len() {
            let t = &toks[k];
            if is_ident(t, "pub") {
                is_pub = true;
                // skip optional (crate)/(super)/(in path)
                if k + 1 < toks.len() && is_punct(&toks[k + 1], "(") {
                    k = match_paren(toks, k + 1);
                    continue;
                }
                k += 1;
            } else if is_ident(t, "async")
                || is_ident(t, "unsafe")
                || is_ident(t, "extern")
                || t.kind == TokKind::Str
                || is_ident(t, "const") && {
                    // `const fn` prefix vs `const NAME`: peek — if the next
                    // token is `fn`, it's a qualifier.
                    k + 1 < toks.len() && is_ident(&toks[k + 1], "fn")
                }
            {
                k += 1;
            } else {
                break;
            }
        }
        let (kind, name, use_names) = gated_item_at(toks, k);
        let span_end = gated_span_end(toks, k);
        out.push(CfgGate {
            feature,
            negated,
            line: toks[i].line,
            span: (i, span_end),
            item: name.map(|n| (kind, n)),
            use_names,
            is_pub,
            inner: false,
        });
        i = attr_end;
    }
    out
}

/// Classifies the item starting at `k` and extracts its name.
fn gated_item_at(toks: &[Token], k: usize) -> (GatedKind, Option<String>, Vec<String>) {
    let Some(t) = toks.get(k) else {
        return (GatedKind::Other, None, Vec::new());
    };
    let name_after = |kw_idx: usize| -> Option<String> {
        toks.get(kw_idx + 1)
            .filter(|n| n.kind == TokKind::Ident)
            .map(|n| n.text.clone())
    };
    match t.text.as_str() {
        "fn" => (GatedKind::Fn, name_after(k), Vec::new()),
        "struct" => (GatedKind::Struct, name_after(k), Vec::new()),
        "enum" => (GatedKind::Enum, name_after(k), Vec::new()),
        "mod" => (GatedKind::Mod, name_after(k), Vec::new()),
        "trait" => (GatedKind::Trait, name_after(k), Vec::new()),
        "type" => (GatedKind::Type, name_after(k), Vec::new()),
        "const" => (GatedKind::Const, name_after(k), Vec::new()),
        "static" => (GatedKind::Static, name_after(k), Vec::new()),
        "impl" => (GatedKind::Impl, None, Vec::new()),
        "use" => {
            // Collect the leaf idents of the use tree: idents not followed
            // by `::` (and not the `as` keyword or crate/self/super roots).
            let mut names = Vec::new();
            let mut m = k + 1;
            while m < toks.len() && !is_punct(&toks[m], ";") {
                let u = &toks[m];
                if u.kind == TokKind::Ident
                    && !matches!(u.text.as_str(), "as" | "crate" | "self" | "super")
                    && !(m + 1 < toks.len() && is_punct(&toks[m + 1], "::"))
                {
                    names.push(u.text.clone());
                }
                m += 1;
            }
            (GatedKind::Use, None, names)
        }
        _ => {
            // Struct field / struct-literal entry: `ident :` — or anything
            // else expression-shaped.
            if t.kind == TokKind::Ident && toks.get(k + 1).is_some_and(|n| is_punct(n, ":")) {
                (GatedKind::Other, Some(t.text.clone()), Vec::new())
            } else {
                (GatedKind::Other, None, Vec::new())
            }
        }
    }
}

/// The token index just past the item starting at `k`: through its brace
/// block if one opens before a `;`/`,` at depth zero, else to that
/// terminator.
fn gated_span_end(toks: &[Token], k: usize) -> usize {
    let (mut p, mut bk) = (0i32, 0i32);
    let mut m = k;
    while m < toks.len() {
        let t = &toks[m];
        match t.text.as_str() {
            "(" if t.kind == TokKind::Punct => p += 1,
            ")" if t.kind == TokKind::Punct => {
                if p == 0 {
                    return m; // closing an enclosing group (struct literal arg…)
                }
                p -= 1;
            }
            "[" if t.kind == TokKind::Punct => bk += 1,
            "]" if t.kind == TokKind::Punct => bk -= 1,
            "{" if t.kind == TokKind::Punct && p == 0 && bk == 0 => return match_brace(toks, m),
            "}" if t.kind == TokKind::Punct && p == 0 && bk == 0 => return m,
            ";" | "," if t.kind == TokKind::Punct && p == 0 && bk == 0 => return m + 1,
            _ => {}
        }
        m += 1;
    }
    toks.len()
}

// ---------------------------------------------------------------------------
// Statement trees
// ---------------------------------------------------------------------------

/// How a statement leaves the enclosing scope, if it does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitKind {
    None,
    Return,
    Break,
    Continue,
}

/// One statement: its token range, early-exit classification, whether a `?`
/// occurs at its top level, and its nested blocks (if/else/match/loop bodies,
/// block expressions), each parsed recursively.
#[derive(Debug)]
pub struct Stmt {
    /// Token range, inclusive of the trailing `;` when present.
    pub range: (usize, usize),
    pub line: u32,
    pub exit: ExitKind,
    /// A `?` at the statement's top level (outside nested blocks).
    pub has_question: bool,
    pub blocks: Vec<Block>,
    /// Index in `blocks` of a `let ... else { }` diverging block — the
    /// binding is *not* in scope there.
    pub else_block: Option<usize>,
    /// `let`-bound name: `let [mut] x`, `let Some(x)`, `let Ok(x)`.
    pub binding: Option<String>,
    /// For `let` statements: token index just past the `=` sign.
    pub init_start: Option<usize>,
}

/// A brace-delimited (or fn-body) sequence of statements.
#[derive(Debug, Default)]
pub struct Block {
    pub stmts: Vec<Stmt>,
}

const BLOCKY_STARTERS: &[&str] = &["if", "while", "for", "loop", "match", "unsafe"];

/// Parses the token range `[start, end)` as a statement sequence.
pub fn parse_block(f: &SourceFile, start: usize, end: usize) -> Block {
    let toks = &f.tokens;
    let mut stmts = Vec::new();
    let mut i = start;
    while i < end {
        if is_punct(&toks[i], ";") {
            i += 1;
            continue;
        }
        let stmt_start = i;
        let line = toks[i].line;
        let first = &toks[i];
        let exit = if is_ident(first, "return") {
            ExitKind::Return
        } else if is_ident(first, "break") {
            ExitKind::Break
        } else if is_ident(first, "continue") {
            ExitKind::Continue
        } else {
            ExitKind::None
        };
        let is_let = is_ident(first, "let");
        let blocky = BLOCKY_STARTERS.contains(&first.text.as_str()) && first.kind == TokKind::Ident
            || is_punct(first, "{");
        // `let` binding extraction: `let [mut] x =` / `let Some(x) =`.
        let mut binding = None;
        let mut init_start = None;
        if is_let {
            let mut b = i + 1;
            if b < end && is_ident(&toks[b], "mut") {
                b += 1;
            }
            if b < end && toks[b].kind == TokKind::Ident {
                if b + 1 < end && is_punct(&toks[b + 1], "(") {
                    // `let Some(x)` / `let Ok(x)` — one ident inside.
                    if b + 3 < end
                        && toks[b + 2].kind == TokKind::Ident
                        && is_punct(&toks[b + 3], ")")
                    {
                        binding = Some(toks[b + 2].text.clone());
                    }
                } else {
                    binding = Some(toks[b].text.clone());
                }
            }
        }
        // Scan to the statement end, collecting top-level blocks.
        let (mut p, mut bk) = (0i32, 0i32);
        let mut blocks = Vec::new();
        let mut else_block = None;
        let mut has_question = false;
        let mut j = i;
        let mut stmt_end = end;
        let mut prev_else = false;
        while j < end {
            let t = &toks[j];
            match t.text.as_str() {
                "(" if t.kind == TokKind::Punct => p += 1,
                ")" if t.kind == TokKind::Punct => p -= 1,
                "[" if t.kind == TokKind::Punct => bk += 1,
                "]" if t.kind == TokKind::Punct => bk -= 1,
                "=" if t.kind == TokKind::Punct
                    && is_let
                    && p == 0
                    && bk == 0
                    && init_start.is_none() =>
                {
                    init_start = Some(j + 1)
                }
                "?" if t.kind == TokKind::Punct && p == 0 && bk == 0 => has_question = true,
                "{" if t.kind == TokKind::Punct && p == 0 && bk == 0 => {
                    let bend = match_brace(toks, j); // past `}`
                    let inner_end = bend.saturating_sub(1).min(end);
                    if prev_else {
                        else_block = else_block.or(Some(blocks.len()));
                    }
                    blocks.push(parse_block(f, j + 1, inner_end));
                    j = bend.min(end);
                    // Does this block terminate the statement?
                    if j >= end {
                        stmt_end = end;
                        break;
                    }
                    let nt = &toks[j];
                    let continuation = is_ident(nt, "else")
                        || is_punct(nt, ".")
                        || is_punct(nt, "?")
                        || is_punct(nt, ",");
                    if blocky && !continuation && !is_let {
                        stmt_end = j;
                        break;
                    }
                    if is_punct(nt, ";") {
                        stmt_end = j + 1;
                        break;
                    }
                    prev_else = false;
                    continue;
                }
                "}" if t.kind == TokKind::Punct && p == 0 && bk == 0 => {
                    // Enclosing block closes; statement ends here.
                    stmt_end = j;
                    break;
                }
                ";" if t.kind == TokKind::Punct && p == 0 && bk == 0 => {
                    stmt_end = j + 1;
                    break;
                }
                _ => {}
            }
            prev_else = is_ident(t, "else") && is_let;
            j += 1;
        }
        if j >= end {
            stmt_end = stmt_end.min(end);
        }
        if stmt_end <= stmt_start {
            break; // closing brace of the enclosing block; done
        }
        stmts.push(Stmt {
            range: (stmt_start, stmt_end),
            line,
            exit,
            has_question,
            blocks,
            else_block,
            binding: binding.filter(|b| b != "_"),
            init_start,
        });
        i = stmt_end.max(stmt_start + 1);
    }
    Block { stmts }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse("crates/a/src/lib.rs", src)
    }

    #[test]
    fn enum_variants_extracted() {
        let f = file(
            r#"
pub enum Event {
    Converted(Arc<BinaryChunk>),
    Evicted(Evicted),
    ReadBlocked,
    WriteDone(ChunkId),
    QueryDone,
}
enum Simple { A, B = 3, C { x: u32 } }
"#,
        );
        let es = enums(&f);
        assert_eq!(es.len(), 2);
        assert_eq!(es[0].name, "Event");
        assert_eq!(
            es[0].variants,
            vec![
                "Converted",
                "Evicted",
                "ReadBlocked",
                "WriteDone",
                "QueryDone"
            ]
        );
        assert_eq!(es[1].variants, vec!["A", "B", "C"]);
    }

    #[test]
    fn match_arms_with_guards_and_struct_patterns() {
        let f = file(
            r#"
fn f(e: &Event) -> u32 {
    match e {
        Event::Converted(c) if c.big() => 1,
        Event::WriteQueued { chunk, .. } => 2,
        _ => 0,
    }
}
"#,
        );
        let ms = matches(&f);
        assert_eq!(ms.len(), 1);
        let m = &ms[0];
        assert_eq!(m.arms.len(), 3);
        assert!(m.arms[0].guard.is_some());
        let pat_texts: Vec<String> = (m.arms[2].pat.0..m.arms[2].pat.1)
            .map(|i| f.tokens[i].text.clone())
            .collect();
        assert_eq!(pat_texts, vec!["_"]);
    }

    #[test]
    fn nested_matches_found_independently() {
        let f =
            file("fn f(x: A, y: B) { match x { A::P => match y { B::Q => 1, _ => 2 }, _ => 0 }; }");
        assert_eq!(matches(&f).len(), 2);
    }

    #[test]
    fn cfg_gate_on_fn_and_mod() {
        let f = file(
            r#"
#[cfg(feature = "fault-inject")]
pub fn set_fault_plan(&self, plan: FaultPlan) {
    body();
}
#[cfg(not(feature = "fault-inject"))]
fn stub() {}
#[cfg(feature = "fault-inject")]
pub use fault::{FaultConfig, FaultPlan};
#[cfg(test)]
mod tests {}
"#,
        );
        let gs = cfg_gates(&f);
        assert_eq!(gs.len(), 3);
        assert_eq!(gs[0].feature, "fault-inject");
        assert!(!gs[0].negated);
        assert!(gs[0].is_pub);
        assert_eq!(
            gs[0].item,
            Some((GatedKind::Fn, "set_fault_plan".to_string()))
        );
        assert!(gs[1].negated);
        assert_eq!(gs[2].use_names, vec!["FaultConfig", "FaultPlan"]);
    }

    #[test]
    fn inner_cfg_gates_rest_of_file() {
        let f = file("#![cfg(feature = \"fault-inject\")]\nfn f() {}\n");
        let gs = cfg_gates(&f);
        assert_eq!(gs.len(), 1);
        assert!(gs[0].inner);
        assert_eq!(gs[0].span.1, f.tokens.len());
    }

    #[test]
    fn stmt_tree_shapes() {
        let f = file(
            r#"
fn f(b: &Buf) -> Result<(), E> {
    let c = b.pop();
    let m = meta()?;
    if bad(&m) {
        return Err(E::Bad);
    }
    out.send(c);
    Ok(())
}
"#,
        );
        let func = &f.functions[0];
        let (s, e) = func.body.unwrap();
        let block = parse_block(&f, s, e);
        assert_eq!(block.stmts.len(), 5);
        assert_eq!(block.stmts[0].binding.as_deref(), Some("c"));
        assert!(block.stmts[1].has_question);
        assert_eq!(block.stmts[2].blocks.len(), 1);
        assert_eq!(block.stmts[2].blocks[0].stmts.len(), 1);
        assert_eq!(block.stmts[2].blocks[0].stmts[0].exit, ExitKind::Return);
        assert_eq!(block.stmts[4].exit, ExitKind::None);
    }

    #[test]
    fn let_else_block_marked() {
        let f = file("fn f(b: &Buf) { let Some(x) = b.pop() else { return; }; use_it(x); }");
        let (s, e) = f.functions[0].body.unwrap();
        let block = parse_block(&f, s, e);
        assert_eq!(block.stmts[0].binding.as_deref(), Some("x"));
        assert_eq!(block.stmts[0].else_block, Some(0));
        assert_eq!(block.stmts.len(), 2);
    }

    #[test]
    fn if_else_chain_is_one_statement() {
        let f = file("fn f() { if a { x() } else if b { y() } else { z() } w(); }");
        let (s, e) = f.functions[0].body.unwrap();
        let block = parse_block(&f, s, e);
        assert_eq!(block.stmts.len(), 2);
        assert_eq!(block.stmts[0].blocks.len(), 3);
    }
}
