//! The workspace call graph: one node per function (plus one per spawned
//! closure), resolved `fn → callee` edges, spawn-site roots, and the
//! per-node summaries (blocking operations, panic sites) the
//! interprocedural rules L011–L013 consume.
//!
//! Spawned closures are split out of their enclosing function into
//! *synthetic nodes*: the closure body runs on another thread, so its
//! blocking ops and panics must not be attributed to the spawning function.
//! Synthetic nodes are the reachability roots — they are where new threads
//! begin executing.

use crate::lexer::{TokKind, Token};
use crate::model::{match_brace, match_paren, SourceFile};
use crate::resolve::{FnRef, Resolver};
use std::collections::{BTreeMap, BTreeSet};

/// A blocking operation kind, with the channel/condvar name where relevant.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Op {
    /// Blocking send on the named channel.
    Send(String),
    /// Blocking recv on the named channel.
    Recv(String),
    /// `Condvar::wait` on the named condvar.
    CvWait(String),
    /// `thread::sleep` or equivalent.
    Sleep,
    /// `JoinHandle::join`.
    Join,
    /// Blocking file/device I/O.
    Io(String),
}

impl Op {
    pub fn describe(&self) -> String {
        match self {
            Op::Send(c) => format!("blocking `send` on channel `{c}`"),
            Op::Recv(c) => format!("blocking `recv` on channel `{c}`"),
            Op::CvWait(c) => format!("`Condvar::wait` on `{c}`"),
            Op::Sleep => "`thread::sleep`".to_string(),
            Op::Join => "`JoinHandle::join`".to_string(),
            Op::Io(m) => format!("blocking I/O (`{m}`)"),
        }
    }
}

/// A panic site inside a node's own body.
#[derive(Debug, Clone)]
pub struct PanicSite {
    pub line: u32,
    /// `unwrap`, `expect`, `panic!`, …
    pub what: String,
}

/// A blocking site inside a node's own body.
#[derive(Debug, Clone)]
pub struct BlockSite {
    pub line: u32,
    pub op: Op,
}

/// One call-graph node: a function body, or a spawned-closure body carved
/// out of one.
#[derive(Debug)]
pub struct Node {
    /// Index into the file set.
    pub file: usize,
    /// Index into that file's `functions`; the enclosing fn for spawn nodes.
    pub func: usize,
    /// Line of the `spawn(` call for synthetic nodes.
    pub spawn_line: Option<u32>,
    /// Token range scanned (inclusive start, exclusive end).
    pub body: (usize, usize),
    /// Sub-ranges excluded from this node (spawned closures carved out).
    pub holes: Vec<(usize, usize)>,
    /// Display name: `path.rs:fn` or `path.rs:fn@spawnline`.
    pub display: String,
    pub panics: Vec<PanicSite>,
    pub blocking: Vec<BlockSite>,
    /// Resolved outgoing calls: (callee node, call-site line), sorted.
    pub calls: Vec<(usize, u32)>,
}

/// How a node first reaches a blocking op, for L012 messages.
#[derive(Debug, Clone)]
pub struct BlockPath {
    pub op: Op,
    /// Display names of the call chain below this node ([] = direct).
    pub via: Vec<String>,
}

/// The assembled graph plus derived closures.
#[derive(Debug)]
pub struct CallGraph {
    pub nodes: Vec<Node>,
    /// Synthetic spawn nodes — the reachability roots.
    pub roots: Vec<usize>,
    /// node -> transitive blocking-op set (own + all callees').
    pub ops: Vec<BTreeSet<Op>>,
    /// node -> one concrete path to a blocking op, if any.
    pub block_path: Vec<Option<BlockPath>>,
    /// node -> (root node, predecessor on a path from that root), for every
    /// node reachable from a spawn root.
    pub from_root: BTreeMap<usize, (usize, Option<usize>)>,
    /// fn definition -> node id (fn nodes only, not synthetic ones).
    fn_node: BTreeMap<(usize, usize), usize>,
}

/// Rust keywords and control forms that look like `ident (` but are not
/// calls.
const NON_CALLS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "let", "move", "in", "as", "ref", "mut",
    "else", "impl", "where", "dyn", "box", "unsafe", "async", "await", "use", "pub", "crate",
    "super", "self", "Self", "Some", "None", "Ok", "Err", "Box", "Vec", "String", "Arc", "Rc",
];

/// Methods treated as blocking file/device I/O when called with `.`.
const IO_METHODS: &[&str] = &[
    "read_exact",
    "read_to_string",
    "read_to_end",
    "write_all",
    "sync_all",
    "sync_data",
    "flush",
];

fn is_punct(t: &Token, s: &str) -> bool {
    t.kind == TokKind::Punct && t.text == s
}

fn is_ident(t: &Token, s: &str) -> bool {
    t.kind == TokKind::Ident && t.text == s
}

/// Canonical channel name: `events_tx` / `events_rx` → `events`, bare
/// `tx`/`rx` → `chan`. Pairs both endpoints of one channel onto one node.
pub fn channel_name(recv: &str) -> String {
    for suffix in ["_tx", "_rx"] {
        if let Some(stripped) = recv.strip_suffix(suffix) {
            if !stripped.is_empty() {
                return stripped.to_string();
            }
        }
    }
    if matches!(recv, "tx" | "rx" | "sender" | "receiver") {
        "chan".to_string()
    } else {
        recv.to_string()
    }
}

impl CallGraph {
    /// Builds the graph over the parsed file set, resolving call names with
    /// `resolver`. Test code is excluded entirely.
    pub fn build(files: &[SourceFile], resolver: &Resolver) -> CallGraph {
        let mut nodes: Vec<Node> = Vec::new();
        let mut roots: Vec<usize> = Vec::new();
        let mut fn_node: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        // Pass 1: nodes. Spawn regions are carved out of fn bodies.
        for (fi, f) in files.iter().enumerate() {
            for (ni, func) in f.functions.iter().enumerate() {
                let Some((bstart, bend)) = func.body else {
                    continue;
                };
                if f.in_test_code(func.sig.0) {
                    continue;
                }
                let spawns = spawn_regions(&f.tokens, bstart, bend);
                let id = nodes.len();
                fn_node.insert((fi, ni), id);
                nodes.push(Node {
                    file: fi,
                    func: ni,
                    spawn_line: None,
                    body: (bstart, bend),
                    holes: spawns.iter().map(|s| (s.1, s.2)).collect(),
                    display: format!("{}:{}", f.rel, func.name),
                    panics: Vec::new(),
                    blocking: Vec::new(),
                    calls: Vec::new(),
                });
                for (line, s, e) in spawns {
                    let sid = nodes.len();
                    roots.push(sid);
                    nodes.push(Node {
                        file: fi,
                        func: ni,
                        spawn_line: Some(line),
                        body: (s, e),
                        holes: Vec::new(),
                        display: format!("{}:{}@{}", f.rel, func.name, line),
                        panics: Vec::new(),
                        blocking: Vec::new(),
                        calls: Vec::new(),
                    });
                }
            }
        }
        // Pass 2: per-node scan for calls, panic sites, and blocking sites.
        let mut raw_calls: Vec<Vec<RawCall>> = vec![Vec::new(); nodes.len()];
        for (id, node) in nodes.iter_mut().enumerate() {
            scan_node(files, node, &mut raw_calls[id]);
        }
        // Pass 3: resolve call names to nodes.
        for id in 0..nodes.len() {
            let file = nodes[id].file;
            let mut resolved: BTreeSet<(usize, u32)> = BTreeSet::new();
            for (name, line, argc) in &raw_calls[id] {
                for r in resolver.resolve(files, name, file, *argc) {
                    if let Some(&callee) = fn_node.get(&(r.file, r.func)) {
                        if callee != id {
                            resolved.insert((callee, *line));
                        }
                    }
                }
            }
            nodes[id].calls = resolved.into_iter().collect();
        }
        let mut g = CallGraph {
            ops: vec![BTreeSet::new(); nodes.len()],
            block_path: vec![None; nodes.len()],
            from_root: BTreeMap::new(),
            nodes,
            roots,
            fn_node,
        };
        g.close_ops();
        g.close_roots();
        g
    }

    /// Node id for a function definition, if it produced a node.
    pub fn node_of(&self, r: FnRef) -> Option<usize> {
        self.fn_node.get(&(r.file, r.func)).copied()
    }

    /// Fixed-point transitive blocking-op closure + one concrete path each.
    fn close_ops(&mut self) {
        for (id, node) in self.nodes.iter().enumerate() {
            for b in &node.blocking {
                self.ops[id].insert(b.op.clone());
            }
            if let Some(b) = node.blocking.first() {
                self.block_path[id] = Some(BlockPath {
                    op: b.op.clone(),
                    via: Vec::new(),
                });
            }
        }
        loop {
            let mut changed = false;
            for id in 0..self.nodes.len() {
                for (callee, _) in self.nodes[id].calls.clone() {
                    let add: Vec<Op> = self.ops[callee]
                        .iter()
                        .filter(|op| !self.ops[id].contains(*op))
                        .cloned()
                        .collect();
                    if !add.is_empty() {
                        self.ops[id].extend(add);
                        changed = true;
                    }
                    if self.block_path[id].is_none() {
                        if let Some(bp) = &self.block_path[callee] {
                            let mut via = vec![self.nodes[callee].display.clone()];
                            via.extend(bp.via.iter().take(3).cloned());
                            self.block_path[id] = Some(BlockPath {
                                op: bp.op.clone(),
                                via,
                            });
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// BFS from each spawn root; first root to reach a node claims it.
    fn close_roots(&mut self) {
        for &root in &self.roots {
            let mut queue = vec![root];
            self.from_root.entry(root).or_insert((root, None));
            while let Some(at) = queue.pop() {
                for (callee, _) in self.nodes[at].calls.clone() {
                    if let std::collections::btree_map::Entry::Vacant(e) =
                        self.from_root.entry(callee)
                    {
                        e.insert((root, Some(at)));
                        queue.push(callee);
                    }
                }
            }
        }
    }

    /// Stable DOT rendering: nodes sorted by display name, spawn roots
    /// boxed, edge per resolved call.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut order: Vec<usize> = (0..self.nodes.len()).collect();
        order.sort_by(|&a, &b| self.nodes[a].display.cmp(&self.nodes[b].display));
        let rank: BTreeMap<usize, usize> =
            order.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        let mut out = String::from("digraph callgraph {\n  rankdir=LR;\n");
        for &id in &order {
            let n = &self.nodes[id];
            let shape = if n.spawn_line.is_some() {
                " shape=box style=bold"
            } else {
                ""
            };
            let badge = if !n.blocking.is_empty() {
                " color=red"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  n{} [label=\"{}\"{}{}];",
                rank[&id], n.display, shape, badge
            );
        }
        let mut edges: BTreeSet<(usize, usize)> = BTreeSet::new();
        for (id, n) in self.nodes.iter().enumerate() {
            for (callee, _) in &n.calls {
                edges.insert((rank[&id], rank[callee]));
            }
        }
        for (a, b) in edges {
            let _ = writeln!(out, "  n{a} -> n{b};");
        }
        out.push_str("}\n");
        out
    }
}

/// Finds spawned-closure body token ranges inside `[bstart, bend)`:
/// `spawn(move || { … })` and builder forms. Returns `(line, start, end)`
/// per closure body.
fn spawn_regions(toks: &[Token], bstart: usize, bend: usize) -> Vec<(u32, usize, usize)> {
    let mut out = Vec::new();
    let mut i = bstart;
    while i < bend {
        if is_ident(&toks[i], "spawn") && i + 1 < bend && is_punct(&toks[i + 1], "(") {
            let call_end = match_paren(toks, i + 1).min(bend);
            let mut j = i + 2;
            while j < call_end && !is_punct(&toks[j], "|") {
                j += 1;
            }
            if j < call_end {
                j += 1;
                while j < call_end && !is_punct(&toks[j], "|") {
                    j += 1;
                }
                j += 1;
                while j < call_end && !is_punct(&toks[j], "{") {
                    j += 1;
                }
                if j < call_end {
                    let body_end = match_brace(toks, j).min(call_end);
                    out.push((toks[i].line, j + 1, body_end.saturating_sub(1)));
                    i = body_end;
                    continue;
                }
            }
            i = call_end;
            continue;
        }
        i += 1;
    }
    out
}

/// A call name seen in a node body: name, line, argument count (`None`
/// when the argument list could not be counted).
type RawCall = (String, u32, Option<usize>);

/// True when the `unwrap`/`expect` at `i` hangs directly off a zero-arg
/// `.lock()`/`.read()`/`.write()`: panic-on-poison re-raises a panic another
/// thread already hit while holding the lock — it is not an independent
/// panic path, so L013 skips it.
fn is_poison_propagation(toks: &[Token], i: usize) -> bool {
    i >= 5
        && is_punct(&toks[i - 1], ".")
        && is_punct(&toks[i - 2], ")")
        && is_punct(&toks[i - 3], "(")
        && matches!(toks[i - 4].text.as_str(), "lock" | "read" | "write")
        && toks[i - 4].kind == TokKind::Ident
        && is_punct(&toks[i - 5], ".")
}

/// One pass over a node's (holed) token range: raw call names, panic sites,
/// blocking sites.
fn scan_node(files: &[SourceFile], node: &mut Node, raw_calls: &mut Vec<RawCall>) {
    const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
    let f = &files[node.file];
    let toks = &f.tokens;
    let (bstart, bend) = node.body;
    let mut i = bstart;
    while i < bend {
        if let Some(&(hs, he)) = node.holes.iter().find(|&&(hs, _)| i == hs) {
            i = he.max(hs + 1);
            continue;
        }
        let t = &toks[i];
        if t.kind == TokKind::Ident && i + 1 < bend {
            let next = &toks[i + 1];
            // Macro panics: `panic!(…)`.
            if is_punct(next, "!") && PANIC_MACROS.contains(&t.text.as_str()) {
                node.panics.push(PanicSite {
                    line: t.line,
                    what: format!("{}!", t.text),
                });
                i += 2;
                continue;
            }
            if is_punct(next, "(") {
                let method = i >= 1 && is_punct(&toks[i - 1], ".");
                let name = t.text.as_str();
                if method && (name == "unwrap" || name == "expect") {
                    if !is_poison_propagation(toks, i) {
                        node.panics.push(PanicSite {
                            line: t.line,
                            what: format!("{name}()"),
                        });
                    }
                } else if method && (name == "send" || name == "recv") {
                    let chan = crate::rules::receiver_of_call(toks, i)
                        .map(|r| channel_name(&r))
                        .unwrap_or_else(|| "chan".to_string());
                    let op = if name == "send" {
                        Op::Send(chan)
                    } else {
                        Op::Recv(chan)
                    };
                    node.blocking.push(BlockSite { line: t.line, op });
                } else if method
                    && (name == "wait" || name == "wait_timeout")
                    && i + 2 < bend
                    && !is_punct(&toks[i + 2], ")")
                {
                    // Condvar waits take the guard; zero-arg `.wait()` is
                    // some other API.
                    let cv = crate::rules::receiver_of_call(toks, i)
                        .unwrap_or_else(|| "condvar".to_string());
                    node.blocking.push(BlockSite {
                        line: t.line,
                        op: Op::CvWait(cv),
                    });
                } else if method && name == "join" && i + 2 < bend && is_punct(&toks[i + 2], ")") {
                    node.blocking.push(BlockSite {
                        line: t.line,
                        op: Op::Join,
                    });
                } else if name == "sleep" {
                    node.blocking.push(BlockSite {
                        line: t.line,
                        op: Op::Sleep,
                    });
                } else if method && IO_METHODS.contains(&name) {
                    node.blocking.push(BlockSite {
                        line: t.line,
                        op: Op::Io(name.to_string()),
                    });
                } else if !NON_CALLS.contains(&name) {
                    // A plain or method call candidate for resolution.
                    raw_calls.push((
                        t.text.clone(),
                        t.line,
                        crate::model::count_args(toks, i + 1),
                    ));
                }
            }
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolve::Resolver;

    fn graph(src: &str) -> (Vec<SourceFile>, CallGraph) {
        let files = vec![SourceFile::parse("crates/a/src/lib.rs", src)];
        let resolver = Resolver::build(&files, &[]);
        let g = CallGraph::build(&files, &resolver);
        (files, g)
    }

    #[test]
    fn spawn_body_becomes_root_node() {
        let (_, g) = graph(
            "fn run(rx: Receiver<u32>) {\n    thread::spawn(move || {\n        helper();\n    });\n    tail();\n}\nfn helper() { x.recv(); }\nfn tail() {}\n",
        );
        assert_eq!(g.roots.len(), 1);
        let root = g.roots[0];
        assert!(g.nodes[root].display.contains("@2"));
        // The spawn body calls helper; the enclosing fn calls only tail.
        let helper = g
            .nodes
            .iter()
            .position(|n| n.display.ends_with(":helper"))
            .unwrap();
        assert!(g.nodes[root].calls.iter().any(|&(c, _)| c == helper));
        let run = g
            .nodes
            .iter()
            .position(|n| n.display.ends_with(":run"))
            .unwrap();
        assert!(!g.nodes[run].calls.iter().any(|&(c, _)| c == helper));
        // Reachability from the root includes helper.
        assert!(g.from_root.contains_key(&helper));
        assert!(!g.from_root.contains_key(&run));
    }

    #[test]
    fn blocking_ops_close_transitively() {
        let (_, g) = graph(
            "fn a(rx: &Receiver<u32>) { b(rx); }\nfn b(rx: &Receiver<u32>) { c(rx); }\nfn c(rx: &Receiver<u32>) { rx.recv(); }\n",
        );
        let a = g
            .nodes
            .iter()
            .position(|n| n.display.ends_with(":a"))
            .unwrap();
        assert!(g.ops[a].contains(&Op::Recv("chan".into())));
        let bp = g.block_path[a].clone().unwrap();
        assert_eq!(bp.via.len(), 2);
        assert!(bp.via[0].ends_with(":b"));
    }

    #[test]
    fn poisoned_lock_expect_is_not_a_panic_site() {
        let (_, g) = graph(
            "fn f(m: &Mutex<u32>, x: Option<u32>) {\n    let g = m.lock().expect(\"poisoned\");\n    let h = m.read().unwrap();\n    let v = x.unwrap();\n}\n",
        );
        let n = &g.nodes[0];
        // Only the `Option::unwrap` counts; panic-on-poison re-raises a
        // panic that already happened on another thread.
        assert_eq!(n.panics.len(), 1, "{:?}", n.panics);
        assert_eq!(n.panics[0].line, 4);
    }

    #[test]
    fn channel_names_pair_endpoints() {
        assert_eq!(channel_name("events_tx"), "events");
        assert_eq!(channel_name("events_rx"), "events");
        assert_eq!(channel_name("tx"), "chan");
        assert_eq!(channel_name("out"), "out");
    }

    #[test]
    fn dot_is_stable_and_marks_roots() {
        let (_, g) = graph(
            "fn run(rx: Receiver<u32>) { thread::spawn(move || { work(&rx); }); }\nfn work(rx: &Receiver<u32>) { rx.recv(); }\n",
        );
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph callgraph {"));
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("->"));
        assert_eq!(dot, g.to_dot());
    }
}
