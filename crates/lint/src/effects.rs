//! Effect inference over the call graph, and the three rules built on it.
//!
//! Every function gets an *effect set* — which ambient capabilities its
//! body (or anything it transitively calls) touches. Seeds are lexical:
//! `Instant::now`/`SystemTime::now` (wall clock), `RandomState` and the
//! default-hashed `HashMap`/`HashSet` constructors (per-process hasher
//! entropy), `std::env` reads, `std::fs`/`File` access (real filesystem,
//! as opposed to the simulated device), iteration over a known-unordered
//! container, and `Disk`-receiver `read`/`write_at`/`append` calls (the
//! simulated device). Seeds propagate to a fixed point through the resolved
//! call graph — including the synthetic spawn-closure roots `callgraph`
//! carves out — so an effect three helpers deep is attributed to every
//! caller, with one concrete source path kept per (node, effect) for
//! messages.
//!
//! The rules:
//!
//! * **L015** — a function under a `// lint-zone: deterministic` marker
//!   (the exec/merge kernels, journal/trace content paths) transitively
//!   reaches a wall-clock, entropy, or environment effect. A seed audited
//!   with `// effect-ok: <reason>` is excluded from inference entirely.
//! * **L016** — a device I/O seed on the READ/WRITE-path crates that is
//!   neither lexically inside a retry-wrapper call (`with_retry`, or a
//!   forwarding wrapper like `io_retry` detected by fixed point) nor in a
//!   function whose every caller reaches it under such a wrapper. This is
//!   the PR 3 fault-tolerance contract, made static. Unbaselineable.
//! * **L018** — per-crate effect contracts: DESIGN.md declares each
//!   crate's allowed effect set in a `<!-- lint-catalog:effects -->`
//!   fenced block; an undeclared effect *and* a stale declaration both
//!   fail. Contracts count audited seeds too — the audit is a zone escape,
//!   not a contract escape.
//!
//! Known unsoundness, shared with the call graph: integration tests and
//! benches are not collected, so zones declared there (e.g. the
//! schedule-stress oracles) are invisible; name-resolution cutoffs drop
//! edges, which can under-propagate effects.

use crate::callgraph::CallGraph;
use crate::lexer::{TokKind, Token};
use crate::model::{count_args, match_paren, SourceFile};
use crate::obscatalog::catalog_block;
use crate::resolve::CrateMap;
use crate::rules::receiver_of_call;
use crate::{Finding, Rule};
use std::collections::{BTreeMap, BTreeSet};

/// The effect lattice: a function's set is the union of its seeds and its
/// callees' sets (monotone, so the fixed point exists and is reached).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Effect {
    /// Reads the real clock (`Instant::now`, `SystemTime::now`).
    WallClock,
    /// Observes per-process randomness (`RandomState`, default-hashed
    /// `HashMap`/`HashSet` construction).
    OsEntropy,
    /// Reads the process environment (`std::env::var`/`args`/…).
    EnvRead,
    /// Touches the real filesystem (`std::fs`, `File::open`/`create`).
    RealIo,
    /// Iterates a container with no defined order.
    UnorderedIter,
    /// Talks to the simulated device (`Disk::read`/`write_at`/`append`).
    DeviceIo,
}

impl Effect {
    pub const ALL: [Effect; 6] = [
        Effect::WallClock,
        Effect::OsEntropy,
        Effect::EnvRead,
        Effect::RealIo,
        Effect::UnorderedIter,
        Effect::DeviceIo,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Effect::WallClock => "WallClock",
            Effect::OsEntropy => "OsEntropy",
            Effect::EnvRead => "EnvRead",
            Effect::RealIo => "RealIo",
            Effect::UnorderedIter => "UnorderedIter",
            Effect::DeviceIo => "DeviceIo",
        }
    }

    pub fn from_name(s: &str) -> Option<Effect> {
        Effect::ALL.iter().copied().find(|e| e.name() == s)
    }
}

/// One lexical effect source in a node's own body.
#[derive(Debug, Clone)]
pub struct Seed {
    pub effect: Effect,
    /// Token index of the seed site (retry-region containment for L016).
    pub tok: usize,
    pub line: u32,
    /// Human description, e.g. "`Instant::now()`".
    pub what: String,
    /// Carries an `// effect-ok: <reason>` audit: excluded from inference
    /// (zones never see it) but still counted by the crate contract.
    pub audited: bool,
}

/// One concrete way a node reaches an effect, for messages.
#[derive(Debug, Clone)]
pub struct EffectSource {
    /// Display names of the call chain below the node ([] = own body).
    pub via: Vec<String>,
    /// Workspace-relative file of the seed.
    pub file: String,
    pub line: u32,
    pub what: String,
}

/// The inference result, kept around for the DOT export.
#[derive(Debug)]
pub struct EffectAnalysis {
    /// Per call-graph node: every lexical seed in its own body.
    pub seeds: Vec<Vec<Seed>>,
    /// Per node: transitive effects (audited seeds excluded), one concrete
    /// source path each.
    pub inferred: Vec<BTreeMap<Effect, EffectSource>>,
    /// Nodes that are declared deterministic-zone roots.
    pub zone_nodes: BTreeSet<usize>,
}

/// Zone marker comment: attaches to the `fn` starting on the next line, or
/// to every function in the file when no function follows it directly.
pub const ZONE_MARKER: &str = "lint-zone: deterministic";

/// DESIGN.md marker introducing the per-crate effect-contract block.
pub const EFFECTS_MARKER: &str = "<!-- lint-catalog:effects -->";

/// Effects a deterministic zone must not reach (L015). Device and real
/// file I/O are the retry layer's concern (L016), not determinism's;
/// unordered iteration is L014's.
const ZONE_BANNED: [Effect; 3] = [Effect::WallClock, Effect::OsEntropy, Effect::EnvRead];

/// Crates whose device I/O must flow through the retry layer (L016): the
/// READ/WRITE paths. `simio` is the device layer itself — below retry.
const L016_SCOPE: &[&str] = &["crates/core/", "crates/storage/", "crates/rawfile/"];

/// `Disk` methods that move data (metadata probes like `len`/`exists` are
/// not retried and not effects).
const DEVICE_METHODS: &[&str] = &["read", "write_at", "append"];

fn is_punct(t: &Token, s: &str) -> bool {
    t.kind == TokKind::Punct && t.text == s
}

fn is_ident(t: &Token, s: &str) -> bool {
    t.kind == TokKind::Ident && t.text == s
}

/// Files whose bodies are seeded and whose crates carry contracts: the
/// product crates and the root binary — not the analyzer, the shims
/// (vendored stand-ins), or xtask.
fn in_scope(rel: &str) -> bool {
    rel.starts_with("crates/") && !rel.starts_with("crates/lint/") || rel.starts_with("src/")
}

/// Runs inference plus L015/L016/L018, appending findings. `docs` feeds the
/// L018 contract check and may be empty (the check is then inert, matching
/// L010's convention).
pub fn check(
    files: &[SourceFile],
    cg: &CallGraph,
    docs: &[(String, String)],
    findings: &mut Vec<Finding>,
) -> EffectAnalysis {
    let seeds: Vec<Vec<Seed>> = (0..cg.nodes.len())
        .map(|id| seed_node(files, cg, id))
        .collect();
    let inferred = propagate(files, cg, &seeds);
    let zone_nodes = zone_roots(files, cg);
    let ea = EffectAnalysis {
        seeds,
        inferred,
        zone_nodes,
    };
    l015_zone_purity(files, cg, &ea, findings);
    l016_retry_coverage(files, cg, &ea, findings);
    l018_effect_contracts(files, cg, &ea, docs, findings);
    ea
}

/// Lexical seed scan over one node's (holed) token range.
fn seed_node(files: &[SourceFile], cg: &CallGraph, id: usize) -> Vec<Seed> {
    let node = &cg.nodes[id];
    let f = &files[node.file];
    if !in_scope(&f.rel) {
        return Vec::new();
    }
    let toks = &f.tokens;
    let unordered = crate::determinism::unordered_names(toks);
    let mut out = Vec::new();
    let mut push = |tok: usize, effect: Effect, what: String| {
        let line = toks[tok].line;
        out.push(Seed {
            effect,
            tok,
            line,
            what,
            audited: f.has_annotation(line, "effect-ok:"),
        });
    };
    let (bstart, bend) = node.body;
    let mut i = bstart;
    while i < bend {
        if let Some(&(hs, he)) = node.holes.iter().find(|&&(hs, _)| i == hs) {
            i = he.max(hs + 1);
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let path2 = |a: usize| -> Option<&str> {
            (is_punct(toks.get(a + 1)?, "::") && toks[a + 2].kind == TokKind::Ident)
                .then(|| toks[a + 2].text.as_str())
        };
        match t.text.as_str() {
            "Instant" | "SystemTime" if path2(i) == Some("now") => {
                push(i, Effect::WallClock, format!("`{}::now()`", t.text));
            }
            "RandomState" => {
                push(
                    i,
                    Effect::OsEntropy,
                    "`RandomState` (randomized hasher)".into(),
                );
            }
            "HashMap" | "HashSet" => {
                if let Some(ctor) = path2(i) {
                    if matches!(ctor, "new" | "with_capacity" | "default") {
                        push(
                            i,
                            Effect::OsEntropy,
                            format!("`{}::{ctor}()` (randomized default hasher)", t.text),
                        );
                    }
                }
            }
            "env" => {
                if let Some(m) = path2(i) {
                    if matches!(
                        m,
                        "var" | "var_os" | "vars" | "vars_os" | "args" | "args_os"
                    ) {
                        push(i, Effect::EnvRead, format!("`env::{m}(..)`"));
                    }
                }
            }
            "fs" => {
                if let Some(m) = path2(i) {
                    push(i, Effect::RealIo, format!("`fs::{m}(..)`"));
                }
            }
            "File" => {
                if let Some(m) = path2(i) {
                    if matches!(m, "open" | "create" | "create_new" | "options") {
                        push(i, Effect::RealIo, format!("`File::{m}(..)`"));
                    }
                }
            }
            "for" => {
                // `for pat in <unordered> {` — the loop walks hasher order.
                let mut j = i + 1;
                while j < bend && !is_ident(&toks[j], "in") {
                    j += 1;
                }
                let mut k = j + 1;
                while k < bend && !is_punct(&toks[k], "{") {
                    if toks[k].kind == TokKind::Ident && unordered.contains(&toks[k].text) {
                        push(
                            k,
                            Effect::UnorderedIter,
                            format!("iteration over unordered `{}`", toks[k].text),
                        );
                        break;
                    }
                    k += 1;
                }
            }
            name if crate::determinism::ITER_METHODS.contains(&name)
                && i >= 1
                && is_punct(&toks[i - 1], ".")
                && i + 1 < bend
                && is_punct(&toks[i + 1], "(") =>
            {
                if let Some(recv) = receiver_of_call(toks, i) {
                    if unordered.contains(&recv) {
                        push(
                            i,
                            Effect::UnorderedIter,
                            format!("iteration over unordered `{recv}`"),
                        );
                    }
                }
            }
            name if DEVICE_METHODS.contains(&name)
                && i >= 1
                && is_punct(&toks[i - 1], ".")
                && i + 1 < bend
                && is_punct(&toks[i + 1], "(") =>
            {
                // Receiver must be disk-named, and `.read(` needs a real
                // argument list — `RwLock::read()` takes none.
                let recv = receiver_of_call(toks, i).unwrap_or_default();
                let argc = count_args(toks, i + 1);
                let is_device = recv.to_ascii_lowercase().contains("disk")
                    && (name != "read" || argc.is_some_and(|c| c >= 2));
                if is_device {
                    push(i, Effect::DeviceIo, format!("`{recv}.{name}(..)`"));
                }
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// Fixed-point propagation through resolved calls, mirroring the blocking
/// closure in `callgraph`: audited seeds do not enter.
fn propagate(
    files: &[SourceFile],
    cg: &CallGraph,
    seeds: &[Vec<Seed>],
) -> Vec<BTreeMap<Effect, EffectSource>> {
    let mut inferred: Vec<BTreeMap<Effect, EffectSource>> = vec![BTreeMap::new(); cg.nodes.len()];
    for (id, own) in seeds.iter().enumerate() {
        for s in own.iter().filter(|s| !s.audited) {
            inferred[id]
                .entry(s.effect)
                .or_insert_with(|| EffectSource {
                    via: Vec::new(),
                    file: files[cg.nodes[id].file].rel.clone(),
                    line: s.line,
                    what: s.what.clone(),
                });
        }
    }
    loop {
        let mut changed = false;
        for id in 0..cg.nodes.len() {
            for (callee, _) in cg.nodes[id].calls.clone() {
                let add: Vec<(Effect, EffectSource)> = inferred[callee]
                    .iter()
                    .filter(|(e, _)| !inferred[id].contains_key(*e))
                    .map(|(e, src)| {
                        let mut via = vec![cg.nodes[callee].display.clone()];
                        via.extend(src.via.iter().take(3).cloned());
                        (
                            *e,
                            EffectSource {
                                via,
                                file: src.file.clone(),
                                line: src.line,
                                what: src.what.clone(),
                            },
                        )
                    })
                    .collect();
                if !add.is_empty() {
                    inferred[id].extend(add);
                    changed = true;
                }
            }
        }
        if !changed {
            return inferred;
        }
    }
}

/// Nodes declared deterministic: a `lint-zone: deterministic` comment
/// directly above a `fn` zones that fn; a marker attached to no fn zones
/// every fn in its file.
fn zone_roots(files: &[SourceFile], cg: &CallGraph) -> BTreeSet<usize> {
    let mut zoned: Vec<(usize, u32)> = Vec::new(); // (file, fn line), 0 = whole file
    for (fi, f) in files.iter().enumerate() {
        for c in f.comments.iter().filter(|c| c.text.contains(ZONE_MARKER)) {
            let attached = f
                .functions
                .iter()
                .find(|func| func.line == c.end_line + 1)
                .map(|func| func.line);
            zoned.push((fi, attached.unwrap_or(0)));
        }
    }
    let mut out = BTreeSet::new();
    for (id, node) in cg.nodes.iter().enumerate() {
        if node.spawn_line.is_some() {
            continue;
        }
        let func = &files[node.file].functions[node.func];
        if zoned
            .iter()
            .any(|&(fi, line)| fi == node.file && (line == 0 || line == func.line))
        {
            out.insert(id);
        }
    }
    out
}

fn l015_zone_purity(
    files: &[SourceFile],
    cg: &CallGraph,
    ea: &EffectAnalysis,
    findings: &mut Vec<Finding>,
) {
    for &id in &ea.zone_nodes {
        let node = &cg.nodes[id];
        let f = &files[node.file];
        let func = &f.functions[node.func];
        for effect in ZONE_BANNED {
            let Some(src) = ea.inferred[id].get(&effect) else {
                continue;
            };
            if f.has_annotation(func.line, "lint-ok: L015") {
                continue;
            }
            let via = if src.via.is_empty() {
                String::new()
            } else {
                format!(" (via {})", src.via.join(" -> "))
            };
            findings.push(Finding {
                rule: Rule::L015,
                file: f.rel.clone(),
                line: func.line,
                message: format!(
                    "deterministic zone `{}` reaches a {} effect: {} at {}:{}{via}",
                    func.name,
                    effect.name(),
                    src.what,
                    src.file,
                    src.line
                ),
                hint: "route the effect through an injectable source (SharedClock, a seeded \
                       RNG, explicit config) or keep it out of the zone; audit the seed with \
                       `// effect-ok: <reason>` when it provably cannot influence zone output"
                    .to_string(),
            });
        }
    }
}

/// Retry-wrapper function names: `with_retry` itself plus, to a fixed
/// point, any function that takes a closure parameter and calls a known
/// wrapper (e.g. `io_retry`) — its call sites' argument lists are retry
/// regions too.
fn retry_wrappers(files: &[SourceFile]) -> BTreeSet<String> {
    let mut names: BTreeSet<String> = BTreeSet::from(["with_retry".to_string()]);
    loop {
        let mut changed = false;
        for f in files {
            for func in &f.functions {
                if names.contains(&func.name) {
                    continue;
                }
                let Some((bstart, bend)) = func.body else {
                    continue;
                };
                let takes_closure = f.tokens[func.sig.0..func.sig.1].iter().any(|t| {
                    t.kind == TokKind::Ident && matches!(t.text.as_str(), "FnMut" | "FnOnce")
                });
                if !takes_closure {
                    continue;
                }
                let forwards = (bstart..bend).any(|i| {
                    f.tokens[i].kind == TokKind::Ident
                        && names.contains(&f.tokens[i].text)
                        && f.tokens.get(i + 1).is_some_and(|t| is_punct(t, "("))
                });
                if forwards {
                    names.insert(func.name.clone());
                    changed = true;
                }
            }
        }
        if !changed {
            return names;
        }
    }
}

fn l016_retry_coverage(
    files: &[SourceFile],
    cg: &CallGraph,
    ea: &EffectAnalysis,
    findings: &mut Vec<Finding>,
) {
    let wrappers = retry_wrappers(files);
    // Per node: retry regions as token spans and line spans.
    let mut tok_regions: Vec<Vec<(usize, usize)>> = vec![Vec::new(); cg.nodes.len()];
    let mut line_regions: Vec<Vec<(u32, u32)>> = vec![Vec::new(); cg.nodes.len()];
    for (id, node) in cg.nodes.iter().enumerate() {
        let toks = &files[node.file].tokens;
        let (bstart, bend) = node.body;
        for i in bstart..bend {
            if toks[i].kind == TokKind::Ident
                && wrappers.contains(&toks[i].text)
                && toks.get(i + 1).is_some_and(|t| is_punct(t, "("))
            {
                let end = match_paren(toks, i + 1).min(bend.max(i + 2));
                tok_regions[id].push((i, end));
                line_regions[id].push((toks[i].line, toks[end.saturating_sub(1)].line));
            }
        }
    }
    // Incoming edges with a retried flag: the call site sits inside one of
    // the caller's retry regions (by line — closures span lines).
    let mut incoming: Vec<Vec<(usize, bool)>> = vec![Vec::new(); cg.nodes.len()];
    for (id, node) in cg.nodes.iter().enumerate() {
        for &(callee, line) in &node.calls {
            let retried = line_regions[id]
                .iter()
                .any(|&(a, b)| a <= line && line <= b);
            incoming[callee].push((id, retried));
        }
    }
    // Greatest fixed point: a node is covered when every caller reaches it
    // inside a retry region or is itself covered. Entry points (no
    // callers) are uncovered — nothing dominates them.
    let mut covered: Vec<bool> = incoming.iter().map(|edges| !edges.is_empty()).collect();
    loop {
        let mut changed = false;
        for id in 0..cg.nodes.len() {
            if covered[id]
                && incoming[id]
                    .iter()
                    .any(|&(caller, retried)| !retried && !covered[caller])
            {
                covered[id] = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for (id, node) in cg.nodes.iter().enumerate() {
        let f = &files[node.file];
        if !L016_SCOPE.iter().any(|p| f.rel.starts_with(p)) {
            continue;
        }
        for seed in ea.seeds[id].iter().filter(|s| s.effect == Effect::DeviceIo) {
            let in_region = tok_regions[id]
                .iter()
                .any(|&(a, b)| a <= seed.tok && seed.tok < b);
            if in_region || covered[id] {
                continue;
            }
            if f.has_annotation(seed.line, "lint-ok: L016") {
                continue;
            }
            let bare: Vec<String> = incoming[id]
                .iter()
                .filter(|&&(caller, retried)| !retried && !covered[caller])
                .map(|&(caller, _)| cg.nodes[caller].display.clone())
                .take(2)
                .collect();
            let why = if incoming[id].is_empty() {
                "no caller routes it through the retry layer".to_string()
            } else {
                format!("reached without retry from {}", bare.join(", "))
            };
            findings.push(Finding {
                rule: Rule::L016,
                file: f.rel.clone(),
                line: seed.line,
                message: format!(
                    "device I/O {} in `{}` is not covered by `with_retry` ({why})",
                    seed.what, node.display
                ),
                hint: "wrap the operation in `with_retry` (or a forwarding wrapper like \
                       `io_retry`) so transient device faults are absorbed, or audit with \
                       `// lint-ok: L016 <reason>`; L016 cannot be baselined"
                    .to_string(),
            });
        }
    }
}

fn l018_effect_contracts(
    files: &[SourceFile],
    cg: &CallGraph,
    ea: &EffectAnalysis,
    docs: &[(String, String)],
    findings: &mut Vec<Finding>,
) {
    let Some((doc_rel, doc)) = docs.iter().find(|(_, d)| d.contains(EFFECTS_MARKER)) else {
        if let Some((rel, _)) = docs.first() {
            findings.push(Finding {
                rule: Rule::L018,
                file: rel.clone(),
                line: 1,
                message: format!(
                    "no `{EFFECTS_MARKER}` catalog marker found — per-crate effect \
                     contracts are not machine-checkable"
                ),
                hint: "add the lint-catalog:effects fenced block to the effect-system section"
                    .into(),
            });
        }
        return;
    };
    // Inferred per crate: union of the crate's own seeds, audited included
    // (declaring the effect is the contract-level allowance; the audit only
    // escapes zone inference). Deliberately not transitive — a crate does
    // not inherit its dependencies' contracts.
    let mut inferred: BTreeMap<String, BTreeMap<Effect, (String, u32)>> = BTreeMap::new();
    for (id, own) in ea.seeds.iter().enumerate() {
        let rel = &files[cg.nodes[id].file].rel;
        if !in_scope(rel) {
            continue;
        }
        let dir = CrateMap::crate_of(rel);
        for s in own {
            inferred
                .entry(dir.clone())
                .or_default()
                .entry(s.effect)
                .or_insert_with(|| (rel.clone(), s.line));
        }
    }
    // Declared per crate, from `dir: Effect, Effect` lines.
    let mut declared: BTreeMap<String, BTreeMap<Effect, u32>> = BTreeMap::new();
    for entry in catalog_block(doc, EFFECTS_MARKER).unwrap_or_default() {
        let Some((dir, rest)) = entry.text.split_once(':') else {
            findings.push(Finding {
                rule: Rule::L018,
                file: doc_rel.clone(),
                line: entry.line,
                message: format!("malformed effect-contract line `{}`", entry.text),
                hint: "use `crates/<name>: Effect, Effect` (or a bare `crates/<name>:` for \
                       an effect-free crate)"
                    .into(),
            });
            continue;
        };
        let crate_decl = declared.entry(dir.trim().to_string()).or_default();
        for name in rest.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            match Effect::from_name(name) {
                Some(e) => {
                    crate_decl.insert(e, entry.line);
                }
                None => findings.push(Finding {
                    rule: Rule::L018,
                    file: doc_rel.clone(),
                    line: entry.line,
                    message: format!("unknown effect `{name}` in the contract for `{dir}`"),
                    hint: format!(
                        "valid effects: {}",
                        Effect::ALL.map(Effect::name).join(", ")
                    ),
                }),
            }
        }
    }
    for (dir, effects) in &inferred {
        for (effect, (file, line)) in effects {
            if declared.get(dir).is_some_and(|d| d.contains_key(effect)) {
                continue;
            }
            let src = files.iter().find(|f| &f.rel == file);
            if src.is_some_and(|f| f.has_annotation(*line, "lint-ok: L018")) {
                continue;
            }
            findings.push(Finding {
                rule: Rule::L018,
                file: file.clone(),
                line: *line,
                message: format!(
                    "`{dir}` has a {} effect but its {doc_rel} contract does not declare it",
                    effect.name()
                ),
                hint: format!(
                    "add `{}` to the `{dir}:` line in the lint-catalog:effects block of \
                     {doc_rel} (or remove the effect)",
                    effect.name()
                ),
            });
        }
    }
    for (dir, effects) in &declared {
        for (effect, line) in effects {
            if inferred.get(dir).is_some_and(|i| i.contains_key(effect)) {
                continue;
            }
            findings.push(Finding {
                rule: Rule::L018,
                file: doc_rel.clone(),
                line: *line,
                message: format!(
                    "contract declares a {} effect for `{dir}` that no code exhibits",
                    effect.name()
                ),
                hint: "remove the stale effect from the contract line".into(),
            });
        }
    }
}

impl EffectAnalysis {
    /// Stable DOT rendering of the effect-annotated call graph: node order
    /// and styling mirror `CallGraph::to_dot` (spawn roots boxed), with the
    /// transitive effect set in the label, seed-bearing nodes red, and
    /// deterministic-zone roots blue.
    pub fn to_dot(&self, cg: &CallGraph) -> String {
        use std::fmt::Write as _;
        let mut order: Vec<usize> = (0..cg.nodes.len()).collect();
        order.sort_by(|&a, &b| cg.nodes[a].display.cmp(&cg.nodes[b].display));
        let rank: BTreeMap<usize, usize> =
            order.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        let mut out = String::from("digraph effects {\n  rankdir=LR;\n");
        for &id in &order {
            let n = &cg.nodes[id];
            let effects: Vec<&str> = self.inferred[id].keys().map(|e| e.name()).collect();
            let label = if effects.is_empty() {
                n.display.clone()
            } else {
                format!("{}\\n[{}]", n.display, effects.join(", "))
            };
            let shape = if n.spawn_line.is_some() {
                " shape=box style=bold"
            } else {
                ""
            };
            let color = if self.seeds[id].iter().any(|s| !s.audited) {
                " color=red"
            } else if self.zone_nodes.contains(&id) {
                " color=blue"
            } else {
                ""
            };
            let _ = writeln!(out, "  n{} [label=\"{label}\"{shape}{color}];", rank[&id]);
        }
        let mut edges: BTreeSet<(usize, usize)> = BTreeSet::new();
        for (id, n) in cg.nodes.iter().enumerate() {
            for (callee, _) in &n.calls {
                edges.insert((rank[&id], rank[callee]));
            }
        }
        for (a, b) in edges {
            let _ = writeln!(out, "  n{a} -> n{b};");
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolve::Resolver;

    fn analyze(srcs: &[(&str, &str)], docs: &[(&str, &str)]) -> (Vec<Finding>, String) {
        let files: Vec<SourceFile> = srcs
            .iter()
            .map(|(rel, src)| SourceFile::parse((*rel).to_string(), src))
            .collect();
        let resolver = Resolver::build(&files, &[]);
        let cg = CallGraph::build(&files, &resolver);
        let docs: Vec<(String, String)> = docs
            .iter()
            .map(|(a, b)| ((*a).to_string(), (*b).to_string()))
            .collect();
        let mut findings = Vec::new();
        let ea = check(&files, &cg, &docs, &mut findings);
        (findings, ea.to_dot(&cg))
    }

    #[test]
    fn effects_propagate_through_calls() {
        let (fs, dot) = analyze(
            &[(
                "crates/core/src/x.rs",
                "// lint-zone: deterministic\nfn kernel(xs: &[u64]) -> u64 { helper() }\nfn helper() -> u64 { mid() }\nfn mid() -> u64 { Instant::now(); 4 }\n",
            )],
            &[],
        );
        let l015: Vec<_> = fs.iter().filter(|f| f.rule == Rule::L015).collect();
        assert_eq!(l015.len(), 1, "{fs:?}");
        assert!(l015[0].message.contains("WallClock"), "{}", l015[0].message);
        assert!(l015[0].message.contains("via"), "{}", l015[0].message);
        assert!(dot.contains("[WallClock]"), "{dot}");
    }

    #[test]
    fn effect_ok_audit_removes_seed_from_inference() {
        let (fs, _) = analyze(
            &[(
                "crates/core/src/x.rs",
                "// lint-zone: deterministic\nfn kernel() -> u64 {\n    // effect-ok: calibration constant, not observable in output\n    Instant::now();\n    4\n}\n",
            )],
            &[],
        );
        assert!(fs.iter().all(|f| f.rule != Rule::L015), "{fs:?}");
    }

    #[test]
    fn device_read_under_with_retry_is_covered() {
        let (fs, _) = analyze(
            &[(
                "crates/storage/src/x.rs",
                "fn store(disk: &SimDisk, p: &Policy) {\n    with_retry(p, || disk.append(\"f\", b\"x\"));\n}\nfn with_retry<T>(p: &Policy, mut op: impl FnMut() -> T) -> T { op() }\n",
            )],
            &[],
        );
        assert!(fs.iter().all(|f| f.rule != Rule::L016), "{fs:?}");
    }

    #[test]
    fn bare_device_read_is_flagged() {
        let (fs, _) = analyze(
            &[(
                "crates/storage/src/x.rs",
                "fn load(disk: &SimDisk) -> Vec<u8> {\n    disk.read(\"f\", 0, 16)\n}\n",
            )],
            &[],
        );
        let l016: Vec<_> = fs.iter().filter(|f| f.rule == Rule::L016).collect();
        assert_eq!(l016.len(), 1, "{fs:?}");
        assert!(l016[0].message.contains("disk.read"), "{}", l016[0].message);
    }

    #[test]
    fn coverage_flows_through_forwarding_wrapper_callers() {
        // The seed-bearing fn has no region of its own, but its only caller
        // reaches it inside `io_retry(..)`, which forwards to with_retry.
        let (fs, _) = analyze(
            &[(
                "crates/core/src/x.rs",
                "fn read_path(disk: &SimDisk, p: &Policy) {\n    io_retry(p, || load(disk));\n}\nfn load(disk: &SimDisk) -> Vec<u8> { disk.read(\"f\", 0, 16) }\nfn io_retry<T>(p: &Policy, op: impl FnMut() -> T) -> T { with_retry(p, op) }\nfn with_retry<T>(p: &Policy, mut op: impl FnMut() -> T) -> T { op() }\n",
            )],
            &[],
        );
        assert!(fs.iter().all(|f| f.rule != Rule::L016), "{fs:?}");
    }

    #[test]
    fn zero_arg_rwlock_read_is_not_device_io() {
        let (fs, _) = analyze(
            &[(
                "crates/storage/src/x.rs",
                "fn peek(runs: &RwLock<u32>) -> u32 { *runs.read() }\n",
            )],
            &[],
        );
        assert!(fs.iter().all(|f| f.rule != Rule::L016), "{fs:?}");
    }

    #[test]
    fn contract_drift_both_directions() {
        let doc = "# d\n\n<!-- lint-catalog:effects -->\n```text\ncrates/core: WallClock, DeviceIo\n```\n";
        let (fs, _) = analyze(
            &[(
                "crates/core/src/x.rs",
                "fn f() { Instant::now(); std::env::var(\"X\"); }\n",
            )],
            &[("DESIGN.md", doc)],
        );
        let l018: Vec<_> = fs.iter().filter(|f| f.rule == Rule::L018).collect();
        // EnvRead undeclared (source side) + DeviceIo stale (doc side).
        assert_eq!(l018.len(), 2, "{fs:?}");
        assert!(l018
            .iter()
            .any(|f| f.file == "crates/core/src/x.rs" && f.message.contains("EnvRead")));
        assert!(l018
            .iter()
            .any(|f| f.file == "DESIGN.md" && f.message.contains("DeviceIo")));
    }

    #[test]
    fn audited_seed_still_counts_toward_contract() {
        let doc = "# d\n\n<!-- lint-catalog:effects -->\n```text\ncrates/core:\n```\n";
        let (fs, _) = analyze(
            &[(
                "crates/core/src/x.rs",
                "fn f() {\n    // effect-ok: wall time for a log line only\n    Instant::now();\n}\n",
            )],
            &[("DESIGN.md", doc)],
        );
        let l018: Vec<_> = fs.iter().filter(|f| f.rule == Rule::L018).collect();
        assert_eq!(l018.len(), 1, "{fs:?}");
        assert!(l018[0].message.contains("WallClock"));
    }

    #[test]
    fn file_level_zone_marker_covers_every_fn() {
        let (fs, _) = analyze(
            &[(
                "crates/engine/src/merge.rs",
                "// lint-zone: deterministic\n\nfn a() { Instant::now(); }\nfn b() {}\n",
            )],
            &[],
        );
        let l015: Vec<_> = fs.iter().filter(|f| f.rule == Rule::L015).collect();
        assert_eq!(l015.len(), 1, "{fs:?}");
        assert!(l015[0].message.contains('a'));
    }

    #[test]
    fn dot_is_stable_and_marks_zones() {
        let (_, dot) = analyze(
            &[(
                "crates/core/src/x.rs",
                "// lint-zone: deterministic\nfn kernel() -> u64 { 4 }\nfn other() { Instant::now(); }\n",
            )],
            &[],
        );
        assert!(dot.starts_with("digraph effects {"), "{dot}");
        assert!(dot.contains("color=blue"), "{dot}");
        assert!(dot.contains("color=red"), "{dot}");
    }
}
