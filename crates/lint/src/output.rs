//! Machine-readable lint output and the suppression baseline.
//!
//! Three formats besides the human text dump:
//!
//! * **json** — a stable, versioned report (`{"version":1,…}`) consumed by
//!   the CI artifact upload and the golden tests;
//! * **sarif** — minimal SARIF 2.1.0 for code-scanning UIs;
//! * **github** — `::error file=…,line=…::…` workflow annotations.
//!
//! The **baseline** is a checked-in text file (`lint-baseline.txt`) listing
//! findings that are accepted for now — one per line, tab-separated
//! `RULE<TAB>file<TAB>message`, `#` comments allowed. Entries are keyed on
//! (rule, file, message), *not* line numbers, so unrelated edits don't
//! invalidate them. It exists for findings that have no in-source silencing
//! channel (Cargo.toml and DESIGN.md have no `lint-ok` comments) and for
//! staged burn-down of new rules; entries that stop matching anything are
//! reported as stale so the file can only shrink.

use crate::{Finding, Rule};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes a string for embedding in a JSON document.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The versioned JSON report. Findings keep their (file, line, rule) sort
/// from `run_all`, so the output is byte-stable for a given workspace.
pub fn to_json(findings: &[Finding]) -> String {
    let mut by_rule: BTreeMap<&'static str, usize> = BTreeMap::new();
    for f in findings {
        *by_rule.entry(f.rule.id()).or_default() += 1;
    }
    let mut out = String::new();
    out.push_str("{\n  \"version\": 1,\n  \"tool\": \"scanraw-lint\",\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\", \"hint\": \"{}\"}}",
            f.rule.id(),
            esc(&f.file),
            f.line,
            esc(&f.message),
            esc(&f.hint)
        );
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"summary\": {\n    \"total\": ");
    let _ = write!(out, "{}", findings.len());
    out.push_str(",\n    \"by_rule\": {");
    for (i, (rule, n)) in by_rule.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n      \"{rule}\": {n}");
    }
    if !by_rule.is_empty() {
        out.push_str("\n    ");
    }
    out.push_str("}\n  }\n}\n");
    out
}

/// Minimal SARIF 2.1.0: one run, one rule table, one result per finding.
pub fn to_sarif(findings: &[Finding]) -> String {
    let mut out = String::new();
    out.push_str(
        "{\n  \"version\": \"2.1.0\",\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n          \"name\": \"scanraw-lint\",\n          \"rules\": [",
    );
    for (i, rule) in Rule::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}",
            rule.id(),
            esc(rule.description())
        );
    }
    out.push_str("\n          ]\n        }\n      },\n      \"results\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n        {{\"ruleId\": \"{}\", \"level\": \"error\", \"message\": {{\"text\": \"{}\"}}, \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}}}}}}}]}}",
            f.rule.id(),
            esc(&f.message),
            esc(&f.file),
            f.line
        );
    }
    if !findings.is_empty() {
        out.push_str("\n      ");
    }
    out.push_str("]\n    }\n  ]\n}\n");
    out
}

/// GitHub Actions workflow annotations, one `::error` line per finding.
/// `%`, CR and LF must be URL-escaped in annotation messages.
pub fn to_github(findings: &[Finding]) -> String {
    fn gh_esc(s: &str) -> String {
        s.replace('%', "%25")
            .replace('\r', "%0D")
            .replace('\n', "%0A")
    }
    let mut out = String::new();
    for f in findings {
        let _ = writeln!(
            out,
            "::error file={},line={},title=scanraw-lint {}::[{}] {}",
            gh_esc(&f.file),
            f.line,
            f.rule.id(),
            f.rule.id(),
            gh_esc(&f.message)
        );
    }
    out
}

/// One accepted finding in the baseline file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    pub rule: String,
    pub file: String,
    pub message: String,
}

/// Parses the baseline text. Malformed lines are skipped (the file is
/// reviewed like code; a silent skip degrades to the finding re-appearing,
/// which is the safe direction).
pub fn parse_baseline(text: &str) -> Vec<BaselineEntry> {
    text.lines()
        .filter_map(|line| {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                return None;
            }
            let mut parts = line.splitn(3, '\t');
            Some(BaselineEntry {
                rule: parts.next()?.to_string(),
                file: parts.next()?.to_string(),
                message: parts.next()?.to_string(),
            })
        })
        .collect()
}

/// Serializes findings as a baseline file, sorted and deduplicated.
pub fn write_baseline(findings: &[Finding]) -> String {
    let mut lines: Vec<String> = findings
        .iter()
        .map(|f| format!("{}\t{}\t{}", f.rule.id(), f.file, f.message))
        .collect();
    lines.sort();
    lines.dedup();
    let mut out = String::from(
        "# scanraw-lint baseline: accepted findings, one per line as RULE<TAB>file<TAB>message.\n\
         # Regenerate with `cargo xtask lint --update-baseline`; entries should only be removed.\n",
    );
    for l in &lines {
        out.push_str(l);
        out.push('\n');
    }
    out
}

/// Splits `findings` against the baseline: (kept, suppressed_count,
/// stale entries that matched nothing).
pub fn apply_baseline(
    findings: Vec<Finding>,
    baseline: &[BaselineEntry],
) -> (Vec<Finding>, usize, Vec<BaselineEntry>) {
    let mut used = vec![false; baseline.len()];
    let mut kept = Vec::new();
    let mut suppressed = 0usize;
    for f in findings {
        let hit = baseline
            .iter()
            .position(|b| b.rule == f.rule.id() && b.file == f.file && b.message == f.message);
        match hit {
            Some(i) => {
                used[i] = true;
                suppressed += 1;
            }
            None => kept.push(f),
        }
    }
    let stale = baseline
        .iter()
        .zip(&used)
        .filter(|(_, u)| !**u)
        .map(|(b, _)| b.clone())
        .collect();
    (kept, suppressed, stale)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Finding> {
        vec![
            Finding {
                rule: Rule::L007,
                file: "crates/core/src/scheduler.rs".into(),
                line: 261,
                message: "wildcard arm in match on protocol enum `ObsEvent`".into(),
                hint: "list every variant".into(),
            },
            Finding {
                rule: Rule::L009,
                file: "crates/engine/Cargo.toml".into(),
                line: 20,
                message: "feature `deadlock-detect` is not forwarded to dependency `scanraw`"
                    .into(),
                hint: "add \"scanraw/deadlock-detect\"".into(),
            },
        ]
    }

    #[test]
    fn json_shape_and_escaping() {
        let j = to_json(&sample());
        assert!(j.contains("\"version\": 1"));
        assert!(j.contains("\"total\": 2"));
        assert!(j.contains("\"L007\": 1"));
        assert!(j.contains("\\\"scanraw/deadlock-detect\\\"") || j.contains("hint"));
        // Quotes in the hint must be escaped.
        assert!(j.contains("add \\\"scanraw/deadlock-detect\\\""), "{j}");
        let empty = to_json(&[]);
        assert!(empty.contains("\"findings\": []"), "{empty}");
        assert!(empty.contains("\"total\": 0"));
    }

    #[test]
    fn sarif_has_rules_and_results() {
        let s = to_sarif(&sample());
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"ruleId\": \"L007\""));
        assert!(s.contains("\"startLine\": 261"));
        for rule in Rule::ALL {
            assert!(s.contains(&format!("\"id\": \"{}\"", rule.id())), "{rule}");
        }
    }

    #[test]
    fn github_annotations_escape_newlines() {
        let mut fs = sample();
        fs[0].message = "line one\nline two".into();
        let g = to_github(&fs);
        assert!(g.starts_with("::error file=crates/core/src/scheduler.rs,line=261,"));
        assert!(g.contains("line one%0Aline two"));
        assert_eq!(g.lines().count(), 2);
    }

    #[test]
    fn baseline_round_trip_and_staleness() {
        let fs = sample();
        let text = write_baseline(&fs);
        let parsed = parse_baseline(&text);
        assert_eq!(parsed.len(), 2);
        let (kept, suppressed, stale) = apply_baseline(fs, &parsed);
        assert!(kept.is_empty());
        assert_eq!(suppressed, 2);
        assert!(stale.is_empty());

        // A baseline entry that matches nothing is reported stale.
        let (kept, suppressed, stale) = apply_baseline(Vec::new(), &parsed);
        assert!(kept.is_empty());
        assert_eq!(suppressed, 0);
        assert_eq!(stale.len(), 2);
    }

    #[test]
    fn baseline_is_line_number_independent() {
        let mut fs = sample();
        let baseline = parse_baseline(&write_baseline(&fs));
        fs[0].line = 999; // file shifted; identity unchanged
        let (kept, suppressed, _) = apply_baseline(fs, &baseline);
        assert!(kept.is_empty());
        assert_eq!(suppressed, 2);
    }

    #[test]
    fn baseline_ignores_comments_and_blanks() {
        let parsed = parse_baseline("# header\n\nL007\tsrc/a.rs\tmsg with\ttab kept\n");
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].message, "msg with\ttab kept");
    }
}
