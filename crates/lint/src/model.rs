//! Source model built on the token stream: files, items, and annotations.
//!
//! Rules operate on [`SourceFile`]s — a lexed file plus derived structure:
//! `#[cfg(test)]` spans (excluded from analysis), extracted functions with
//! body ranges and attached doc comments, and the audit-annotation lookup
//! (`// relaxed-ok: <reason>` and `// lint-ok: <RULE> <reason>` on the
//! finding line or the line above).

use crate::lexer::{lex, Comment, TokKind, Token};

/// A lexed source file with derived structure.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path (display + scoping rules).
    pub rel: String,
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
    /// Token-index ranges (inclusive start, exclusive end) of `#[cfg(test)]`
    /// items; rules skip findings inside them.
    pub test_spans: Vec<(usize, usize)>,
    /// Extracted functions, in source order.
    pub functions: Vec<FnInfo>,
}

/// One `fn` item: enough signature/body structure for the rules.
#[derive(Debug)]
pub struct FnInfo {
    pub name: String,
    pub is_pub: bool,
    pub line: u32,
    /// Token range of the signature: from `fn` to the body `{` (exclusive).
    pub sig: (usize, usize),
    /// Token range of the body between the braces (exclusive of both), if
    /// the function has one (trait declarations do not).
    pub body: Option<(usize, usize)>,
    /// Concatenated doc-comment text attached to the item.
    pub doc: String,
}

impl SourceFile {
    /// Lexes and indexes one file.
    pub fn parse(rel: impl Into<String>, src: &str) -> SourceFile {
        let lexed = lex(src);
        let test_spans = find_test_spans(&lexed.tokens);
        let functions = find_functions(&lexed.tokens, &lexed.comments);
        SourceFile {
            rel: rel.into(),
            tokens: lexed.tokens,
            comments: lexed.comments,
            test_spans,
            functions,
        }
    }

    /// True when the token at `idx` lies inside a `#[cfg(test)]` item.
    pub fn in_test_code(&self, idx: usize) -> bool {
        self.test_spans.iter().any(|&(s, e)| idx >= s && idx < e)
    }

    /// True when a comment containing `needle` covers `line` or the line
    /// directly above — the audit-annotation convention.
    pub fn has_annotation(&self, line: u32, needle: &str) -> bool {
        self.comments.iter().any(|c| {
            (c.end_line + 1 == line || (c.line <= line && line <= c.end_line))
                && c.text.contains(needle)
        })
    }

    /// The innermost function whose body contains token index `idx`
    /// (functions are in source order, so the last match is the innermost).
    pub fn enclosing_fn(&self, idx: usize) -> Option<&FnInfo> {
        self.functions
            .iter()
            .rfind(|f| f.body.is_some_and(|(s, e)| idx >= s && idx < e))
    }
}

/// Returns the index just past the brace block opened at `open` (which must
/// point at a `{`), or `tokens.len()` when unbalanced.
pub fn match_brace(tokens: &[Token], open: usize) -> usize {
    debug_assert_eq!(tokens[open].text, "{");
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        match (tokens[i].kind, tokens[i].text.as_str()) {
            (TokKind::Punct, "{") => depth += 1,
            (TokKind::Punct, "}") => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    tokens.len()
}

/// Returns the index just past the paren group opened at `open` (a `(`).
pub fn match_paren(tokens: &[Token], open: usize) -> usize {
    debug_assert_eq!(tokens[open].text, "(");
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        match (tokens[i].kind, tokens[i].text.as_str()) {
            (TokKind::Punct, "(") => depth += 1,
            (TokKind::Punct, ")") => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    tokens.len()
}

/// Counts the comma-separated items in the paren group opened at `open`.
/// Commas inside nested `()`/`[]`/`{}`/`<…>` do not count; a trailing comma
/// is ignored. Returns `None` when the group is unterminated (or `open` is
/// not a `(`), in which case callers should skip arity filtering. Known
/// blind spot: a multi-parameter closure argument (`sort_by(|a, b| …)`) or a
/// bare `<` comparison at depth 0 skews the count — both are rare in the
/// call/signature positions this feeds, and a skewed count only drops a
/// resolution edge (the documented unsound direction).
pub fn count_args(tokens: &[Token], open: usize) -> Option<usize> {
    if !tokens.get(open).is_some_and(|t| is_punct(t, "(")) {
        return None;
    }
    let close = match_paren(tokens, open).checked_sub(1)?;
    if !tokens.get(close).is_some_and(|t| is_punct(t, ")")) {
        return None;
    }
    if close == open + 1 {
        return Some(0);
    }
    let (mut depth, mut angle) = (0i32, 0i32);
    let mut commas = 0usize;
    for t in &tokens[open + 1..close] {
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "<" => angle += 1,
            // `->` is a fused token, so it never decrements angle depth.
            ">" => angle = (angle - 1).max(0),
            "," if depth == 0 && angle == 0 => commas += 1,
            _ => {}
        }
    }
    // `f(a, b,)` — the trailing comma is not another argument.
    if is_punct(&tokens[close - 1], ",") && commas > 0 {
        commas -= 1;
    }
    Some(commas + 1)
}

fn is_punct(t: &Token, s: &str) -> bool {
    t.kind == TokKind::Punct && t.text == s
}

fn is_ident(t: &Token, s: &str) -> bool {
    t.kind == TokKind::Ident && t.text == s
}

/// Finds `#[cfg(test)] <item>` spans: the attribute plus the following
/// item's brace block (e.g. `mod tests { … }`).
fn find_test_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i + 6 < tokens.len() {
        if is_punct(&tokens[i], "#")
            && is_punct(&tokens[i + 1], "[")
            && is_ident(&tokens[i + 2], "cfg")
            && is_punct(&tokens[i + 3], "(")
            && is_ident(&tokens[i + 4], "test")
            && is_punct(&tokens[i + 5], ")")
            && is_punct(&tokens[i + 6], "]")
        {
            // Find the first `{` after the attribute and swallow the block.
            let mut j = i + 7;
            while j < tokens.len() && !is_punct(&tokens[j], "{") {
                // An item ending in `;` before any `{` (e.g. `use` under
                // cfg(test)) has no block; span covers to the `;`.
                if is_punct(&tokens[j], ";") {
                    break;
                }
                j += 1;
            }
            let end = if j < tokens.len() && is_punct(&tokens[j], "{") {
                match_brace(tokens, j)
            } else {
                j + 1
            };
            spans.push((i, end));
            i = end;
            continue;
        }
        i += 1;
    }
    spans
}

/// Extracts `fn` items: name, pub-ness, signature and body token ranges, and
/// the doc comment attached above the item (skipping attribute lines).
fn find_functions(tokens: &[Token], comments: &[Comment]) -> Vec<FnInfo> {
    let mut fns = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !is_ident(&tokens[i], "fn") {
            i += 1;
            continue;
        }
        // `fn` inside a type like `Fn(..)` or `fn(..)` pointer: the next
        // token must be an identifier (the name) for an item.
        let Some(name_tok) = tokens.get(i + 1) else {
            break;
        };
        if name_tok.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        // Walk back over the item prefix (`pub`, `pub(crate)`, `const`,
        // `async`, `unsafe`, `extern "C"`) to find pub-ness and the item's
        // first line (for doc attachment).
        let mut first = i;
        let mut is_pub = false;
        let mut k = i;
        while k > 0 {
            let p = &tokens[k - 1];
            let part_of_prefix = is_ident(p, "pub")
                || is_ident(p, "const")
                || is_ident(p, "async")
                || is_ident(p, "unsafe")
                || is_ident(p, "extern")
                || is_ident(p, "crate")
                || is_ident(p, "super")
                || is_ident(p, "in")
                || p.kind == TokKind::Str // extern "C"
                || is_punct(p, "(")
                || is_punct(p, ")");
            if !part_of_prefix {
                break;
            }
            if is_ident(p, "pub") {
                is_pub = true;
            }
            k -= 1;
            first = k;
        }
        // Attribute lines above (`#[…]`) move the doc anchor further up.
        let mut anchor_line = tokens[first].line;
        let mut a = first;
        while a >= 2 && is_punct(&tokens[a - 1], "]") {
            // Walk back to the matching `#[`.
            let mut depth = 0usize;
            let mut j = a - 1;
            loop {
                if is_punct(&tokens[j], "]") {
                    depth += 1;
                } else if is_punct(&tokens[j], "[") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if j == 0 {
                    break;
                }
                j -= 1;
            }
            if j >= 1 && is_punct(&tokens[j - 1], "#") {
                a = j - 1;
                anchor_line = tokens[a].line;
            } else {
                break;
            }
        }
        // Doc comments: contiguous comment lines ending directly above.
        let mut doc = String::new();
        let mut expect_end = anchor_line.saturating_sub(1);
        for c in comments.iter().rev() {
            if c.end_line == expect_end && c.doc {
                doc = format!("{}\n{}", c.text, doc);
                expect_end = c.line.saturating_sub(1);
            } else if c.end_line < expect_end {
                break;
            }
        }
        // Scan forward for the body `{` (or a `;` for bodiless decls).
        // Inside a signature, `{` can only open the body once paren and
        // bracket depth are zero (const-generic braces are not used here).
        let mut j = i + 1;
        let mut paren = 0i32;
        let mut bracket = 0i32;
        let mut body = None;
        let mut sig_end = tokens.len();
        while j < tokens.len() {
            let t = &tokens[j];
            match (t.kind, t.text.as_str()) {
                (TokKind::Punct, "(") => paren += 1,
                (TokKind::Punct, ")") => paren -= 1,
                (TokKind::Punct, "[") => bracket += 1,
                (TokKind::Punct, "]") => bracket -= 1,
                (TokKind::Punct, "{") if paren == 0 && bracket == 0 => {
                    sig_end = j;
                    let end = match_brace(tokens, j);
                    body = Some((j + 1, end.saturating_sub(1)));
                    break;
                }
                (TokKind::Punct, ";") if paren == 0 && bracket == 0 => {
                    sig_end = j;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        fns.push(FnInfo {
            name: name_tok.text.clone(),
            is_pub,
            line: tokens[i].line,
            sig: (i, sig_end),
            body,
            doc,
        });
        // Continue after the signature; nested fns inside the body are found
        // by continuing the scan from there (i advances token by token).
        i += 2;
    }
    fns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functions_extracted_with_docs_and_pubness() {
        let src = r#"
/// Returns things.
///
/// # Errors
/// When sad.
#[inline]
pub fn get(x: u32) -> Result<u32, ()> {
    Ok(x)
}

fn private_helper() {}
"#;
        let f = SourceFile::parse("a.rs", src);
        assert_eq!(f.functions.len(), 2);
        let get = &f.functions[0];
        assert!(get.is_pub);
        assert_eq!(get.name, "get");
        assert!(get.doc.contains("# Errors"));
        assert!(get.body.is_some());
        assert!(!f.functions[1].is_pub);
    }

    #[test]
    fn cfg_test_spans_cover_mod() {
        let src = r#"
pub fn real() {}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        real();
    }
}
"#;
        let f = SourceFile::parse("a.rs", src);
        assert_eq!(f.test_spans.len(), 1);
        let idx = f
            .tokens
            .iter()
            .position(|t| t.text == "t")
            .expect("test fn token");
        assert!(f.in_test_code(idx));
        let idx_real = f.tokens.iter().position(|t| t.text == "real").unwrap();
        assert!(!f.in_test_code(idx_real));
    }

    #[test]
    fn annotation_lookup_same_and_previous_line() {
        let src = "// relaxed-ok: why\nlet x = 1;\nlet y = 2; // lint-ok: L004 reason\n";
        let f = SourceFile::parse("a.rs", src);
        assert!(f.has_annotation(2, "relaxed-ok:"));
        assert!(f.has_annotation(3, "lint-ok: L004"));
        assert!(!f.has_annotation(2, "lint-ok:"));
    }

    #[test]
    fn bodiless_trait_fn() {
        let f = SourceFile::parse("a.rs", "trait T { fn alpha(&self) -> u32; }");
        let alpha = f.functions.iter().find(|x| x.name == "alpha").unwrap();
        assert!(alpha.body.is_none());
    }

    #[test]
    fn count_args_counts_top_level_commas() {
        let at = |src: &str| {
            let f = SourceFile::parse("a.rs", src);
            let open = f.tokens.iter().position(|t| t.text == "(").unwrap();
            count_args(&f.tokens, open)
        };
        assert_eq!(at("f()"), Some(0));
        assert_eq!(at("f(a)"), Some(1));
        assert_eq!(at("f(a, b, c)"), Some(3));
        assert_eq!(at("f(g(a, b), c)"), Some(2));
        assert_eq!(at("f(v.collect::<Vec<(u32, u32)>>(), c)"), Some(2));
        assert_eq!(at("f(a, b,)"), Some(2));
        assert_eq!(at("f(HashMap<u32, u32>::new())"), Some(1));
    }
}
