//! Figure 6 — effect of the number of projected columns and of the first
//! column's position on execution time (selective tokenizing and parsing).
//!
//! Paper setup (§5.1): 64-column file, 8 worker threads, a contiguous subset
//! of `K ∈ {1, 8, 16, 32}` columns starting at position `p ∈ {0, 8, 16, 32}`.
//! Reproduced on the calibrated simulator: PARSE converts `K` columns,
//! TOKENIZE maps the first `p + K` attributes (selective tokenizing scans up
//! to the last needed attribute and skips the rest of the line).

use scanraw_bench::{env_u64, experiment_model, print_table, secs, write_json};
use scanraw_pipesim::{FileSpec, QuerySpec, SimConfig, Simulator};
use scanraw_types::WritePolicy;

fn main() {
    let rows = 1u64 << env_u64("FIG6_LOG_ROWS", 26);
    let chunk_rows = 1u64 << env_u64("FIG6_LOG_CHUNK", 19);
    let cols = 64usize;
    let workers = 8usize;
    let file = FileSpec::synthetic(rows, cols, chunk_rows);
    let cost = experiment_model();

    let positions = [0usize, 8, 16, 32];
    let widths = [1usize, 8, 16, 32];

    let mut rows_out = Vec::new();
    let mut json = scanraw_obs::json!({"secs": {}});
    for &p in &positions {
        let mut row = vec![format!("pos {p}")];
        for &k in &widths {
            let q = QuerySpec {
                convert_cols: k,
                tokenize_cols: (p + k).min(cols),
            };
            let mut sim = Simulator::new(
                SimConfig::new(workers, WritePolicy::ExternalTables, cost.clone()),
                file,
            );
            let r = sim.run_query(&q);
            row.push(secs(r.elapsed_secs));
            json["secs"][format!("pos{p}")][format!("k{k}")] = r.elapsed_secs.into();
        }
        rows_out.push(row);
    }

    print_table(
        "Figure 6 — execution time (s): first-column position × projected columns (8 workers, 64-col file)",
        &["", "1 col", "8 cols", "16 cols", "32 cols"],
        &rows_out,
    );
    write_json("fig6", &json);
}
