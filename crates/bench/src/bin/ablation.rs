//! Ablation study of ScanRaw's design choices (DESIGN.md §5).
//!
//! Three ablations over a 6-query speculative-loading sequence:
//!
//! 1. **Safeguard flush** (paper §4): with the safeguard disabled and the
//!    execution I/O-bound, no loading progress is guaranteed and the
//!    sequence never converges to database speed.
//! 2. **Cache-eviction bias** (paper §3.1): without the bias toward evicting
//!    already-loaded chunks, unloaded chunks get evicted and must be
//!    re-converted, slowing convergence.
//! 3. **Device direction-switch (seek) penalty** (paper §3.2.1): the cost of
//!    READ/WRITE interference the scheduler's arbitration avoids; eager
//!    loading suffers as the penalty grows, speculative loading does not —
//!    its writes only run while reads are blocked.

use scanraw_bench::{env_u64, experiment_model, print_table, secs, write_json};
use scanraw_pipesim::{FileSpec, SimConfig, Simulator};
use scanraw_types::WritePolicy;

fn main() {
    let rows = 1u64 << env_u64("ABL_LOG_ROWS", 26);
    let file = FileSpec::synthetic(rows, 64, 1 << 19);
    let cost = experiment_model();
    let queries = 6usize;
    let mut json = scanraw_obs::json!({});

    // ---------------- 1. safeguard on/off ----------------
    let mut rows_out = Vec::new();
    for (label, safeguard) in [("safeguard ON", true), ("safeguard OFF", false)] {
        let mut cfg = SimConfig::new(16, WritePolicy::Speculative { safeguard }, cost.clone());
        cfg.cache_chunks = 32;
        let mut sim = Simulator::new(cfg, file);
        let results = sim.run_sequence(queries);
        let mut row = vec![label.to_string()];
        for r in &results {
            row.push(secs(r.elapsed_secs));
        }
        row.push(format!("{}", sim.loaded_count()));
        json["safeguard"][label] = scanraw_obs::json!({
            "per_query": results.iter().map(|r| r.elapsed_secs).collect::<Vec<_>>(),
            "loaded": sim.loaded_count(),
        });
        rows_out.push(row);
    }
    print_table(
        "Ablation 1 — speculative loading with/without the safeguard (I/O-bound, 16 workers)",
        &["variant", "q1", "q2", "q3", "q4", "q5", "q6", "loaded"],
        &rows_out,
    );

    // ---------------- 2. cache-eviction bias ----------------
    let mut rows_out = Vec::new();
    for (label, bias) in [("bias ON", true), ("bias OFF", false)] {
        let mut cfg = SimConfig::new(16, WritePolicy::speculative(), cost.clone());
        cfg.cache_chunks = 32;
        cfg.cache_bias = bias;
        let mut sim = Simulator::new(cfg, file);
        let results = sim.run_sequence(queries);
        let mut row = vec![label.to_string()];
        for r in &results {
            row.push(secs(r.elapsed_secs));
        }
        row.push(format!("{}", sim.loaded_count()));
        json["cache_bias"][label] = scanraw_obs::json!({
            "per_query": results.iter().map(|r| r.elapsed_secs).collect::<Vec<_>>(),
            "loaded": sim.loaded_count(),
        });
        rows_out.push(row);
    }
    print_table(
        "Ablation 2 — load-biased vs plain LRU cache eviction (speculative, 6 queries)",
        &["variant", "q1", "q2", "q3", "q4", "q5", "q6", "loaded"],
        &rows_out,
    );

    // ---------------- 3. device arbitration under seek penalty ----------------
    // With arbitration, WRITE only runs when READ cannot use the device;
    // without it, writes interleave with reads and every direction switch
    // pays the seek penalty (eager loading writes every chunk, so it
    // alternates constantly).
    let mut rows_out = Vec::new();
    for seek_ms in [0.0f64, 5.0, 20.0, 50.0] {
        let mut c = cost.clone();
        c.seek_ns = seek_ms * 1e6;
        let mut row = vec![format!("{seek_ms} ms")];
        for arbitration in [true, false] {
            let mut cfg = SimConfig::new(16, WritePolicy::Eager, c.clone());
            cfg.cache_chunks = 32;
            cfg.arbitration = arbitration;
            let mut sim = Simulator::new(cfg, file);
            let r = sim.run_sequence(1).remove(0);
            row.push(secs(r.elapsed_secs));
        }
        {
            let mut cfg = SimConfig::new(16, WritePolicy::speculative(), c.clone());
            cfg.cache_chunks = 32;
            let mut sim = Simulator::new(cfg, file);
            let r = sim.run_sequence(1).remove(0);
            row.push(secs(r.elapsed_secs));
        }
        json["seek_penalty"][format!("{seek_ms}")] = scanraw_obs::json!({
            "eager_arbitrated": row[1], "eager_interleaved": row[2], "speculative": row[3],
        });
        rows_out.push(row);
    }
    print_table(
        "Ablation 3 — query-1 time vs direction-switch penalty (load+process with/without disk arbitration)",
        &["seek penalty", "arbitrated", "interleaved", "speculative"],
        &rows_out,
    );

    write_json("ablation", &json);
}
