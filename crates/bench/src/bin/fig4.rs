//! Figure 4 — execution time (a), percentage of loaded chunks (b), and
//! speedup (c) as a function of the number of worker threads, for
//! speculative loading, external tables, and load & process (eager ETL).
//!
//! Workload (paper §5.1): `SELECT SUM(Σ c_i) FROM 2^26 × 64`, 2^19-row
//! chunks → 128 chunks, 16-core server. Reproduced on the calibrated
//! discrete-event simulator; set `PAPER_RATIO=1` to rescale the device so
//! the CPU↔I/O crossover lands at 6 workers as on the paper's hardware.

use scanraw_bench::{env_u64, experiment_model, print_table, secs, write_json};
use scanraw_pipesim::{FileSpec, QuerySpec, SimConfig, Simulator};
use scanraw_types::WritePolicy;

fn main() {
    let rows = 1u64 << env_u64("FIG4_LOG_ROWS", 26);
    let cols = env_u64("FIG4_COLS", 64) as usize;
    let chunk_rows = 1u64 << env_u64("FIG4_LOG_CHUNK", 19);
    let file = FileSpec::synthetic(rows, cols, chunk_rows);
    let cost = experiment_model();
    let workers = [0usize, 1, 2, 4, 6, 8, 10, 12, 14, 16];
    let policies = [
        ("speculative", WritePolicy::speculative()),
        ("external", WritePolicy::ExternalTables),
        ("load+process", WritePolicy::Eager),
    ];

    let mut time_rows = Vec::new();
    let mut loaded_rows = Vec::new();
    let mut speedup_rows = Vec::new();
    let mut json = scanraw_obs::json!({
        "file": {"rows": rows, "cols": cols, "chunk_rows": chunk_rows, "chunks": file.n_chunks},
        "series": {}
    });

    // Sequential baselines for speedup (per policy, workers = 0).
    let mut seq_time = std::collections::HashMap::new();
    for (name, policy) in policies {
        let mut sim = Simulator::new(SimConfig::new(0, policy, cost.clone()), file);
        let r = sim.run_query(&QuerySpec::full(&file));
        seq_time.insert(name, r.elapsed_secs);
    }

    for &w in &workers {
        let mut trow = vec![w.to_string()];
        let mut lrow = vec![w.to_string()];
        let mut srow = vec![w.to_string()];
        for (name, policy) in policies {
            let mut sim = Simulator::new(SimConfig::new(w, policy, cost.clone()), file);
            let r = sim.run_query(&QuerySpec::full(&file));
            let pct = 100.0 * r.loaded_after as f64 / file.n_chunks as f64;
            trow.push(secs(r.elapsed_secs));
            lrow.push(format!("{pct:.1}"));
            srow.push(format!("{:.2}", seq_time[name] / r.elapsed_secs));
            json["series"][name][w.to_string()] = scanraw_obs::json!({
                "elapsed_secs": r.elapsed_secs,
                "loaded_pct": pct,
                "speedup": seq_time[name] / r.elapsed_secs,
            });
        }
        srow.push(format!("{:.2}", (w.max(1)) as f64)); // ideal
        time_rows.push(trow);
        loaded_rows.push(lrow);
        speedup_rows.push(srow);
    }

    print_table(
        "Figure 4a — execution time (s) vs worker threads",
        &["workers", "speculative", "external", "load+process"],
        &time_rows,
    );
    print_table(
        "Figure 4b — loaded chunks (%) vs worker threads",
        &["workers", "speculative", "external", "load+process"],
        &loaded_rows,
    );
    print_table(
        "Figure 4c — speedup vs worker threads",
        &[
            "workers",
            "speculative",
            "external",
            "load+process",
            "ideal",
        ],
        &speedup_rows,
    );
    write_json("fig4", &json);
}
