//! PR5 — serial vs parallel consumer-side query execution.
//!
//! Two workloads, each run once per [`ExecMode`]:
//!
//! * **warm CPU-bound** (Figure 5 regime): a wide integer table whose chunks
//!   are fully resident in the binary cache after a warm-up scan, queried
//!   with a filter plus a fat aggregate list. Delivery is nearly free, so
//!   the run measures consumer-side evaluation — serial row-at-a-time
//!   folding against the chunk-parallel columnar kernels.
//! * **cold first scan** (Figure 4 regime): a fresh file converted on the
//!   fly, where TOKENIZE/PARSE shares the worker pool with EXEC and the
//!   question is whether overlapping execution with conversion pays off.
//!
//! Timings use `std::time::Instant` (host wall clock) because the simulated
//! device clock is free to be instantaneous. Results land in
//! `BENCH_PR5.json` at the working directory (the `cargo xtask bench`
//! entry point runs this from the workspace root) and, for convention with
//! the figure benches, in `results/BENCH_PR5.json`.
//!
//! ```sh
//! cargo xtask bench            # full run
//! cargo xtask bench --smoke    # small sizes for CI
//! ```

use scanraw_bench::{env_u64, print_table, write_json};
use scanraw_engine::{AggExpr, ExecMode, ExecRequest, Expr, Predicate, Query, Session};
use scanraw_obs::Value as JsonValue;
use scanraw_rawfile::generate::{stage_csv, CsvSpec};
use scanraw_rawfile::TextDialect;
use scanraw_simio::SimDisk;
use scanraw_types::{ScanRawConfig, Schema, WritePolicy};
use std::time::Instant;

struct Workload {
    rows: u64,
    cols: usize,
    chunk_rows: u32,
    workers: usize,
    runs: usize,
}

struct ModeStats {
    best_secs: f64,
    rows_per_sec: f64,
    cache_hit_rate: Option<f64>,
    parallel_chunks: u64,
}

/// The CPU-bound query: a pass-everything range filter (evaluated per row
/// serially, per column slice in parallel mode) plus an aggregate per
/// column and a few extras, so consumer-side evaluation dominates.
fn cpu_bound_query(table: &str, cols: usize) -> Query {
    let mut aggregates: Vec<AggExpr> = (0..cols).map(|c| AggExpr::sum(Expr::col(c))).collect();
    aggregates.push(AggExpr::count());
    aggregates.push(AggExpr::avg(Expr::sum_of_columns([0, cols - 1])));
    aggregates.push(AggExpr::min(Expr::col(1)));
    aggregates.push(AggExpr::max(Expr::col(1)));
    Query {
        table: table.into(),
        filter: Some(Predicate::between(0, i64::MIN / 4, i64::MAX / 4)),
        group_by: vec![],
        aggregates,
        pushdown: false,
        projection: None,
    }
}

fn session_for(disk: &SimDisk, w: &Workload, mode: ExecMode) -> Session {
    let chunks = w.rows.div_ceil(w.chunk_rows as u64) as usize;
    let session = Session::open(disk.clone()).with_exec_mode(mode);
    session
        .register_table(
            "wide",
            "wide.csv",
            Schema::uniform_ints(w.cols),
            TextDialect::CSV,
            ScanRawConfig::default()
                .with_chunk_rows(w.chunk_rows)
                .with_workers(w.workers)
                .with_cache_chunks(chunks + 1)
                .with_policy(WritePolicy::speculative()),
        )
        .expect("register");
    session
}

/// Warm regime: warm the cache with one scan, then time `runs` repetitions
/// and keep the best.
fn run_warm(w: &Workload, mode: ExecMode) -> ModeStats {
    let disk = SimDisk::instant();
    let spec = CsvSpec::new(w.rows, w.cols, 5151);
    stage_csv(&disk, "wide.csv", &spec);
    let session = session_for(&disk, w, mode);
    let query = cpu_bound_query("wide", w.cols);
    let warm = session
        .run(ExecRequest::query(query.clone()))
        .expect("warm-up scan")
        .into_single();
    assert_eq!(warm.result.rows_scanned, w.rows, "warm-up scans every row");

    let mut best = f64::INFINITY;
    let mut expected = None;
    for _ in 0..w.runs {
        let t0 = Instant::now();
        let out = session
            .run(ExecRequest::query(query.clone()))
            .expect("warm query")
            .into_single();
        best = best.min(t0.elapsed().as_secs_f64());
        let scalars = out.result.rows[0].aggregates.clone();
        if let Some(prev) = &expected {
            assert_eq!(prev, &scalars, "warm runs must agree");
        }
        expected = Some(scalars);
    }

    let op = session.engine().operator("wide").expect("operator");
    let counters = op.cache().counters();
    let hit_rate = if counters.hits + counters.misses > 0 {
        Some(counters.hits as f64 / (counters.hits + counters.misses) as f64)
    } else {
        None
    };
    let parallel_chunks = op
        .obs()
        .metrics
        .counter_value("scanraw.exec.parallel_chunks")
        .unwrap_or(0);
    ModeStats {
        best_secs: best,
        rows_per_sec: w.rows as f64 / best,
        cache_hit_rate: hit_rate,
        parallel_chunks,
    }
}

/// Cold regime: a fresh disk per trial; time the first streaming scan,
/// where conversion and execution share the worker pool.
fn run_cold(w: &Workload, mode: ExecMode) -> ModeStats {
    let mut best = f64::INFINITY;
    for _ in 0..w.runs {
        let disk = SimDisk::instant();
        let spec = CsvSpec::new(w.rows, w.cols, 5151);
        stage_csv(&disk, "wide.csv", &spec);
        let session = session_for(&disk, w, mode);
        let query = cpu_bound_query("wide", w.cols);
        let t0 = Instant::now();
        let out = session
            .run(ExecRequest::query(query.clone()))
            .expect("cold query")
            .into_single();
        best = best.min(t0.elapsed().as_secs_f64());
        assert_eq!(out.result.rows_scanned, w.rows);
    }
    ModeStats {
        best_secs: best,
        rows_per_sec: w.rows as f64 / best,
        cache_hit_rate: None,
        parallel_chunks: 0,
    }
}

fn stats_json(s: &ModeStats) -> JsonValue {
    scanraw_obs::json!({
        "best_secs": s.best_secs,
        "rows_per_sec": s.rows_per_sec,
    })
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke") || std::env::var("PR5_SMOKE").is_ok();
    let (def_rows, def_runs) = if smoke { (49_152, 2) } else { (393_216, 3) };
    let w = Workload {
        rows: env_u64("PR5_ROWS", def_rows),
        cols: env_u64("PR5_COLS", 12) as usize,
        chunk_rows: env_u64("PR5_CHUNK_ROWS", 8_192) as u32,
        workers: env_u64("PR5_WORKERS", 4) as usize,
        runs: env_u64("PR5_RUNS", def_runs) as usize,
    };
    println!(
        "PR5 bench: {} rows x {} cols, {}-row chunks, {} workers, best of {}{}",
        w.rows,
        w.cols,
        w.chunk_rows,
        w.workers,
        w.runs,
        if smoke { " (smoke)" } else { "" }
    );

    let warm_serial = run_warm(&w, ExecMode::Serial);
    let warm_parallel = run_warm(&w, ExecMode::Parallel);
    let warm_speedup = warm_parallel.rows_per_sec / warm_serial.rows_per_sec;

    let cold_serial = run_cold(&w, ExecMode::Serial);
    let cold_parallel = run_cold(&w, ExecMode::Parallel);
    let cold_speedup = cold_parallel.rows_per_sec / cold_serial.rows_per_sec;

    let row = |name: &str, s: &ModeStats, speedup: f64| {
        vec![
            name.to_string(),
            format!("{:.4}", s.best_secs),
            format!("{:.0}", s.rows_per_sec),
            format!("{speedup:.2}x"),
        ]
    };
    print_table(
        "PR5 — warm CPU-bound (fig5 regime)",
        &["mode", "best (s)", "rows/sec", "speedup"],
        &[
            row("serial", &warm_serial, 1.0),
            row("parallel", &warm_parallel, warm_speedup),
        ],
    );
    print_table(
        "PR5 — cold first scan (fig4 regime)",
        &["mode", "best (s)", "rows/sec", "speedup"],
        &[
            row("serial", &cold_serial, 1.0),
            row("parallel", &cold_parallel, cold_speedup),
        ],
    );
    if let Some(rate) = warm_parallel.cache_hit_rate {
        println!(
            "warm parallel: {:.0}% cache hit rate, {} chunks fanned out",
            100.0 * rate,
            warm_parallel.parallel_chunks
        );
    }

    let mut json = scanraw_obs::json!({
        "smoke": smoke,
        "rows": w.rows,
        "cols": w.cols,
        "chunk_rows": w.chunk_rows,
        "workers": w.workers,
        "runs": w.runs,
        "warm_cpu_bound": {
            "serial": stats_json(&warm_serial),
            "parallel": stats_json(&warm_parallel),
            "speedup": warm_speedup,
            "parallel_chunks": warm_parallel.parallel_chunks,
        },
        "cold_first_scan": {
            "serial": stats_json(&cold_serial),
            "parallel": stats_json(&cold_parallel),
            "speedup": cold_speedup,
        },
    });
    if let Some(rate) = warm_parallel.cache_hit_rate {
        json["warm_cpu_bound"]["cache_hit_rate"] = scanraw_obs::json!(rate);
    }
    std::fs::write("BENCH_PR5.json", json.to_json_pretty()).expect("write BENCH_PR5.json");
    println!("wrote BENCH_PR5.json");
    write_json("BENCH_PR5", &json);
}
