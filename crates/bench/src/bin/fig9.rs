//! Figure 9 — CPU and I/O utilization during speculative loading.
//!
//! Paper setup (§5.1): a 256-column raw file processed with 8 worker threads
//! — CPU-bound, so the scheduler alternates the device between READ and
//! WRITE: whenever conversion saturates the workers and reading blocks,
//! WRITE gets the idle disk. The plot shows CPU utilization pinned at
//! ~800% (8 workers) and disk utilization dipping whenever a single-chunk
//! write replaces streaming reads.
//!
//! The regime is what matters here: the device is rescaled so 8 workers are
//! CPU-bound on the 256-column file (the paper's hardware property), unless
//! `FIG9_RAW_MODEL=1` keeps the plain calibrated model.

use scanraw_bench::{env_u64, experiment_model, print_table, write_json};
use scanraw_pipesim::{FileSpec, QuerySim, QuerySpec, SimConfig, Simulator};
use scanraw_types::WritePolicy;

fn main() {
    let rows = 1u64 << env_u64("FIG9_LOG_ROWS", 24);
    let chunk_rows = 1u64 << env_u64("FIG9_LOG_CHUNK", 18);
    let cols = 256usize;
    let workers = 8usize;
    let file = FileSpec::synthetic(rows, cols, chunk_rows);

    let mut cost = experiment_model();
    if env_u64("FIG9_RAW_MODEL", 0) != 1 {
        // Place the crossover above 8 workers so the 256-column file is
        // CPU-bound at 8 — the regime of the paper's figure.
        cost = cost.with_crossover_at(12.0, 10.48);
    }

    let mut cfg = SimConfig::new(workers, WritePolicy::speculative(), cost);
    cfg.record_timeline = true;
    let mut sim = Simulator::new(cfg, file);
    let r = sim.run_query(&QuerySpec::full(&file));

    let window = r.elapsed_secs / 40.0;
    let io_read = QuerySim::utilization(&r.disk_read_spans, window, r.elapsed_secs);
    let io_write = QuerySim::utilization(&r.disk_write_spans, window, r.elapsed_secs);
    let cpu = QuerySim::utilization(&r.cpu_spans, window, r.elapsed_secs);

    let mut rows_out = Vec::new();
    let mut json = scanraw_obs::json!({
        "elapsed_secs": r.elapsed_secs,
        "chunks_written": r.chunks_written,
        "samples": []
    });
    for i in 0..io_read.len() {
        let progress = 100.0 * (i as f64 + 0.5) / io_read.len() as f64;
        let io = (io_read[i].value + io_write[i].value) * 100.0;
        let cpu_pct = cpu.get(i).map(|s| s.value * 100.0).unwrap_or(0.0);
        rows_out.push(vec![
            format!("{progress:.0}"),
            format!("{io:.0}"),
            format!("{:.0}", io_write[i].value * 100.0),
            format!("{cpu_pct:.0}"),
        ]);
        json["samples"]
            .as_array_mut()
            .expect("array")
            .push(scanraw_obs::json!({
                "progress_pct": progress,
                "io_pct": io,
                "io_write_pct": io_write[i].value * 100.0,
                "cpu_pct": cpu_pct,
            }));
    }

    print_table(
        "Figure 9 — utilization vs processing progress (speculative, 256 cols, 8 workers)",
        &["progress %", "I/O %", "of which write %", "CPU %"],
        &rows_out,
    );
    println!(
        "\nchunks written during the query: {} of {} (CPU-bound ⇒ loading is free)",
        r.chunks_written, file.n_chunks
    );
    write_json("fig9", &json);
}
