//! Figure 7 — effect of the chunk size on pipeline efficiency.
//!
//! Paper setup (§5.1): chunk sizes 2^14–2^20 tuples, worker counts
//! {2, 8, 16}, on the 2^26 × 64 file. Small chunks pay the per-task dispatch
//! overhead; very large chunks reduce overlap (longer pipeline fill/drain)
//! — both effects emerge in the simulator, whose dispatch overhead constant
//! is part of the calibrated model.

use scanraw_bench::{env_u64, experiment_model, print_table, secs, write_json};
use scanraw_pipesim::{FileSpec, QuerySpec, SimConfig, Simulator};
use scanraw_types::WritePolicy;

fn main() {
    let rows = 1u64 << env_u64("FIG7_LOG_ROWS", 26);
    let cols = 64usize;
    let cost = experiment_model();
    // The paper sweeps 2^14..2^20; we extend below 2^14 because our
    // measured dispatch overhead is far smaller than the 2014 system's,
    // which shifts the small-chunk penalty to smaller chunk sizes.
    let chunk_sizes = [
        1u64 << 8,
        1 << 10,
        1 << 12,
        1 << 14,
        1 << 16,
        1 << 18,
        1 << 20,
    ];
    let worker_counts = [2usize, 8, 16];

    let mut out = Vec::new();
    let mut json = scanraw_obs::json!({"secs": {}});
    for &chunk_rows in &chunk_sizes {
        let file = FileSpec::synthetic(rows, cols, chunk_rows);
        let mut row = vec![chunk_rows.to_string()];
        for &w in &worker_counts {
            let mut sim = Simulator::new(
                SimConfig::new(w, WritePolicy::ExternalTables, cost.clone()),
                file,
            );
            let r = sim.run_query(&QuerySpec::full(&file));
            row.push(secs(r.elapsed_secs));
            json["secs"][chunk_rows.to_string()][w.to_string()] = r.elapsed_secs.into();
        }
        out.push(row);
    }

    print_table(
        "Figure 7 — execution time (s) vs chunk size (rows), by worker count",
        &["chunk rows", "2 workers", "8 workers", "16 workers"],
        &out,
    );
    write_json("fig7", &json);
}
