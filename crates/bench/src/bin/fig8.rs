//! Figure 8 — execution time for a sequence of queries: per-query (a) and
//! cumulative (b), comparing speculative loading, buffered loading, database
//! loading & processing ("load+db"), and external tables.
//!
//! Paper setup (§5.1): `SELECT SUM(Σ c_i) FROM 2^26 × 64`, six identical
//! queries, binary cache of 32 chunks (¼ of the 128-chunk file), 16 worker
//! threads. Expected shape: external tables is flat; load+db pays a large
//! first query then runs fastest; buffered spreads loading over the first
//! two queries; speculative matches external tables on query 1 and converges
//! to database speed within ~5 queries while always staying optimal.

use scanraw_bench::{env_u64, experiment_model, print_table, secs, write_json};
use scanraw_pipesim::{FileSpec, SimConfig, Simulator};
use scanraw_types::WritePolicy;

fn main() {
    let rows = 1u64 << env_u64("FIG8_LOG_ROWS", 26);
    let chunk_rows = 1u64 << env_u64("FIG8_LOG_CHUNK", 19);
    let n_queries = env_u64("FIG8_QUERIES", 6) as usize;
    let file = FileSpec::synthetic(rows, 64, chunk_rows);
    let cost = experiment_model();
    let workers = 16usize;
    let cache = 32usize;

    let methods = [
        ("speculative", WritePolicy::speculative()),
        ("buffered", WritePolicy::Buffered),
        ("load+db", WritePolicy::Eager),
        ("external", WritePolicy::ExternalTables),
    ];

    let mut per_query: Vec<Vec<f64>> = Vec::new();
    for (name, policy) in methods {
        let mut cfg = SimConfig::new(workers, policy, cost.clone());
        cfg.cache_chunks = cache;
        let mut sim = Simulator::new(cfg, file);
        let mut results = Vec::with_capacity(n_queries);
        for _ in 0..n_queries {
            let r = sim.run_query(&scanraw_pipesim::QuerySpec::full(&file));
            // The paper's external-tables baseline is the classic stateless
            // operator: no state survives between queries.
            if name == "external" {
                sim.clear_cache();
            }
            results.push(r);
        }
        per_query.push(results.iter().map(|r| r.elapsed_secs).collect());
    }

    let mut rows_a = Vec::new();
    let mut rows_b = Vec::new();
    let mut json = scanraw_obs::json!({"per_query_secs": {}, "cumulative_secs": {}});
    let mut cumulative = vec![0.0f64; methods.len()];
    for q in 0..n_queries {
        let mut ra = vec![(q + 1).to_string()];
        let mut rb = vec![(q + 1).to_string()];
        for (m, (name, _)) in methods.iter().enumerate() {
            cumulative[m] += per_query[m][q];
            ra.push(secs(per_query[m][q]));
            rb.push(secs(cumulative[m]));
            json["per_query_secs"][*name][q.to_string()] = per_query[m][q].into();
            json["cumulative_secs"][*name][q.to_string()] = cumulative[m].into();
        }
        rows_a.push(ra);
        rows_b.push(rb);
    }

    print_table(
        "Figure 8a — execution time (s) for query i",
        &["query", "speculative", "buffered", "load+db", "external"],
        &rows_a,
    );
    print_table(
        "Figure 8b — cumulative execution time (s) up to query i",
        &["query", "speculative", "buffered", "load+db", "external"],
        &rows_b,
    );
    write_json("fig8", &json);
}
