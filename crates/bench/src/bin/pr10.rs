//! PR10 — column-granular speculative loading on a wide table.
//!
//! The scenario the chunk×column catalog exists for: an 11-column table
//! whose workload only ever touches 2 columns. One cold scan under the
//! speculative policy, then warm re-runs:
//!
//! * **column-granular** (the shipping behavior): the scan's effective
//!   projection feeds the `ColumnHeat` tracker, so speculative loading
//!   persists only the two hot columns' cells, and the warm
//!   database-served scan reads back only those cells.
//! * **chunk-granular baseline**: the same workload with
//!   `Query::select(0..11)` — every column is hot, so every cell of every
//!   chunk is persisted and read back, which is exactly what the
//!   chunk-at-a-time loader of the paper (and of this repo before the
//!   cell bitmap) did.
//!
//! The headline numbers are the persisted-bytes and read-back ratios
//! (expected ≈ 2/11 ≈ 18%, asserted ≤ 30%) and the warm rows/sec, which
//! must stay in the same league as the PR5 warm regime. Results land in
//! `BENCH_PR10.json` at the working directory and `results/BENCH_PR10.json`.
//!
//! ```sh
//! cargo xtask bench            # full run (pr5 then pr10)
//! cargo xtask bench --smoke    # small sizes for CI
//! ```

use scanraw_bench::{env_u64, print_table, write_json};
use scanraw_engine::{ExecMode, ExecRequest, Query, Session};
use scanraw_obs::Value as JsonValue;
use scanraw_rawfile::generate::{expected_column_sums, stage_csv, CsvSpec};
use scanraw_rawfile::TextDialect;
use scanraw_simio::{AccessKind, SimDisk};
use scanraw_types::{ScanRawConfig, Schema, WritePolicy};
use std::time::Instant;

const COLS: usize = 11;
const WORKLOAD_COLS: [usize; 2] = [2, 7];

struct Workload {
    rows: u64,
    chunk_rows: u32,
    workers: usize,
    runs: usize,
    seed: u64,
}

struct ScenarioStats {
    cold_secs: f64,
    /// Bytes written to the device by loading (stores + commit records).
    load_write_bytes: u64,
    /// Column-store footprint after the cold scan's writes drain.
    stored_bytes: u64,
    /// Bytes read back by one database-served scan (cache cleared first).
    db_read_bytes: u64,
    /// Best warm (cache-resident) run of the 2-column query.
    warm_best_secs: f64,
}

fn session_for(disk: &SimDisk, w: &Workload, mode: ExecMode) -> Session {
    let chunks = w.rows.div_ceil(w.chunk_rows as u64) as usize;
    let session = Session::open(disk.clone()).with_exec_mode(mode);
    session
        .register_table(
            "wide",
            "wide.csv",
            Schema::uniform_ints(COLS),
            TextDialect::CSV,
            ScanRawConfig::default()
                .with_chunk_rows(w.chunk_rows)
                .with_workers(w.workers)
                .with_cache_chunks(chunks + 1)
                .with_policy(WritePolicy::speculative()),
        )
        .expect("register");
    session
}

/// Runs the 2-of-11-column workload cold-to-warm. `select_all` widens the
/// projection to every column — the chunk-granular baseline.
fn run_scenario(w: &Workload, mode: ExecMode, select_all: bool) -> ScenarioStats {
    let disk = SimDisk::instant();
    let spec = CsvSpec::new(w.rows, COLS, w.seed);
    stage_csv(&disk, "wide.csv", &spec);
    let session = session_for(&disk, w, mode);

    let mut query = Query::sum_of_columns("wide", WORKLOAD_COLS);
    if select_all {
        query = query.select(0..COLS);
    }
    let expected: i64 = {
        let sums = expected_column_sums(&spec);
        WORKLOAD_COLS.iter().map(|&c| sums[c]).sum()
    };
    let check = |out: &scanraw_engine::QueryOutcome| {
        assert_eq!(out.result.rows_scanned, w.rows);
        assert_eq!(
            out.result.scalar().and_then(|v| v.as_i64()),
            Some(expected),
            "workload sum must match the generator"
        );
    };

    // Cold scan: conversion + speculative loading of the hot cells.
    let writes_before = disk.stats().bytes(AccessKind::Write);
    let t0 = Instant::now();
    let out = session
        .run(ExecRequest::query(query.clone()))
        .expect("cold query")
        .into_single();
    let cold_secs = t0.elapsed().as_secs_f64();
    check(&out);
    let op = session.engine().operator("wide").expect("operator");
    op.drain_writes();
    let load_write_bytes = disk.stats().bytes(AccessKind::Write) - writes_before;
    let stored_bytes = session.engine().database().store().stored_bytes("wide");

    // One database-served scan: how many bytes come back off the device.
    op.cache().clear();
    let reads_before = disk.stats().bytes(AccessKind::Read);
    let out = session
        .run(ExecRequest::query(query.clone()))
        .expect("db-served query")
        .into_single();
    check(&out);
    assert_eq!(out.scan.from_raw, 0, "db-served scan must not re-parse");
    let db_read_bytes = disk.stats().bytes(AccessKind::Read) - reads_before;

    // Warm regime (cache repopulated by the db-served scan): best of `runs`
    // repetitions of the plain 2-column query, PR5-style.
    let warm_query = Query::sum_of_columns("wide", WORKLOAD_COLS);
    let mut warm_best_secs = f64::INFINITY;
    for _ in 0..w.runs {
        let t0 = Instant::now();
        let out = session
            .run(ExecRequest::query(warm_query.clone()))
            .expect("warm query")
            .into_single();
        warm_best_secs = warm_best_secs.min(t0.elapsed().as_secs_f64());
        check(&out);
    }

    ScenarioStats {
        cold_secs,
        load_write_bytes,
        stored_bytes,
        db_read_bytes,
        warm_best_secs,
    }
}

fn stats_json(w: &Workload, s: &ScenarioStats) -> JsonValue {
    scanraw_obs::json!({
        "cold_secs": s.cold_secs,
        "load_write_bytes": s.load_write_bytes,
        "stored_bytes": s.stored_bytes,
        "db_read_bytes": s.db_read_bytes,
        "warm_best_secs": s.warm_best_secs,
        "warm_rows_per_sec": w.rows as f64 / s.warm_best_secs,
    })
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke") || std::env::var("PR10_SMOKE").is_ok();
    let (def_rows, def_runs) = if smoke { (24_576, 2) } else { (196_608, 3) };
    let w = Workload {
        rows: env_u64("PR10_ROWS", def_rows),
        chunk_rows: env_u64("PR10_CHUNK_ROWS", 4_096) as u32,
        workers: env_u64("PR10_WORKERS", 4) as usize,
        runs: env_u64("PR10_RUNS", def_runs) as usize,
        seed: env_u64("PR10_SEED", 1010),
    };
    println!(
        "PR10 bench: {} rows x {COLS} cols, workload on {WORKLOAD_COLS:?}, \
         {}-row chunks, {} workers, best of {}{}",
        w.rows,
        w.chunk_rows,
        w.workers,
        w.runs,
        if smoke { " (smoke)" } else { "" }
    );

    let col = run_scenario(&w, ExecMode::Parallel, false);
    let chunk = run_scenario(&w, ExecMode::Parallel, true);
    let col_serial = run_scenario(&w, ExecMode::Serial, false);

    let stored_ratio = col.stored_bytes as f64 / chunk.stored_bytes as f64;
    let write_ratio = col.load_write_bytes as f64 / chunk.load_write_bytes as f64;
    let read_ratio = col.db_read_bytes as f64 / chunk.db_read_bytes as f64;
    assert!(
        stored_ratio <= 0.30 && write_ratio <= 0.30 && read_ratio <= 0.30,
        "2-of-{COLS}-column workload must persist/load ≤ ~25% of the \
         chunk-granular baseline (stored {stored_ratio:.2}, written \
         {write_ratio:.2}, read {read_ratio:.2})"
    );

    let row = |name: &str, s: &ScenarioStats| {
        vec![
            name.to_string(),
            format!("{:.1}", s.stored_bytes as f64 / 1e6),
            format!("{:.1}", s.load_write_bytes as f64 / 1e6),
            format!("{:.1}", s.db_read_bytes as f64 / 1e6),
            format!("{:.0}", w.rows as f64 / s.warm_best_secs),
        ]
    };
    print_table(
        "PR10 — wide-table cold scan, 2-of-11-column workload",
        &[
            "granularity",
            "stored (MB)",
            "written (MB)",
            "read back (MB)",
            "warm rows/sec",
        ],
        &[row("column (heat)", &col), row("chunk (baseline)", &chunk)],
    );
    println!(
        "column-granular persists {:.0}% of the baseline's bytes and reads \
         back {:.0}% (expected ≈ {:.0}%)",
        100.0 * stored_ratio,
        100.0 * read_ratio,
        100.0 * WORKLOAD_COLS.len() as f64 / COLS as f64
    );

    let json = scanraw_obs::json!({
        "smoke": smoke,
        "rows": w.rows,
        "cols": COLS,
        "workload_cols": [2, 7],
        "chunk_rows": w.chunk_rows,
        "workers": w.workers,
        "runs": w.runs,
        "column_granular": stats_json(&w, &col),
        "column_granular_serial": stats_json(&w, &col_serial),
        "chunk_granular_baseline": stats_json(&w, &chunk),
        "stored_bytes_ratio": stored_ratio,
        "load_write_bytes_ratio": write_ratio,
        "db_read_bytes_ratio": read_ratio,
    });
    std::fs::write("BENCH_PR10.json", json.to_json_pretty()).expect("write BENCH_PR10.json");
    println!("wrote BENCH_PR10.json");
    write_json("BENCH_PR10", &json);
}
