//! `cargo xtask trace` — run a seeded workload with causal tracing on and
//! export the resulting span tree.
//!
//! The workload exercises every span kind in the taxonomy: a cold first
//! scan (raw-file conversion → `read.chunk`/`tokenize.chunk`/`parse.chunk`
//! spans, speculative `write.chunk` write-backs, `disk.read`/`disk.write`
//! device ops), then a warm scan answered from the binary cache and database
//! (`exec.chunk` fan-out plus the deterministic `merge`). The final query's
//! trace is validated (one root, all spans closed, parents open before
//! children) and exported twice:
//!
//! * `scanraw.trace.json` — Chrome trace-event JSON, loadable in Perfetto
//!   (<https://ui.perfetto.dev>) or `about://tracing`;
//! * `scanraw.folded` — folded-stack text for flamegraph tooling
//!   (`flamegraph.pl scanraw.folded > trace.svg`).
//!
//! ```sh
//! cargo xtask trace            # full run
//! cargo xtask trace --smoke    # small sizes for CI
//! ```

use scanraw_bench::env_u64;
use scanraw_engine::{ExecRequest, Query, Session};
use scanraw_rawfile::generate::{stage_csv, CsvSpec};
use scanraw_rawfile::TextDialect;
use scanraw_simio::{DiskConfig, SimDisk, VirtualClock};
use scanraw_types::{ScanRawConfig, Schema, WritePolicy};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke") || std::env::var("TRACE_SMOKE").is_ok();
    let def_rows = if smoke { 4_000 } else { 65_536 };
    let rows = env_u64("TRACE_ROWS", def_rows);
    let cols = env_u64("TRACE_COLS", 6) as usize;
    let chunk_rows = env_u64("TRACE_CHUNK_ROWS", if smoke { 500 } else { 4_096 }) as u32;
    let workers = env_u64("TRACE_WORKERS", 2) as usize;
    println!(
        "trace workload: {rows} rows x {cols} cols, {chunk_rows}-row chunks, {workers} workers{}",
        if smoke { " (smoke)" } else { "" }
    );

    // The paper's storage profile on a virtual clock: the run finishes
    // instantly in wall time, but span durations reflect the modelled
    // device (so the Perfetto view and the folded weights are meaningful)
    // and are identical across runs.
    let disk = SimDisk::new(DiskConfig::default(), VirtualClock::shared());
    let spec = CsvSpec::new(rows, cols, 2026);
    stage_csv(&disk, "t.csv", &spec);
    let session = Session::open(disk);
    session
        .register_table(
            "t",
            "t.csv",
            Schema::uniform_ints(cols),
            TextDialect::CSV,
            ScanRawConfig::default()
                .with_chunk_rows(chunk_rows)
                .with_workers(workers)
                .with_cache_chunks(rows.div_ceil(chunk_rows as u64) as usize + 1)
                .with_policy(WritePolicy::speculative()),
        )
        .expect("register table");

    let query = Query::sum_of_columns("t", 0..cols);
    // Cold scan: conversion pipeline + speculative write-backs.
    let (cold, cold_trace) = session
        .run(ExecRequest::query(query.clone()).traced())
        .expect("cold traced query")
        .into_traced_single();
    cold_trace.validate().expect("cold trace is well-formed");
    // Warm scan: cache/db delivery + exec.chunk fan-out + merge.
    let (warm, warm_trace) = session
        .run(ExecRequest::query(query.clone()).traced())
        .expect("warm traced query")
        .into_traced_single();
    warm_trace.validate().expect("warm trace is well-formed");
    assert_eq!(
        cold.result.rows, warm.result.rows,
        "cold and warm runs must agree"
    );

    // Export the cold trace (it has the richest span mix); the warm trace's
    // span count is reported alongside for comparison.
    let chrome = cold_trace.to_chrome_json();
    std::fs::write("scanraw.trace.json", chrome.to_json_pretty()).expect("write trace json");
    std::fs::write("scanraw.folded", cold_trace.to_folded()).expect("write folded stacks");

    let count = |name: &str| cold_trace.spans_named(name).count();
    println!(
        "trace {}: {} spans (read.chunk {}, tokenize.chunk {}, parse.chunk {}, exec.chunk {}, write.chunk {}, disk ops {})",
        cold_trace.trace.0,
        cold_trace.spans.len(),
        count("read.chunk"),
        count("tokenize.chunk"),
        count("parse.chunk"),
        count("exec.chunk"),
        count("write.chunk"),
        count("disk.read") + count("disk.write"),
    );
    println!(
        "warm trace {}: {} spans",
        warm_trace.trace.0,
        warm_trace.spans.len()
    );
    println!("wrote scanraw.trace.json (Perfetto / about://tracing) and scanraw.folded");
}
