//! Table 1 — ScanRaw performance on SAM/BAM genomic data.
//!
//! Paper (§5.2): the NA12878 alignment file from the 1000 Genomes project
//! (400M+ reads; SAM text 145 GB, BAM binary 26 GB), querying the
//! distribution of the CIGAR field for reads matching a sequence pattern at
//! positions in a range. Methods: external tables over SAM, external tables
//! over BAM through the sequential BAMTools-like library, full data loading
//! from SAM, database processing, and speculative loading over SAM.
//!
//! We do not have the 145 GB file. The harness (a) generates synthetic SAM
//! reads with the real generator, (b) *measures* the per-read cost of every
//! real code path in this repository — SAM tokenize+parse, sequential
//! BAM-sim decode, MAP + aggregation — and (c) composes those measured costs
//! at a configurable read count (default 4M; `TABLE1_SCALE_READS`) on the
//! device model, using the pipeline simulator for the parallel SAM paths and
//! the sequential sum for the BAM library path.

use scanraw_bench::{env_u64, print_table, write_json};
use scanraw_engine::bamscan::{execute_over_bam, map_reads};
use scanraw_engine::{AggExpr, Col, Predicate, Query};
use scanraw_pipesim::{CostModel, FileSpec, QuerySpec, SimConfig, Simulator};
use scanraw_rawfile::bamsim::{stage_bam, BamReader};
use scanraw_rawfile::sam::{field, generate_reads, sam_bytes, sam_schema, SamSpec};
use scanraw_rawfile::{parse_chunk, tokenize_chunk, TextDialect};
use scanraw_simio::SimDisk;
use scanraw_types::{ChunkId, TextChunk, WritePolicy};
use std::time::Instant;

fn main() {
    let measure_reads = env_u64("TABLE1_READS", 40_000);
    let scale_reads = env_u64("TABLE1_SCALE_READS", 4_000_000);
    let chunk_rows = 1u64 << 19;

    // ------------------------------------------------------------------
    // Stage real data and measure per-read costs of the real code paths.
    // ------------------------------------------------------------------
    let spec = SamSpec {
        reads: measure_reads,
        seed: 17,
        read_len: 100,
        ref_len: 10_000_000,
    };
    let reads = generate_reads(&spec);
    let sam = sam_bytes(&reads);
    let sam_bytes_per_read = sam.len() as f64 / reads.len() as f64;
    let bam = scanraw_rawfile::bamsim::bam_bytes(&reads);
    let bam_bytes_per_read = bam.len() as f64 / reads.len() as f64;

    // SAM conversion cost (TOKENIZE + PARSE of all 11 fields).
    let chunk = TextChunk {
        id: ChunkId(0),
        file_offset: 0,
        first_row: 0,
        rows: reads.len() as u32,
        data: bytes::Bytes::from(sam.clone()),
    };
    let schema = sam_schema();
    let t0 = Instant::now();
    let map = tokenize_chunk(&chunk, TextDialect::TSV, schema.len()).expect("tokenizes");
    let parsed = parse_chunk(&chunk, &map, TextDialect::TSV, &schema).expect("parses");
    let sam_convert_ns_per_read = t0.elapsed().as_nanos() as f64 / reads.len() as f64;
    let binary_bytes_per_read = parsed.size_bytes() as f64 / reads.len() as f64;

    // Sequential BAM-sim decode cost (the "BAMTools" path).
    let disk = SimDisk::instant();
    stage_bam(&disk, "m.bam", &reads);
    let t0 = Instant::now();
    let mut rd = BamReader::open(disk.clone(), "m.bam").expect("opens");
    let mut n = 0u64;
    while rd.next_read().expect("reads").is_some() {
        n += 1;
    }
    assert_eq!(n, reads.len() as u64);
    let bam_decode_ns_per_read = t0.elapsed().as_nanos() as f64 / n as f64;

    // Engine cost per read: MAP (record → columnar) and filter + group-by
    // aggregation, measured separately. The full BAM query time is
    // decode + map + agg; subtracting decode and map isolates agg.
    let query = table1_query();
    let t0 = Instant::now();
    let mapped = map_reads(&reads, ChunkId(0), 0);
    let _ = std::hint::black_box(&mapped);
    let map_ns_per_read = t0.elapsed().as_nanos() as f64 / n as f64;
    let t0 = Instant::now();
    let r = execute_over_bam(&disk, "m.bam", &query).expect("bam query");
    let full_ns = t0.elapsed().as_nanos() as f64;
    let agg_ns_per_read =
        ((full_ns / n as f64) - bam_decode_ns_per_read - map_ns_per_read).max(10.0);
    // The paper integrates ScanRaw with a multi-threaded execution engine
    // "shown to be I/O-bound for a large class of queries" (§5): query
    // processing parallelizes over the 16 simulated cores and is never the
    // bottleneck. Charge the parallel share to the simulator's sequential
    // engine stage.
    let engine_ns_per_read = agg_ns_per_read / 16.0;
    eprintln!(
        "# measured on {measure_reads} reads: sam {sam_bytes_per_read:.0} B/read, bam {bam_bytes_per_read:.0} B/read, binary {binary_bytes_per_read:.0} B/read"
    );
    eprintln!(
        "# sam convert {sam_convert_ns_per_read:.0} ns/read, bam decode {bam_decode_ns_per_read:.0} ns/read, map {map_ns_per_read:.0} ns/read, agg {agg_ns_per_read:.0} ns/read, query matched {} groups",
        r.rows.len()
    );

    // ------------------------------------------------------------------
    // Compose at scale.
    // ------------------------------------------------------------------
    let device = CostModel::nominal();
    let n = scale_reads as f64;
    let cols = schema.len();
    let file = FileSpec {
        n_chunks: (scale_reads.div_ceil(chunk_rows)) as usize,
        rows_per_chunk: chunk_rows,
        cols,
        text_bytes_per_value: sam_bytes_per_read / cols as f64,
        binary_bytes_per_value: binary_bytes_per_read / cols as f64,
    };
    let mut cost = device.clone();
    // Fold measured SAM costs into the model: all conversion charged to
    // PARSE per-value terms, engine per value likewise.
    cost.tokenize_split_ns_per_byte = 0.15; // newline/delimiter scan share
    cost.tokenize_skip_ns_per_byte = 0.05;
    cost.parse_ns_per_value =
        (sam_convert_ns_per_read - cost.tokenize_split_ns_per_byte * sam_bytes_per_read).max(1.0)
            / cols as f64;
    cost.engine_ns_per_value = engine_ns_per_read / cols as f64;

    let sim_time = |policy: WritePolicy| -> f64 {
        let mut sim = Simulator::new(SimConfig::new(16, policy, cost.clone()), file);
        sim.run_query(&QuerySpec::full(&file)).elapsed_secs
    };
    let external_sam = sim_time(WritePolicy::ExternalTables);
    let speculative_sam = sim_time(WritePolicy::speculative());
    let loading_sam = sim_time(WritePolicy::Eager);

    // Database processing: stream only the columns the query touches
    // (POS, CIGAR, SEQ) from the column store; the parallel engine keeps the
    // scan I/O-bound, so engine time overlaps the read.
    let needed_bytes_per_read = needed_column_bytes(&reads);
    let db_secs = device
        .read_secs(needed_bytes_per_read * n)
        .max(engine_ns_per_read * n * 1e-9);

    // BAM + sequential library: blocking reads interleave with the
    // single-threaded decode — the two costs add; the (parallel) MAP and
    // engine work hides behind the decode, as the paper observed when
    // parallelizing MAP brought "no performance gains".
    let bam_secs = device.read_secs(bam_bytes_per_read * n) + bam_decode_ns_per_read * n * 1e-9;

    let paper = [370.0, 2714.0, 945.0, 122.0, 370.0];
    let ours = [
        external_sam,
        bam_secs,
        loading_sam,
        db_secs,
        speculative_sam,
    ];
    let names = [
        "External tables (SAM)",
        "External tables (BAM + seq. library)",
        "Data loading (SAM)",
        "Database processing",
        "Speculative loading (SAM)",
    ];
    let mut rows_out = Vec::new();
    let mut json = scanraw_obs::json!({"scale_reads": scale_reads, "rows": {}});
    for i in 0..names.len() {
        rows_out.push(vec![
            names[i].to_string(),
            format!("{:.1}", ours[i]),
            format!("{:.2}", ours[i] / ours[0]),
            format!("{:.0}", paper[i]),
            format!("{:.2}", paper[i] / paper[0]),
        ]);
        json["rows"][names[i]] = scanraw_obs::json!({
            "secs": ours[i],
            "relative": ours[i] / ours[0],
            "paper_secs": paper[i],
            "paper_relative": paper[i] / paper[0],
        });
    }
    print_table(
        &format!(
            "Table 1 — SAM/BAM workload at {scale_reads} reads (relative to SAM external tables)"
        ),
        &["method", "secs", "rel", "paper secs", "paper rel"],
        &rows_out,
    );
    println!(
        "\nNote: our LZSS+varint reader decodes far faster than 2014 BAMTools; the\n\
         binary path still loses to the parallel text pipeline, at a smaller factor."
    );
    write_json("table1", &json);
}

/// The §5.2 query: CIGAR distribution of reads whose sequence matches a
/// pattern at positions in a range.
fn table1_query() -> Query {
    Query {
        table: "reads".into(),
        filter: Some(Predicate::And(
            Box::new(Predicate::like(field::SEQ, "%ACGTA%")),
            Box::new(Predicate::between(field::POS, 1i64, 5_000_000i64)),
        )),
        group_by: vec![Col(field::CIGAR)],
        aggregates: vec![AggExpr::count()],
        pushdown: false,
        projection: None,
    }
}

/// Average stored bytes per read of the columns the query reads back from
/// the database (POS, CIGAR, SEQ — string columns carry a 4-byte prefix).
fn needed_column_bytes(reads: &[scanraw_rawfile::sam::SamRead]) -> f64 {
    let total: usize = reads
        .iter()
        .map(|r| 8 + (4 + r.cigar.len()) + (4 + r.seq.len()))
        .sum();
    total as f64 / reads.len() as f64
}
