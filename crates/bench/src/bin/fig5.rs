//! Figure 5 — time per chunk in every pipeline stage as a function of the
//! number of columns (2..256): absolute (a) and relative (b).
//!
//! TOKENIZE and PARSE are *measured* on this repository's real
//! implementations over generated data; READ and WRITE are the device model
//! (chunk bytes over the paper's nominal bandwidths), since the experiment's
//! disk is simulated by construction. The paper runs 2^26-row files with
//! 2^19-row chunks and full loading; the per-chunk stage times here use a
//! configurable chunk height (`FIG5_LOG_CHUNK`, default 2^16 to keep the
//! measurement fast) — per-chunk time scales linearly in rows, and the
//! *relative* distribution (Figure 5b) is height-invariant.

use scanraw_bench::{env_u64, print_table, write_json};
use scanraw_obs::MetricsRegistry;
use scanraw_pipesim::CostModel;
use scanraw_rawfile::generate::{csv_bytes, CsvSpec};
use scanraw_rawfile::{parse_chunk, tokenize_chunk, TextDialect};
use scanraw_types::{ChunkId, Schema, TextChunk};
use std::time::Instant;

fn main() {
    let chunk_rows = 1u64 << env_u64("FIG5_LOG_CHUNK", 15);
    let device = CostModel::nominal();
    let col_sweep = [2usize, 4, 8, 16, 32, 64, 128, 256];

    // Every trial lands in the metrics registry; the JSON artifact embeds
    // its export so `results/` files share the observability schema.
    let metrics = MetricsRegistry::new();
    let mut abs_rows = Vec::new();
    let mut rel_rows = Vec::new();
    let mut json = scanraw_obs::json!({"chunk_rows": chunk_rows, "per_chunk_secs": {}});

    for &cols in &col_sweep {
        let spec = CsvSpec::new(chunk_rows, cols, 4242);
        let bytes = csv_bytes(&spec);
        let text_len = bytes.len() as f64;
        let chunk = TextChunk {
            id: ChunkId(0),
            file_offset: 0,
            first_row: 0,
            rows: chunk_rows as u32,
            data: bytes::Bytes::from(bytes),
        };
        let schema = Schema::uniform_ints(cols);

        // Best of three runs to shed scheduler/allocator noise.
        let mut tokenize = f64::INFINITY;
        let mut parse = f64::INFINITY;
        let mut map = None;
        let mut parsed = None;
        let tokenize_hist = metrics.duration_histogram("bench.tokenize.nanos");
        let parse_hist = metrics.duration_histogram("bench.parse.nanos");
        for _ in 0..3 {
            let t0 = Instant::now();
            let m = tokenize_chunk(&chunk, TextDialect::CSV, cols).expect("tokenizes");
            let dt = t0.elapsed();
            tokenize_hist.observe_duration(dt);
            tokenize = tokenize.min(dt.as_secs_f64());
            let t0 = Instant::now();
            let p = parse_chunk(&chunk, &m, TextDialect::CSV, &schema).expect("parses");
            let dp = t0.elapsed();
            parse_hist.observe_duration(dp);
            parse = parse.min(dp.as_secs_f64());
            map = Some(m);
            parsed = Some(p);
        }
        metrics.counter("bench.chunk.trials").add(3);
        metrics
            .counter(&format!("bench.bytes.cols{cols}"))
            .add(text_len as u64);
        let _map = map.expect("ran");
        let parsed = parsed.expect("ran");

        let read = device.read_secs(text_len);
        let write = device.write_secs(parsed.size_bytes() as f64);
        let total = read + tokenize + parse + write;

        abs_rows.push(vec![
            cols.to_string(),
            format!("{read:.4}"),
            format!("{tokenize:.4}"),
            format!("{parse:.4}"),
            format!("{write:.4}"),
        ]);
        rel_rows.push(vec![
            cols.to_string(),
            format!("{:.1}", 100.0 * read / total),
            format!("{:.1}", 100.0 * tokenize / total),
            format!("{:.1}", 100.0 * parse / total),
            format!("{:.1}", 100.0 * write / total),
        ]);
        json["per_chunk_secs"][cols.to_string()] = scanraw_obs::json!({
            "read": read, "tokenize": tokenize, "parse": parse, "write": write,
        });
    }

    print_table(
        "Figure 5a — absolute time per chunk (s) by stage",
        &["cols", "READ", "TOKENIZE", "PARSE", "WRITE"],
        &abs_rows,
    );
    print_table(
        "Figure 5b — relative time per chunk (%) by stage",
        &["cols", "READ", "TOKENIZE", "PARSE", "WRITE"],
        &rel_rows,
    );
    json["metrics"] = metrics.to_json();
    write_json("fig5", &json);
}
