//! PR6 — causal-tracing overhead guard.
//!
//! Re-runs the PR5 warm CPU-bound workload on two sessions — span recorder
//! disabled (`tracing_off`) vs full causal tracing (`tracing_on`) — with
//! the timed repetitions interleaved so host warm-up and drift hit both
//! sides equally. Both sides report p50/p99 rows/sec, and the bench
//! FAILS (non-zero exit) when tracing costs more than
//! `PR6_MAX_OVERHEAD_PCT` percent of best-run throughput (default 5%).
//!
//! Results land in `BENCH_PR6.json` at the working directory and in
//! `results/BENCH_PR6.json`.
//!
//! ```sh
//! cargo run --release -p scanraw-bench --bin pr6              # full run
//! cargo run --release -p scanraw-bench --bin pr6 -- --smoke   # CI size
//! ```

use scanraw_bench::{env_u64, print_table, write_json};
use scanraw_engine::{AggExpr, ExecRequest, Expr, Predicate, Query, Session};
use scanraw_obs::Value as JsonValue;
use scanraw_rawfile::generate::{stage_csv, CsvSpec};
use scanraw_rawfile::TextDialect;
use scanraw_simio::SimDisk;
use scanraw_types::{ScanRawConfig, Schema, WritePolicy};
use std::time::Instant;

struct Workload {
    rows: u64,
    cols: usize,
    chunk_rows: u32,
    workers: usize,
    runs: usize,
}

struct SideStats {
    best_secs: f64,
    p50_rows_per_sec: f64,
    p99_rows_per_sec: f64,
    spans_last_query: u64,
}

/// Same shape as the PR5 warm query: pass-everything filter plus a fat
/// aggregate list, so consumer-side evaluation dominates.
fn cpu_bound_query(table: &str, cols: usize) -> Query {
    let mut aggregates: Vec<AggExpr> = (0..cols).map(|c| AggExpr::sum(Expr::col(c))).collect();
    aggregates.push(AggExpr::count());
    aggregates.push(AggExpr::avg(Expr::sum_of_columns([0, cols - 1])));
    aggregates.push(AggExpr::min(Expr::col(1)));
    aggregates.push(AggExpr::max(Expr::col(1)));
    Query {
        table: table.into(),
        filter: Some(Predicate::between(0, i64::MIN / 4, i64::MAX / 4)),
        group_by: vec![],
        aggregates,
        pushdown: false,
        projection: None,
    }
}

/// Sorted-sample percentile (nearest-rank on the run times).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One warm session with the span recorder toggled to `traced`.
fn warm_session(w: &Workload, traced: bool) -> (Session, Query) {
    let disk = SimDisk::instant();
    let spec = CsvSpec::new(w.rows, w.cols, 5151);
    stage_csv(&disk, "wide.csv", &spec);
    let chunks = w.rows.div_ceil(w.chunk_rows as u64) as usize;
    let session = Session::open(disk);
    session
        .register_table(
            "wide",
            "wide.csv",
            Schema::uniform_ints(w.cols),
            TextDialect::CSV,
            ScanRawConfig::default()
                .with_chunk_rows(w.chunk_rows)
                .with_workers(w.workers)
                .with_cache_chunks(chunks + 1)
                .with_policy(WritePolicy::speculative()),
        )
        .expect("register");
    let op = session.engine().operator("wide").expect("operator");
    op.obs().trace.set_enabled(traced);

    let query = cpu_bound_query("wide", w.cols);
    let warm = session
        .run(ExecRequest::query(query.clone()))
        .expect("warm-up scan")
        .into_single();
    assert_eq!(warm.result.rows_scanned, w.rows, "warm-up scans every row");
    (session, query)
}

/// Runs both sides interleaved (off, on, off, on, …) so process warm-up,
/// frequency scaling, and drift hit them symmetrically — the sequential
/// layout systematically penalizes whichever side runs first.
fn run_interleaved(w: &Workload) -> (SideStats, SideStats) {
    let (off_session, query) = warm_session(w, false);
    let (on_session, _) = warm_session(w, true);

    let mut off_times: Vec<f64> = Vec::with_capacity(w.runs);
    let mut on_times: Vec<f64> = Vec::with_capacity(w.runs);
    let mut expected = None;
    for i in 0..w.runs {
        // Alternate which side goes first: within a pair the second run
        // reuses caches the first just warmed (identical work), so a fixed
        // order would flatter one side.
        let mut pair = [(&off_session, &mut off_times), (&on_session, &mut on_times)];
        if i % 2 == 1 {
            pair.swap(0, 1);
        }
        for (session, times) in pair {
            let t0 = Instant::now();
            let out = session
                .run(ExecRequest::query(query.clone()))
                .expect("warm query")
                .into_single();
            times.push(t0.elapsed().as_secs_f64());
            let scalars = out.result.rows[0].aggregates.clone();
            if let Some(prev) = &expected {
                assert_eq!(prev, &scalars, "tracing must not change answers");
            }
            expected = Some(scalars);
        }
    }

    let trace = on_session
        .last_trace("wide")
        .expect("traced run has a trace");
    trace.validate().expect("bench trace is well-formed");

    let stats = |mut times: Vec<f64>, spans: u64| {
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        SideStats {
            best_secs: times[0],
            // p50 of time ≈ p50 of throughput (monotone transform); p99 time
            // is the p1 (worst-case) throughput.
            p50_rows_per_sec: w.rows as f64 / percentile(&times, 0.50),
            p99_rows_per_sec: w.rows as f64 / percentile(&times, 0.99),
            spans_last_query: spans,
        }
    };
    let spans = trace.spans.len() as u64;
    (stats(off_times, 0), stats(on_times, spans))
}

fn stats_json(s: &SideStats) -> JsonValue {
    scanraw_obs::json!({
        "best_secs": s.best_secs,
        "p50_rows_per_sec": s.p50_rows_per_sec,
        "p99_rows_per_sec": s.p99_rows_per_sec,
        "spans_last_query": s.spans_last_query,
    })
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke") || std::env::var("PR6_SMOKE").is_ok();
    let (def_rows, def_runs) = if smoke { (49_152, 5) } else { (393_216, 9) };
    let w = Workload {
        rows: env_u64("PR6_ROWS", def_rows),
        cols: env_u64("PR6_COLS", 12) as usize,
        chunk_rows: env_u64("PR6_CHUNK_ROWS", 8_192) as u32,
        workers: env_u64("PR6_WORKERS", 4) as usize,
        runs: env_u64("PR6_RUNS", def_runs) as usize,
    };
    let max_overhead_pct = env_u64("PR6_MAX_OVERHEAD_PCT", 5) as f64;
    println!(
        "PR6 tracing-overhead bench: {} rows x {} cols, {}-row chunks, {} workers, {} runs{}",
        w.rows,
        w.cols,
        w.chunk_rows,
        w.workers,
        w.runs,
        if smoke { " (smoke)" } else { "" }
    );

    let (off, on) = run_interleaved(&w);
    // Best-of-runs is the least noisy comparison on shared CI hardware; the
    // percentiles are reported for the tails.
    let overhead_pct = 100.0 * (on.best_secs - off.best_secs) / off.best_secs;

    let row = |name: &str, s: &SideStats| {
        vec![
            name.to_string(),
            format!("{:.4}", s.best_secs),
            format!("{:.0}", s.p50_rows_per_sec),
            format!("{:.0}", s.p99_rows_per_sec),
            format!("{}", s.spans_last_query),
        ]
    };
    print_table(
        "PR6 — warm CPU-bound, tracing off vs on",
        &["tracing", "best (s)", "p50 rows/s", "p99 rows/s", "spans"],
        &[row("off", &off), row("on", &on)],
    );
    println!("tracing overhead (best-of-runs): {overhead_pct:.2}% (limit {max_overhead_pct}%)");

    let json = scanraw_obs::json!({
        "smoke": smoke,
        "rows": w.rows,
        "cols": w.cols,
        "chunk_rows": w.chunk_rows,
        "workers": w.workers,
        "runs": w.runs,
        "tracing_off": stats_json(&off),
        "tracing_on": stats_json(&on),
        "overhead_pct": overhead_pct,
        "max_overhead_pct": max_overhead_pct,
    });
    std::fs::write("BENCH_PR6.json", json.to_json_pretty()).expect("write BENCH_PR6.json");
    println!("wrote BENCH_PR6.json");
    write_json("BENCH_PR6", &json);

    assert!(
        overhead_pct <= max_overhead_pct,
        "tracing overhead {overhead_pct:.2}% exceeds the {max_overhead_pct}% budget"
    );
}
