//! Shared helpers for the experiment harness binaries.
//!
//! Every figure/table of the paper's evaluation (§5) has a binary in
//! `src/bin/` that regenerates it:
//!
//! | binary   | reproduces                                          |
//! |----------|-----------------------------------------------------|
//! | `fig4`   | execution time / % loaded / speedup vs #workers     |
//! | `fig5`   | per-stage time per chunk vs #columns (measured)     |
//! | `fig6`   | selective tokenize/parse: #columns × first position |
//! | `fig7`   | chunk-size sweep × workers                          |
//! | `fig8`   | 6-query sequence × 4 loading methods                |
//! | `fig9`   | CPU / I/O utilization timeline under speculation    |
//! | `table1` | SAM/BAM genomic workload                            |
//! | `ablation` | design-choice ablations (safeguard, bias, seek)   |
//!
//! Results print as aligned text tables (the same rows/series the paper
//! reports) and are also written as JSON under `results/`.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
use scanraw_pipesim::{measure_cost_model, CostModel};
use std::io::Write as _;
use std::path::PathBuf;

/// Rows used for cost-model calibration (overridable via `CALIB_ROWS`).
pub const DEFAULT_CALIB_ROWS: u64 = 1 << 15;
/// Columns used for cost-model calibration — 64, like the paper's default
/// experimental file (2^26 × 64).
pub const DEFAULT_CALIB_COLS: usize = 64;

/// Measures the calibrated cost model once per process.
///
/// The CPU-side constants come from running this repository's real
/// tokenizer/parser; the device keeps the paper's nominal 436 MB/s.
pub fn calibrated_model() -> CostModel {
    let rows = env_u64("CALIB_ROWS", DEFAULT_CALIB_ROWS);
    let cols = env_u64("CALIB_COLS", DEFAULT_CALIB_COLS as u64) as usize;
    let m = measure_cost_model(rows, cols);
    eprintln!(
        "# calibrated on {rows}x{cols}: tokenize {:.2} ns/B (skip {:.2}), parse {:.1} ns/value, engine {:.2} ns/value",
        m.tokenize_split_ns_per_byte, m.tokenize_skip_ns_per_byte, m.parse_ns_per_value, m.engine_ns_per_value
    );
    m
}

/// Cost model rescaled so the CPU↔I/O crossover sits at 6 workers, the
/// paper's hardware ratio (§5.1). Selected with `PAPER_RATIO=1`.
pub fn paper_ratio_model() -> CostModel {
    calibrated_model().with_crossover_at(6.0, 10.48)
}

/// Picks the model according to the `PAPER_RATIO` environment variable.
pub fn experiment_model() -> CostModel {
    if env_u64("PAPER_RATIO", 0) == 1 {
        eprintln!("# PAPER_RATIO=1: device rescaled for a 6-worker crossover");
        paper_ratio_model()
    } else {
        calibrated_model()
    }
}

/// Reads an integer environment knob with a default.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Prints an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let parts: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("{}", parts.join("  "));
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Writes an experiment's machine-readable output under `results/`.
pub fn write_json(name: &str, value: &scanraw_obs::Value) {
    let dir = PathBuf::from("results");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(mut f) = std::fs::File::create(&path) {
        let _ = writeln!(f, "{}", value.to_json_pretty());
        eprintln!("# wrote {}", path.display());
    }
}

/// Formats seconds with 3 significant decimals.
pub fn secs(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_default_used_when_unset() {
        assert_eq!(env_u64("DEFINITELY_NOT_SET_XYZ", 7), 7);
    }

    #[test]
    fn table_printer_does_not_panic() {
        print_table(
            "t",
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }

    #[test]
    fn secs_formatting() {
        assert_eq!(secs(1.23456), "1.235");
    }
}
