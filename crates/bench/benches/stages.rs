//! Criterion micro-benchmarks of the individual pipeline stages.
//!
//! These are the per-stage numbers behind Figure 5 and the calibration of
//! the cost model: TOKENIZE (full and selective), PARSE (full and
//! projected), the chunker, the LZSS codec of the BAM-sim container, and
//! the chunk cache.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use scanraw::ChunkCache;
use scanraw_rawfile::bamsim::lzss;
use scanraw_rawfile::chunker::ChunkReader;
use scanraw_rawfile::generate::{csv_bytes, CsvSpec};
use scanraw_rawfile::{
    parse_chunk, parse_chunk_projected, tokenize_chunk, tokenize_chunk_selective, TextDialect,
};
use scanraw_simio::SimDisk;
use scanraw_types::{BinaryChunk, ChunkId, Schema, TextChunk};
use std::sync::Arc;

const ROWS: u64 = 1 << 12;
const COLS: usize = 16;

fn text_chunk() -> (TextChunk, Schema) {
    let spec = CsvSpec::new(ROWS, COLS, 99);
    let bytes = csv_bytes(&spec);
    (
        TextChunk {
            id: ChunkId(0),
            file_offset: 0,
            first_row: 0,
            rows: ROWS as u32,
            data: bytes::Bytes::from(bytes),
        },
        Schema::uniform_ints(COLS),
    )
}

fn bench_tokenize(c: &mut Criterion) {
    let (chunk, _) = text_chunk();
    let mut g = c.benchmark_group("tokenize");
    g.throughput(Throughput::Bytes(chunk.len_bytes() as u64));
    g.bench_function("full", |b| {
        b.iter(|| tokenize_chunk(&chunk, TextDialect::CSV, COLS).expect("ok"))
    });
    g.bench_function("selective_prefix2", |b| {
        b.iter(|| tokenize_chunk_selective(&chunk, TextDialect::CSV, COLS, 2).expect("ok"))
    });
    g.finish();
}

fn bench_parse(c: &mut Criterion) {
    let (chunk, schema) = text_chunk();
    let map = tokenize_chunk(&chunk, TextDialect::CSV, COLS).expect("ok");
    let mut g = c.benchmark_group("parse");
    g.throughput(Throughput::Elements(ROWS * COLS as u64));
    g.bench_function("all_columns", |b| {
        b.iter(|| parse_chunk(&chunk, &map, TextDialect::CSV, &schema).expect("ok"))
    });
    g.bench_function("projected_2_of_16", |b| {
        b.iter(|| {
            parse_chunk_projected(&chunk, &map, TextDialect::CSV, &schema, &[0, 15]).expect("ok")
        })
    });
    g.finish();
}

fn bench_chunker(c: &mut Criterion) {
    let spec = CsvSpec::new(ROWS * 8, COLS, 7);
    let disk = SimDisk::instant();
    let len = scanraw_rawfile::generate::stage_csv(&disk, "b.csv", &spec);
    let mut g = c.benchmark_group("chunker");
    g.throughput(Throughput::Bytes(len));
    g.bench_function("stream_whole_file", |b| {
        b.iter(|| {
            ChunkReader::new(disk.clone(), "b.csv", ROWS as u32)
                .expect("ok")
                .read_all()
                .expect("ok")
        })
    });
    g.finish();
}

fn bench_lzss(c: &mut Criterion) {
    let reads = scanraw_rawfile::sam::generate_reads(&scanraw_rawfile::sam::SamSpec {
        reads: 512,
        ..Default::default()
    });
    let mut raw = Vec::new();
    for r in &reads {
        raw.extend_from_slice(r.to_line().as_bytes());
        raw.push(b'\n');
    }
    let comp = lzss::compress(&raw);
    let mut g = c.benchmark_group("lzss");
    g.throughput(Throughput::Bytes(raw.len() as u64));
    g.bench_function("compress", |b| b.iter(|| lzss::compress(&raw)));
    g.bench_function("decompress", |b| {
        b.iter(|| lzss::decompress(&comp, raw.len()).expect("ok"))
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("chunk_cache");
    g.bench_function("insert_evict_1k", |b| {
        b.iter_batched(
            || ChunkCache::new(64),
            |cache| {
                for i in 0..1024u32 {
                    let mut chunk = BinaryChunk::empty(ChunkId(i), 0, 1, 1);
                    chunk.columns[0] = Some(scanraw_types::ColumnData::Int64(vec![i as i64]));
                    let loaded: &[usize] = if i % 3 == 0 { &[0] } else { &[] };
                    cache.insert(Arc::new(chunk), loaded);
                }
                cache
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group! {
    name = stages;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_tokenize, bench_parse, bench_chunker, bench_lzss, bench_cache
}
criterion_main!(stages);
