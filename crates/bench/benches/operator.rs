//! Criterion benchmarks of the full operator and engine paths.
//!
//! End-to-end scans over an unthrottled device, per write policy, plus the
//! engine's aggregate query and the simulator itself — the moving parts
//! behind Figures 4 and 8 at miniature scale.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use scanraw::{ScanRaw, ScanRequest};
use scanraw_engine::{Engine, Expr, Predicate, Query};
use scanraw_pipesim::{CostModel, FileSpec, QuerySpec, SimConfig, Simulator};
use scanraw_rawfile::generate::{stage_csv, CsvSpec};
use scanraw_rawfile::TextDialect;
use scanraw_simio::SimDisk;
use scanraw_storage::Database;
use scanraw_types::{ScanRawConfig, Schema, WritePolicy};

const ROWS: u64 = 20_000;
const COLS: usize = 8;
const CHUNK_ROWS: u32 = 2_500;

fn fresh_operator(policy: WritePolicy) -> std::sync::Arc<ScanRaw> {
    let disk = SimDisk::instant();
    stage_csv(&disk, "b.csv", &CsvSpec::new(ROWS, COLS, 5));
    ScanRaw::create(
        Database::new(disk),
        "b",
        Schema::uniform_ints(COLS),
        TextDialect::CSV,
        "b.csv",
        ScanRawConfig::default()
            .with_chunk_rows(CHUNK_ROWS)
            .with_workers(2)
            .with_policy(policy),
    )
    .expect("operator")
}

fn bench_operator_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("operator_first_scan");
    g.throughput(Throughput::Elements(ROWS));
    for (name, policy) in [
        ("external", WritePolicy::ExternalTables),
        ("speculative", WritePolicy::speculative()),
        ("eager", WritePolicy::Eager),
    ] {
        g.bench_function(name, |b| {
            b.iter_batched(
                || fresh_operator(policy),
                |op| {
                    let stream = op
                        .scan(ScanRequest::all_columns((0..COLS).collect::<Vec<_>>()))
                        .expect("scan");
                    stream.finish().expect("finish")
                },
                BatchSize::PerIteration,
            )
        });
    }
    g.finish();
}

fn bench_warm_scan(c: &mut Criterion) {
    // Scan over a fully cached operator: the steady state of Figure 8.
    let op = fresh_operator(WritePolicy::ExternalTables);
    let req = ScanRequest::all_columns((0..COLS).collect::<Vec<_>>());
    op.scan(req.clone()).expect("scan").finish().expect("warm");
    let mut g = c.benchmark_group("operator_cached_scan");
    g.throughput(Throughput::Elements(ROWS));
    g.bench_function("all_from_cache", |b| {
        b.iter(|| op.scan(req.clone()).expect("scan").finish().expect("ok"))
    });
    g.finish();
}

fn bench_engine_query(c: &mut Criterion) {
    let disk = SimDisk::instant();
    stage_csv(&disk, "q.csv", &CsvSpec::new(ROWS, COLS, 6));
    let engine = Engine::new(Database::new(disk));
    engine
        .register_table(
            "q",
            "q.csv",
            Schema::uniform_ints(COLS),
            TextDialect::CSV,
            ScanRawConfig::default()
                .with_chunk_rows(CHUNK_ROWS)
                .with_workers(2),
        )
        .expect("register");
    let q = Query::sum_of_columns("q", 0..COLS);
    engine.execute(&q).expect("warm");
    let mut g = c.benchmark_group("engine");
    g.throughput(Throughput::Elements(ROWS));
    g.bench_function("sum_query_warm", |b| {
        b.iter(|| engine.execute(&q).expect("ok"))
    });
    g.finish();
}

fn bench_pushdown(c: &mut Criterion) {
    let disk = SimDisk::instant();
    stage_csv(&disk, "pd.csv", &CsvSpec::new(ROWS, COLS, 7));
    let engine = Engine::new(Database::new(disk));
    engine
        .register_table(
            "pd",
            "pd.csv",
            Schema::uniform_ints(COLS),
            TextDialect::CSV,
            ScanRawConfig::default()
                .with_chunk_rows(CHUNK_ROWS)
                .with_workers(2)
                .with_cache_chunks(1) // force raw conversion every run
                .with_policy(WritePolicy::ExternalTables),
        )
        .expect("register");
    // Highly selective predicate: ~0.4% of rows qualify.
    let base = Query::sum_of_columns("pd", [COLS - 1]).with_filter(Predicate::Cmp(
        Expr::col(0),
        scanraw_engine::predicate::CmpOp::Lt,
        Expr::lit(1i64 << 23),
    ));
    let mut g = c.benchmark_group("pushdown_selective_query");
    g.throughput(Throughput::Elements(ROWS));
    g.bench_function("row_filter", |b| {
        b.iter(|| engine.execute(&base).expect("ok"))
    });
    let pushed = base.clone().with_pushdown();
    g.bench_function("pushdown", |b| {
        b.iter(|| engine.execute(&pushed).expect("ok"))
    });
    g.finish();
}

fn bench_shared_scan(c: &mut Criterion) {
    let disk = SimDisk::instant();
    stage_csv(&disk, "sh.csv", &CsvSpec::new(ROWS, COLS, 8));
    let engine = Engine::new(Database::new(disk));
    engine
        .register_table(
            "sh",
            "sh.csv",
            Schema::uniform_ints(COLS),
            TextDialect::CSV,
            ScanRawConfig::default()
                .with_chunk_rows(CHUNK_ROWS)
                .with_workers(2)
                .with_cache_chunks(1)
                .with_policy(WritePolicy::ExternalTables),
        )
        .expect("register");
    let queries: Vec<Query> = (0..4).map(|i| Query::sum_of_columns("sh", [i])).collect();
    let mut g = c.benchmark_group("multi_query");
    g.throughput(Throughput::Elements(ROWS * 4));
    g.bench_function("four_individual_scans", |b| {
        b.iter(|| {
            for q in &queries {
                engine.execute(q).expect("ok");
            }
        })
    });
    g.bench_function("one_shared_scan", |b| {
        b.iter(|| engine.execute_shared(&queries).expect("ok"))
    });
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let file = FileSpec::synthetic(1 << 26, 64, 1 << 19);
    let mut g = c.benchmark_group("pipesim");
    g.bench_function("fig4_single_point", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(
                SimConfig::new(8, WritePolicy::speculative(), CostModel::nominal()),
                file,
            );
            sim.run_query(&QuerySpec::full(&file))
        })
    });
    g.finish();
}

criterion_group! {
    name = operator;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_operator_policies, bench_warm_scan, bench_engine_query, bench_pushdown, bench_shared_scan, bench_simulator
}
criterion_main!(operator);
