//! Golden-shape tests for the figure harnesses (ISSUE 3 satellite).
//!
//! Two layers of reproducibility guarantees:
//!
//! * **Determinism** — the discrete-event simulator behind fig4/fig8 and the
//!   measured-stage inputs behind fig5 produce bit-identical outputs across
//!   two runs with the same configuration (no hidden clock, RNG, or
//!   scheduling dependence). This is what makes the failure-schedule suite's
//!   oracle comparisons meaningful.
//! * **Snapshot ratios** — the committed snapshots under
//!   `tests/snapshots/` (captures of the `results/` artifacts the figure
//!   binaries emit) keep the qualitative shapes the paper reports (§5),
//!   checked as ratios with tolerance rather than absolute seconds, since
//!   absolute numbers depend on the calibration machine.

use scanraw_pipesim::{CostModel, FileSpec, QuerySpec, SimConfig, Simulator};
use scanraw_types::WritePolicy;

fn policies() -> [(&'static str, WritePolicy); 3] {
    [
        ("speculative", WritePolicy::speculative()),
        ("external", WritePolicy::ExternalTables),
        ("load+process", WritePolicy::Eager),
    ]
}

/// One fig4-shaped sweep (smaller file, nominal cost model so the result is
/// machine-independent): elapsed and loaded-chunk counts per (policy, w).
fn fig4_sweep() -> Vec<(String, usize, f64, usize)> {
    let file = FileSpec::synthetic(1 << 20, 16, 1 << 16);
    let mut out = Vec::new();
    for (name, policy) in policies() {
        for w in [0usize, 2, 4, 8] {
            let mut sim = Simulator::new(SimConfig::new(w, policy, CostModel::nominal()), file);
            let r = sim.run_query(&QuerySpec::full(&file));
            out.push((name.to_string(), w, r.elapsed_secs, r.loaded_after));
        }
    }
    out
}

#[test]
fn fig4_simulation_is_deterministic() {
    let a = fig4_sweep();
    let b = fig4_sweep();
    // Bit-identical, not approximately equal: the simulator must have no
    // dependence on wall clock, ambient RNG, or thread schedule.
    assert_eq!(a, b);
}

/// One fig8-shaped sequence (6 queries, constrained cache) per method.
fn fig8_sequences() -> Vec<(String, Vec<f64>, Vec<usize>)> {
    let file = FileSpec::synthetic(1 << 20, 16, 1 << 16);
    let methods = [
        ("speculative", WritePolicy::speculative()),
        ("buffered", WritePolicy::Buffered),
        ("load+db", WritePolicy::Eager),
        ("external", WritePolicy::ExternalTables),
    ];
    let mut out = Vec::new();
    for (name, policy) in methods {
        let mut cfg = SimConfig::new(8, policy, CostModel::nominal());
        cfg.cache_chunks = 4;
        let mut sim = Simulator::new(cfg, file);
        let mut elapsed = Vec::new();
        let mut loaded = Vec::new();
        for _ in 0..6 {
            let r = sim.run_query(&QuerySpec::full(&file));
            if name == "external" {
                sim.clear_cache();
            }
            elapsed.push(r.elapsed_secs);
            loaded.push(r.loaded_after);
        }
        out.push((name.to_string(), elapsed, loaded));
    }
    out
}

#[test]
fn fig8_simulation_is_deterministic() {
    assert_eq!(fig8_sequences(), fig8_sequences());
}

#[test]
fn fig5_stage_inputs_are_deterministic() {
    use scanraw_rawfile::generate::{csv_bytes, CsvSpec};
    use scanraw_rawfile::{parse_chunk, tokenize_chunk, TextDialect};
    use scanraw_types::{ChunkId, Schema, TextChunk};
    // The fig5 harness measures the real tokenizer/parser over generated
    // data; the *inputs* and *outputs* of those stages must be reproducible
    // even though the measured wall times are not.
    for cols in [2usize, 8, 32] {
        let spec = CsvSpec::new(1 << 10, cols, 4242);
        let bytes = csv_bytes(&spec);
        assert_eq!(bytes, csv_bytes(&spec), "generator is seeded");
        let chunk = TextChunk {
            id: ChunkId(0),
            file_offset: 0,
            first_row: 0,
            rows: 1 << 10,
            data: bytes::Bytes::from(bytes),
        };
        let schema = Schema::uniform_ints(cols);
        let m1 = tokenize_chunk(&chunk, TextDialect::CSV, cols).unwrap();
        let m2 = tokenize_chunk(&chunk, TextDialect::CSV, cols).unwrap();
        let p1 = parse_chunk(&chunk, &m1, TextDialect::CSV, &schema).unwrap();
        let p2 = parse_chunk(&chunk, &m2, TextDialect::CSV, &schema).unwrap();
        assert_eq!(p1.size_bytes(), p2.size_bytes());
        for c in 0..cols {
            assert_eq!(p1.column(c), p2.column(c));
        }
        // The device side of fig5 is a pure function of the byte counts.
        let device = CostModel::nominal();
        let text_len = chunk.data.len() as f64;
        assert_eq!(device.read_secs(text_len), device.read_secs(text_len));
        assert_eq!(
            device.write_secs(p1.size_bytes() as f64),
            device.write_secs(p2.size_bytes() as f64)
        );
    }
}

// ---------------------------------------------------------------------------
// Committed snapshot ratios
// ---------------------------------------------------------------------------

fn load_snapshot(name: &str) -> scanraw_obs::Value {
    let path = format!("{}/tests/snapshots/{name}.json", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("committed snapshot {path} missing: {e}"));
    scanraw_obs::json::parse(&text).expect("snapshot is valid JSON")
}

fn f(v: &scanraw_obs::Value, keys: &[&str]) -> f64 {
    let mut cur = v;
    for k in keys {
        cur = cur
            .get(k)
            .unwrap_or_else(|| panic!("snapshot missing key path {keys:?}"));
    }
    cur.as_f64().expect("numeric snapshot field")
}

#[test]
fn fig4_snapshot_keeps_paper_shape() {
    let v = load_snapshot("fig4");
    let workers = ["0", "1", "2", "4", "6", "8", "10", "12", "14", "16"];
    for w in workers {
        let ext = f(&v, &["series", "external", w, "elapsed_secs"]);
        let spec = f(&v, &["series", "speculative", w, "elapsed_secs"]);
        let load = f(&v, &["series", "load+process", w, "elapsed_secs"]);
        // External tables never loads; eager ETL always loads everything.
        assert_eq!(f(&v, &["series", "external", w, "loaded_pct"]), 0.0);
        assert_eq!(f(&v, &["series", "load+process", w, "loaded_pct"]), 100.0);
        // §5.2: speculative loading stays within noise of the external-table
        // optimum at every worker count, while eager loading pays for the
        // WRITE stage once the pipeline becomes I/O-bound.
        assert!(
            spec <= ext * 1.05,
            "speculative must track external at w={w}: {spec} vs {ext}"
        );
        assert!(
            load >= ext * 0.99,
            "eager cannot beat the no-write baseline at w={w}"
        );
        // Speedup is bounded by w workers plus the reader thread (the w=0
        // baseline has no READ/compute overlap, so w=1 can exceed 1×).
        for series in ["speculative", "external", "load+process"] {
            let s = f(&v, &["series", series, w, "speedup"]);
            let bound = w.parse::<f64>().unwrap().max(1.0) + 1.0;
            assert!(s <= bound * 1.05, "{series} speedup {s} > bound at w={w}");
            assert!(s >= 0.95, "{series} slowdown at w={w}");
        }
    }
    // Loaded fraction under speculation shrinks as workers eat the idle
    // device time (fig 4b): monotone non-increasing along the sweep.
    let mut last = f64::INFINITY;
    for w in workers {
        let pct = f(&v, &["series", "speculative", w, "loaded_pct"]);
        assert!(pct <= last + 1e-9, "fig4b regressed at w={w}");
        last = pct;
    }
}

#[test]
fn fig8_snapshot_keeps_paper_shape() {
    let v = load_snapshot("fig8");
    let q = |m: &str, i: usize| f(&v, &["per_query_secs", m, &i.to_string()]);
    let cum = |m: &str, i: usize| f(&v, &["cumulative_secs", m, &i.to_string()]);

    // External tables is stateless: flat within 2% across the sequence.
    for i in 1..6 {
        let r = q("external", i) / q("external", 0);
        assert!((r - 1.0).abs() < 0.02, "external not flat at query {i}");
    }
    // Load+process pays the ETL on query 1, then runs at database speed.
    assert!(q("load+db", 0) > q("external", 0));
    for i in 1..6 {
        assert!(q("load+db", i) < q("external", 0));
    }
    // Speculative matches external on the first query (loading is free)...
    let r = q("speculative", 0) / q("external", 0);
    assert!(
        (r - 1.0).abs() < 0.02,
        "speculative query 1 must be optimal"
    );
    // ...improves monotonically as chunks land in the database...
    for i in 1..6 {
        assert!(q("speculative", i) <= q("speculative", i - 1) * 1.001);
    }
    // ...and converges to database speed by the end of the sequence.
    assert!(q("speculative", 5) <= q("load+db", 5) * 1.05);
    // Cumulatively (fig 8b): speculation beats the stateless baseline over
    // the sequence, and beats the pay-up-front loader early on — load+db
    // only amortizes its first-query ETL after several queries.
    assert!(cum("speculative", 5) < cum("external", 5));
    assert!(cum("speculative", 0) < cum("load+db", 0));
    assert!(cum("speculative", 1) < cum("load+db", 1));
    // Cumulative series is consistent with the per-query series.
    for m in ["speculative", "buffered", "load+db", "external"] {
        let total: f64 = (0..6).map(|i| q(m, i)).sum();
        assert!((total - cum(m, 5)).abs() < 1e-6 * total.max(1.0));
    }
}

#[test]
fn fig5_snapshot_keeps_paper_shape() {
    let v = load_snapshot("fig5");
    let chunk_rows = f(&v, &["chunk_rows"]);
    let device = CostModel::nominal();
    let cols_sweep = ["2", "4", "8", "16", "32", "64", "128", "256"];
    let mut last_tokenize = 0.0;
    let mut last_parse = 0.0;
    for cols in cols_sweep {
        let read = f(&v, &["per_chunk_secs", cols, "read"]);
        let tokenize = f(&v, &["per_chunk_secs", cols, "tokenize"]);
        let parse = f(&v, &["per_chunk_secs", cols, "parse"]);
        let write = f(&v, &["per_chunk_secs", cols, "write"]);
        for (name, t) in [
            ("read", read),
            ("tokenize", tokenize),
            ("parse", parse),
            ("write", write),
        ] {
            assert!(t > 0.0, "{name} time must be positive at cols={cols}");
        }
        // The device side is a pure function of the byte counts the
        // harness also records: READ moves the text, WRITE the fixed-width
        // binary (8 bytes per value).
        let text_bytes = f(
            &v,
            &["metrics", "counters", &format!("bench.bytes.cols{cols}")],
        );
        let binary_bytes = chunk_rows * cols.parse::<f64>().unwrap() * 8.0;
        assert!((read - device.read_secs(text_bytes)).abs() < 1e-9 * text_bytes);
        assert!((write - device.write_secs(binary_bytes)).abs() < 1e-9 * binary_bytes);
        // CPU stages scale with the column count (fig 5a): monotone along
        // the sweep.
        assert!(tokenize > last_tokenize, "tokenize not monotone at {cols}");
        assert!(parse > last_parse, "parse not monotone at {cols}");
        last_tokenize = tokenize;
        last_parse = parse;
    }
}
