//! Catalog: chunk-granularity metadata for raw-file-backed tables.
//!
//! For every table the catalog tracks (a) the raw-file chunk layout learned
//! during the first scan, (b) which columns of which chunks have been loaded
//! into the database, and (c) per-chunk min/max statistics used both for
//! chunk skipping under selection predicates and for cardinality estimation
//! (paper §3.3).

use crate::stats::ColumnDetail;
use parking_lot::RwLock;
use scanraw_types::{
    BinaryChunk, ChunkId, ChunkLayout, ChunkMeta, Error, RangePredicate, Result, Schema, Value,
};
use std::collections::HashMap;
use std::sync::Arc;

/// Min/max bounds of every column in one chunk (None = column unseen or
/// statistics disabled).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChunkStats {
    /// Indexed by column; `Some((min, max))` once the column was converted.
    pub bounds: Vec<Option<(Value, Value)>>,
    /// Advanced statistics (distinct sketches + samples, paper §3.3),
    /// collected only when the operator enables them.
    pub details: Option<Vec<ColumnDetail>>,
    /// Rows observed in the chunk (set by the first conversion).
    pub rows: u32,
}

impl ChunkStats {
    pub fn new(n_cols: usize) -> Self {
        ChunkStats {
            bounds: vec![None; n_cols],
            details: None,
            rows: 0,
        }
    }

    /// Records bounds from a converted chunk's present columns.
    pub fn absorb(&mut self, chunk: &BinaryChunk) {
        self.rows = self.rows.max(chunk.rows);
        for (i, col) in chunk.columns.iter().enumerate() {
            if let Some(c) = col {
                if let Some((lo, hi)) = c.min_max() {
                    self.bounds[i] = Some(match self.bounds[i].take() {
                        // Bounds can only widen (same data re-converted gives
                        // the same range; selective conversions are subsets).
                        Some((plo, phi)) => (plo.min(lo), phi.max(hi)),
                        None => (lo, hi),
                    });
                }
            }
        }
    }

    /// Records advanced statistics (distinct sketches + samples) for the
    /// chunk's present columns. Idempotence caveat: re-converting the same
    /// chunk widens nothing but inflates observation counts; callers record
    /// detailed statistics only on the first conversion of a chunk.
    pub fn absorb_detailed(&mut self, chunk: &BinaryChunk) {
        let n = self.bounds.len();
        let details = self
            .details
            .get_or_insert_with(|| vec![ColumnDetail::default(); n]);
        for (i, col) in chunk.columns.iter().enumerate() {
            if let Some(c) = col {
                details[i].absorb(c);
            }
        }
    }

    /// Estimated fraction of this chunk's rows matching a range predicate:
    /// 0 when the bounds prune the chunk, the sample-derived fraction when a
    /// sample exists, and 1 (conservative) otherwise.
    pub fn estimate_selectivity(&self, pred: &RangePredicate) -> f64 {
        if let Some((lo, hi)) = self.bounds.get(pred.column).and_then(|b| b.as_ref()) {
            if !pred.may_overlap(lo, hi) {
                return 0.0;
            }
        }
        if let Some(details) = &self.details {
            if let Some(sel) = details
                .get(pred.column)
                .and_then(|d| d.sample.selectivity(pred))
            {
                return sel;
            }
        }
        1.0
    }

    /// True when the chunk *might* contain a value of `col` within
    /// `[lo, hi]`; chunks answering false can be skipped (§3.2.1).
    /// Unknown bounds conservatively return true.
    pub fn may_overlap(&self, col: usize, lo: &Value, hi: &Value) -> bool {
        match self.bounds.get(col).and_then(|b| b.as_ref()) {
            Some((cmin, cmax)) => !(cmax < lo || cmin > hi),
            None => true,
        }
    }
}

/// Metadata of one table.
#[derive(Debug)]
pub struct TableEntry {
    pub name: String,
    pub schema: Schema,
    /// Name of the raw file on the device.
    pub raw_file: String,
    /// Known chunk layout (None until the first full scan completes).
    layout: Option<ChunkLayout>,
    /// True once a full sequential scan recorded the complete layout.
    layout_complete: bool,
    /// `loaded[chunk][col]` — column `col` of chunk `chunk` is in the store.
    loaded: Vec<Vec<bool>>,
    /// Per-chunk statistics, parallel to `loaded`.
    stats: Vec<ChunkStats>,
}

impl TableEntry {
    fn new(name: String, schema: Schema, raw_file: String) -> Self {
        TableEntry {
            name,
            schema,
            raw_file,
            layout: None,
            layout_complete: false,
            loaded: Vec::new(),
            stats: Vec::new(),
        }
    }

    pub fn layout(&self) -> Option<&ChunkLayout> {
        self.layout.as_ref()
    }

    /// True when the layout covers the whole raw file (first scan finished).
    pub fn layout_complete(&self) -> bool {
        self.layout_complete
    }

    pub fn n_chunks(&self) -> usize {
        self.loaded.len()
    }

    /// Ensures per-chunk bookkeeping exists up to `id` (chunks are discovered
    /// in order during the first scan, but WRITE may record them out of
    /// order).
    fn ensure_chunk(&mut self, id: ChunkId) {
        let need = id.index() + 1;
        let n_cols = self.schema.len();
        while self.loaded.len() < need {
            self.loaded.push(vec![false; n_cols]);
            self.stats.push(ChunkStats::new(n_cols));
        }
    }

    /// Which of `cols` are loaded for `id`.
    pub fn loaded_columns(&self, id: ChunkId, cols: &[usize]) -> Vec<usize> {
        match self.loaded.get(id.index()) {
            Some(l) => cols
                .iter()
                .copied()
                .filter(|&c| l.get(c).copied().unwrap_or(false))
                .collect(),
            None => Vec::new(),
        }
    }

    /// True when every column in `cols` is loaded for `id` (vacuously true
    /// for an empty column set).
    pub fn is_loaded(&self, id: ChunkId, cols: &[usize]) -> bool {
        self.loaded_columns(id, cols).len() == cols.len()
    }

    /// Chunks for which every column in `cols` is loaded.
    pub fn fully_loaded_chunks(&self, cols: &[usize]) -> Vec<ChunkId> {
        (0..self.loaded.len() as u32)
            .map(ChunkId)
            .filter(|&id| self.is_loaded(id, cols))
            .collect()
    }

    /// True when all chunks of a known layout have all columns loaded —
    /// ScanRaw then morphs into a heap scan and can be deleted (§3.3).
    pub fn fully_loaded(&self) -> bool {
        let all: Vec<usize> = (0..self.schema.len()).collect();
        self.fully_loaded_for(&all)
    }

    /// Column-granular completeness: true when every chunk of a known layout
    /// has every cell of `cols` loaded. This is the reap criterion at column
    /// granularity — an operator whose queries only ever registered `cols`
    /// is a pure heap scan once those cells are in, even if unread columns
    /// never load.
    pub fn fully_loaded_for(&self, cols: &[usize]) -> bool {
        match &self.layout {
            Some(layout) => {
                !layout.is_empty()
                    && self.loaded.len() >= layout.len()
                    && (0..layout.len() as u32)
                        .map(ChunkId)
                        .all(|id| self.is_loaded(id, cols))
            }
            None => false,
        }
    }

    pub fn stats(&self, id: ChunkId) -> Option<&ChunkStats> {
        self.stats.get(id.index())
    }

    /// Estimated fraction of the table's rows matching a range predicate,
    /// weighted by per-chunk row counts (cardinality estimation, §3.3).
    pub fn estimate_selectivity(&self, pred: &RangePredicate) -> f64 {
        let mut rows = 0u64;
        let mut matching = 0.0f64;
        for s in &self.stats {
            let r = s.rows as u64;
            rows += r;
            matching += s.estimate_selectivity(pred) * r as f64;
        }
        if rows == 0 {
            1.0 // nothing known: assume everything matches
        } else {
            matching / rows as f64
        }
    }

    /// Estimated distinct values of a column across all chunks (sums chunk
    /// estimates — an upper bound, since chunks may share values).
    pub fn estimate_distinct(&self, col: usize) -> Option<u64> {
        let mut total = 0u64;
        let mut any = false;
        for s in &self.stats {
            if let Some(details) = &s.details {
                if let Some(d) = details.get(col) {
                    if d.distinct.observed() > 0 {
                        any = true;
                        total += d.distinct.estimate();
                    }
                }
            }
        }
        any.then_some(total)
    }

    /// Absolute number of (chunk, column) cells marked loaded. Unlike
    /// [`loaded_fraction`], whose denominator shrinks when a restart forgets
    /// the in-memory layout, this count must be monotonically non-decreasing
    /// across queries and honest recoveries — the fault-schedule suite
    /// asserts exactly that.
    ///
    /// [`loaded_fraction`]: TableEntry::loaded_fraction
    pub fn loaded_cell_count(&self) -> usize {
        self.loaded
            .iter()
            .map(|l| l.iter().filter(|&&b| b).count())
            .sum()
    }

    /// Fraction of (chunk, column) cells loaded, for progress reporting.
    pub fn loaded_fraction(&self) -> f64 {
        let total: usize = self.loaded.iter().map(|l| l.len()).sum();
        if total == 0 {
            return 0.0;
        }
        self.loaded_cell_count() as f64 / total as f64
    }
}

/// Thread-safe catalog of all tables. Cheap to clone.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: Arc<RwLock<HashMap<String, Arc<RwLock<TableEntry>>>>>,
}

impl Catalog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a raw-file-backed table. Errors if the name exists.
    pub fn create_table(
        &self,
        name: impl Into<String>,
        schema: Schema,
        raw_file: impl Into<String>,
    ) -> Result<()> {
        let name = name.into();
        let mut tables = self.tables.write();
        if tables.contains_key(&name) {
            return Err(Error::storage(format!("table '{name}' already exists")));
        }
        let entry = TableEntry::new(name.clone(), schema, raw_file.into());
        tables.insert(name, Arc::new(RwLock::new(entry)));
        Ok(())
    }

    pub fn drop_table(&self, name: &str) -> bool {
        self.tables.write().remove(name).is_some()
    }

    pub fn table(&self, name: &str) -> Result<Arc<RwLock<TableEntry>>> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| Error::storage(format!("unknown table '{name}'")))
    }

    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().keys().cloned().collect()
    }

    /// Stores the chunk layout discovered by the first scan.
    pub fn set_layout(&self, table: &str, layout: ChunkLayout) -> Result<()> {
        let t = self.table(table)?;
        let mut t = t.write();
        for meta in layout.iter() {
            t.ensure_chunk(meta.id);
        }
        t.layout = Some(layout);
        t.layout_complete = true;
        Ok(())
    }

    /// Marks the incrementally observed layout as covering the whole file.
    pub fn mark_layout_complete(&self, table: &str) -> Result<()> {
        let t = self.table(table)?;
        t.write().layout_complete = true;
        Ok(())
    }

    /// Appends one newly discovered chunk's metadata (incremental first scan).
    pub fn observe_chunk(&self, table: &str, meta: ChunkMeta) -> Result<()> {
        let t = self.table(table)?;
        let mut t = t.write();
        t.ensure_chunk(meta.id);
        match &mut t.layout {
            Some(layout) => {
                if layout.get(meta.id).is_none() {
                    layout.push(meta);
                }
            }
            None => {
                let mut layout = ChunkLayout::default();
                layout.push(meta);
                if meta.id.index() == 0 {
                    t.layout = Some(layout);
                } else {
                    return Err(Error::storage(format!(
                        "chunk {} observed before layout established",
                        meta.id
                    )));
                }
            }
        }
        Ok(())
    }

    /// Records statistics gathered while converting a chunk (§3.3).
    pub fn record_stats(&self, table: &str, chunk: &BinaryChunk) -> Result<()> {
        let t = self.table(table)?;
        let mut t = t.write();
        t.ensure_chunk(chunk.id);
        let idx = chunk.id.index();
        t.stats[idx].absorb(chunk);
        Ok(())
    }

    /// Records min/max *and* advanced statistics (distinct, samples) for a
    /// chunk. Detailed statistics are only absorbed the first time a chunk
    /// is seen, to keep observation counts meaningful across re-conversions.
    pub fn record_stats_detailed(&self, table: &str, chunk: &BinaryChunk) -> Result<()> {
        let t = self.table(table)?;
        let mut t = t.write();
        t.ensure_chunk(chunk.id);
        let idx = chunk.id.index();
        t.stats[idx].absorb(chunk);
        if t.stats[idx].details.is_none() {
            t.stats[idx].absorb_detailed(chunk);
        }
        Ok(())
    }

    /// Estimated fraction of `table`'s rows matching a range predicate.
    pub fn estimate_selectivity(&self, table: &str, pred: &RangePredicate) -> Result<f64> {
        let t = self.table(table)?;
        let sel = t.read().estimate_selectivity(pred);
        Ok(sel)
    }

    /// Marks columns of a chunk as loaded into the store.
    pub fn mark_loaded(&self, table: &str, id: ChunkId, cols: &[usize]) -> Result<()> {
        let t = self.table(table)?;
        let mut t = t.write();
        t.ensure_chunk(id);
        let n = t.schema.len();
        for &c in cols {
            if c >= n {
                return Err(Error::storage(format!("column {c} out of range")));
            }
            t.loaded[id.index()][c] = true;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanraw_types::ColumnData;

    fn catalog_with_table() -> Catalog {
        let c = Catalog::new();
        c.create_table("t", Schema::uniform_ints(3), "t.csv")
            .unwrap();
        c
    }

    fn chunk(id: u32, vals: Vec<i64>) -> BinaryChunk {
        let rows = vals.len() as u32;
        BinaryChunk {
            id: ChunkId(id),
            first_row: 0,
            rows,
            columns: vec![Some(ColumnData::Int64(vals)), None, None],
        }
    }

    #[test]
    fn duplicate_table_rejected() {
        let c = catalog_with_table();
        assert!(c.create_table("t", Schema::uniform_ints(1), "x").is_err());
    }

    #[test]
    fn unknown_table_is_error() {
        let c = Catalog::new();
        assert!(c.table("nope").is_err());
        assert!(c.mark_loaded("nope", ChunkId(0), &[0]).is_err());
    }

    #[test]
    fn mark_and_query_loaded() {
        let c = catalog_with_table();
        c.mark_loaded("t", ChunkId(2), &[0, 2]).unwrap();
        let t = c.table("t").unwrap();
        let t = t.read();
        assert_eq!(t.loaded_columns(ChunkId(2), &[0, 1, 2]), vec![0, 2]);
        assert!(t.is_loaded(ChunkId(2), &[0, 2]));
        assert!(!t.is_loaded(ChunkId(2), &[0, 1]));
        assert!(!t.is_loaded(ChunkId(0), &[0]));
        assert_eq!(t.n_chunks(), 3, "bookkeeping extends to chunk id");
    }

    #[test]
    fn out_of_range_column_rejected() {
        let c = catalog_with_table();
        assert!(c.mark_loaded("t", ChunkId(0), &[3]).is_err());
    }

    #[test]
    fn stats_absorb_and_skip() {
        let c = catalog_with_table();
        c.record_stats("t", &chunk(0, vec![10, 20, 30])).unwrap();
        let t = c.table("t").unwrap();
        let t = t.read();
        let s = t.stats(ChunkId(0)).unwrap();
        assert!(s.may_overlap(0, &Value::Int(15), &Value::Int(18)));
        assert!(!s.may_overlap(0, &Value::Int(31), &Value::Int(99)));
        assert!(!s.may_overlap(0, &Value::Int(0), &Value::Int(9)));
        // Unknown column bounds are conservative.
        assert!(s.may_overlap(1, &Value::Int(1000), &Value::Int(2000)));
    }

    #[test]
    fn stats_widen_monotonically() {
        let c = catalog_with_table();
        c.record_stats("t", &chunk(0, vec![10, 20])).unwrap();
        c.record_stats("t", &chunk(0, vec![5, 25])).unwrap();
        let t = c.table("t").unwrap();
        let t = t.read();
        let s = t.stats(ChunkId(0)).unwrap();
        assert_eq!(s.bounds[0], Some((Value::Int(5), Value::Int(25))));
    }

    #[test]
    fn fully_loaded_requires_layout_and_all_cells() {
        let c = catalog_with_table();
        let mut layout = ChunkLayout::default();
        layout.push(ChunkMeta {
            id: ChunkId(0),
            file_offset: 0,
            byte_len: 10,
            first_row: 0,
            rows: 2,
        });
        c.set_layout("t", layout).unwrap();
        {
            let t = c.table("t").unwrap();
            assert!(!t.read().fully_loaded());
        }
        c.mark_loaded("t", ChunkId(0), &[0, 1, 2]).unwrap();
        let t = c.table("t").unwrap();
        assert!(t.read().fully_loaded());
        assert!((t.read().loaded_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn observe_chunks_builds_layout_incrementally() {
        let c = catalog_with_table();
        for i in 0..3u32 {
            c.observe_chunk(
                "t",
                ChunkMeta {
                    id: ChunkId(i),
                    file_offset: i as u64 * 10,
                    byte_len: 10,
                    first_row: i as u64 * 2,
                    rows: 2,
                },
            )
            .unwrap();
        }
        let t = c.table("t").unwrap();
        let t = t.read();
        assert_eq!(t.layout().unwrap().len(), 3);
        assert_eq!(t.layout().unwrap().total_rows(), 6);
    }

    #[test]
    fn fully_loaded_chunks_filters_by_columns() {
        let c = catalog_with_table();
        c.mark_loaded("t", ChunkId(0), &[0]).unwrap();
        c.mark_loaded("t", ChunkId(1), &[0, 1, 2]).unwrap();
        let t = c.table("t").unwrap();
        let t = t.read();
        assert_eq!(t.fully_loaded_chunks(&[0]), vec![ChunkId(0), ChunkId(1)]);
        assert_eq!(t.fully_loaded_chunks(&[0, 1]), vec![ChunkId(1)]);
    }

    #[test]
    fn fully_loaded_for_tracks_registered_columns_only() {
        let c = catalog_with_table();
        let mut layout = ChunkLayout::default();
        for i in 0..2u32 {
            layout.push(ChunkMeta {
                id: ChunkId(i),
                file_offset: i as u64 * 10,
                byte_len: 10,
                first_row: i as u64 * 2,
                rows: 2,
            });
        }
        c.set_layout("t", layout).unwrap();
        c.mark_loaded("t", ChunkId(0), &[0, 2]).unwrap();
        c.mark_loaded("t", ChunkId(1), &[0, 2]).unwrap();
        let t = c.table("t").unwrap();
        let t = t.read();
        assert!(t.fully_loaded_for(&[0, 2]), "all registered cells loaded");
        assert!(t.fully_loaded_for(&[]), "vacuously true for no columns");
        assert!(!t.fully_loaded_for(&[0, 1]), "column 1 never loaded");
        assert!(!t.fully_loaded(), "whole-table completeness still false");
    }

    #[test]
    fn drop_table() {
        let c = catalog_with_table();
        assert!(c.drop_table("t"));
        assert!(!c.drop_table("t"));
        assert!(c.table("t").is_err());
    }
}
