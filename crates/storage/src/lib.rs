//! The database storage layer ScanRaw loads into.
//!
//! The paper integrates ScanRaw with the DataPath system; we provide the
//! pieces of a database that the operator actually touches:
//!
//! * [`catalog`] — table metadata at chunk granularity: raw-file layout,
//!   per-chunk/per-column loaded bitmap, and min/max statistics (paper §3.3
//!   "Query optimization" and §3.2.1 READ-thread optimizations);
//! * [`colstore`] — the columnar chunked store: each column of each chunk is
//!   written as an independent page run that maps directly onto the in-memory
//!   array representation ("each column is assigned an independent set of
//!   pages which can be directly mapped into the in-memory array
//!   representation", §3.1);
//! * [`database`] — the façade combining both over a shared [`SimDisk`]:
//!   `store_chunk` is what the WRITE thread calls, `load_chunk` is what READ
//!   uses for chunks already inside the database.
//!
//! [`SimDisk`]: scanraw_simio::SimDisk

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
pub mod catalog;
pub mod checksum;
pub mod colstore;
pub mod database;
pub mod stats;

pub use catalog::{Catalog, ChunkStats, TableEntry};
pub use checksum::crc32;
pub use colstore::{ColumnStore, RecoveredRun, RecoveredRuns};
pub use database::{Database, RecoveryReport};
pub use stats::{ColumnDetail, ColumnSample, DistinctSketch};
