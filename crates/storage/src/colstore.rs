//! Columnar chunked store: the on-"disk" database representation.
//!
//! Each (table, column) pair gets its own device file; each loaded chunk of a
//! column is an independent page run appended to that file. The encoding is
//! the flat array layout of the in-memory representation ("when written to
//! disk, each column is assigned an independent set of pages which can be
//! directly mapped into the in-memory array representation", paper §3.1), so
//! loading a chunk back is a single device read plus a memcpy-equivalent
//! decode.
//!
//! # Durability: write-then-commit
//!
//! A run only counts as loaded once two appends complete in order: the
//! payload into the column file, then a one-line commit record (with the
//! payload's CRC-32) into the table's `commit.log`. A crash between the two
//! leaves dead payload bytes that no record references — [`recover`] replays
//! the log after a restart, re-verifies every referenced payload against its
//! checksum, and rebuilds the run index from surviving records only, so the
//! catalog's loaded bitmap never claims a chunk whose bytes are missing or
//! corrupt (DESIGN.md §10).
//!
//! [`recover`]: ColumnStore::recover

use crate::checksum::crc32;
use parking_lot::RwLock;
use scanraw_simio::SimDisk;
use scanraw_types::{BinaryChunk, ChunkId, ColumnData, DataType, Error, Result, Schema};
use std::collections::HashMap;
use std::sync::Arc;

/// Device location of one stored column run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RunLocator {
    offset: u64,
    len: u64,
    rows: u32,
    /// CRC-32 of the payload, verified on every read of the run.
    crc: u32,
}

/// One column run restored by [`ColumnStore::recover`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveredRun {
    pub col: usize,
    pub id: ChunkId,
    pub rows: u32,
}

/// Outcome of a [`ColumnStore::recover`] pass over one table's commit log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveredRuns {
    /// Runs whose commit record and payload both survived.
    pub committed: Vec<RecoveredRun>,
    /// Commit records whose payload was missing, short, or failed its CRC.
    pub dropped_corrupt: usize,
    /// Unparseable records (torn log tail, garbage lines).
    pub dropped_malformed: usize,
}

/// Columnar store over a shared device. Cheap to clone.
/// Index key of a stored column run: (table, column, chunk).
type RunKey = (String, usize, ChunkId);

#[derive(Clone)]
pub struct ColumnStore {
    disk: SimDisk,
    runs: Arc<RwLock<HashMap<RunKey, RunLocator>>>,
}

impl ColumnStore {
    pub fn new(disk: SimDisk) -> Self {
        ColumnStore {
            disk,
            runs: Arc::new(RwLock::new(HashMap::new())),
        }
    }

    pub fn disk(&self) -> &SimDisk {
        &self.disk
    }

    fn file_name(table: &str, col: usize) -> String {
        format!("db/{table}/col{col}.bin")
    }

    fn log_name(table: &str) -> String {
        format!("db/{table}/commit.log")
    }

    /// Writes every present column of `chunk` that is not already stored.
    /// Returns the column indices actually written.
    ///
    /// # Errors
    ///
    /// Fails on the first device error; columns written before it stay
    /// committed (use [`store_chunk_partial`] to learn which).
    ///
    /// [`store_chunk_partial`]: ColumnStore::store_chunk_partial
    pub fn store_chunk(&self, table: &str, chunk: &BinaryChunk) -> Result<Vec<usize>> {
        let (written, err) = self.store_chunk_partial(table, chunk);
        match err {
            Some(e) => Err(e),
            None => Ok(written),
        }
    }

    /// Writes only the named columns of `chunk`. Returns the column indices
    /// actually written (absent or already-stored columns are skipped).
    ///
    /// # Errors
    ///
    /// Fails on the first device error; columns written before it stay
    /// committed (use [`store_chunk_cols_partial`] to learn which).
    ///
    /// [`store_chunk_cols_partial`]: ColumnStore::store_chunk_cols_partial
    pub fn store_chunk_cols(
        &self,
        table: &str,
        chunk: &BinaryChunk,
        cols: &[usize],
    ) -> Result<Vec<usize>> {
        let (written, err) = self.store_chunk_cols_partial(table, chunk, cols);
        match err {
            Some(e) => Err(e),
            None => Ok(written),
        }
    }

    /// Like [`store_chunk`], but reports partial progress: the columns that
    /// were durably committed before a device error, plus the error itself.
    /// The WRITE stage needs both — committed columns must be marked loaded
    /// in the catalog (the work is durable), the failed column must not be.
    ///
    /// Each column follows the write-then-commit protocol: payload append,
    /// then commit-record append. A column counts as written only when both
    /// appends succeeded.
    ///
    /// [`store_chunk`]: ColumnStore::store_chunk
    pub fn store_chunk_partial(
        &self,
        table: &str,
        chunk: &BinaryChunk,
    ) -> (Vec<usize>, Option<Error>) {
        let all: Vec<usize> = (0..chunk.columns.len()).collect();
        self.store_chunk_cols_partial(table, chunk, &all)
    }

    /// Column-granular store: writes only the named columns of `chunk` (the
    /// cell-level unit of speculative loading), skipping columns that are
    /// absent from the chunk or already stored. Same write-then-commit
    /// protocol and partial-progress reporting as [`store_chunk_partial`]:
    /// a torn write can lose a column cell but never commit a half-written
    /// one.
    ///
    /// [`store_chunk_partial`]: ColumnStore::store_chunk_partial
    pub fn store_chunk_cols_partial(
        &self,
        table: &str,
        chunk: &BinaryChunk,
        cols: &[usize],
    ) -> (Vec<usize>, Option<Error>) {
        let mut written = Vec::new();
        for &col in cols {
            let Some(data) = chunk.columns.get(col).and_then(Option::as_ref) else {
                continue;
            };
            let key = (table.to_string(), col, chunk.id);
            if self.runs.read().contains_key(&key) {
                continue; // already stored; chunks are immutable
            }
            let bytes = encode_column(data);
            let crc = crc32(&bytes);
            let file = Self::file_name(table, col);
            self.disk.create(&file);
            // lint-ok: L016 the WRITE thread retries whole stores (idempotent per committed cell); direct callers get partial progress + the error
            let offset = match self.disk.append(&file, &bytes) {
                Ok(o) => o,
                Err(e) => return (written, Some(e)),
            };
            // Commit point: the run exists once this record is durable. A
            // crash before it leaves the payload as unreferenced dead bytes
            // that recovery ignores. The leading newline isolates the record
            // from any partial bytes a torn earlier append left at the log
            // tail — otherwise the torn prefix and this record would merge
            // into one malformed line and recovery would drop a durable run.
            let record = format!(
                "\nv1 {col} {id} {offset} {len} {rows} {crc}\n",
                id = chunk.id.0,
                len = bytes.len(),
                rows = chunk.rows,
            );
            let log = Self::log_name(table);
            self.disk.create(&log);
            // lint-ok: L016 same contract as the payload append above: retried a level up, never masked here
            if let Err(e) = self.disk.append(&log, record.as_bytes()) {
                return (written, Some(e));
            }
            self.runs.write().insert(
                key,
                RunLocator {
                    offset,
                    len: bytes.len() as u64,
                    rows: chunk.rows,
                    crc,
                },
            );
            written.push(col);
        }
        (written, None)
    }

    /// Rebuilds the run index for `table` from its commit log after a crash
    /// or restart. Only records whose payload is present and passes its
    /// CRC-32 survive; everything else is dropped and counted, so a caller
    /// re-marking the catalog from [`RecoveredRuns::committed`] can never
    /// mark a lying bit.
    ///
    /// # Errors
    ///
    /// Fails when a commit record names a column outside `schema` —
    /// corruption of the metadata itself rather than of a payload.
    pub fn recover(&self, table: &str, schema: &Schema) -> Result<RecoveredRuns> {
        let mut report = RecoveredRuns::default();
        let log = Self::log_name(table);
        if !self.disk.exists(&log) {
            return Ok(report); // nothing was ever committed
        }
        let log_len = self.disk.len(&log)?;
        // Recovery deliberately bypasses retry: it runs once at startup
        // before any scan, and a failure is treated as corruption (the run is
        // dropped and re-converted from raw), never masked by healing.
        // lint-ok: L016 recovery is conservative by design, no retry masking
        let raw = self.disk.read(&log, 0, log_len as usize)?;
        let text = String::from_utf8_lossy(&raw);
        // Only newline-terminated records count: a crash mid-append tears the
        // final line, which must not resurrect a half-committed run.
        let complete_upto = text.rfind('\n').map_or(0, |i| i + 1);
        if complete_upto < text.len() {
            report.dropped_malformed += 1;
        }
        for line in text[..complete_upto].lines() {
            if line.is_empty() {
                continue; // records are newline-isolated; blanks are padding
            }
            let Some(rec) = parse_commit_record(line) else {
                report.dropped_malformed += 1;
                continue;
            };
            let (col, id, offset, len, rows, crc) = rec;
            if col >= schema.len() {
                return Err(Error::storage(format!(
                    "commit log of '{table}' names column {col} outside the schema"
                )));
            }
            let key = (table.to_string(), col, id);
            if self.runs.read().contains_key(&key) {
                continue; // duplicate record; first commit wins
            }
            let file = Self::file_name(table, col);
            // lint-ok: L016 a failed payload read counts the run dropped_corrupt, by design
            let payload = match self.disk.read(&file, offset, len as usize) {
                Ok(p) => p,
                Err(_) => {
                    report.dropped_corrupt += 1;
                    continue;
                }
            };
            if crc32(&payload) != crc {
                report.dropped_corrupt += 1;
                continue;
            }
            self.runs.write().insert(
                key,
                RunLocator {
                    offset,
                    len,
                    rows,
                    crc,
                },
            );
            report.committed.push(RecoveredRun { col, id, rows });
        }
        Ok(report)
    }

    /// True when (table, column, chunk) is stored.
    pub fn has(&self, table: &str, col: usize, id: ChunkId) -> bool {
        self.runs.read().contains_key(&(table.to_string(), col, id))
    }

    /// Reads the requested columns of a chunk back into a [`BinaryChunk`].
    ///
    /// This is the database-side READ path: no tokenizing, no parsing — one
    /// device read per column plus decode (§3.2.1: "chunks loaded inside the
    /// database can be read directly in the binary chunks buffer without any
    /// tokenizing and parsing").
    pub fn load_chunk(
        &self,
        table: &str,
        schema: &Schema,
        id: ChunkId,
        first_row: u64,
        cols: &[usize],
    ) -> Result<BinaryChunk> {
        let mut rows: Option<u32> = None;
        let mut out_cols: Vec<Option<ColumnData>> = vec![None; schema.len()];
        for &col in cols {
            let key = (table.to_string(), col, id);
            let loc = *self.runs.read().get(&key).ok_or_else(|| {
                Error::storage(format!("column {col} of {id} not stored for '{table}'"))
            })?;
            let file = Self::file_name(table, col);
            let bytes = self.disk.read(&file, loc.offset, loc.len as usize)?;
            if crc32(&bytes) != loc.crc {
                // Read-path corruption (a flipped bit between platter and
                // buffer) — retryable; persistent mismatch means the stored
                // payload itself is bad and the caller falls back to raw.
                return Err(Error::io_corrupt(
                    file,
                    format!("checksum mismatch reading {id} column {col} of '{table}'"),
                ));
            }
            let dt = schema
                .field(col)
                .ok_or_else(|| Error::storage(format!("column {col} out of schema")))?
                .data_type;
            let data = decode_column(&bytes, dt, loc.rows)?;
            match rows {
                Some(r) if r != loc.rows => {
                    return Err(Error::storage(format!(
                        "row count mismatch in stored chunk {id}: {r} vs {}",
                        loc.rows
                    )));
                }
                _ => rows = Some(loc.rows),
            }
            out_cols[col] = Some(data);
        }
        Ok(BinaryChunk {
            id,
            first_row,
            rows: rows.unwrap_or(0),
            columns: out_cols,
        })
    }

    /// Total stored bytes for a table (all columns, all chunks).
    pub fn stored_bytes(&self, table: &str) -> u64 {
        self.runs
            .read()
            .iter()
            .filter(|((t, _, _), _)| t == table)
            .map(|(_, loc)| loc.len)
            .sum()
    }
}

/// Parses one commit record: `v1 <col> <chunk> <offset> <len> <rows> <crc>`.
/// Returns `None` for anything that does not match exactly (torn tails,
/// unknown versions, garbage).
#[allow(clippy::type_complexity)]
fn parse_commit_record(line: &str) -> Option<(usize, ChunkId, u64, u64, u32, u32)> {
    let mut parts = line.split_ascii_whitespace();
    if parts.next()? != "v1" {
        return None;
    }
    let col = parts.next()?.parse().ok()?;
    let id = ChunkId(parts.next()?.parse().ok()?);
    let offset = parts.next()?.parse().ok()?;
    let len = parts.next()?.parse().ok()?;
    let rows = parts.next()?.parse().ok()?;
    let crc = parts.next()?.parse().ok()?;
    if parts.next().is_some() {
        return None;
    }
    Some((col, id, offset, len, rows, crc))
}

/// Flat little-endian encoding; strings are `u32` length + bytes.
fn encode_column(data: &ColumnData) -> Vec<u8> {
    match data {
        ColumnData::Int64(v) => {
            let mut out = Vec::with_capacity(v.len() * 8);
            for x in v {
                out.extend_from_slice(&x.to_le_bytes());
            }
            out
        }
        ColumnData::Float64(v) => {
            let mut out = Vec::with_capacity(v.len() * 8);
            for x in v {
                out.extend_from_slice(&x.to_le_bytes());
            }
            out
        }
        ColumnData::Utf8(v) => {
            let mut out = Vec::with_capacity(v.iter().map(|s| 4 + s.len()).sum());
            for s in v {
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            out
        }
    }
}

fn decode_column(bytes: &[u8], dt: DataType, rows: u32) -> Result<ColumnData> {
    let rows = rows as usize;
    match dt {
        DataType::Int64 => {
            if bytes.len() != rows * 8 {
                return Err(Error::storage("int64 run length mismatch"));
            }
            Ok(ColumnData::Int64(
                bytes
                    .chunks_exact(8)
                    // lint-ok: L013 chunks_exact(8) yields exactly 8 bytes
                    .map(|c| i64::from_le_bytes(c.try_into().expect("8 bytes")))
                    .collect(),
            ))
        }
        DataType::Float64 => {
            if bytes.len() != rows * 8 {
                return Err(Error::storage("float64 run length mismatch"));
            }
            Ok(ColumnData::Float64(
                bytes
                    .chunks_exact(8)
                    // lint-ok: L013 chunks_exact(8) yields exactly 8 bytes
                    .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
                    .collect(),
            ))
        }
        DataType::Utf8 => {
            let mut v = Vec::with_capacity(rows);
            let mut pos = 0usize;
            for _ in 0..rows {
                let len_bytes = bytes
                    .get(pos..pos + 4)
                    .ok_or_else(|| Error::storage("truncated string run"))?;
                // lint-ok: L013 the `get(pos..pos + 4)` above pinned the length
                let len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
                pos += 4;
                let s = bytes
                    .get(pos..pos + len)
                    .ok_or_else(|| Error::storage("truncated string payload"))?;
                pos += len;
                v.push(
                    String::from_utf8(s.to_vec())
                        .map_err(|_| Error::storage("invalid utf-8 in stored column"))?,
                );
            }
            if pos != bytes.len() {
                return Err(Error::storage("trailing bytes in string run"));
            }
            Ok(ColumnData::Utf8(v))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanraw_types::Field;

    fn chunk(id: u32) -> BinaryChunk {
        BinaryChunk {
            id: ChunkId(id),
            first_row: id as u64 * 3,
            rows: 3,
            columns: vec![
                Some(ColumnData::Int64(vec![1 + id as i64, 2, 3])),
                Some(ColumnData::Utf8(vec!["a".into(), "bb".into(), "".into()])),
                None,
            ],
        }
    }

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("i", DataType::Int64),
            Field::new("s", DataType::Utf8),
            Field::new("f", DataType::Float64),
        ])
        .unwrap()
    }

    #[test]
    fn store_and_load_roundtrip() {
        let store = ColumnStore::new(SimDisk::instant());
        let c = chunk(0);
        let written = store.store_chunk("t", &c).unwrap();
        assert_eq!(written, vec![0, 1]);
        let back = store
            .load_chunk("t", &schema(), ChunkId(0), 0, &[0, 1])
            .unwrap();
        assert_eq!(back.column(0), c.column(0));
        assert_eq!(back.column(1), c.column(1));
        assert_eq!(back.rows, 3);
    }

    #[test]
    fn partial_load() {
        let store = ColumnStore::new(SimDisk::instant());
        store.store_chunk("t", &chunk(0)).unwrap();
        let back = store
            .load_chunk("t", &schema(), ChunkId(0), 0, &[1])
            .unwrap();
        assert!(back.column(0).is_none());
        assert!(back.column(1).is_some());
    }

    #[test]
    fn duplicate_store_is_idempotent() {
        let store = ColumnStore::new(SimDisk::instant());
        let first = store.store_chunk("t", &chunk(0)).unwrap();
        assert_eq!(first.len(), 2);
        let second = store.store_chunk("t", &chunk(0)).unwrap();
        assert!(second.is_empty(), "already-stored columns are skipped");
    }

    #[test]
    fn column_subset_store_writes_only_named_cells() {
        let store = ColumnStore::new(SimDisk::instant());
        let written = store.store_chunk_cols("t", &chunk(0), &[1]).unwrap();
        assert_eq!(written, vec![1]);
        assert!(!store.has("t", 0, ChunkId(0)));
        assert!(store.has("t", 1, ChunkId(0)));
        // Absent columns (index 2 is None) and out-of-range indices are
        // skipped, not errors.
        let rest = store
            .store_chunk_cols("t", &chunk(0), &[0, 1, 2, 9])
            .unwrap();
        assert_eq!(rest, vec![0], "column 1 already stored, 2 absent");
        let back = store
            .load_chunk("t", &schema(), ChunkId(0), 0, &[0, 1])
            .unwrap();
        assert_eq!(back.column(0), chunk(0).column(0));
    }

    #[test]
    fn missing_chunk_is_error() {
        let store = ColumnStore::new(SimDisk::instant());
        assert!(store
            .load_chunk("t", &schema(), ChunkId(9), 0, &[0])
            .is_err());
    }

    #[test]
    fn multiple_chunks_per_column_file() {
        let store = ColumnStore::new(SimDisk::instant());
        for i in 0..4 {
            store.store_chunk("t", &chunk(i)).unwrap();
        }
        for i in 0..4 {
            let back = store
                .load_chunk("t", &schema(), ChunkId(i), 0, &[0])
                .unwrap();
            match back.column(0).unwrap() {
                ColumnData::Int64(v) => assert_eq!(v[0], 1 + i as i64),
                _ => panic!("wrong type"),
            }
        }
    }

    #[test]
    fn tables_are_isolated() {
        let store = ColumnStore::new(SimDisk::instant());
        store.store_chunk("t1", &chunk(0)).unwrap();
        assert!(store.has("t1", 0, ChunkId(0)));
        assert!(!store.has("t2", 0, ChunkId(0)));
        assert!(store
            .load_chunk("t2", &schema(), ChunkId(0), 0, &[0])
            .is_err());
    }

    #[test]
    fn stored_bytes_accounting() {
        let store = ColumnStore::new(SimDisk::instant());
        store.store_chunk("t", &chunk(0)).unwrap();
        // 3 i64 = 24 bytes, strings = (4+1)+(4+2)+(4+0) = 15.
        assert_eq!(store.stored_bytes("t"), 39);
        assert_eq!(store.stored_bytes("other"), 0);
    }

    #[test]
    fn corrupted_payload_detected_by_checksum() {
        let store = ColumnStore::new(SimDisk::instant());
        store.store_chunk("t", &chunk(0)).unwrap();
        // Damage one stored byte directly (bypassing the device model).
        let file = "db/t/col0.bin";
        let byte = store.disk().read(file, 0, 1).unwrap()[0];
        store
            .disk()
            .storage()
            .write_at(file, 0, &[byte ^ 0x40])
            .unwrap();
        let err = store
            .load_chunk("t", &schema(), ChunkId(0), 0, &[0])
            .unwrap_err();
        assert_eq!(
            err.io_kind(),
            Some(scanraw_types::IoErrorKind::Corrupt),
            "{err}"
        );
        // The untouched column still loads.
        store
            .load_chunk("t", &schema(), ChunkId(0), 0, &[1])
            .unwrap();
    }

    #[test]
    fn recover_rebuilds_runs_from_commit_log() {
        let disk = SimDisk::instant();
        {
            let store = ColumnStore::new(disk.clone());
            for i in 0..3 {
                store.store_chunk("t", &chunk(i)).unwrap();
            }
        }
        // "Restart": a fresh store over the surviving device.
        let store = ColumnStore::new(disk);
        assert!(!store.has("t", 0, ChunkId(0)));
        let report = store.recover("t", &schema()).unwrap();
        assert_eq!(report.committed.len(), 6, "3 chunks × 2 present columns");
        assert_eq!(report.dropped_corrupt, 0);
        assert_eq!(report.dropped_malformed, 0);
        for i in 0..3 {
            let back = store
                .load_chunk("t", &schema(), ChunkId(i), 0, &[0, 1])
                .unwrap();
            assert_eq!(back.column(0), chunk(i).column(0));
        }
    }

    #[test]
    fn recover_drops_uncommitted_payload() {
        let disk = SimDisk::instant();
        let store = ColumnStore::new(disk.clone());
        store.store_chunk("t", &chunk(0)).unwrap();
        // Simulate a crash after a payload append but before its commit
        // record: orphan bytes at the tail of the column file.
        disk.storage().append("db/t/col0.bin", &[0xAA; 24]).unwrap();
        let fresh = ColumnStore::new(disk);
        let report = fresh.recover("t", &schema()).unwrap();
        assert_eq!(report.committed.len(), 2);
        assert!(fresh.has("t", 0, ChunkId(0)));
        assert!(!fresh.has("t", 0, ChunkId(1)), "orphan never committed");
    }

    #[test]
    fn recover_drops_torn_log_tail() {
        let disk = SimDisk::instant();
        let store = ColumnStore::new(disk.clone());
        store.store_chunk("t", &chunk(0)).unwrap();
        store.store_chunk("t", &chunk(1)).unwrap();
        // Tear the last committed record: strip the trailing newline plus a
        // few characters, as a crash mid-append would.
        let log = "db/t/commit.log";
        let len = disk.len(log).unwrap();
        let all = disk.read(log, 0, len as usize).unwrap();
        let torn = &all[..all.len() - 4];
        disk.storage().put(log, torn.to_vec());
        let fresh = ColumnStore::new(disk);
        let report = fresh.recover("t", &schema()).unwrap();
        assert_eq!(report.dropped_malformed, 1);
        // Chunk 1's second column lost its commit record → not recovered.
        assert_eq!(report.committed.len(), 3);
        assert!(fresh.has("t", 0, ChunkId(1)));
        assert!(!fresh.has("t", 1, ChunkId(1)));
    }

    #[test]
    fn recover_drops_corrupt_payload() {
        let disk = SimDisk::instant();
        let store = ColumnStore::new(disk.clone());
        store.store_chunk("t", &chunk(0)).unwrap();
        let byte = disk.read("db/t/col1.bin", 0, 1).unwrap()[0];
        disk.storage()
            .write_at("db/t/col1.bin", 0, &[byte ^ 0x01])
            .unwrap();
        let fresh = ColumnStore::new(disk);
        let report = fresh.recover("t", &schema()).unwrap();
        assert_eq!(report.dropped_corrupt, 1);
        assert!(fresh.has("t", 0, ChunkId(0)));
        assert!(!fresh.has("t", 1, ChunkId(0)));
    }

    #[test]
    fn recover_without_log_is_empty() {
        let store = ColumnStore::new(SimDisk::instant());
        let report = store.recover("t", &schema()).unwrap();
        assert_eq!(report, RecoveredRuns::default());
    }

    #[test]
    fn commit_record_parser_rejects_garbage() {
        assert!(parse_commit_record("v1 0 3 128 64 8 123456").is_some());
        assert!(parse_commit_record("v2 0 3 128 64 8 123456").is_none());
        assert!(parse_commit_record("v1 0 3 128 64 8").is_none());
        assert!(parse_commit_record("v1 0 3 128 64 8 123456 extra").is_none());
        assert!(parse_commit_record("v1 x 3 128 64 8 123456").is_none());
        assert!(parse_commit_record("").is_none());
    }

    #[test]
    fn float_roundtrip() {
        let store = ColumnStore::new(SimDisk::instant());
        let c = BinaryChunk {
            id: ChunkId(0),
            first_row: 0,
            rows: 2,
            columns: vec![None, None, Some(ColumnData::Float64(vec![1.5, -0.25]))],
        };
        store.store_chunk("t", &c).unwrap();
        let back = store
            .load_chunk("t", &schema(), ChunkId(0), 0, &[2])
            .unwrap();
        assert_eq!(back.column(2), c.column(2));
    }
}
