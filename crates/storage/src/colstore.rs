//! Columnar chunked store: the on-"disk" database representation.
//!
//! Each (table, column) pair gets its own device file; each loaded chunk of a
//! column is an independent page run appended to that file. The encoding is
//! the flat array layout of the in-memory representation ("when written to
//! disk, each column is assigned an independent set of pages which can be
//! directly mapped into the in-memory array representation", paper §3.1), so
//! loading a chunk back is a single device read plus a memcpy-equivalent
//! decode.

use parking_lot::RwLock;
use scanraw_simio::SimDisk;
use scanraw_types::{BinaryChunk, ChunkId, ColumnData, DataType, Error, Result, Schema};
use std::collections::HashMap;
use std::sync::Arc;

/// Device location of one stored column run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RunLocator {
    offset: u64,
    len: u64,
    rows: u32,
}

/// Columnar store over a shared device. Cheap to clone.
/// Index key of a stored column run: (table, column, chunk).
type RunKey = (String, usize, ChunkId);

#[derive(Clone)]
pub struct ColumnStore {
    disk: SimDisk,
    runs: Arc<RwLock<HashMap<RunKey, RunLocator>>>,
}

impl ColumnStore {
    pub fn new(disk: SimDisk) -> Self {
        ColumnStore {
            disk,
            runs: Arc::new(RwLock::new(HashMap::new())),
        }
    }

    pub fn disk(&self) -> &SimDisk {
        &self.disk
    }

    fn file_name(table: &str, col: usize) -> String {
        format!("db/{table}/col{col}.bin")
    }

    /// Writes every present column of `chunk` that is not already stored.
    /// Returns the column indices actually written.
    pub fn store_chunk(&self, table: &str, chunk: &BinaryChunk) -> Result<Vec<usize>> {
        let mut written = Vec::new();
        for (col, data) in chunk.columns.iter().enumerate() {
            let Some(data) = data else { continue };
            let key = (table.to_string(), col, chunk.id);
            if self.runs.read().contains_key(&key) {
                continue; // already stored; chunks are immutable
            }
            let bytes = encode_column(data);
            let file = Self::file_name(table, col);
            self.disk.create(&file);
            let offset = self.disk.append(&file, &bytes)?;
            self.runs.write().insert(
                key,
                RunLocator {
                    offset,
                    len: bytes.len() as u64,
                    rows: chunk.rows,
                },
            );
            written.push(col);
        }
        Ok(written)
    }

    /// True when (table, column, chunk) is stored.
    pub fn has(&self, table: &str, col: usize, id: ChunkId) -> bool {
        self.runs.read().contains_key(&(table.to_string(), col, id))
    }

    /// Reads the requested columns of a chunk back into a [`BinaryChunk`].
    ///
    /// This is the database-side READ path: no tokenizing, no parsing — one
    /// device read per column plus decode (§3.2.1: "chunks loaded inside the
    /// database can be read directly in the binary chunks buffer without any
    /// tokenizing and parsing").
    pub fn load_chunk(
        &self,
        table: &str,
        schema: &Schema,
        id: ChunkId,
        first_row: u64,
        cols: &[usize],
    ) -> Result<BinaryChunk> {
        let mut rows: Option<u32> = None;
        let mut out_cols: Vec<Option<ColumnData>> = vec![None; schema.len()];
        for &col in cols {
            let key = (table.to_string(), col, id);
            let loc = *self.runs.read().get(&key).ok_or_else(|| {
                Error::storage(format!("column {col} of {id} not stored for '{table}'"))
            })?;
            let file = Self::file_name(table, col);
            let bytes = self.disk.read(&file, loc.offset, loc.len as usize)?;
            let dt = schema
                .field(col)
                .ok_or_else(|| Error::storage(format!("column {col} out of schema")))?
                .data_type;
            let data = decode_column(&bytes, dt, loc.rows)?;
            match rows {
                Some(r) if r != loc.rows => {
                    return Err(Error::storage(format!(
                        "row count mismatch in stored chunk {id}: {r} vs {}",
                        loc.rows
                    )));
                }
                _ => rows = Some(loc.rows),
            }
            out_cols[col] = Some(data);
        }
        Ok(BinaryChunk {
            id,
            first_row,
            rows: rows.unwrap_or(0),
            columns: out_cols,
        })
    }

    /// Total stored bytes for a table (all columns, all chunks).
    pub fn stored_bytes(&self, table: &str) -> u64 {
        self.runs
            .read()
            .iter()
            .filter(|((t, _, _), _)| t == table)
            .map(|(_, loc)| loc.len)
            .sum()
    }
}

/// Flat little-endian encoding; strings are `u32` length + bytes.
fn encode_column(data: &ColumnData) -> Vec<u8> {
    match data {
        ColumnData::Int64(v) => {
            let mut out = Vec::with_capacity(v.len() * 8);
            for x in v {
                out.extend_from_slice(&x.to_le_bytes());
            }
            out
        }
        ColumnData::Float64(v) => {
            let mut out = Vec::with_capacity(v.len() * 8);
            for x in v {
                out.extend_from_slice(&x.to_le_bytes());
            }
            out
        }
        ColumnData::Utf8(v) => {
            let mut out = Vec::with_capacity(v.iter().map(|s| 4 + s.len()).sum());
            for s in v {
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            out
        }
    }
}

fn decode_column(bytes: &[u8], dt: DataType, rows: u32) -> Result<ColumnData> {
    let rows = rows as usize;
    match dt {
        DataType::Int64 => {
            if bytes.len() != rows * 8 {
                return Err(Error::storage("int64 run length mismatch"));
            }
            Ok(ColumnData::Int64(
                bytes
                    .chunks_exact(8)
                    .map(|c| i64::from_le_bytes(c.try_into().expect("8 bytes")))
                    .collect(),
            ))
        }
        DataType::Float64 => {
            if bytes.len() != rows * 8 {
                return Err(Error::storage("float64 run length mismatch"));
            }
            Ok(ColumnData::Float64(
                bytes
                    .chunks_exact(8)
                    .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
                    .collect(),
            ))
        }
        DataType::Utf8 => {
            let mut v = Vec::with_capacity(rows);
            let mut pos = 0usize;
            for _ in 0..rows {
                let len_bytes = bytes
                    .get(pos..pos + 4)
                    .ok_or_else(|| Error::storage("truncated string run"))?;
                let len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
                pos += 4;
                let s = bytes
                    .get(pos..pos + len)
                    .ok_or_else(|| Error::storage("truncated string payload"))?;
                pos += len;
                v.push(
                    String::from_utf8(s.to_vec())
                        .map_err(|_| Error::storage("invalid utf-8 in stored column"))?,
                );
            }
            if pos != bytes.len() {
                return Err(Error::storage("trailing bytes in string run"));
            }
            Ok(ColumnData::Utf8(v))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanraw_types::Field;

    fn chunk(id: u32) -> BinaryChunk {
        BinaryChunk {
            id: ChunkId(id),
            first_row: id as u64 * 3,
            rows: 3,
            columns: vec![
                Some(ColumnData::Int64(vec![1 + id as i64, 2, 3])),
                Some(ColumnData::Utf8(vec!["a".into(), "bb".into(), "".into()])),
                None,
            ],
        }
    }

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("i", DataType::Int64),
            Field::new("s", DataType::Utf8),
            Field::new("f", DataType::Float64),
        ])
        .unwrap()
    }

    #[test]
    fn store_and_load_roundtrip() {
        let store = ColumnStore::new(SimDisk::instant());
        let c = chunk(0);
        let written = store.store_chunk("t", &c).unwrap();
        assert_eq!(written, vec![0, 1]);
        let back = store
            .load_chunk("t", &schema(), ChunkId(0), 0, &[0, 1])
            .unwrap();
        assert_eq!(back.column(0), c.column(0));
        assert_eq!(back.column(1), c.column(1));
        assert_eq!(back.rows, 3);
    }

    #[test]
    fn partial_load() {
        let store = ColumnStore::new(SimDisk::instant());
        store.store_chunk("t", &chunk(0)).unwrap();
        let back = store
            .load_chunk("t", &schema(), ChunkId(0), 0, &[1])
            .unwrap();
        assert!(back.column(0).is_none());
        assert!(back.column(1).is_some());
    }

    #[test]
    fn duplicate_store_is_idempotent() {
        let store = ColumnStore::new(SimDisk::instant());
        let first = store.store_chunk("t", &chunk(0)).unwrap();
        assert_eq!(first.len(), 2);
        let second = store.store_chunk("t", &chunk(0)).unwrap();
        assert!(second.is_empty(), "already-stored columns are skipped");
    }

    #[test]
    fn missing_chunk_is_error() {
        let store = ColumnStore::new(SimDisk::instant());
        assert!(store
            .load_chunk("t", &schema(), ChunkId(9), 0, &[0])
            .is_err());
    }

    #[test]
    fn multiple_chunks_per_column_file() {
        let store = ColumnStore::new(SimDisk::instant());
        for i in 0..4 {
            store.store_chunk("t", &chunk(i)).unwrap();
        }
        for i in 0..4 {
            let back = store
                .load_chunk("t", &schema(), ChunkId(i), 0, &[0])
                .unwrap();
            match back.column(0).unwrap() {
                ColumnData::Int64(v) => assert_eq!(v[0], 1 + i as i64),
                _ => panic!("wrong type"),
            }
        }
    }

    #[test]
    fn tables_are_isolated() {
        let store = ColumnStore::new(SimDisk::instant());
        store.store_chunk("t1", &chunk(0)).unwrap();
        assert!(store.has("t1", 0, ChunkId(0)));
        assert!(!store.has("t2", 0, ChunkId(0)));
        assert!(store
            .load_chunk("t2", &schema(), ChunkId(0), 0, &[0])
            .is_err());
    }

    #[test]
    fn stored_bytes_accounting() {
        let store = ColumnStore::new(SimDisk::instant());
        store.store_chunk("t", &chunk(0)).unwrap();
        // 3 i64 = 24 bytes, strings = (4+1)+(4+2)+(4+0) = 15.
        assert_eq!(store.stored_bytes("t"), 39);
        assert_eq!(store.stored_bytes("other"), 0);
    }

    #[test]
    fn float_roundtrip() {
        let store = ColumnStore::new(SimDisk::instant());
        let c = BinaryChunk {
            id: ChunkId(0),
            first_row: 0,
            rows: 2,
            columns: vec![None, None, Some(ColumnData::Float64(vec![1.5, -0.25]))],
        };
        store.store_chunk("t", &c).unwrap();
        let back = store
            .load_chunk("t", &schema(), ChunkId(0), 0, &[2])
            .unwrap();
        assert_eq!(back.column(2), c.column(2));
    }
}
