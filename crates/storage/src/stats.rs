//! Advanced per-chunk statistics (paper §3.3).
//!
//! Beyond the min/max bounds used for chunk skipping, "more advanced
//! statistics such as the number of distinct elements and the skew of an
//! attribute — or even samples — can be also extracted during the conversion
//! stage", and "the second use case for statistics is cardinality estimation
//! for traditional query optimization". This module provides both:
//!
//! * [`DistinctSketch`] — an exact distinct counter up to a budget, degrading
//!   to a linear-probabilistic estimate beyond it (hash space fill rate);
//! * [`ColumnSample`] — a fixed-size reservoir sample per column;
//! * selectivity estimation for range predicates from bounds + samples.

use scanraw_types::{ColumnData, RangePredicate, Value};
use std::collections::HashSet;
use std::hash::{Hash, Hasher};

/// Budget of exact distinct tracking per (chunk, column).
pub const DISTINCT_BUDGET: usize = 256;
/// Reservoir sample size per (chunk, column).
pub const SAMPLE_SIZE: usize = 16;

/// Distinct-count sketch: exact while small, estimated once saturated.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DistinctSketch {
    /// Exact set of value hashes while below budget.
    seen: HashSet<u64>,
    /// Values observed in total.
    observed: u64,
    /// Set once the budget was exceeded.
    saturated: bool,
}

fn value_hash(v: &Value) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

impl DistinctSketch {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn observe(&mut self, v: &Value) {
        self.observed += 1;
        if self.seen.len() < DISTINCT_BUDGET {
            self.seen.insert(value_hash(v));
        } else if !self.saturated {
            // One last membership check; beyond this, only the flag remains.
            if !self.seen.contains(&value_hash(v)) {
                self.saturated = true;
            }
        }
    }

    /// Estimated distinct count.
    ///
    /// Exact below the budget. Saturated sketches fall back to a conservative
    /// "at least budget" estimate scaled by the observation count under a
    /// uniformity assumption (birthday-style correction is overkill for
    /// chunk-local planning).
    pub fn estimate(&self) -> u64 {
        if !self.saturated {
            self.seen.len() as u64
        } else {
            // At least the budget; guess proportional growth, capped by the
            // number of observations.
            (self.observed / 2).max(DISTINCT_BUDGET as u64)
        }
    }

    /// True when the estimate is exact.
    pub fn is_exact(&self) -> bool {
        !self.saturated
    }

    pub fn observed(&self) -> u64 {
        self.observed
    }
}

/// Deterministic fixed-size sample of a column (first-k policy: chunk data
/// is converted once, in order, so first-k over a chunk is an unbiased
/// sample of *that chunk*).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ColumnSample {
    values: Vec<Value>,
}

impl ColumnSample {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn observe(&mut self, v: &Value) {
        if self.values.len() < SAMPLE_SIZE {
            self.values.push(v.clone());
        }
    }

    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Fraction of sampled values satisfying the predicate (None when
    /// nothing was sampled).
    pub fn selectivity(&self, pred: &RangePredicate) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        let hits = self.values.iter().filter(|v| pred.contains(v)).count();
        Some(hits as f64 / self.values.len() as f64)
    }
}

/// Full advanced statistics of one column within one chunk.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ColumnDetail {
    pub distinct: DistinctSketch,
    pub sample: ColumnSample,
}

impl ColumnDetail {
    /// Absorbs an entire column of a converted chunk.
    pub fn absorb(&mut self, col: &ColumnData) {
        for i in 0..col.len() {
            if let Some(v) = col.value(i) {
                self.distinct.observe(&v);
                self.sample.observe(&v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_exact_below_budget() {
        let mut d = DistinctSketch::new();
        for i in 0..100i64 {
            d.observe(&Value::Int(i % 10));
        }
        assert_eq!(d.estimate(), 10);
        assert!(d.is_exact());
        assert_eq!(d.observed(), 100);
    }

    #[test]
    fn distinct_saturates_gracefully() {
        let mut d = DistinctSketch::new();
        for i in 0..10_000i64 {
            d.observe(&Value::Int(i));
        }
        assert!(!d.is_exact());
        assert!(d.estimate() >= DISTINCT_BUDGET as u64);
        assert!(d.estimate() <= 10_000);
    }

    #[test]
    fn sample_is_bounded_and_estimates_selectivity() {
        let mut s = ColumnSample::new();
        for i in 0..100i64 {
            s.observe(&Value::Int(i));
        }
        assert_eq!(s.values().len(), SAMPLE_SIZE);
        // First 16 values are 0..15; predicate 0..=7 matches half.
        let p = RangePredicate::between(0, Value::Int(0), Value::Int(7));
        assert_eq!(s.selectivity(&p), Some(0.5));
        let empty = ColumnSample::new();
        assert_eq!(empty.selectivity(&p), None);
    }

    #[test]
    fn column_detail_absorbs_whole_column() {
        let mut d = ColumnDetail::default();
        d.absorb(&ColumnData::Int64(vec![1, 1, 2, 3]));
        assert_eq!(d.distinct.estimate(), 3);
        assert_eq!(d.sample.values().len(), 4);
    }

    #[test]
    fn string_values_hash_distinctly() {
        let mut d = DistinctSketch::new();
        for s in ["100M", "50M2I48M", "100M", "10S90M"] {
            d.observe(&Value::from(s));
        }
        assert_eq!(d.estimate(), 3);
    }
}
