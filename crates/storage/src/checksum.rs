//! CRC-32 (IEEE 802.3 polynomial) for stored column runs.
//!
//! Every run appended to the column store is checksummed at write time; the
//! checksum travels in the run's commit record and is re-verified on every
//! cache-miss read and during crash recovery (DESIGN.md §10). Bitwise
//! implementation — run sizes in this workspace are test-scale, so a lookup
//! table would buy nothing.

/// CRC-32 of `bytes` (reflected, polynomial 0xEDB88320, init/xorout all-ones
/// — the common `cksum`/zlib variant).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard test vectors for the zlib/IEEE CRC-32.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b"hello"), 0x3610_a686);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let base = vec![0u8; 64];
        let reference = crc32(&base);
        for byte in 0..64 {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "byte {byte} bit {bit}");
            }
        }
    }

    #[test]
    fn truncation_changes_crc() {
        let data: Vec<u8> = (0..=255u8).collect();
        assert_ne!(crc32(&data), crc32(&data[..255]));
    }
}
