//! Database façade: catalog + column store over one shared device.

use crate::catalog::Catalog;
use crate::colstore::ColumnStore;
use scanraw_simio::SimDisk;
use scanraw_types::{BinaryChunk, ChunkId, Error, Result, Schema};

/// The database ScanRaw integrates with.
///
/// WRITE calls [`Database::store_chunk`]; READ calls
/// [`Database::load_chunk`] for chunks whose columns are already inside the
/// database. Both update/consult the catalog so the two sides stay
/// consistent ("it also updates the catalog metadata accordingly", §3.2.1).
#[derive(Clone)]
pub struct Database {
    catalog: Catalog,
    store: ColumnStore,
}

impl Database {
    pub fn new(disk: SimDisk) -> Self {
        Database {
            catalog: Catalog::new(),
            store: ColumnStore::new(disk),
        }
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn store(&self) -> &ColumnStore {
        &self.store
    }

    pub fn disk(&self) -> &SimDisk {
        self.store.disk()
    }

    /// Registers a raw-file-backed table.
    pub fn create_table(
        &self,
        name: impl Into<String>,
        schema: Schema,
        raw_file: impl Into<String>,
    ) -> Result<()> {
        self.catalog.create_table(name, schema, raw_file)
    }

    /// Persists a converted chunk (all present columns) and updates the
    /// catalog. Returns the columns newly written.
    pub fn store_chunk(&self, table: &str, chunk: &BinaryChunk) -> Result<Vec<usize>> {
        let written = self.store.store_chunk(table, chunk)?;
        if !written.is_empty() {
            self.catalog.mark_loaded(table, chunk.id, &written)?;
        }
        Ok(written)
    }

    /// Loads the requested columns of a chunk from the store, verifying the
    /// catalog agrees they are available.
    pub fn load_chunk(&self, table: &str, id: ChunkId, cols: &[usize]) -> Result<BinaryChunk> {
        let entry = self.catalog.table(table)?;
        let (schema, first_row, ok) = {
            let t = entry.read();
            let first_row = t
                .layout()
                .and_then(|l| l.get(id))
                .map(|m| m.first_row)
                .unwrap_or(0);
            (t.schema.clone(), first_row, t.is_loaded(id, cols))
        };
        if !ok {
            return Err(Error::storage(format!(
                "catalog says {id} of '{table}' lacks requested columns"
            )));
        }
        self.store.load_chunk(table, &schema, id, first_row, cols)
    }

    /// Which of `cols` are loaded for chunk `id`.
    pub fn loaded_columns(&self, table: &str, id: ChunkId, cols: &[usize]) -> Result<Vec<usize>> {
        let entry = self.catalog.table(table)?;
        let t = entry.read();
        Ok(t.loaded_columns(id, cols))
    }

    /// True when every chunk/column of the table is stored.
    pub fn fully_loaded(&self, table: &str) -> Result<bool> {
        let entry = self.catalog.table(table)?;
        let loaded = entry.read().fully_loaded();
        Ok(loaded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanraw_types::{ChunkLayout, ChunkMeta, ColumnData};

    fn db() -> Database {
        let db = Database::new(SimDisk::instant());
        db.create_table("t", Schema::uniform_ints(2), "t.csv")
            .unwrap();
        db
    }

    fn chunk(id: u32, full: bool) -> BinaryChunk {
        BinaryChunk {
            id: ChunkId(id),
            first_row: id as u64 * 2,
            rows: 2,
            columns: vec![
                Some(ColumnData::Int64(vec![id as i64, 1])),
                if full {
                    Some(ColumnData::Int64(vec![10, 11]))
                } else {
                    None
                },
            ],
        }
    }

    #[test]
    fn store_updates_catalog() {
        let db = db();
        db.store_chunk("t", &chunk(0, false)).unwrap();
        assert_eq!(
            db.loaded_columns("t", ChunkId(0), &[0, 1]).unwrap(),
            vec![0]
        );
        let back = db.load_chunk("t", ChunkId(0), &[0]).unwrap();
        assert_eq!(back.column(0), chunk(0, false).column(0));
    }

    #[test]
    fn loading_unstored_columns_fails_via_catalog() {
        let db = db();
        db.store_chunk("t", &chunk(0, false)).unwrap();
        assert!(db.load_chunk("t", ChunkId(0), &[1]).is_err());
    }

    #[test]
    fn fully_loaded_lifecycle() {
        let db = db();
        let mut layout = ChunkLayout::default();
        for i in 0..2u32 {
            layout.push(ChunkMeta {
                id: ChunkId(i),
                file_offset: i as u64 * 8,
                byte_len: 8,
                first_row: i as u64 * 2,
                rows: 2,
            });
        }
        db.catalog().set_layout("t", layout).unwrap();
        assert!(!db.fully_loaded("t").unwrap());
        db.store_chunk("t", &chunk(0, true)).unwrap();
        assert!(!db.fully_loaded("t").unwrap());
        db.store_chunk("t", &chunk(1, true)).unwrap();
        assert!(db.fully_loaded("t").unwrap());
    }

    #[test]
    fn load_uses_layout_first_row() {
        let db = db();
        let mut layout = ChunkLayout::default();
        layout.push(ChunkMeta {
            id: ChunkId(0),
            file_offset: 0,
            byte_len: 8,
            first_row: 0,
            rows: 2,
        });
        layout.push(ChunkMeta {
            id: ChunkId(1),
            file_offset: 8,
            byte_len: 8,
            first_row: 2,
            rows: 2,
        });
        db.catalog().set_layout("t", layout).unwrap();
        db.store_chunk("t", &chunk(1, true)).unwrap();
        let back = db.load_chunk("t", ChunkId(1), &[0, 1]).unwrap();
        assert_eq!(back.first_row, 2);
    }

    #[test]
    fn incremental_column_loading() {
        let db = db();
        db.store_chunk("t", &chunk(0, false)).unwrap();
        db.store_chunk("t", &chunk(0, true)).unwrap(); // adds column 1 only
        let back = db.load_chunk("t", ChunkId(0), &[0, 1]).unwrap();
        assert!(back.covers(&[0, 1]));
    }
}
