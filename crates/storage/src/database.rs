//! Database façade: catalog + column store over one shared device.

use crate::catalog::Catalog;
use crate::colstore::ColumnStore;
use scanraw_simio::SimDisk;
use scanraw_types::{BinaryChunk, ChunkId, Error, Result, Schema};

/// What [`Database::recover_table`] found after a crash/restart.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// (chunk, column) cells restored and re-marked loaded in the catalog.
    pub committed_cells: usize,
    /// Commit records whose payload was missing, short, or failed its CRC.
    pub dropped_corrupt: usize,
    /// Unparseable commit records (torn tail, garbage).
    pub dropped_malformed: usize,
}

/// The database ScanRaw integrates with.
///
/// WRITE calls [`Database::store_chunk`]; READ calls
/// [`Database::load_chunk`] for chunks whose columns are already inside the
/// database. Both update/consult the catalog so the two sides stay
/// consistent ("it also updates the catalog metadata accordingly", §3.2.1).
#[derive(Clone)]
pub struct Database {
    catalog: Catalog,
    store: ColumnStore,
}

impl Database {
    pub fn new(disk: SimDisk) -> Self {
        Database {
            catalog: Catalog::new(),
            store: ColumnStore::new(disk),
        }
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn store(&self) -> &ColumnStore {
        &self.store
    }

    pub fn disk(&self) -> &SimDisk {
        self.store.disk()
    }

    /// Registers a raw-file-backed table.
    pub fn create_table(
        &self,
        name: impl Into<String>,
        schema: Schema,
        raw_file: impl Into<String>,
    ) -> Result<()> {
        self.catalog.create_table(name, schema, raw_file)
    }

    /// Persists a converted chunk (all present columns) and updates the
    /// catalog. Returns the columns newly written.
    ///
    /// On a device error the catalog is still updated for the columns that
    /// committed *before* the failure — that work is durable — while the
    /// failed column is never marked, so a failed safeguard flush cannot
    /// leave a lying loaded bit.
    ///
    /// # Errors
    ///
    /// Propagates the first device error the store hit; partial progress is
    /// already reflected in the catalog when it surfaces.
    pub fn store_chunk(&self, table: &str, chunk: &BinaryChunk) -> Result<Vec<usize>> {
        let (written, err) = self.store.store_chunk_partial(table, chunk);
        if !written.is_empty() {
            self.catalog.mark_loaded(table, chunk.id, &written)?;
        }
        match err {
            Some(e) => Err(e),
            None => Ok(written),
        }
    }

    /// Column-granular store: persists only the named (chunk, column) cells
    /// and marks exactly the durably committed ones in the catalog. The
    /// partial-progress contract of [`store_chunk`] holds per cell — a torn
    /// write may lose a column cell but never produces a half-loaded cell
    /// marked loaded.
    ///
    /// # Errors
    ///
    /// Propagates the first device error the store hit; partial progress is
    /// already reflected in the catalog when it surfaces.
    ///
    /// [`store_chunk`]: Database::store_chunk
    pub fn store_chunk_cols(
        &self,
        table: &str,
        chunk: &BinaryChunk,
        cols: &[usize],
    ) -> Result<Vec<usize>> {
        let (written, err) = self.store.store_chunk_cols_partial(table, chunk, cols);
        if !written.is_empty() {
            self.catalog.mark_loaded(table, chunk.id, &written)?;
        }
        match err {
            Some(e) => Err(e),
            None => Ok(written),
        }
    }

    /// Rebuilds a table's store index and catalog loaded-bitmap from its
    /// commit log after a simulated crash. Creates the table entry if this
    /// `Database` is fresh (the usual restart case). Only runs whose payload
    /// passes its checksum are re-marked loaded; uncommitted or corrupt runs
    /// are dropped and counted.
    ///
    /// # Errors
    ///
    /// Fails when the catalog rejects the table/columns (metadata-level
    /// corruption) or the commit log itself cannot be read.
    pub fn recover_table(
        &self,
        table: &str,
        schema: Schema,
        raw_file: &str,
    ) -> Result<RecoveryReport> {
        if self.catalog.table(table).is_err() {
            self.catalog.create_table(table, schema.clone(), raw_file)?;
        }
        let runs = self.store.recover(table, &schema)?;
        for run in &runs.committed {
            self.catalog.mark_loaded(table, run.id, &[run.col])?;
        }
        Ok(RecoveryReport {
            committed_cells: runs.committed.len(),
            dropped_corrupt: runs.dropped_corrupt,
            dropped_malformed: runs.dropped_malformed,
        })
    }

    /// Loads the requested columns of a chunk from the store, verifying the
    /// catalog agrees they are available.
    pub fn load_chunk(&self, table: &str, id: ChunkId, cols: &[usize]) -> Result<BinaryChunk> {
        let entry = self.catalog.table(table)?;
        let (schema, first_row, ok) = {
            let t = entry.read();
            let first_row = t
                .layout()
                .and_then(|l| l.get(id))
                .map(|m| m.first_row)
                .unwrap_or(0);
            (t.schema.clone(), first_row, t.is_loaded(id, cols))
        };
        if !ok {
            return Err(Error::storage(format!(
                "catalog says {id} of '{table}' lacks requested columns"
            )));
        }
        self.store.load_chunk(table, &schema, id, first_row, cols)
    }

    /// Which of `cols` are loaded for chunk `id`.
    pub fn loaded_columns(&self, table: &str, id: ChunkId, cols: &[usize]) -> Result<Vec<usize>> {
        let entry = self.catalog.table(table)?;
        let t = entry.read();
        Ok(t.loaded_columns(id, cols))
    }

    /// True when every chunk/column of the table is stored.
    pub fn fully_loaded(&self, table: &str) -> Result<bool> {
        let entry = self.catalog.table(table)?;
        let loaded = entry.read().fully_loaded();
        Ok(loaded)
    }

    /// True when every chunk of a known layout has every cell of `cols`
    /// stored — column-granular completeness over the registered column set.
    pub fn fully_loaded_for(&self, table: &str, cols: &[usize]) -> Result<bool> {
        let entry = self.catalog.table(table)?;
        let loaded = entry.read().fully_loaded_for(cols);
        Ok(loaded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanraw_types::{ChunkLayout, ChunkMeta, ColumnData};

    fn db() -> Database {
        let db = Database::new(SimDisk::instant());
        db.create_table("t", Schema::uniform_ints(2), "t.csv")
            .unwrap();
        db
    }

    fn chunk(id: u32, full: bool) -> BinaryChunk {
        BinaryChunk {
            id: ChunkId(id),
            first_row: id as u64 * 2,
            rows: 2,
            columns: vec![
                Some(ColumnData::Int64(vec![id as i64, 1])),
                if full {
                    Some(ColumnData::Int64(vec![10, 11]))
                } else {
                    None
                },
            ],
        }
    }

    #[test]
    fn store_updates_catalog() {
        let db = db();
        db.store_chunk("t", &chunk(0, false)).unwrap();
        assert_eq!(
            db.loaded_columns("t", ChunkId(0), &[0, 1]).unwrap(),
            vec![0]
        );
        let back = db.load_chunk("t", ChunkId(0), &[0]).unwrap();
        assert_eq!(back.column(0), chunk(0, false).column(0));
    }

    #[test]
    fn loading_unstored_columns_fails_via_catalog() {
        let db = db();
        db.store_chunk("t", &chunk(0, false)).unwrap();
        assert!(db.load_chunk("t", ChunkId(0), &[1]).is_err());
    }

    #[test]
    fn fully_loaded_lifecycle() {
        let db = db();
        let mut layout = ChunkLayout::default();
        for i in 0..2u32 {
            layout.push(ChunkMeta {
                id: ChunkId(i),
                file_offset: i as u64 * 8,
                byte_len: 8,
                first_row: i as u64 * 2,
                rows: 2,
            });
        }
        db.catalog().set_layout("t", layout).unwrap();
        assert!(!db.fully_loaded("t").unwrap());
        db.store_chunk("t", &chunk(0, true)).unwrap();
        assert!(!db.fully_loaded("t").unwrap());
        db.store_chunk("t", &chunk(1, true)).unwrap();
        assert!(db.fully_loaded("t").unwrap());
    }

    #[test]
    fn load_uses_layout_first_row() {
        let db = db();
        let mut layout = ChunkLayout::default();
        layout.push(ChunkMeta {
            id: ChunkId(0),
            file_offset: 0,
            byte_len: 8,
            first_row: 0,
            rows: 2,
        });
        layout.push(ChunkMeta {
            id: ChunkId(1),
            file_offset: 8,
            byte_len: 8,
            first_row: 2,
            rows: 2,
        });
        db.catalog().set_layout("t", layout).unwrap();
        db.store_chunk("t", &chunk(1, true)).unwrap();
        let back = db.load_chunk("t", ChunkId(1), &[0, 1]).unwrap();
        assert_eq!(back.first_row, 2);
    }

    #[test]
    fn incremental_column_loading() {
        let db = db();
        db.store_chunk("t", &chunk(0, false)).unwrap();
        db.store_chunk("t", &chunk(0, true)).unwrap(); // adds column 1 only
        let back = db.load_chunk("t", ChunkId(0), &[0, 1]).unwrap();
        assert!(back.covers(&[0, 1]));
    }

    // Regression (ISSUE 3 satellite): a failed flush must never mark the
    // failed chunk/column loaded in the catalog — only durably committed
    // columns may be marked.
    #[test]
    fn failed_flush_marks_nothing_phantom() {
        use scanraw_simio::{FaultConfig, FaultPlan};
        let db = db();
        // Every db/ write fails permanently from the first op on.
        db.disk().set_fault_plan(FaultPlan::new(FaultConfig {
            target: "db/".into(),
            permanent_after: Some(0),
            ..FaultConfig::seeded(1)
        }));
        let err = db.store_chunk("t", &chunk(0, true)).unwrap_err();
        assert!(!err.is_retryable());
        assert!(
            db.loaded_columns("t", ChunkId(0), &[0, 1])
                .unwrap()
                .is_empty(),
            "failed flush must not mark any column loaded"
        );
        db.disk().clear_fault_plan();
        // The flush can be retried wholesale afterwards.
        db.store_chunk("t", &chunk(0, true)).unwrap();
        assert_eq!(
            db.loaded_columns("t", ChunkId(0), &[0, 1]).unwrap(),
            vec![0, 1]
        );
    }

    #[test]
    fn partially_failed_flush_marks_only_committed_columns() {
        use scanraw_simio::{FaultConfig, FaultPlan};
        let db = db();
        // Column 0 needs a payload append + a commit append (2 matching db/
        // ops); fail permanently from the third matching op, killing col 1.
        db.disk().set_fault_plan(FaultPlan::new(FaultConfig {
            target: "db/".into(),
            permanent_after: Some(2),
            ..FaultConfig::seeded(1)
        }));
        let err = db.store_chunk("t", &chunk(0, true)).unwrap_err();
        assert!(!err.is_retryable());
        assert_eq!(
            db.loaded_columns("t", ChunkId(0), &[0, 1]).unwrap(),
            vec![0],
            "durable column stays marked, failed column must not be"
        );
        db.disk().clear_fault_plan();
        // Column 0 survives on disk: a fresh database recovers exactly it.
        let fresh = Database::new(db.disk().clone());
        let report = fresh
            .recover_table("t", Schema::uniform_ints(2), "t.csv")
            .unwrap();
        assert_eq!(report.committed_cells, 1);
        assert_eq!(
            fresh.loaded_columns("t", ChunkId(0), &[0, 1]).unwrap(),
            vec![0]
        );
    }

    #[test]
    fn recover_table_restores_catalog_and_data() {
        let db = db();
        db.store_chunk("t", &chunk(0, true)).unwrap();
        db.store_chunk("t", &chunk(1, true)).unwrap();
        let fresh = Database::new(db.disk().clone());
        let report = fresh
            .recover_table("t", Schema::uniform_ints(2), "t.csv")
            .unwrap();
        assert_eq!(report.committed_cells, 4);
        assert_eq!(report.dropped_corrupt, 0);
        assert_eq!(report.dropped_malformed, 0);
        let back = fresh.load_chunk("t", ChunkId(1), &[0, 1]).unwrap();
        assert_eq!(back.column(0), chunk(1, true).column(0));
        let entry = fresh.catalog().table("t").unwrap();
        assert_eq!(entry.read().loaded_cell_count(), 4);
    }

    #[test]
    fn recover_table_on_existing_entry_is_additive() {
        let db = db();
        db.store_chunk("t", &chunk(0, true)).unwrap();
        // Recover into the same (still-live) database: idempotent because
        // already-indexed runs are skipped.
        let report = db
            .recover_table("t", Schema::uniform_ints(2), "t.csv")
            .unwrap();
        assert_eq!(report.committed_cells, 0, "live runs are not re-committed");
        let entry = db.catalog().table("t").unwrap();
        assert_eq!(entry.read().loaded_cell_count(), 2);
    }
}
