//! TOKENIZE: locate attribute boundaries within a text chunk.
//!
//! "Taking a text line corresponding to a tuple as input, TOKENIZE is
//! responsible for identifying the attributes of the tuple. The output is a
//! vector containing the starting position for every attribute" (paper §2).
//!
//! Two variants are provided:
//!
//! * [`tokenize_chunk`] — full positional map over all `n_cols` attributes;
//! * [`tokenize_chunk_selective`] — *selective tokenizing* (paper §2, citing
//!   NoDB): the per-line scan stops at the end of the last attribute that will
//!   be converted, producing a partial map; PARSE scans forward from the
//!   closest mapped attribute for anything beyond the prefix.

use crate::dialect::TextDialect;
use scanraw_types::{Error, PositionalMap, Result, TextChunk};

/// Builds a full positional map of the first `n_cols` attributes per line.
pub fn tokenize_chunk(
    chunk: &TextChunk,
    dialect: TextDialect,
    n_cols: usize,
) -> Result<PositionalMap> {
    tokenize_chunk_selective(chunk, dialect, n_cols, n_cols)
}

/// Builds a partial positional map with the first `cols_mapped` of `n_cols`
/// attribute starts per line.
///
/// `cols_mapped` must be at least 1 and at most `n_cols`. Lines with fewer
/// than `cols_mapped` attributes are an error (malformed input).
pub fn tokenize_chunk_selective(
    chunk: &TextChunk,
    dialect: TextDialect,
    n_cols: usize,
    cols_mapped: usize,
) -> Result<PositionalMap> {
    if cols_mapped == 0 || cols_mapped > n_cols {
        return Err(Error::Config(format!(
            "cols_mapped must be in 1..={n_cols}, got {cols_mapped}"
        )));
    }
    let data = &chunk.data[..];
    let rows = chunk.rows as usize;
    let delim = dialect.delimiter;

    let mut line_starts: Vec<u32> = Vec::with_capacity(rows + 1);
    let mut attr_starts: Vec<u32> = Vec::with_capacity(rows * cols_mapped);

    let mut pos = 0usize;
    for row in 0..rows {
        line_starts.push(pos as u32);
        // Attribute 0 starts at the line start.
        attr_starts.push(pos as u32);
        let mut found = 1usize;
        // Selective scan: stop splitting once the prefix is mapped.
        while found < cols_mapped {
            match scan_until(data, pos, delim) {
                ScanHit::Delim(at) => {
                    attr_starts.push((at + 1) as u32);
                    pos = at + 1;
                    found += 1;
                }
                ScanHit::LineEnd | ScanHit::Eof => {
                    return Err(Error::Tokenize {
                        line: chunk.first_row + row as u64,
                        message: format!(
                            "expected at least {cols_mapped} attributes, found {found}"
                        ),
                    });
                }
            }
        }
        // Skip the remainder of the line looking only for the newline.
        pos = match find_newline(data, pos) {
            Some(nl) => nl + 1,
            None => data.len(), // last line without trailing newline
        };
    }
    line_starts.push(pos as u32);
    if pos != data.len() {
        return Err(Error::Tokenize {
            line: chunk.first_row + rows as u64,
            message: format!(
                "chunk declares {rows} rows but {} bytes remain",
                data.len() - pos
            ),
        });
    }
    PositionalMap::new(chunk.rows, cols_mapped as u32, line_starts, attr_starts)
}

enum ScanHit {
    /// Delimiter at this index.
    Delim(usize),
    /// Newline encountered before a delimiter.
    LineEnd,
    Eof,
}

/// Scans from `from` for the next delimiter, stopping at a newline.
fn scan_until(data: &[u8], from: usize, delim: u8) -> ScanHit {
    for (i, &b) in data[from..].iter().enumerate() {
        if b == delim {
            return ScanHit::Delim(from + i);
        }
        if b == b'\n' {
            return ScanHit::LineEnd;
        }
    }
    ScanHit::Eof
}

fn find_newline(data: &[u8], from: usize) -> Option<usize> {
    data[from..]
        .iter()
        .position(|&b| b == b'\n')
        .map(|i| from + i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use scanraw_types::ChunkId;

    fn chunk(text: &str, rows: u32) -> TextChunk {
        TextChunk {
            id: ChunkId(0),
            file_offset: 0,
            first_row: 0,
            rows,
            data: Bytes::from(text.as_bytes().to_vec()),
        }
    }

    #[test]
    fn full_map_positions() {
        let c = chunk("10,200,3\n4,55,666\n", 2);
        let m = tokenize_chunk(&c, TextDialect::CSV, 3).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols_mapped(), 3);
        // Line 0: "10,200,3\n" → starts 0, 3, 7.
        assert_eq!(m.attr_start(0, 0), Some(0));
        assert_eq!(m.attr_start(0, 1), Some(3));
        assert_eq!(m.attr_start(0, 2), Some(7));
        // Line 1 begins at byte 9: "4,55,666\n" → 9, 11, 14.
        assert_eq!(m.attr_start(1, 0), Some(9));
        assert_eq!(m.attr_start(1, 1), Some(11));
        assert_eq!(m.attr_start(1, 2), Some(14));
        assert_eq!(m.line_span(0), (0, 9));
        assert_eq!(m.line_span(1), (9, 18));
    }

    #[test]
    fn selective_map_stops_early() {
        let c = chunk("1,2,3,4,5\n6,7,8,9,10\n", 2);
        let m = tokenize_chunk_selective(&c, TextDialect::CSV, 5, 2).unwrap();
        assert_eq!(m.cols_mapped(), 2);
        assert_eq!(m.attr_start(0, 0), Some(0));
        assert_eq!(m.attr_start(0, 1), Some(2));
        assert_eq!(m.attr_start(0, 2), None);
        // Line spans are still complete.
        assert_eq!(m.line_span(1), (10, 21));
    }

    #[test]
    fn too_few_attributes_is_error() {
        let c = chunk("1,2\n", 1);
        let err = tokenize_chunk(&c, TextDialect::CSV, 3).unwrap_err();
        assert!(matches!(err, Error::Tokenize { .. }));
    }

    #[test]
    fn row_count_mismatch_detected() {
        let c = chunk("1\n2\n3\n", 2); // declares 2 rows, has 3
        let err = tokenize_chunk(&c, TextDialect::CSV, 1).unwrap_err();
        assert!(matches!(err, Error::Tokenize { .. }));
    }

    #[test]
    fn unterminated_last_line() {
        let c = chunk("1,2\n3,4", 2);
        let m = tokenize_chunk(&c, TextDialect::CSV, 2).unwrap();
        assert_eq!(m.line_span(1), (4, 7));
        assert_eq!(m.attr_start(1, 1), Some(6));
    }

    #[test]
    fn tab_dialect() {
        let c = chunk("a\tb\nc\td\n", 2);
        let m = tokenize_chunk(&c, TextDialect::TSV, 2).unwrap();
        assert_eq!(m.attr_start(0, 1), Some(2));
        assert_eq!(m.attr_start(1, 1), Some(6));
    }

    #[test]
    fn cols_mapped_bounds_checked() {
        let c = chunk("1,2\n", 1);
        assert!(tokenize_chunk_selective(&c, TextDialect::CSV, 2, 0).is_err());
        assert!(tokenize_chunk_selective(&c, TextDialect::CSV, 2, 3).is_err());
    }

    #[test]
    fn single_column_lines() {
        let c = chunk("alpha\nbeta\n", 2);
        let m = tokenize_chunk(&c, TextDialect::CSV, 1).unwrap();
        assert_eq!(m.attr_start(0, 0), Some(0));
        assert_eq!(m.attr_start(1, 0), Some(6));
    }

    #[test]
    fn empty_fields_are_positions_too() {
        let c = chunk(",,\n", 1);
        let m = tokenize_chunk(&c, TextDialect::CSV, 3).unwrap();
        assert_eq!(m.attr_start(0, 0), Some(0));
        assert_eq!(m.attr_start(0, 1), Some(1));
        assert_eq!(m.attr_start(0, 2), Some(2));
    }
}
