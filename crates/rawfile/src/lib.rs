//! Raw-file access and conversion stages for ScanRaw.
//!
//! Implements the generic raw-file query-processing decomposition of paper §2:
//!
//! * [`chunker`] — READ support: splits a flat file into line-aligned chunks
//!   (the paper's reading/processing unit) while streaming from the device;
//! * [`tokenize`] — TOKENIZE: positional maps, full and selective;
//! * [`parse`] — PARSE(+MAP): typed conversion into columnar [`BinaryChunk`]s,
//!   with selective parsing and optional push-down selection;
//! * [`dialect`] — delimiter configuration (CSV, TSV/SAM);
//! * [`generate`] — synthetic data generators (the paper's micro-benchmark
//!   suite: 2^20–2^28 rows × 2–256 integer columns);
//! * [`sam`] — the SAM genomic format: schema, record model, generator;
//! * [`bamsim`] — a compressed binary container with a deliberately
//!   *sequential* reader library, standing in for BAM + BAMTools (Table 1).
//!
//! [`BinaryChunk`]: scanraw_types::BinaryChunk

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
pub mod bamsim;
pub mod chunker;
pub mod dialect;
pub mod generate;
pub mod parse;
pub mod sam;
pub mod tokenize;

pub use chunker::ChunkReader;
pub use dialect::TextDialect;
pub use parse::{parse_chunk, parse_chunk_projected, RowFilter};
pub use scanraw_types::{ChunkLayout, ChunkMeta};
pub use tokenize::{tokenize_chunk, tokenize_chunk_selective};
