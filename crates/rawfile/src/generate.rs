//! Synthetic data generation — the paper's micro-benchmark suite (§5.1).
//!
//! "We generate a suite of synthetic CSV files … The value in each column is
//! a randomly-generated unsigned integer smaller than 2^31." Files are staged
//! directly into [`RamStorage`](scanraw_simio::RamStorage) (generation is not part of any measured
//! experiment, so it bypasses throttling).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scanraw_simio::SimDisk;
use scanraw_types::Schema;

/// Description of one synthetic CSV file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsvSpec {
    pub rows: u64,
    pub cols: usize,
    pub seed: u64,
}

impl CsvSpec {
    pub fn new(rows: u64, cols: usize, seed: u64) -> Self {
        CsvSpec { rows, cols, seed }
    }

    /// Schema of the generated file: `cols` integer columns.
    pub fn schema(&self) -> Schema {
        Schema::uniform_ints(self.cols)
    }
}

/// Generates the CSV bytes for a spec.
///
/// Values are uniform in `[0, 2^31)` as in the paper. Deterministic per seed.
pub fn csv_bytes(spec: &CsvSpec) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    // ~10 bytes per value plus delimiter.
    let mut out = Vec::with_capacity((spec.rows as usize) * spec.cols * 11);
    let mut buf = itoa_buffer();
    for _ in 0..spec.rows {
        for c in 0..spec.cols {
            if c > 0 {
                out.push(b',');
            }
            let v: u32 = rng.gen_range(0..(1u32 << 31));
            write_u32(&mut out, v, &mut buf);
        }
        out.push(b'\n');
    }
    out
}

/// Generates and stages a CSV file on the device, returning its byte size.
pub fn stage_csv(disk: &SimDisk, name: &str, spec: &CsvSpec) -> u64 {
    let bytes = csv_bytes(spec);
    let len = bytes.len() as u64;
    disk.storage().put(name, bytes);
    len
}

/// Sums of every column, computed independently of the parsing pipeline.
/// Used by tests and harnesses to verify query answers end to end.
pub fn expected_column_sums(spec: &CsvSpec) -> Vec<i64> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut sums = vec![0i64; spec.cols];
    for _ in 0..spec.rows {
        for s in sums.iter_mut() {
            let v: u32 = rng.gen_range(0..(1u32 << 31));
            *s += v as i64;
        }
    }
    sums
}

fn itoa_buffer() -> [u8; 10] {
    [0u8; 10]
}

/// Appends the decimal form of `v` without allocating.
fn write_u32(out: &mut Vec<u8>, mut v: u32, buf: &mut [u8; 10]) {
    if v == 0 {
        out.push(b'0');
        return;
    }
    let mut i = buf.len();
    while v > 0 {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
    }
    out.extend_from_slice(&buf[i..]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let spec = CsvSpec::new(16, 4, 7);
        assert_eq!(csv_bytes(&spec), csv_bytes(&spec));
        let other = CsvSpec::new(16, 4, 8);
        assert_ne!(csv_bytes(&spec), csv_bytes(&other));
    }

    #[test]
    fn shape_is_rows_by_cols() {
        let spec = CsvSpec::new(5, 3, 1);
        let bytes = csv_bytes(&spec);
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        for l in lines {
            assert_eq!(l.split(',').count(), 3);
            for f in l.split(',') {
                let v: u64 = f.parse().unwrap();
                assert!(v < (1 << 31));
            }
        }
    }

    #[test]
    fn expected_sums_match_file_contents() {
        let spec = CsvSpec::new(100, 2, 42);
        let text = String::from_utf8(csv_bytes(&spec)).unwrap();
        let mut sums = vec![0i64; 2];
        for l in text.lines() {
            for (i, f) in l.split(',').enumerate() {
                sums[i] += f.parse::<i64>().unwrap();
            }
        }
        assert_eq!(sums, expected_column_sums(&spec));
    }

    #[test]
    fn stage_reports_length() {
        let d = SimDisk::instant();
        let spec = CsvSpec::new(10, 2, 3);
        let len = stage_csv(&d, "t.csv", &spec);
        assert_eq!(len, d.len("t.csv").unwrap());
        assert!(len > 0);
    }

    #[test]
    fn write_u32_edge_values() {
        let mut out = Vec::new();
        let mut buf = itoa_buffer();
        write_u32(&mut out, 0, &mut buf);
        out.push(b' ');
        write_u32(&mut out, u32::MAX, &mut buf);
        assert_eq!(out, b"0 4294967295");
    }
}
