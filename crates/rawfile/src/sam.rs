//! The SAM genomic alignment format (paper §1 motivating example, §5.2).
//!
//! A SAM file holds one *read* per line with 11 mandatory tab-delimited
//! fields (Li et al., Bioinformatics 2009). The paper's real-data experiment
//! computes "the distribution of the CIGAR field at positions in the genome
//! where reads exhibit a certain pattern" — a group-by aggregate with a
//! pattern-matching predicate.
//!
//! We do not have the 145 GB NA12878 file from the 1000 Genomes project, so
//! [`generate_reads`] synthesizes reads with the same shape: realistic CIGAR
//! strings, positions along a reference, flags, and quality strings. The
//! header lines (`@`-prefixed) are omitted, as the paper's tab-delimited
//! ScanRaw implementation consumes the alignment section.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scanraw_simio::SimDisk;
use scanraw_types::{DataType, Field, Schema};

/// Index of each mandatory SAM field within the schema.
pub mod field {
    pub const QNAME: usize = 0;
    pub const FLAG: usize = 1;
    pub const RNAME: usize = 2;
    pub const POS: usize = 3;
    pub const MAPQ: usize = 4;
    pub const CIGAR: usize = 5;
    pub const RNEXT: usize = 6;
    pub const PNEXT: usize = 7;
    pub const TLEN: usize = 8;
    pub const SEQ: usize = 9;
    pub const QUAL: usize = 10;
}

/// Schema of the 11 mandatory SAM fields.
pub fn sam_schema() -> Schema {
    Schema::new(vec![
        Field::new("qname", DataType::Utf8),
        Field::new("flag", DataType::Int64),
        Field::new("rname", DataType::Utf8),
        Field::new("pos", DataType::Int64),
        Field::new("mapq", DataType::Int64),
        Field::new("cigar", DataType::Utf8),
        Field::new("rnext", DataType::Utf8),
        Field::new("pnext", DataType::Int64),
        Field::new("tlen", DataType::Int64),
        Field::new("seq", DataType::Utf8),
        Field::new("qual", DataType::Utf8),
    ])
    .expect("static schema is valid")
}

/// One synthetic read, in memory (used by the BAM-sim writer too).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SamRead {
    pub qname: String,
    pub flag: i64,
    pub rname: String,
    pub pos: i64,
    pub mapq: i64,
    pub cigar: String,
    pub rnext: String,
    pub pnext: i64,
    pub tlen: i64,
    pub seq: String,
    pub qual: String,
}

impl SamRead {
    /// Serializes as one SAM line (no trailing newline).
    pub fn to_line(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            self.qname,
            self.flag,
            self.rname,
            self.pos,
            self.mapq,
            self.cigar,
            self.rnext,
            self.pnext,
            self.tlen,
            self.seq,
            self.qual
        )
    }
}

/// Parameters of the synthetic dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamSpec {
    pub reads: u64,
    pub seed: u64,
    /// Read (sequence) length; 1000 Genomes Illumina data is ~100 bp.
    pub read_len: usize,
    /// Reference length the positions are drawn from.
    pub ref_len: u64,
}

impl Default for SamSpec {
    fn default() -> Self {
        SamSpec {
            reads: 10_000,
            seed: 1,
            read_len: 100,
            ref_len: 10_000_000,
        }
    }
}

const CHROMS: [&str; 4] = ["chr1", "chr2", "chr3", "chrX"];
const BASES: [u8; 4] = [b'A', b'C', b'G', b'T'];

/// Generates `spec.reads` synthetic reads, deterministic per seed.
pub fn generate_reads(spec: &SamSpec) -> Vec<SamRead> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    (0..spec.reads)
        .map(|i| {
            let pos = rng.gen_range(1..=spec.ref_len as i64);
            let chrom = CHROMS[rng.gen_range(0..CHROMS.len())];
            let seq: String = (0..spec.read_len)
                .map(|_| BASES[rng.gen_range(0..4usize)] as char)
                .collect();
            let qual: String = (0..spec.read_len)
                .map(|_| (b'!' + rng.gen_range(0..40u8)) as char)
                .collect();
            SamRead {
                qname: format!("read.{i}"),
                flag: [0, 16, 99, 147][rng.gen_range(0..4usize)],
                rname: chrom.to_string(),
                pos,
                mapq: rng.gen_range(0..=60),
                cigar: random_cigar(&mut rng, spec.read_len),
                rnext: "=".to_string(),
                pnext: (pos + rng.gen_range(-400i64..400)).max(1),
                tlen: rng.gen_range(-600i64..600),
                seq,
                qual,
            }
        })
        .collect()
}

/// Produces a CIGAR string covering `read_len` bases.
///
/// 70% of reads are perfect matches (`{len}M`), the rest mix in insertions,
/// deletions and soft clips — the skew makes the CIGAR distribution query
/// (Table 1) meaningful.
fn random_cigar(rng: &mut StdRng, read_len: usize) -> String {
    if rng.gen_bool(0.7) {
        return format!("{read_len}M");
    }
    let mut remaining = read_len;
    let mut parts = Vec::new();
    // Leading soft clip sometimes.
    if rng.gen_bool(0.3) && remaining > 10 {
        let s = rng.gen_range(1..=10usize);
        parts.push(format!("{s}S"));
        remaining -= s;
    }
    while remaining > 0 {
        let m = rng.gen_range(1..=remaining);
        parts.push(format!("{m}M"));
        remaining -= m;
        if remaining == 0 {
            break;
        }
        match rng.gen_range(0..3) {
            0 => {
                let d = rng.gen_range(1..=5);
                parts.push(format!("{d}D")); // deletions consume no read bases
            }
            1 => {
                let i = rng.gen_range(1..=remaining.min(5));
                parts.push(format!("{i}I"));
                remaining -= i;
            }
            _ => {}
        }
    }
    parts.join("")
}

/// Serializes reads as SAM text.
pub fn sam_bytes(reads: &[SamRead]) -> Vec<u8> {
    let mut out = Vec::with_capacity(reads.len() * 256);
    for r in reads {
        out.extend_from_slice(r.to_line().as_bytes());
        out.push(b'\n');
    }
    out
}

/// Generates and stages a SAM file; returns (reads, byte length).
pub fn stage_sam(disk: &SimDisk, name: &str, spec: &SamSpec) -> (Vec<SamRead>, u64) {
    let reads = generate_reads(spec);
    let bytes = sam_bytes(&reads);
    let len = bytes.len() as u64;
    disk.storage().put(name, bytes);
    (reads, len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialect::TextDialect;
    use crate::parse::reference;

    #[test]
    fn schema_has_eleven_fields() {
        let s = sam_schema();
        assert_eq!(s.len(), 11);
        assert_eq!(s.index_of("cigar").unwrap(), field::CIGAR);
        assert_eq!(s.index_of("pos").unwrap(), field::POS);
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = SamSpec {
            reads: 32,
            ..Default::default()
        };
        assert_eq!(generate_reads(&spec), generate_reads(&spec));
    }

    #[test]
    fn lines_have_eleven_tab_fields() {
        let spec = SamSpec {
            reads: 20,
            ..Default::default()
        };
        let text = String::from_utf8(sam_bytes(&generate_reads(&spec))).unwrap();
        for line in text.lines() {
            assert_eq!(line.split('\t').count(), 11);
        }
    }

    #[test]
    fn reads_parse_under_sam_schema() {
        let spec = SamSpec {
            reads: 10,
            ..Default::default()
        };
        let reads = generate_reads(&spec);
        let text = String::from_utf8(sam_bytes(&reads)).unwrap();
        let rows = reference::parse_rows(
            &text,
            TextDialect::TSV,
            &sam_schema(),
            &[field::POS, field::CIGAR],
        )
        .unwrap();
        for (row, read) in rows.iter().zip(&reads) {
            assert_eq!(row[0].as_i64().unwrap(), read.pos);
            assert_eq!(row[1].as_str().unwrap(), read.cigar);
        }
    }

    #[test]
    fn cigars_cover_read_length() {
        // M, I, S consume read bases; D does not.
        let spec = SamSpec {
            reads: 200,
            read_len: 50,
            ..Default::default()
        };
        for r in generate_reads(&spec) {
            let mut covered = 0usize;
            let mut num = 0usize;
            for ch in r.cigar.chars() {
                if ch.is_ascii_digit() {
                    num = num * 10 + (ch as u8 - b'0') as usize;
                } else {
                    if matches!(ch, 'M' | 'I' | 'S') {
                        covered += num;
                    }
                    num = 0;
                }
            }
            assert_eq!(covered, 50, "cigar {} does not cover read", r.cigar);
        }
    }

    #[test]
    fn positions_within_reference() {
        let spec = SamSpec {
            reads: 100,
            ref_len: 1000,
            ..Default::default()
        };
        for r in generate_reads(&spec) {
            assert!(r.pos >= 1 && r.pos <= 1000);
            assert!(r.pnext >= 1);
        }
    }

    #[test]
    fn stage_sam_writes_device() {
        let d = SimDisk::instant();
        let (reads, len) = stage_sam(
            &d,
            "x.sam",
            &SamSpec {
                reads: 5,
                ..Default::default()
            },
        );
        assert_eq!(reads.len(), 5);
        assert_eq!(d.len("x.sam").unwrap(), len);
    }
}
