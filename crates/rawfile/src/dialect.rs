//! Delimiter configuration for flat text formats.

/// How attributes and records are separated in a text file.
///
/// Records are always newline (`\n`) separated; a trailing `\r` (CRLF input)
/// is stripped by the tokenizer. Only the attribute delimiter varies between
/// the formats the paper evaluates (CSV commas, SAM tabs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TextDialect {
    /// Byte separating attributes within a line.
    pub delimiter: u8,
}

impl TextDialect {
    /// Comma-separated values — the synthetic micro-benchmark suite.
    pub const CSV: TextDialect = TextDialect { delimiter: b',' };
    /// Tab-delimited — SAM files and the paper's flat-file experiments.
    pub const TSV: TextDialect = TextDialect { delimiter: b'\t' };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dialect_constants() {
        assert_eq!(TextDialect::CSV.delimiter, b',');
        assert_eq!(TextDialect::TSV.delimiter, b'\t');
    }
}
