//! PARSE (+MAP): convert attributes from text to the binary columnar
//! representation.
//!
//! "In PARSE, attributes are converted from text format into the binary
//! representation corresponding to their type" (paper §2). MAP — assembling
//! the converted values into per-column arrays — is folded into this stage,
//! exactly as in the ScanRaw architecture ("MAP is not an independent stage
//! anymore … it is contained in PARSE", §3.1).
//!
//! Optimizations implemented from the paper:
//!
//! * **selective parsing** — only projected columns are converted
//!   ([`parse_chunk_projected`]);
//! * **partial positional maps** — columns beyond the tokenized prefix are
//!   located by scanning forward from the closest mapped attribute;
//! * **push-down selection** — predicate columns parsed first, remaining
//!   columns parsed only for qualifying rows ([`parse_chunk_filtered`]).

use crate::dialect::TextDialect;
use scanraw_types::{
    BinaryChunk, ColumnData, DataType, Error, PositionalMap, Result, Schema, TextChunk, Value,
};

/// Push-down selection: a predicate over a set of columns evaluated during
/// parsing, before the remaining columns are converted (paper §2, PARSE).
pub struct RowFilter<'a> {
    /// Columns the predicate needs (parsed first).
    pub columns: &'a [usize],
    /// Returns true when the row qualifies; receives the values of
    /// `columns`, in the same order.
    pub predicate: &'a (dyn Fn(&[Value]) -> bool + Sync),
}

/// Parses every column of the schema. Equivalent to
/// [`parse_chunk_projected`] with the full projection.
pub fn parse_chunk(
    chunk: &TextChunk,
    map: &PositionalMap,
    dialect: TextDialect,
    schema: &Schema,
) -> Result<BinaryChunk> {
    let all: Vec<usize> = (0..schema.len()).collect();
    parse_chunk_projected(chunk, map, dialect, schema, &all)
}

/// Selective parsing: converts only the `projection` columns, leaving the
/// rest absent (`None`) in the produced [`BinaryChunk`].
pub fn parse_chunk_projected(
    chunk: &TextChunk,
    map: &PositionalMap,
    dialect: TextDialect,
    schema: &Schema,
    projection: &[usize],
) -> Result<BinaryChunk> {
    for &c in projection {
        if c >= schema.len() {
            return Err(Error::Schema(format!(
                "projection column {c} out of range for schema of {}",
                schema.len()
            )));
        }
    }
    let mut builders: Vec<(usize, ColumnBuilder)> = projection
        .iter()
        .map(|&c| {
            (
                c,
                ColumnBuilder::new(
                    schema.field(c).expect("checked").data_type,
                    chunk.rows as usize,
                ),
            )
        })
        .collect();

    let mut sorted: Vec<usize> = projection.to_vec();
    sorted.sort_unstable();
    sorted.dedup();

    let mut spans: Vec<(u32, u32)> = vec![(0, 0); schema.len()];
    for row in 0..chunk.rows {
        locate_row(chunk, map, dialect, schema.len(), row, &sorted, &mut spans)?;
        for (c, b) in builders.iter_mut() {
            let (s, e) = spans[*c];
            b.push(
                &chunk.data[s as usize..e as usize],
                chunk.first_row + row as u64,
                *c,
            )?;
        }
    }

    let mut out = BinaryChunk::empty(chunk.id, chunk.first_row, chunk.rows, schema.len());
    for (c, b) in builders {
        out.columns[c] = Some(b.finish());
    }
    Ok(out)
}

/// Push-down selection: parses `filter.columns`, evaluates the predicate per
/// row, and parses the remaining projected columns only for qualifying rows.
///
/// Returns the filtered chunk (only qualifying rows) and the per-chunk
/// qualifying row count. The returned chunk keeps the source `ChunkId` but
/// its `rows` is the selected count; it is intended for immediate query
/// consumption, not for loading (the paper explains the bookkeeping cost of
/// loading filtered chunks is prohibitive, §2 WRITE).
pub fn parse_chunk_filtered(
    chunk: &TextChunk,
    map: &PositionalMap,
    dialect: TextDialect,
    schema: &Schema,
    projection: &[usize],
    filter: &RowFilter<'_>,
) -> Result<BinaryChunk> {
    // Columns needed at predicate time.
    let mut pred_sorted: Vec<usize> = filter.columns.to_vec();
    pred_sorted.sort_unstable();
    pred_sorted.dedup();
    // Columns parsed only for qualifying rows.
    let rest: Vec<usize> = projection
        .iter()
        .copied()
        .filter(|c| !filter.columns.contains(c))
        .collect();
    let mut rest_sorted = rest.clone();
    rest_sorted.sort_unstable();
    rest_sorted.dedup();

    for &c in projection.iter().chain(filter.columns) {
        if c >= schema.len() {
            return Err(Error::Schema(format!("column {c} out of range")));
        }
    }

    let mut pred_builders: Vec<(usize, ColumnBuilder)> = filter
        .columns
        .iter()
        .filter(|c| projection.contains(c))
        .map(|&c| {
            (
                c,
                ColumnBuilder::new(schema.field(c).expect("checked").data_type, 0),
            )
        })
        .collect();
    let mut rest_builders: Vec<(usize, ColumnBuilder)> = rest
        .iter()
        .map(|&c| {
            (
                c,
                ColumnBuilder::new(schema.field(c).expect("checked").data_type, 0),
            )
        })
        .collect();

    let mut spans: Vec<(u32, u32)> = vec![(0, 0); schema.len()];
    let mut pred_values: Vec<Value> = Vec::with_capacity(filter.columns.len());
    let mut selected = 0u32;

    for row in 0..chunk.rows {
        locate_row(
            chunk,
            map,
            dialect,
            schema.len(),
            row,
            &pred_sorted,
            &mut spans,
        )?;
        pred_values.clear();
        for &c in filter.columns {
            let (s, e) = spans[c];
            let dt = schema.field(c).expect("checked").data_type;
            pred_values.push(parse_value(
                &chunk.data[s as usize..e as usize],
                dt,
                chunk.first_row + row as u64,
                c,
            )?);
        }
        if !(filter.predicate)(&pred_values) {
            continue;
        }
        selected += 1;
        for (i, &c) in filter.columns.iter().enumerate() {
            if let Some((_, b)) = pred_builders.iter_mut().find(|(bc, _)| *bc == c) {
                b.push_value(pred_values[i].clone());
            }
        }
        if !rest_sorted.is_empty() {
            locate_row(
                chunk,
                map,
                dialect,
                schema.len(),
                row,
                &rest_sorted,
                &mut spans,
            )?;
            for (c, b) in rest_builders.iter_mut() {
                let (s, e) = spans[*c];
                b.push(
                    &chunk.data[s as usize..e as usize],
                    chunk.first_row + row as u64,
                    *c,
                )?;
            }
        }
    }

    let mut out = BinaryChunk::empty(chunk.id, chunk.first_row, selected, schema.len());
    for (c, b) in pred_builders.into_iter().chain(rest_builders) {
        out.columns[c] = Some(b.finish());
    }
    Ok(out)
}

/// Computes the byte span (start, end) of each column in `wanted` (ascending)
/// for `row`, writing into `spans`. Uses the positional map for the mapped
/// prefix and forward delimiter scanning beyond it.
fn locate_row(
    chunk: &TextChunk,
    map: &PositionalMap,
    dialect: TextDialect,
    n_cols: usize,
    row: u32,
    wanted_sorted: &[usize],
    spans: &mut [(u32, u32)],
) -> Result<()> {
    let data = &chunk.data[..];
    let (line_start, line_end) = map.line_span(row);
    // Trim the line terminator (and a possible carriage return).
    let mut content_end = line_end;
    if content_end > line_start && data[content_end as usize - 1] == b'\n' {
        content_end -= 1;
    }
    if content_end > line_start && data[content_end as usize - 1] == b'\r' {
        content_end -= 1;
    }
    let delim = dialect.delimiter;
    let mapped = map.cols_mapped() as usize;

    for &col in wanted_sorted {
        let start = if col < mapped {
            map.attr_start(row, col as u32).expect("within prefix")
        } else {
            // Scan forward from the closest mapped attribute (the partial
            // positional-map strategy of §2).
            let anchor_col = mapped - 1;
            let mut pos = map.attr_start(row, anchor_col as u32).expect("prefix");
            let mut cur = anchor_col;
            while cur < col {
                let mut p = pos as usize;
                while p < content_end as usize && data[p] != delim {
                    p += 1;
                }
                if p >= content_end as usize {
                    return Err(Error::Tokenize {
                        line: chunk.first_row + row as u64,
                        message: format!(
                            "expected at least {} attributes, found {}",
                            col + 1,
                            cur + 1
                        ),
                    });
                }
                pos = (p + 1) as u32;
                cur += 1;
            }
            pos
        };
        // The attribute ends at the next delimiter or the content end.
        let end = if col + 1 < mapped {
            map.attr_start(row, col as u32 + 1).expect("prefix") - 1
        } else {
            let mut p = start as usize;
            while p < content_end as usize && data[p] != delim {
                p += 1;
            }
            p as u32
        };
        let _ = n_cols;
        spans[col] = (start, end);
    }
    Ok(())
}

/// Typed column accumulator (the MAP organization step).
enum ColumnBuilder {
    Int64(Vec<i64>),
    Float64(Vec<f64>),
    Utf8(Vec<String>),
}

impl ColumnBuilder {
    fn new(dt: DataType, capacity: usize) -> Self {
        match dt {
            DataType::Int64 => ColumnBuilder::Int64(Vec::with_capacity(capacity)),
            DataType::Float64 => ColumnBuilder::Float64(Vec::with_capacity(capacity)),
            DataType::Utf8 => ColumnBuilder::Utf8(Vec::with_capacity(capacity)),
        }
    }

    fn push(&mut self, bytes: &[u8], line: u64, column: usize) -> Result<()> {
        match self {
            ColumnBuilder::Int64(v) => v.push(parse_i64(bytes, line, column)?),
            ColumnBuilder::Float64(v) => v.push(parse_f64(bytes, line, column)?),
            ColumnBuilder::Utf8(v) => v.push(parse_str(bytes, line, column)?),
        }
        Ok(())
    }

    fn push_value(&mut self, value: Value) {
        match (self, value) {
            (ColumnBuilder::Int64(v), Value::Int(x)) => v.push(x),
            (ColumnBuilder::Float64(v), Value::Float(x)) => v.push(x),
            (ColumnBuilder::Utf8(v), Value::Str(x)) => v.push(x),
            _ => unreachable!("builder/value type mismatch is prevented by construction"),
        }
    }

    fn finish(self) -> ColumnData {
        match self {
            ColumnBuilder::Int64(v) => ColumnData::Int64(v),
            ColumnBuilder::Float64(v) => ColumnData::Float64(v),
            ColumnBuilder::Utf8(v) => ColumnData::Utf8(v),
        }
    }
}

/// Parses one attribute as a dynamic value (used by push-down selection).
fn parse_value(bytes: &[u8], dt: DataType, line: u64, column: usize) -> Result<Value> {
    Ok(match dt {
        DataType::Int64 => Value::Int(parse_i64(bytes, line, column)?),
        DataType::Float64 => Value::Float(parse_f64(bytes, line, column)?),
        DataType::Utf8 => Value::Str(parse_str(bytes, line, column)?),
    })
}

/// Fast decimal integer parser (the `atoi` of paper §2) with overflow checks.
fn parse_i64(bytes: &[u8], line: u64, column: usize) -> Result<i64> {
    let err = |m: &str| Error::Parse {
        line,
        column,
        message: format!("{m}: {:?}", String::from_utf8_lossy(bytes)),
    };
    if bytes.is_empty() {
        return Err(err("empty integer"));
    }
    let (neg, digits) = match bytes[0] {
        b'-' => (true, &bytes[1..]),
        b'+' => (false, &bytes[1..]),
        _ => (false, bytes),
    };
    if digits.is_empty() {
        return Err(err("sign without digits"));
    }
    let mut acc: i64 = 0;
    for &b in digits {
        if !b.is_ascii_digit() {
            return Err(err("invalid digit"));
        }
        acc = acc
            .checked_mul(10)
            .and_then(|a| a.checked_add((b - b'0') as i64))
            .ok_or_else(|| err("integer overflow"))?;
    }
    Ok(if neg { -acc } else { acc })
}

fn parse_f64(bytes: &[u8], line: u64, column: usize) -> Result<f64> {
    let s = std::str::from_utf8(bytes).map_err(|_| Error::Parse {
        line,
        column,
        message: "invalid utf-8 in float".into(),
    })?;
    s.trim().parse::<f64>().map_err(|e| Error::Parse {
        line,
        column,
        message: format!("invalid float {s:?}: {e}"),
    })
}

fn parse_str(bytes: &[u8], line: u64, column: usize) -> Result<String> {
    std::str::from_utf8(bytes)
        .map(|s| s.to_string())
        .map_err(|_| Error::Parse {
            line,
            column,
            message: "invalid utf-8 in string".into(),
        })
}

/// Reference row-wise implementation used by tests and property checks: split
/// with the standard library, parse with `str::parse`. Slow but obviously
/// correct.
pub mod reference {
    use super::*;

    /// Parses a whole chunk the naive way, returning rows of values for the
    /// given projection.
    pub fn parse_rows(
        text: &str,
        dialect: TextDialect,
        schema: &Schema,
        projection: &[usize],
    ) -> Result<Vec<Vec<Value>>> {
        let mut out = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let fields: Vec<&str> = line.split(dialect.delimiter as char).collect();
            let mut row = Vec::with_capacity(projection.len());
            for &c in projection {
                let raw = fields.get(c).ok_or(Error::Tokenize {
                    line: i as u64,
                    message: "short line".into(),
                })?;
                let dt = schema
                    .field(c)
                    .ok_or_else(|| Error::Schema("bad projection".into()))?
                    .data_type;
                let v = match dt {
                    DataType::Int64 => {
                        Value::Int(raw.trim().parse().map_err(|e| Error::Parse {
                            line: i as u64,
                            column: c,
                            message: format!("{e}"),
                        })?)
                    }
                    DataType::Float64 => {
                        Value::Float(raw.trim().parse().map_err(|e| Error::Parse {
                            line: i as u64,
                            column: c,
                            message: format!("{e}"),
                        })?)
                    }
                    DataType::Utf8 => Value::Str(raw.to_string()),
                };
                row.push(v);
            }
            out.push(row);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::{tokenize_chunk, tokenize_chunk_selective};
    use bytes::Bytes;
    use scanraw_types::ChunkId;

    fn chunk(text: &str, rows: u32) -> TextChunk {
        TextChunk {
            id: ChunkId(0),
            file_offset: 0,
            first_row: 0,
            rows,
            data: Bytes::from(text.as_bytes().to_vec()),
        }
    }

    fn ints(chunk: &BinaryChunk, col: usize) -> Vec<i64> {
        match chunk.column(col).unwrap() {
            ColumnData::Int64(v) => v.clone(),
            other => panic!("expected ints, got {other:?}"),
        }
    }

    #[test]
    fn parse_all_columns() {
        let c = chunk("1,2,3\n40,50,60\n", 2);
        let schema = Schema::uniform_ints(3);
        let m = tokenize_chunk(&c, TextDialect::CSV, 3).unwrap();
        let b = parse_chunk(&c, &m, TextDialect::CSV, &schema).unwrap();
        b.validate(&schema).unwrap();
        assert_eq!(ints(&b, 0), vec![1, 40]);
        assert_eq!(ints(&b, 1), vec![2, 50]);
        assert_eq!(ints(&b, 2), vec![3, 60]);
    }

    #[test]
    fn selective_parsing_leaves_columns_absent() {
        let c = chunk("1,2,3\n4,5,6\n", 2);
        let schema = Schema::uniform_ints(3);
        let m = tokenize_chunk(&c, TextDialect::CSV, 3).unwrap();
        let b = parse_chunk_projected(&c, &m, TextDialect::CSV, &schema, &[2]).unwrap();
        assert!(b.column(0).is_none());
        assert!(b.column(1).is_none());
        assert_eq!(ints(&b, 2), vec![3, 6]);
    }

    #[test]
    fn partial_map_scans_forward() {
        let c = chunk("1,2,3,4\n5,6,7,8\n", 2);
        let schema = Schema::uniform_ints(4);
        // Map only the first column; parse requires the last.
        let m = tokenize_chunk_selective(&c, TextDialect::CSV, 4, 1).unwrap();
        let b = parse_chunk_projected(&c, &m, TextDialect::CSV, &schema, &[0, 3]).unwrap();
        assert_eq!(ints(&b, 0), vec![1, 5]);
        assert_eq!(ints(&b, 3), vec![4, 8]);
    }

    #[test]
    fn crlf_is_stripped() {
        let c = chunk("7,8\r\n9,10\r\n", 2);
        let schema = Schema::uniform_ints(2);
        let m = tokenize_chunk(&c, TextDialect::CSV, 2).unwrap();
        let b = parse_chunk(&c, &m, TextDialect::CSV, &schema).unwrap();
        assert_eq!(ints(&b, 1), vec![8, 10]);
    }

    #[test]
    fn negative_and_signed_integers() {
        let c = chunk("-5,+7\n0,-0\n", 2);
        let schema = Schema::uniform_ints(2);
        let m = tokenize_chunk(&c, TextDialect::CSV, 2).unwrap();
        let b = parse_chunk(&c, &m, TextDialect::CSV, &schema).unwrap();
        assert_eq!(ints(&b, 0), vec![-5, 0]);
        assert_eq!(ints(&b, 1), vec![7, 0]);
    }

    #[test]
    fn integer_overflow_detected() {
        let c = chunk("99999999999999999999\n", 1);
        let schema = Schema::uniform_ints(1);
        let m = tokenize_chunk(&c, TextDialect::CSV, 1).unwrap();
        let err = parse_chunk(&c, &m, TextDialect::CSV, &schema).unwrap_err();
        assert!(matches!(err, Error::Parse { .. }));
    }

    #[test]
    fn garbage_integer_is_parse_error() {
        let c = chunk("12x\n", 1);
        let schema = Schema::uniform_ints(1);
        let m = tokenize_chunk(&c, TextDialect::CSV, 1).unwrap();
        assert!(parse_chunk(&c, &m, TextDialect::CSV, &schema).is_err());
    }

    #[test]
    fn mixed_types() {
        use scanraw_types::Field;
        let schema = Schema::new(vec![
            Field::new("name", DataType::Utf8),
            Field::new("score", DataType::Float64),
            Field::new("n", DataType::Int64),
        ])
        .unwrap();
        let c = chunk("alice,1.5,3\nbob,-0.25,4\n", 2);
        let m = tokenize_chunk(&c, TextDialect::CSV, 3).unwrap();
        let b = parse_chunk(&c, &m, TextDialect::CSV, &schema).unwrap();
        assert_eq!(
            b.column(0).unwrap(),
            &ColumnData::Utf8(vec!["alice".into(), "bob".into()])
        );
        assert_eq!(b.column(1).unwrap(), &ColumnData::Float64(vec![1.5, -0.25]));
        assert_eq!(ints(&b, 2), vec![3, 4]);
    }

    #[test]
    fn pushdown_selection_filters_rows() {
        let c = chunk("1,10\n2,20\n3,30\n4,40\n", 4);
        let schema = Schema::uniform_ints(2);
        let m = tokenize_chunk(&c, TextDialect::CSV, 2).unwrap();
        let filter = RowFilter {
            columns: &[0],
            predicate: &|vals: &[Value]| vals[0].as_i64().unwrap() % 2 == 0,
        };
        let b = parse_chunk_filtered(&c, &m, TextDialect::CSV, &schema, &[0, 1], &filter).unwrap();
        assert_eq!(b.rows, 2);
        assert_eq!(ints(&b, 0), vec![2, 4]);
        assert_eq!(ints(&b, 1), vec![20, 40]);
    }

    #[test]
    fn pushdown_with_predicate_column_not_projected() {
        let c = chunk("1,10\n2,20\n", 2);
        let schema = Schema::uniform_ints(2);
        let m = tokenize_chunk(&c, TextDialect::CSV, 2).unwrap();
        let filter = RowFilter {
            columns: &[0],
            predicate: &|vals: &[Value]| vals[0].as_i64().unwrap() > 1,
        };
        let b = parse_chunk_filtered(&c, &m, TextDialect::CSV, &schema, &[1], &filter).unwrap();
        assert_eq!(b.rows, 1);
        assert!(b.column(0).is_none(), "predicate col not projected");
        assert_eq!(ints(&b, 1), vec![20]);
    }

    #[test]
    fn matches_reference_parser() {
        let text = "10,20,30\n-1,0,1\n7,8,9\n";
        let c = chunk(text, 3);
        let schema = Schema::uniform_ints(3);
        let m = tokenize_chunk(&c, TextDialect::CSV, 3).unwrap();
        let fast = parse_chunk(&c, &m, TextDialect::CSV, &schema).unwrap();
        let slow = reference::parse_rows(text, TextDialect::CSV, &schema, &[0, 1, 2]).unwrap();
        for (row, slow_row) in slow.iter().enumerate() {
            for (col, expected) in slow_row.iter().enumerate() {
                assert_eq!(&fast.column(col).unwrap().value(row).unwrap(), expected);
            }
        }
    }

    #[test]
    fn projection_out_of_range_rejected() {
        let c = chunk("1\n", 1);
        let schema = Schema::uniform_ints(1);
        let m = tokenize_chunk(&c, TextDialect::CSV, 1).unwrap();
        assert!(parse_chunk_projected(&c, &m, TextDialect::CSV, &schema, &[1]).is_err());
    }

    #[test]
    fn forward_scan_detects_short_lines() {
        let c = chunk("1,2\n", 1);
        let schema = Schema::uniform_ints(4);
        let m = tokenize_chunk_selective(&c, TextDialect::CSV, 4, 1).unwrap();
        let err = parse_chunk_projected(&c, &m, TextDialect::CSV, &schema, &[3]).unwrap_err();
        assert!(matches!(err, Error::Tokenize { .. }));
    }
}
