//! READ-stage support: streaming a raw file as line-aligned chunks.
//!
//! "The file is logically split into horizontal portions containing a
//! sequence of lines, i.e., chunks. Chunks represent the reading and
//! processing unit." (paper §3.1)
//!
//! [`ChunkReader`] streams a file the *first* time it is accessed, when no
//! layout information exists: it reads fixed-size blocks from the device,
//! scans for newlines, and emits chunks of exactly `chunk_rows` lines (the
//! final chunk may be shorter). While doing so it records a [`ChunkLayout`] —
//! byte offset, byte length, and row range per chunk — which ScanRaw stores in
//! the catalog so later queries can read any chunk directly, out of order, or
//! skip it altogether (paper §3.2.1, READ thread optimizations).

use bytes::Bytes;
use scanraw_simio::SimDisk;
use scanraw_types::{ChunkId, ChunkLayout, ChunkMeta, Error, Result, TextChunk};

/// Streaming chunker over a [`SimDisk`] file.
pub struct ChunkReader {
    disk: SimDisk,
    file: String,
    file_len: u64,
    chunk_rows: u32,
    /// Device read granularity.
    block_bytes: usize,
    /// Bytes fetched from the device but not yet emitted.
    carry: Vec<u8>,
    /// File offset of `carry[0]`.
    carry_offset: u64,
    /// Next file offset to fetch from the device.
    fetch_pos: u64,
    next_row: u64,
    next_id: u32,
    finished: bool,
}

impl ChunkReader {
    /// Default device read size. Large enough to amortize per-op overhead,
    /// small enough to overlap reading with conversion.
    pub const DEFAULT_BLOCK: usize = 1 << 20;

    pub fn new(disk: SimDisk, file: impl Into<String>, chunk_rows: u32) -> Result<Self> {
        if chunk_rows == 0 {
            return Err(Error::Config("chunk_rows must be positive".into()));
        }
        let file = file.into();
        let file_len = disk.len(&file)?;
        Ok(ChunkReader {
            disk,
            file,
            file_len,
            chunk_rows,
            block_bytes: Self::DEFAULT_BLOCK,
            carry: Vec::new(),
            carry_offset: 0,
            fetch_pos: 0,
            next_row: 0,
            next_id: 0,
            finished: false,
        })
    }

    /// Overrides the device read granularity (mostly for tests).
    pub fn with_block_bytes(mut self, block: usize) -> Self {
        assert!(block > 0);
        self.block_bytes = block;
        self
    }

    /// Produces the next chunk, or `None` at end of file.
    pub fn next_chunk(&mut self) -> Result<Option<TextChunk>> {
        if self.finished {
            return Ok(None);
        }
        // Collect newline positions inside `carry` until we have chunk_rows
        // lines or the file is exhausted.
        let mut line_ends: Vec<usize> = Vec::with_capacity(self.chunk_rows as usize);
        let mut scan_from = 0usize;
        loop {
            for (i, &b) in self.carry[scan_from..].iter().enumerate() {
                if b == b'\n' {
                    line_ends.push(scan_from + i);
                    if line_ends.len() == self.chunk_rows as usize {
                        break;
                    }
                }
            }
            if line_ends.len() == self.chunk_rows as usize {
                break;
            }
            scan_from = self.carry.len();
            if self.fetch_pos >= self.file_len {
                break; // no more bytes to fetch
            }
            let want = self
                .block_bytes
                .min((self.file_len - self.fetch_pos) as usize);
            // The one production caller is
            // `Operator::io_retry(.. || reader.next_chunk())` in core; the
            // name-based resolver also wires `ChunkStream::next_chunk` call
            // sites to this fn, which makes coverage look broken when it is
            // not.
            // lint-ok: L016 retried via Operator::io_retry; other edges are resolver aliasing
            let block = self.disk.read(&self.file, self.fetch_pos, want)?;
            self.fetch_pos += want as u64;
            self.carry.extend_from_slice(&block);
        }

        // Determine the byte span of the chunk within `carry`.
        let (chunk_bytes, rows) = if line_ends.len() == self.chunk_rows as usize {
            (line_ends[line_ends.len() - 1] + 1, line_ends.len() as u32)
        } else {
            // EOF: emit whatever is left. A final line without trailing
            // newline still counts as a row.
            self.finished = true;
            let total = self.carry.len();
            let mut rows = line_ends.len() as u32;
            let last_end = line_ends.last().map(|e| e + 1).unwrap_or(0);
            if last_end < total {
                rows += 1; // unterminated final line
            }
            (total, rows)
        };

        if rows == 0 {
            self.finished = true;
            return Ok(None);
        }

        let data: Vec<u8> = self.carry.drain(..chunk_bytes).collect();
        let chunk = TextChunk {
            id: ChunkId(self.next_id),
            file_offset: self.carry_offset,
            first_row: self.next_row,
            rows,
            data: Bytes::from(data),
        };
        self.carry_offset += chunk_bytes as u64;
        self.next_row += rows as u64;
        self.next_id += 1;
        if self.finished && !self.carry.is_empty() {
            // Defensive: all bytes must be consumed at EOF.
            return Err(Error::io("chunker left unconsumed bytes at EOF"));
        }
        Ok(Some(chunk))
    }

    /// Drains the whole file, returning all chunks and the recorded layout.
    pub fn read_all(mut self) -> Result<(Vec<TextChunk>, ChunkLayout)> {
        let mut chunks = Vec::new();
        let mut layout = ChunkLayout::default();
        while let Some(c) = self.next_chunk()? {
            layout.push(ChunkMeta {
                id: c.id,
                file_offset: c.file_offset,
                byte_len: c.len_bytes() as u64,
                first_row: c.first_row,
                rows: c.rows,
            });
            chunks.push(c);
        }
        Ok((chunks, layout))
    }
}

/// Reads one chunk directly using catalog metadata (a repeat scan that knows
/// the layout: "chunks can be read in other order than sequential", §3.2.1).
pub fn read_chunk_at(disk: &SimDisk, file: &str, meta: &ChunkMeta) -> Result<TextChunk> {
    let data = disk.read(file, meta.file_offset, meta.byte_len as usize)?;
    Ok(TextChunk {
        id: meta.id,
        file_offset: meta.file_offset,
        first_row: meta.first_row,
        rows: meta.rows,
        data: Bytes::from(data),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk_with(content: &str) -> SimDisk {
        let d = SimDisk::instant();
        d.storage().put("f", content.as_bytes().to_vec());
        d
    }

    #[test]
    fn splits_into_exact_row_chunks() {
        let d = disk_with("a\nb\nc\nd\ne\n");
        let (chunks, layout) = ChunkReader::new(d, "f", 2).unwrap().read_all().unwrap();
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].rows, 2);
        assert_eq!(chunks[1].rows, 2);
        assert_eq!(chunks[2].rows, 1);
        assert_eq!(&chunks[0].data[..], b"a\nb\n");
        assert_eq!(&chunks[2].data[..], b"e\n");
        assert_eq!(layout.total_rows(), 5);
    }

    #[test]
    fn handles_missing_trailing_newline() {
        let d = disk_with("a\nb\nc");
        let (chunks, layout) = ChunkReader::new(d, "f", 2).unwrap().read_all().unwrap();
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[1].rows, 1);
        assert_eq!(&chunks[1].data[..], b"c");
        assert_eq!(layout.total_rows(), 3);
    }

    #[test]
    fn chunk_offsets_partition_the_file() {
        let content = "one\ntwo\nthree\nfour\nfive\nsix\n";
        let d = disk_with(content);
        let (chunks, _) = ChunkReader::new(d, "f", 2)
            .unwrap()
            .with_block_bytes(4) // force many device reads
            .read_all()
            .unwrap();
        let mut pos = 0u64;
        let mut row = 0u64;
        for c in &chunks {
            assert_eq!(c.file_offset, pos);
            assert_eq!(c.first_row, row);
            pos += c.len_bytes() as u64;
            row += c.rows as u64;
        }
        assert_eq!(pos, content.len() as u64);
    }

    #[test]
    fn empty_file_yields_no_chunks() {
        let d = disk_with("");
        let (chunks, layout) = ChunkReader::new(d, "f", 4).unwrap().read_all().unwrap();
        assert!(chunks.is_empty());
        assert!(layout.is_empty());
    }

    #[test]
    fn single_unterminated_line() {
        let d = disk_with("lonely");
        let (chunks, _) = ChunkReader::new(d, "f", 8).unwrap().read_all().unwrap();
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].rows, 1);
        assert_eq!(&chunks[0].data[..], b"lonely");
    }

    #[test]
    fn layout_enables_direct_reads() {
        let d = disk_with("aa\nbb\ncc\ndd\n");
        let (chunks, layout) = ChunkReader::new(d.clone(), "f", 1)
            .unwrap()
            .read_all()
            .unwrap();
        for c in &chunks {
            let again = read_chunk_at(&d, "f", layout.get(c.id).unwrap()).unwrap();
            assert_eq!(again.data, c.data);
            assert_eq!(again.first_row, c.first_row);
        }
    }

    #[test]
    fn zero_chunk_rows_rejected() {
        let d = disk_with("x\n");
        assert!(ChunkReader::new(d, "f", 0).is_err());
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let d = disk_with("1\n2\n3\n4\n5\n6\n7\n");
        let (chunks, _) = ChunkReader::new(d, "f", 3).unwrap().read_all().unwrap();
        let ids: Vec<u32> = chunks.iter().map(|c| c.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }
}
