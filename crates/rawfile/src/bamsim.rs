//! A compressed binary container standing in for BAM + BAMTools (Table 1).
//!
//! Real BAM files are BGZF-compressed binary encodings of SAM records, and
//! BAMTools — the access library the paper measures — decompresses and
//! decodes them *sequentially in the calling thread* ("for BAM, file data
//! access and decompression are sequential and handled inside BAMTools. The
//! process is heavily CPU-bound", §5.2). This module reproduces both
//! properties:
//!
//! * records are varint/zigzag encoded with 4-bit-packed sequences, then each
//!   block is LZSS-compressed — a real compressor with real decode cost;
//! * [`BamReader`] exposes only a one-record-at-a-time sequential iterator;
//!   there is no random access and no parallel decode, by design.
//!
//! ScanRaw's BAM path therefore implements only MAP (converting the reader's
//! record into the columnar representation), exactly like the paper's
//! integration with BAMTools.

use crate::sam::SamRead;
use scanraw_simio::SimDisk;
use scanraw_types::{Error, Result};

/// File magic.
const MAGIC: &[u8; 4] = b"BSIM";
/// Records per compressed block.
pub const BLOCK_RECORDS: usize = 4096;

// ---------------------------------------------------------------------------
// Varint / zigzag codec
// ---------------------------------------------------------------------------

fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

fn get_uvarint(data: &[u8], pos: &mut usize) -> Result<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let b = *data
            .get(*pos)
            .ok_or_else(|| Error::io("truncated varint"))?;
        *pos += 1;
        v |= ((b & 0x7f) as u64) << shift;
        if b < 0x80 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(Error::io("varint too long"));
        }
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_ivarint(out: &mut Vec<u8>, v: i64) {
    put_uvarint(out, zigzag(v));
}

fn get_ivarint(data: &[u8], pos: &mut usize) -> Result<i64> {
    Ok(unzigzag(get_uvarint(data, pos)?))
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_uvarint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn get_str(data: &[u8], pos: &mut usize) -> Result<String> {
    let len = get_uvarint(data, pos)? as usize;
    let end = pos
        .checked_add(len)
        .ok_or_else(|| Error::io("string length overflow"))?;
    let bytes = data
        .get(*pos..end)
        .ok_or_else(|| Error::io("truncated string"))?;
    *pos = end;
    String::from_utf8(bytes.to_vec()).map_err(|_| Error::io("invalid utf-8 in record"))
}

// ---------------------------------------------------------------------------
// 4-bit base packing (like BAM's SEQ encoding)
// ---------------------------------------------------------------------------

fn base_code(b: u8) -> u8 {
    match b {
        b'A' => 1,
        b'C' => 2,
        b'G' => 4,
        b'T' => 8,
        b'N' => 15,
        _ => 0,
    }
}

fn code_base(c: u8) -> u8 {
    match c {
        1 => b'A',
        2 => b'C',
        4 => b'G',
        8 => b'T',
        15 => b'N',
        _ => b'=',
    }
}

fn pack_seq(out: &mut Vec<u8>, seq: &str) {
    put_uvarint(out, seq.len() as u64);
    let bytes = seq.as_bytes();
    for pair in bytes.chunks(2) {
        let hi = base_code(pair[0]);
        let lo = if pair.len() > 1 {
            base_code(pair[1])
        } else {
            0
        };
        out.push((hi << 4) | lo);
    }
}

fn unpack_seq(data: &[u8], pos: &mut usize) -> Result<String> {
    let len = get_uvarint(data, pos)? as usize;
    let packed = len.div_ceil(2);
    let end = *pos + packed;
    let bytes = data
        .get(*pos..end)
        .ok_or_else(|| Error::io("truncated sequence"))?;
    *pos = end;
    let mut s = String::with_capacity(len);
    for (i, &b) in bytes.iter().enumerate() {
        s.push(code_base(b >> 4) as char);
        if i * 2 + 1 < len {
            s.push(code_base(b & 0xf) as char);
        }
    }
    Ok(s)
}

// ---------------------------------------------------------------------------
// LZSS block compressor
// ---------------------------------------------------------------------------

/// Simple LZSS: literals and (distance, length) matches, 64 KiB window,
/// greedy longest-match via a 3-byte hash chain. Not competitive with zlib,
/// but a genuine compressor whose decode loop costs CPU per byte — the
/// property Table 1 depends on.
pub mod lzss {
    const MIN_MATCH: usize = 4;
    const MAX_MATCH: usize = 255 + MIN_MATCH;
    const WINDOW: usize = 1 << 16;
    const HASH_BITS: usize = 15;

    fn hash3(data: &[u8], i: usize) -> usize {
        let h = (data[i] as u32)
            .wrapping_mul(506832829)
            .wrapping_add((data[i + 1] as u32).wrapping_mul(2654435761))
            .wrapping_add((data[i + 2] as u32).wrapping_mul(2246822519));
        (h >> (32 - HASH_BITS as u32)) as usize
    }

    /// Compresses `data`. Output layout: sequences of a control byte holding
    /// 8 flags (LSB first; 0 = literal byte, 1 = match of `[len u8][dist u16]`).
    pub fn compress(data: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(data.len() / 2 + 16);
        let mut head = vec![usize::MAX; 1 << HASH_BITS];
        let mut prev = vec![usize::MAX; data.len().max(1)];

        let mut flags_at = usize::MAX;
        let mut flag_bit = 8;
        let mut push_flag = |out: &mut Vec<u8>, bit: bool| {
            if flag_bit == 8 {
                out.push(0);
                flags_at = out.len() - 1;
                flag_bit = 0;
            }
            if bit {
                out[flags_at] |= 1 << flag_bit;
            }
            flag_bit += 1;
        };

        let mut i = 0usize;
        while i < data.len() {
            let mut best_len = 0usize;
            let mut best_dist = 0usize;
            if i + MIN_MATCH <= data.len() && i + 2 < data.len() {
                let h = hash3(data, i);
                let mut cand = head[h];
                let mut probes = 0;
                while cand != usize::MAX && i - cand <= WINDOW && probes < 16 {
                    let limit = (data.len() - i).min(MAX_MATCH);
                    let mut l = 0usize;
                    while l < limit && data[cand + l] == data[i + l] {
                        l += 1;
                    }
                    if l > best_len {
                        best_len = l;
                        best_dist = i - cand;
                    }
                    cand = prev[cand];
                    probes += 1;
                }
                head[h] = i;
                prev[i] = if head[h] == i { usize::MAX } else { head[h] };
                // Re-link properly: prev chain points at the previous head.
            }
            if best_len >= MIN_MATCH {
                push_flag(&mut out, true);
                out.push((best_len - MIN_MATCH) as u8);
                out.extend_from_slice(&(best_dist as u16).to_le_bytes());
                // Insert hash entries for the skipped positions.
                let end = i + best_len;
                let mut j = i + 1;
                while j < end && j + 2 < data.len() {
                    let h = hash3(data, j);
                    prev[j] = head[h];
                    head[h] = j;
                    j += 1;
                }
                i = end;
            } else {
                push_flag(&mut out, false);
                out.push(data[i]);
                if i + 2 < data.len() {
                    let h = hash3(data, i);
                    prev[i] = head[h];
                    head[h] = i;
                }
                i += 1;
            }
        }
        out
    }

    /// Decompresses into a buffer of exactly `expected_len` bytes.
    pub fn decompress(data: &[u8], expected_len: usize) -> Result<Vec<u8>, String> {
        let mut out = Vec::with_capacity(expected_len);
        let mut i = 0usize;
        while out.len() < expected_len {
            let flags = *data.get(i).ok_or("truncated flags")?;
            i += 1;
            for bit in 0..8 {
                if out.len() >= expected_len {
                    break;
                }
                if flags & (1 << bit) != 0 {
                    let len = *data.get(i).ok_or("truncated match len")? as usize + MIN_MATCH;
                    let dist = u16::from_le_bytes([
                        *data.get(i + 1).ok_or("truncated dist")?,
                        *data.get(i + 2).ok_or("truncated dist")?,
                    ]) as usize;
                    i += 3;
                    if dist == 0 || dist > out.len() {
                        return Err(format!("bad match distance {dist}"));
                    }
                    let start = out.len() - dist;
                    for k in 0..len {
                        let b = out[start + k];
                        out.push(b);
                    }
                } else {
                    out.push(*data.get(i).ok_or("truncated literal")?);
                    i += 1;
                }
            }
        }
        if out.len() != expected_len {
            return Err(format!(
                "decompressed {} bytes, expected {expected_len}",
                out.len()
            ));
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Record encode/decode
// ---------------------------------------------------------------------------

fn encode_read(out: &mut Vec<u8>, r: &SamRead) {
    put_str(out, &r.qname);
    put_ivarint(out, r.flag);
    put_str(out, &r.rname);
    put_ivarint(out, r.pos);
    put_ivarint(out, r.mapq);
    put_str(out, &r.cigar);
    put_str(out, &r.rnext);
    put_ivarint(out, r.pnext);
    put_ivarint(out, r.tlen);
    pack_seq(out, &r.seq);
    put_str(out, &r.qual);
}

fn decode_read(data: &[u8], pos: &mut usize) -> Result<SamRead> {
    Ok(SamRead {
        qname: get_str(data, pos)?,
        flag: get_ivarint(data, pos)?,
        rname: get_str(data, pos)?,
        pos: get_ivarint(data, pos)?,
        mapq: get_ivarint(data, pos)?,
        cigar: get_str(data, pos)?,
        rnext: get_str(data, pos)?,
        pnext: get_ivarint(data, pos)?,
        tlen: get_ivarint(data, pos)?,
        seq: unpack_seq(data, pos)?,
        qual: get_str(data, pos)?,
    })
}

// ---------------------------------------------------------------------------
// Container writer / reader
// ---------------------------------------------------------------------------

/// Writes reads into the BAM-sim container layout:
/// `MAGIC, then per block: [u32 comp_len][u32 raw_len][u32 records][lzss payload]`.
pub fn bam_bytes(reads: &[SamRead]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    for block in reads.chunks(BLOCK_RECORDS) {
        let mut raw = Vec::with_capacity(block.len() * 128);
        for r in block {
            encode_read(&mut raw, r);
        }
        let comp = lzss::compress(&raw);
        out.extend_from_slice(&(comp.len() as u32).to_le_bytes());
        out.extend_from_slice(&(raw.len() as u32).to_le_bytes());
        out.extend_from_slice(&(block.len() as u32).to_le_bytes());
        out.extend_from_slice(&comp);
    }
    out
}

/// Stages a BAM-sim file on the device; returns its byte length.
pub fn stage_bam(disk: &SimDisk, name: &str, reads: &[SamRead]) -> u64 {
    let bytes = bam_bytes(reads);
    let len = bytes.len() as u64;
    disk.storage().put(name, bytes);
    len
}

/// Sequential reader — the "BAMTools" of this reproduction.
///
/// Yields one record at a time; each block is fetched from the device (paying
/// I/O cost) and LZSS-decompressed *in the calling thread* (paying CPU cost).
/// There is deliberately no API for parallel or random access.
pub struct BamReader {
    disk: SimDisk,
    file: String,
    file_len: u64,
    pos: u64,
    block: Vec<u8>,
    block_pos: usize,
    block_remaining: u32,
}

impl BamReader {
    pub fn open(disk: SimDisk, file: impl Into<String>) -> Result<Self> {
        let file = file.into();
        let file_len = disk.len(&file)?;
        if file_len < MAGIC.len() as u64 {
            return Err(Error::io("bam-sim file too short"));
        }
        // The bam-sim scan is a format demo outside the retried persistence
        // contract; an injected fault fails the whole query loudly and the
        // caller re-issues the scan (there is no partial state to heal).
        // lint-ok: L016 bam-sim reads fail the query, not the pipeline
        let magic = disk.read(&file, 0, MAGIC.len())?;
        if magic != MAGIC {
            return Err(Error::io("bad bam-sim magic"));
        }
        Ok(BamReader {
            disk,
            file,
            file_len,
            pos: MAGIC.len() as u64,
            block: Vec::new(),
            block_pos: 0,
            block_remaining: 0,
        })
    }

    /// Reads the next record, or `None` at end of file.
    pub fn next_read(&mut self) -> Result<Option<SamRead>> {
        if self.block_remaining == 0 && !self.load_next_block()? {
            return Ok(None);
        }
        let r = decode_read(&self.block, &mut self.block_pos)?;
        self.block_remaining -= 1;
        Ok(Some(r))
    }

    fn load_next_block(&mut self) -> Result<bool> {
        if self.pos >= self.file_len {
            return Ok(false);
        }
        // lint-ok: L016 see `open`: bam-sim reads fail the query, not the pipeline
        let header = self.disk.read(&self.file, self.pos, 12)?;
        let comp_len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
        let raw_len = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes")) as usize;
        let records = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
        self.pos += 12;
        // lint-ok: L016 same contract as the header read above
        let comp = self.disk.read(&self.file, self.pos, comp_len)?;
        self.pos += comp_len as u64;
        self.block = lzss::decompress(&comp, raw_len)
            .map_err(|m| Error::io_corrupt(self.file.clone(), m))?;
        self.block_pos = 0;
        self.block_remaining = records;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sam::{generate_reads, sam_bytes, SamSpec};

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_uvarint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn seq_packing_roundtrip() {
        for seq in ["", "A", "ACGT", "ACGTN", "TTTTTTTTT"] {
            let mut buf = Vec::new();
            pack_seq(&mut buf, seq);
            let mut pos = 0;
            assert_eq!(unpack_seq(&buf, &mut pos).unwrap(), seq);
        }
    }

    #[test]
    fn lzss_roundtrip_repetitive() {
        let data: Vec<u8> = b"abcabcabcabcabcxyzxyzxyz".repeat(100);
        let comp = lzss::compress(&data);
        assert!(comp.len() < data.len() / 2, "repetitive data must compress");
        assert_eq!(lzss::decompress(&comp, data.len()).unwrap(), data);
    }

    #[test]
    fn lzss_roundtrip_random() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let data: Vec<u8> = (0..10_000).map(|_| rng.gen()).collect();
        let comp = lzss::compress(&data);
        assert_eq!(lzss::decompress(&comp, data.len()).unwrap(), data);
    }

    #[test]
    fn lzss_empty() {
        let comp = lzss::compress(&[]);
        assert_eq!(lzss::decompress(&comp, 0).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn record_roundtrip() {
        let reads = generate_reads(&SamSpec {
            reads: 8,
            ..Default::default()
        });
        let mut buf = Vec::new();
        for r in &reads {
            encode_read(&mut buf, r);
        }
        let mut pos = 0;
        for r in &reads {
            assert_eq!(&decode_read(&buf, &mut pos).unwrap(), r);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn container_roundtrip_multiple_blocks() {
        let reads = generate_reads(&SamSpec {
            reads: BLOCK_RECORDS as u64 + 37,
            read_len: 20,
            ..Default::default()
        });
        let d = SimDisk::instant();
        stage_bam(&d, "x.bam", &reads);
        let mut rd = BamReader::open(d, "x.bam").unwrap();
        let mut got = Vec::new();
        while let Some(r) = rd.next_read().unwrap() {
            got.push(r);
        }
        assert_eq!(got, reads);
    }

    #[test]
    fn bam_is_smaller_than_sam() {
        let reads = generate_reads(&SamSpec {
            reads: 2000,
            ..Default::default()
        });
        let sam = sam_bytes(&reads).len();
        let bam = bam_bytes(&reads).len();
        assert!(
            (bam as f64) < sam as f64 * 0.8,
            "bam-sim {bam} should be well below sam {sam}"
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let d = SimDisk::instant();
        d.storage().put("junk", b"NOPEetc".to_vec());
        assert!(BamReader::open(d, "junk").is_err());
    }

    #[test]
    fn empty_container_yields_nothing() {
        let d = SimDisk::instant();
        stage_bam(&d, "e.bam", &[]);
        let mut rd = BamReader::open(d, "e.bam").unwrap();
        assert!(rd.next_read().unwrap().is_none());
    }
}
