//! Discrete-event simulator of the ScanRaw pipeline.
//!
//! ## Why this exists
//!
//! The paper's parallelism experiments (Figures 4, 7, 8, 9) were run on a
//! 16-core server with a RAID-0 array. This reproduction runs on whatever
//! machine CI provides — possibly a single core — where wall-clock thread
//! scaling is physically meaningless. The simulator executes the *same
//! scheduling logic* as the real operator (bounded buffers, worker pool,
//! read/write disk arbitration, the write policies of
//! [`WritePolicy`]) in virtual time, charging per-stage costs from a
//! [`cost::CostModel`] that is *calibrated by measuring the real tokenizer
//! and parser* of this repository on generated data.
//!
//! What the simulator preserves (and what the figures depend on):
//!
//! * the ratio of per-chunk conversion cost to disk bandwidth — this sets
//!   the CPU-bound ↔ I/O-bound crossover of Figure 4;
//! * buffer capacities and the blocked-READ rule — this sets when
//!   speculative loading gets disk time;
//! * the cache (load-biased LRU) and the safeguard flush — this sets the
//!   per-query convergence of Figure 8;
//! * per-task dispatch overhead and pipeline fill/drain — Figure 7.
//!
//! [`WritePolicy`]: scanraw_types::WritePolicy

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
pub mod cost;
pub mod sim;

pub use cost::{measure_cost_model, CostModel};
pub use sim::{FileSpec, QuerySim, QuerySpec, SimConfig, Simulator, UtilSample};
