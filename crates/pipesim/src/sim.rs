//! The discrete-event simulation of the ScanRaw pipeline.
//!
//! One [`Simulator`] instance corresponds to one ScanRaw operator: it carries
//! the binary-chunk cache, the set of chunks loaded in the database, and any
//! writes still pending from a previous query (the speculative tail), across
//! a sequence of simulated queries. [`Simulator::run_query`] plays the
//! per-scan pipeline — cache deliveries, database reads, the raw-file
//! conversion pipeline with bounded buffers and a worker pool, and the WRITE
//! policy — in virtual time.

use crate::cost::CostModel;
use scanraw_types::WritePolicy;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};

/// Shape of the simulated raw file.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FileSpec {
    pub n_chunks: usize,
    pub rows_per_chunk: u64,
    pub cols: usize,
    /// Average text bytes per attribute value, delimiter included. The
    /// paper's uniform `u32 < 2^31` values average ≈ 9.48 digits, plus one
    /// separator byte.
    pub text_bytes_per_value: f64,
    /// Bytes per value in the database representation (8 for this
    /// repository's Int64 columns; the paper's system stored 4-byte
    /// integers, hence its 40 GB → 16 GB text-to-binary ratio).
    pub binary_bytes_per_value: f64,
}

impl FileSpec {
    /// The paper's synthetic suite: `rows × cols` of uniform `u32 < 2^31`.
    pub fn synthetic(rows: u64, cols: usize, chunk_rows: u64) -> Self {
        FileSpec {
            n_chunks: rows.div_ceil(chunk_rows) as usize,
            rows_per_chunk: chunk_rows,
            cols,
            text_bytes_per_value: 10.48,
            binary_bytes_per_value: 8.0,
        }
    }

    pub fn text_bytes_per_chunk(&self) -> f64 {
        self.rows_per_chunk as f64 * self.cols as f64 * self.text_bytes_per_value
    }

    pub fn binary_bytes_per_chunk(&self) -> f64 {
        self.rows_per_chunk as f64 * self.cols as f64 * self.binary_bytes_per_value
    }

    pub fn total_text_bytes(&self) -> f64 {
        self.text_bytes_per_chunk() * self.n_chunks as f64
    }
}

/// Per-query parameters (selective conversion, Figure 6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuerySpec {
    /// Columns converted by PARSE (engine consumes the same).
    pub convert_cols: usize,
    /// Leading attributes the tokenizer splits (selective tokenizing).
    pub tokenize_cols: usize,
}

impl QuerySpec {
    /// Convert everything — the paper's default regime.
    pub fn full(file: &FileSpec) -> Self {
        QuerySpec {
            convert_cols: file.cols,
            tokenize_cols: file.cols,
        }
    }
}

/// Simulator configuration (mirrors [`scanraw_types::ScanRawConfig`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    pub workers: usize,
    /// Cores of the simulated machine (paper server: 16).
    pub cores: usize,
    pub text_buffer: usize,
    pub position_buffer: usize,
    pub cache_chunks: usize,
    pub policy: WritePolicy,
    pub cost: CostModel,
    /// Record disk/CPU busy spans for utilization timelines (Figure 9).
    pub record_timeline: bool,
    /// Bias cache eviction toward chunks already loaded in the database
    /// (paper §3.1). Disable for the ablation study.
    pub cache_bias: bool,
    /// Coordinate device access (READ priority; WRITE runs only when READ
    /// cannot) — the paper's §3.2.1 arbitration. When disabled, WRITE takes
    /// the device whenever its queue is non-empty, interleaving with reads
    /// and paying direction-switch penalties (the ablation baseline).
    pub arbitration: bool,
}

impl SimConfig {
    /// Paper-like defaults: 16 cores, 8-slot stage buffers.
    pub fn new(workers: usize, policy: WritePolicy, cost: CostModel) -> Self {
        SimConfig {
            workers,
            cores: 16,
            text_buffer: 8,
            position_buffer: 8,
            cache_chunks: 32,
            policy,
            cost,
            record_timeline: false,
            cache_bias: true,
            arbitration: true,
        }
    }
}

/// One busy interval of a simulated resource, in seconds since query start.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    pub start: f64,
    pub end: f64,
}

/// A point of a utilization timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilSample {
    pub at: f64,
    pub value: f64,
}

/// Outcome of one simulated query.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySim {
    pub elapsed_secs: f64,
    pub from_cache: usize,
    pub from_db: usize,
    pub from_raw: usize,
    /// Writes completed while this query ran (including the drain of the
    /// previous query's speculative tail).
    pub chunks_written: usize,
    /// Chunks loaded in the database after the query (and its carried
    /// writes were queued — pending ones not yet counted).
    pub loaded_after: usize,
    /// Disk busy spans split by direction (empty unless `record_timeline`).
    pub disk_read_spans: Vec<Span>,
    pub disk_write_spans: Vec<Span>,
    /// Worker-CPU busy spans (empty unless `record_timeline`).
    pub cpu_spans: Vec<Span>,
}

impl QuerySim {
    /// Utilization of a span set over `window`-second buckets, as a fraction
    /// (CPU spans can exceed 1.0 with multiple workers).
    pub fn utilization(spans: &[Span], window: f64, until: f64) -> Vec<UtilSample> {
        assert!(window > 0.0);
        let n = (until / window).ceil().max(1.0) as usize;
        let mut busy = vec![0.0f64; n];
        for s in spans {
            let mut cur = s.start;
            while cur < s.end {
                let idx = ((cur / window) as usize).min(n - 1);
                let win_end = (idx as f64 + 1.0) * window;
                let seg_end = s.end.min(win_end);
                busy[idx] += seg_end - cur;
                cur = seg_end.max(cur + 1e-12);
            }
        }
        (0..n)
            .map(|i| UtilSample {
                at: i as f64 * window,
                value: busy[i] / window,
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Cache mirror (id-level twin of scanraw::ChunkCache)
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct SimCache {
    cap: usize,
    /// Prefer evicting already-loaded entries (load-biased LRU).
    bias: bool,
    entries: HashMap<usize, CacheEntry>,
    next_stamp: u64,
    next_seq: u64,
}

#[derive(Debug, Clone, Copy)]
struct CacheEntry {
    loaded: bool,
    stamp: u64,
    seq: u64,
}

impl SimCache {
    fn new(cap: usize, bias: bool) -> Self {
        SimCache {
            cap: cap.max(1),
            bias,
            ..Default::default()
        }
    }

    fn contains(&self, id: usize) -> bool {
        self.entries.contains_key(&id)
    }

    fn touch(&mut self, id: usize) {
        self.next_stamp += 1;
        let stamp = self.next_stamp;
        if let Some(e) = self.entries.get_mut(&id) {
            e.stamp = stamp;
        }
    }

    /// Insert; returns evicted (id, loaded) if the cache was full.
    fn insert(&mut self, id: usize, loaded: bool) -> Option<(usize, bool)> {
        self.next_stamp += 1;
        self.next_seq += 1;
        let (stamp, seq) = (self.next_stamp, self.next_seq);
        if let Some(e) = self.entries.get_mut(&id) {
            e.stamp = stamp;
            e.loaded = loaded;
            return None;
        }
        let mut evicted = None;
        if self.entries.len() >= self.cap {
            // Load-biased LRU: prefer evicting loaded entries (plain LRU
            // when the bias is disabled for the ablation study).
            let biased = if self.bias {
                self.entries
                    .iter()
                    .filter(|(_, e)| e.loaded)
                    .min_by_key(|(_, e)| e.stamp)
            } else {
                None
            };
            let victim = biased
                .or_else(|| self.entries.iter().min_by_key(|(_, e)| e.stamp))
                .map(|(id, e)| (*id, e.loaded));
            if let Some((vid, vloaded)) = victim {
                self.entries.remove(&vid);
                evicted = Some((vid, vloaded));
            }
        }
        self.entries.insert(id, CacheEntry { loaded, stamp, seq });
        evicted
    }

    fn mark_loaded(&mut self, id: usize) {
        if let Some(e) = self.entries.get_mut(&id) {
            e.loaded = true;
        }
    }

    fn oldest_unloaded(&self, exclude: &HashSet<usize>) -> Option<usize> {
        self.entries
            .iter()
            .filter(|(id, e)| !e.loaded && !exclude.contains(id))
            .min_by_key(|(_, e)| e.seq)
            .map(|(id, _)| *id)
    }

    fn unloaded(&self, exclude: &HashSet<usize>) -> Vec<usize> {
        let mut v: Vec<(u64, usize)> = self
            .entries
            .iter()
            .filter(|(id, e)| !e.loaded && !exclude.contains(id))
            .map(|(id, e)| (e.seq, *id))
            .collect();
        v.sort_unstable();
        v.into_iter().map(|(_, id)| id).collect()
    }
}

// ---------------------------------------------------------------------------
// The simulator
// ---------------------------------------------------------------------------

/// Persistent operator state across simulated queries.
pub struct Simulator {
    pub cfg: SimConfig,
    pub file: FileSpec,
    loaded: Vec<bool>,
    cache: SimCache,
    /// Speculative writes carried from the previous query (drained before
    /// the next query's first device read).
    carried_writes: VecDeque<usize>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Source {
    Cache(usize),
    Db(usize),
    Raw(usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DiskOp {
    ReadRaw(usize),
    ReadDb(usize),
    Write(usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    Disk,
    Tokenized(usize),
    Parsed(usize),
    Consumed(usize),
}

impl Simulator {
    pub fn new(cfg: SimConfig, file: FileSpec) -> Self {
        let cache = SimCache::new(cfg.cache_chunks, cfg.cache_bias);
        Simulator {
            cfg,
            file,
            loaded: vec![false; file.n_chunks],
            cache,
            carried_writes: VecDeque::new(),
        }
    }

    /// Empties the binary-chunk cache (models a stateless external-table
    /// operator that does not persist state across queries).
    pub fn clear_cache(&mut self) {
        self.cache = SimCache::new(self.cfg.cache_chunks, self.cfg.cache_bias);
    }

    /// Writes queued but not yet completed (the speculative tail carried to
    /// the next query).
    pub fn pending_loads(&self) -> usize {
        self.carried_writes.len()
    }

    /// Chunks currently loaded in the database.
    pub fn loaded_count(&self) -> usize {
        self.loaded.iter().filter(|&&b| b).count()
    }

    /// True when the whole file is in the database.
    pub fn fully_loaded(&self) -> bool {
        self.loaded.iter().all(|&b| b)
    }

    /// Runs one query over the whole file (the paper's workload touches
    /// every chunk; selection-driven skipping is orthogonal here).
    pub fn run_query(&mut self, q: &QuerySpec) -> QuerySim {
        assert!(q.convert_cols >= 1 && q.convert_cols <= self.file.cols);
        assert!(q.tokenize_cols >= 1 && q.tokenize_cols <= self.file.cols);

        // Build the delivery plan: cache → db → raw (§3.2.1).
        let mut plan: Vec<Source> = Vec::with_capacity(self.file.n_chunks);
        for id in 0..self.file.n_chunks {
            if self.cache.contains(id) {
                plan.push(Source::Cache(id));
            }
        }
        for id in 0..self.file.n_chunks {
            if !self.cache.contains(id) && self.loaded[id] {
                plan.push(Source::Db(id));
            }
        }
        for id in 0..self.file.n_chunks {
            if !self.cache.contains(id) && !self.loaded[id] {
                plan.push(Source::Raw(id));
            }
        }
        let expected = plan.len();
        let raw_total = plan.iter().filter(|s| matches!(s, Source::Raw(_))).count();

        // Per-chunk costs in nanoseconds.
        let cost = &self.cfg.cost;
        let text_bytes = self.file.text_bytes_per_chunk();
        let split_frac = q.tokenize_cols as f64 / self.file.cols as f64;
        let tokenize_ns = cost.dispatch_ns
            + cost.tokenize_split_ns_per_byte * text_bytes * split_frac
            + cost.tokenize_skip_ns_per_byte * text_bytes * (1.0 - split_frac);
        let values_converted = self.file.rows_per_chunk as f64 * q.convert_cols as f64;
        let parse_ns = cost.dispatch_ns + cost.parse_ns_per_value * values_converted;
        let engine_ns = cost.engine_ns_per_value * values_converted;
        let raw_read_ns = cost.read_secs(text_bytes) * 1e9;
        let db_read_ns = cost.read_secs(self.file.binary_bytes_per_chunk()) * 1e9;
        let write_ns = cost.write_secs(self.file.binary_bytes_per_chunk()) * 1e9;
        let seek_ns = cost.seek_ns;

        let slots = if self.cfg.workers == 0 {
            1
        } else {
            self.cfg.workers.min(self.cfg.cores).max(1)
        };
        let serialize_read = self.cfg.workers == 0;
        let wait_for_writes = matches!(
            self.cfg.policy,
            WritePolicy::Eager | WritePolicy::Buffered | WritePolicy::Invisible { .. }
        );

        // --- event machinery ---
        let mut now: u64 = 0;
        let mut seq: u64 = 0;
        let mut events: BinaryHeap<Reverse<(u64, u64, Ev)>> = BinaryHeap::new();

        // --- pipeline state ---
        let mut deliver_idx = 0usize;
        let mut text_q: VecDeque<usize> = VecDeque::new();
        let mut pos_q: VecDeque<usize> = VecDeque::new();
        let mut out_q: VecDeque<usize> = VecDeque::new();
        let mut tokenizing = 0usize;
        let mut parsing = 0usize;
        let mut busy_workers = 0usize;
        let mut engine_busy = false;
        let mut engine_done = 0usize;
        let mut disk: Option<DiskOp> = None;
        let mut disk_dir: Option<bool> = None; // true = read
        let mut disk_started: u64 = 0;
        let mut write_q: VecDeque<usize> = VecDeque::new();
        let mut pending_write: HashSet<usize> = HashSet::new();
        let mut startup_drain = self.carried_writes.len();
        for id in self.carried_writes.drain(..) {
            pending_write.insert(id);
            write_q.push_back(id);
        }
        let mut raw_read_done = 0usize;
        let mut safeguard_fired = false;
        let mut invisible_quota = match self.cfg.policy {
            WritePolicy::Invisible { chunks_per_query } => chunks_per_query as usize,
            _ => 0,
        };
        let mut from_cache = 0usize;
        let mut from_db = 0usize;
        let mut from_raw = 0usize;
        let mut chunks_written = 0usize;
        let mut disk_read_spans: Vec<Span> = Vec::new();
        let mut disk_write_spans: Vec<Span> = Vec::new();
        let mut cpu_spans: Vec<Span> = Vec::new();
        let record = self.cfg.record_timeline;
        let mut end_time: u64 = 0;

        macro_rules! push_ev {
            ($t:expr, $e:expr) => {{
                seq += 1;
                events.push(Reverse(($t, seq, $e)));
            }};
        }

        // The dispatch closure is expressed as a macro to borrow state
        // mutably without fighting the borrow checker.
        macro_rules! dispatch {
            () => {{
                let mut progressed = true;
                while progressed {
                    progressed = false;

                    // Safeguard flush: once the raw scan finished and the
                    // conversion pipeline drained, everything still cached
                    // and unloaded is queued for storing (§4). Independent
                    // of the device state — writes overlap the engine tail.
                    if let WritePolicy::Speculative { safeguard: true } = self.cfg.policy {
                        if !safeguard_fired
                            && raw_read_done == raw_total
                            && text_q.is_empty()
                            && pos_q.is_empty()
                            && tokenizing == 0
                            && parsing == 0
                        {
                            safeguard_fired = true;
                            for id in self.cache.unloaded(&pending_write) {
                                pending_write.insert(id);
                                write_q.push_back(id);
                            }
                        }
                    }

                    // 0. Cache deliveries (no device involved).
                    while deliver_idx < plan.len() {
                        if let Source::Cache(id) = plan[deliver_idx] {
                            if out_q.len() + parsing < self.cfg.cache_chunks.max(2) {
                                self.cache.touch(id);
                                out_q.push_back(id);
                                from_cache += 1;
                                deliver_idx += 1;
                                progressed = true;
                                continue;
                            }
                        }
                        break;
                    }

                    // 1. PARSE first (downstream priority).
                    while busy_workers < slots
                        && !pos_q.is_empty()
                        && out_q.len() + parsing < self.cfg.cache_chunks.max(2)
                    {
                        let id = pos_q.pop_front().expect("checked");
                        busy_workers += 1;
                        parsing += 1;
                        if record {
                            cpu_spans.push(Span {
                                start: now as f64 * 1e-9,
                                end: (now as f64 + parse_ns) * 1e-9,
                            });
                        }
                        push_ev!(now + parse_ns as u64, Ev::Parsed(id));
                        progressed = true;
                    }

                    // 2. TOKENIZE.
                    while busy_workers < slots
                        && !text_q.is_empty()
                        && pos_q.len() + tokenizing < self.cfg.position_buffer
                    {
                        let id = text_q.pop_front().expect("checked");
                        busy_workers += 1;
                        tokenizing += 1;
                        if record {
                            cpu_spans.push(Span {
                                start: now as f64 * 1e-9,
                                end: (now as f64 + tokenize_ns) * 1e-9,
                            });
                        }
                        push_ev!(now + tokenize_ns as u64, Ev::Tokenized(id));
                        progressed = true;
                    }

                    // 3. Engine.
                    if !engine_busy {
                        if let Some(id) = out_q.pop_front() {
                            engine_busy = true;
                            push_ev!(now + engine_ns as u64, Ev::Consumed(id));
                            progressed = true;
                        }
                    }

                    // 4. Device.
                    if disk.is_none() {
                        // 4a. Determine whether READ can and wants to go.
                        let mut read_blocked = false;
                        let mut started_read = false;
                        let write_preempts = !self.cfg.arbitration && !write_q.is_empty();
                        if !write_preempts && startup_drain == 0 && deliver_idx < plan.len() {
                            match plan[deliver_idx] {
                                Source::Cache(_) => {} // handled in step 0
                                Source::Db(_) => {
                                    if out_q.len() + parsing < self.cfg.cache_chunks.max(2) {
                                        let Source::Db(id) = plan[deliver_idx] else {
                                            unreachable!()
                                        };
                                        let mut dur = db_read_ns;
                                        if disk_dir == Some(false) {
                                            dur += seek_ns;
                                        }
                                        disk = Some(DiskOp::ReadDb(id));
                                        disk_dir = Some(true);
                                        disk_started = now;
                                        deliver_idx += 1;
                                        push_ev!(now + dur as u64, Ev::Disk);
                                        started_read = true;
                                    } else {
                                        read_blocked = true;
                                    }
                                }
                                Source::Raw(_) => {
                                    let room = text_q.len() < self.cfg.text_buffer;
                                    let serial_ok = !serialize_read
                                        || (text_q.is_empty()
                                            && pos_q.is_empty()
                                            && busy_workers == 0);
                                    if room && serial_ok {
                                        let Source::Raw(id) = plan[deliver_idx] else {
                                            unreachable!()
                                        };
                                        let mut dur = raw_read_ns;
                                        if disk_dir == Some(false) {
                                            dur += seek_ns;
                                        }
                                        disk = Some(DiskOp::ReadRaw(id));
                                        disk_dir = Some(true);
                                        disk_started = now;
                                        deliver_idx += 1;
                                        push_ev!(now + dur as u64, Ev::Disk);
                                        started_read = true;
                                    } else {
                                        read_blocked = true;
                                    }
                                }
                            }
                        }
                        if started_read {
                            progressed = true;
                        } else {
                            // 4b. Speculative trigger: READ is blocked (or
                            // there is nothing left to read) and the disk is
                            // idle.
                            let _raw_done = raw_read_done == raw_total;
                            if matches!(self.cfg.policy, WritePolicy::Speculative { .. })
                                && (read_blocked || deliver_idx >= plan.len())
                                && write_q.is_empty()
                            {
                                if let Some(id) = self.cache.oldest_unloaded(&pending_write) {
                                    // One chunk at a time (§4).
                                    pending_write.insert(id);
                                    write_q.push_back(id);
                                }
                            }
                            // 4c. WRITE gets the device: always during the
                            // startup drain, otherwise only when READ is not
                            // able to use it.
                            if !write_q.is_empty() {
                                let write_allowed = if startup_drain > 0 {
                                    true
                                } else {
                                    match self.cfg.policy {
                                        WritePolicy::Speculative { .. } => {
                                            read_blocked || raw_read_done == raw_total
                                        }
                                        _ => true, // read had priority above
                                    }
                                };
                                if write_allowed {
                                    let id = write_q.pop_front().expect("checked");
                                    let mut dur = write_ns;
                                    if disk_dir == Some(true) {
                                        dur += seek_ns;
                                    }
                                    disk = Some(DiskOp::Write(id));
                                    disk_dir = Some(false);
                                    disk_started = now;
                                    push_ev!(now + dur as u64, Ev::Disk);
                                    progressed = true;
                                }
                            }
                        }
                    }
                }
            }};
        }

        dispatch!();

        // Main event loop.
        while let Some(Reverse((t, _, ev))) = events.pop() {
            now = t;
            match ev {
                Ev::Disk => {
                    let op = disk.take().expect("disk op in flight");
                    if record {
                        let span = Span {
                            start: disk_started as f64 * 1e-9,
                            end: now as f64 * 1e-9,
                        };
                        match op {
                            DiskOp::Write(_) => disk_write_spans.push(span),
                            _ => disk_read_spans.push(span),
                        }
                    }
                    match op {
                        DiskOp::ReadRaw(id) => {
                            text_q.push_back(id);
                            from_raw += 1;
                            raw_read_done += 1;
                        }
                        DiskOp::ReadDb(id) => {
                            out_q.push_back(id);
                            from_db += 1;
                            self.cache.insert(id, true);
                        }
                        DiskOp::Write(id) => {
                            self.loaded[id] = true;
                            self.cache.mark_loaded(id);
                            pending_write.remove(&id);
                            chunks_written += 1;
                            startup_drain = startup_drain.saturating_sub(1);
                        }
                    }
                }
                Ev::Tokenized(id) => {
                    busy_workers -= 1;
                    tokenizing -= 1;
                    pos_q.push_back(id);
                }
                Ev::Parsed(id) => {
                    busy_workers -= 1;
                    parsing -= 1;
                    out_q.push_back(id);
                    // Cache insert + policy hooks.
                    let evicted = self.cache.insert(id, self.loaded[id]);
                    match self.cfg.policy {
                        WritePolicy::Eager => {
                            if !self.loaded[id] && pending_write.insert(id) {
                                write_q.push_back(id);
                            }
                        }
                        WritePolicy::Invisible { .. } if invisible_quota > 0 => {
                            if !self.loaded[id] && pending_write.insert(id) {
                                invisible_quota -= 1;
                                write_q.push_back(id);
                            }
                        }
                        WritePolicy::Buffered => {
                            if let Some((vid, vloaded)) = evicted {
                                if !vloaded && pending_write.insert(vid) {
                                    write_q.push_back(vid);
                                }
                            }
                        }
                        _ => {
                            let _ = evicted;
                        }
                    }
                }
                Ev::Consumed(_) => {
                    engine_busy = false;
                    engine_done += 1;
                }
            }

            dispatch!();

            // Completion check.
            let engine_finished = engine_done == expected;
            let writes_finished = write_q.is_empty() && !matches!(disk, Some(DiskOp::Write(_)));
            if engine_finished && (!wait_for_writes || writes_finished) {
                end_time = now;
                break;
            }
        }
        if end_time == 0 {
            end_time = now;
        }
        debug_assert_eq!(engine_done, expected, "every planned chunk delivered");

        // Carry unfinished speculative writes to the next query.
        if let Some(DiskOp::Write(id)) = disk {
            // Treat the in-flight write as still pending.
            write_q.push_front(id);
        }
        // The query can end (engine done) while a write still holds the
        // device, before the safeguard had a chance to fire; flush the
        // remaining unloaded cached chunks into the carried set so every
        // query is guaranteed to make loading progress (§4).
        if let WritePolicy::Speculative { safeguard: true } = self.cfg.policy {
            if !safeguard_fired {
                for id in self.cache.unloaded(&pending_write) {
                    pending_write.insert(id);
                    write_q.push_back(id);
                }
            }
        }
        self.carried_writes = write_q.iter().copied().collect();

        QuerySim {
            elapsed_secs: end_time as f64 * 1e-9,
            from_cache,
            from_db,
            from_raw,
            chunks_written,
            loaded_after: self.loaded_count(),
            disk_read_spans,
            disk_write_spans,
            cpu_spans,
        }
    }

    /// Runs `n` identical full-conversion queries back to back (Figure 8).
    pub fn run_sequence(&mut self, n: usize) -> Vec<QuerySim> {
        let q = QuerySpec::full(&self.file);
        (0..n).map(|_| self.run_query(&q)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file() -> FileSpec {
        // 64 chunks of 2^14 rows × 16 cols.
        FileSpec::synthetic(64 * (1 << 14), 16, 1 << 14)
    }

    fn cfg(workers: usize, policy: WritePolicy) -> SimConfig {
        SimConfig::new(workers, policy, CostModel::nominal())
    }

    #[test]
    fn all_chunks_delivered_exactly_once() {
        let mut sim = Simulator::new(cfg(4, WritePolicy::ExternalTables), file());
        let r = sim.run_query(&QuerySpec::full(&file()));
        assert_eq!(r.from_raw, 64);
        assert_eq!(r.from_cache + r.from_db, 0);
        assert_eq!(r.chunks_written, 0);
        assert_eq!(r.loaded_after, 0);
    }

    #[test]
    fn more_workers_never_slower() {
        let mut prev = f64::INFINITY;
        for w in [0, 1, 2, 4, 8, 16] {
            let mut sim = Simulator::new(cfg(w, WritePolicy::ExternalTables), file());
            let r = sim.run_query(&QuerySpec::full(&file()));
            assert!(
                r.elapsed_secs <= prev * 1.001,
                "w={w}: {} > prev {prev}",
                r.elapsed_secs
            );
            prev = r.elapsed_secs;
        }
    }

    #[test]
    fn plateau_is_io_bound() {
        let f = file();
        let mut sim = Simulator::new(cfg(16, WritePolicy::ExternalTables), f);
        let r = sim.run_query(&QuerySpec::full(&f));
        let io_floor = CostModel::nominal().read_secs(f.total_text_bytes());
        assert!(r.elapsed_secs >= io_floor * 0.999);
        assert!(
            r.elapsed_secs <= io_floor * 1.25,
            "16 workers should be close to the I/O floor: {} vs {io_floor}",
            r.elapsed_secs
        );
    }

    #[test]
    fn eager_loads_everything_and_is_not_faster() {
        let f = file();
        let mut ext = Simulator::new(cfg(8, WritePolicy::ExternalTables), f);
        let ext_t = ext.run_query(&QuerySpec::full(&f)).elapsed_secs;
        let mut eager = Simulator::new(cfg(8, WritePolicy::Eager), f);
        let r = eager.run_query(&QuerySpec::full(&f));
        assert!(eager.fully_loaded());
        assert_eq!(r.chunks_written, 64);
        assert!(r.elapsed_secs >= ext_t * 0.999);
    }

    #[test]
    fn speculative_first_query_matches_external_tables_when_io_bound() {
        let f = file();
        let mut ext = Simulator::new(cfg(16, WritePolicy::ExternalTables), f);
        let ext_t = ext.run_query(&QuerySpec::full(&f)).elapsed_secs;
        let mut spec = Simulator::new(cfg(16, WritePolicy::speculative()), f);
        let r = spec.run_query(&QuerySpec::full(&f));
        // The speculative run may finish writes after the query; elapsed must
        // match external tables almost exactly.
        assert!(
            (r.elapsed_secs - ext_t).abs() / ext_t < 0.02,
            "spec {} vs ext {ext_t}",
            r.elapsed_secs
        );
    }

    #[test]
    fn speculative_loads_heavily_when_cpu_bound() {
        let f = file();
        // One worker with expensive parsing → conversion is the bottleneck →
        // the disk idles → the scheduler loads almost everything for free.
        let mut cost = CostModel::nominal();
        cost.parse_ns_per_value *= 8.0;
        let mut sim = Simulator::new(
            SimConfig::new(1, WritePolicy::speculative(), cost.clone()),
            f,
        );
        let r = sim.run_query(&QuerySpec::full(&f));
        assert!(
            r.chunks_written + sim.carried_writes.len() >= f.n_chunks / 2,
            "cpu-bound speculative should load much of the file: {} written, {} carried",
            r.chunks_written,
            sim.carried_writes.len()
        );
        // And it must not be slower than external tables.
        let mut ext = Simulator::new(SimConfig::new(1, WritePolicy::ExternalTables, cost), f);
        let ext_t = ext.run_query(&QuerySpec::full(&f)).elapsed_secs;
        assert!(
            (r.elapsed_secs - ext_t).abs() / ext_t < 0.02,
            "spec {} vs ext {ext_t}",
            r.elapsed_secs
        );
    }

    #[test]
    fn sequence_converges_to_database_reads() {
        let f = file();
        let mut sim = Simulator::new(cfg(16, WritePolicy::speculative()), f);
        let results = sim.run_sequence(8);
        // Query times must be non-increasing (within tolerance).
        for w in results.windows(2) {
            assert!(
                w[1].elapsed_secs <= w[0].elapsed_secs * 1.02,
                "{} then {}",
                w[0].elapsed_secs,
                w[1].elapsed_secs
            );
        }
        let last = results.last().expect("non-empty");
        assert_eq!(last.from_raw, 0, "converged: no more raw conversion");
        assert!(sim.fully_loaded());
        // Converged time ≈ binary read time of the uncached part.
        let binary_secs =
            CostModel::nominal().read_secs(f.binary_bytes_per_chunk() * (f.n_chunks - 32) as f64);
        assert!(last.elapsed_secs <= binary_secs * 1.5);
    }

    #[test]
    fn buffered_writes_on_eviction_only() {
        let f = file();
        let mut sim = Simulator::new(cfg(8, WritePolicy::Buffered), f);
        let r = sim.run_query(&QuerySpec::full(&f));
        // 64 chunks through a 32-slot cache → 32 evictions written.
        assert_eq!(r.chunks_written, 32);
        assert_eq!(sim.loaded_count(), 32);
    }

    #[test]
    fn invisible_quota_respected() {
        let f = file();
        let mut sim = Simulator::new(
            cfg(
                8,
                WritePolicy::Invisible {
                    chunks_per_query: 4,
                },
            ),
            f,
        );
        let r = sim.run_query(&QuerySpec::full(&f));
        assert_eq!(r.chunks_written, 4);
        let r2 = sim.run_query(&QuerySpec::full(&f));
        assert!(r2.chunks_written <= 4);
    }

    #[test]
    fn selective_conversion_is_cheaper() {
        let f = file();
        let full = Simulator::new(cfg(1, WritePolicy::ExternalTables), f)
            .run_query(&QuerySpec::full(&f))
            .elapsed_secs;
        let selective = Simulator::new(cfg(1, WritePolicy::ExternalTables), f)
            .run_query(&QuerySpec {
                convert_cols: 2,
                tokenize_cols: 2,
            })
            .elapsed_secs;
        assert!(
            selective < full,
            "selective {selective} should beat full {full}"
        );
    }

    #[test]
    fn second_query_uses_cache_first() {
        let f = FileSpec::synthetic(16 * (1 << 14), 16, 1 << 14); // 16 chunks < cache
        let mut sim = Simulator::new(cfg(8, WritePolicy::ExternalTables), f);
        sim.run_query(&QuerySpec::full(&f));
        let r2 = sim.run_query(&QuerySpec::full(&f));
        assert_eq!(r2.from_cache, 16);
        assert_eq!(r2.from_raw, 0);
        assert!(r2.elapsed_secs < 0.05, "cache-only query is near-instant");
    }

    #[test]
    fn timeline_spans_recorded_when_enabled() {
        let f = file();
        let mut c = cfg(2, WritePolicy::speculative());
        c.record_timeline = true;
        let mut sim = Simulator::new(c, f);
        let r = sim.run_query(&QuerySpec::full(&f));
        assert!(!r.disk_read_spans.is_empty());
        assert!(!r.cpu_spans.is_empty());
        let util = QuerySim::utilization(&r.disk_read_spans, 0.1, r.elapsed_secs);
        assert!(util.iter().any(|u| u.value > 0.5));
        assert!(util.iter().all(|u| u.value <= 1.0 + 1e-9));
    }

    #[test]
    fn zero_workers_is_fully_serial() {
        let f = FileSpec::synthetic(8 * (1 << 14), 16, 1 << 14);
        let mut sim = Simulator::new(cfg(0, WritePolicy::ExternalTables), f);
        let r = sim.run_query(&QuerySpec::full(&f));
        let cost = CostModel::nominal();
        let per_chunk = cost.read_secs(f.text_bytes_per_chunk())
            + (cost.dispatch_ns
                + cost.tokenize_split_ns_per_byte * f.text_bytes_per_chunk()
                + cost.dispatch_ns
                + cost.parse_ns_per_value * (f.rows_per_chunk as f64 * f.cols as f64))
                * 1e-9;
        let serial_floor = per_chunk * f.n_chunks as f64;
        assert!(
            r.elapsed_secs >= serial_floor * 0.98,
            "{} vs floor {serial_floor}",
            r.elapsed_secs
        );
    }
}
