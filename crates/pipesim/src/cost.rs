//! The cost model feeding the simulator, and its calibration from the real
//! conversion stages.

use scanraw_rawfile::generate::{csv_bytes, CsvSpec};
use scanraw_rawfile::{parse_chunk, tokenize_chunk, TextDialect};
use scanraw_types::{ChunkId, Schema, TextChunk};
use std::time::Instant;

/// Per-unit costs of every pipeline activity, in nanoseconds.
///
/// The CPU-side constants are intended to be *measured* on the machine the
/// experiments run on ([`measure_cost_model`]); the device-side constants
/// default to the paper's storage system (§5 "System": 436 MB/s average
/// read).
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Device read bandwidth, bytes/second.
    pub read_bw: f64,
    /// Device write bandwidth, bytes/second.
    pub write_bw: f64,
    /// Latency of switching the device between reading and writing, ns.
    pub seek_ns: f64,
    /// TOKENIZE: ns per byte scanned while splitting attributes.
    pub tokenize_split_ns_per_byte: f64,
    /// TOKENIZE: ns per byte skipped while only looking for the newline
    /// (the cheap tail of selective tokenizing).
    pub tokenize_skip_ns_per_byte: f64,
    /// PARSE(+MAP): ns per attribute value converted to binary.
    pub parse_ns_per_value: f64,
    /// Execution engine: ns per value consumed (the paper's engine is
    /// I/O-bound; this is deliberately small).
    pub engine_ns_per_value: f64,
    /// Fixed scheduling/dispatch overhead per worker task, ns (drives the
    /// small-chunk penalty of Figure 7).
    pub dispatch_ns: f64,
}

impl CostModel {
    /// Paper-nominal device over calibrated-CPU defaults: used when a quick
    /// model is needed without running calibration (unit tests).
    pub fn nominal() -> Self {
        CostModel {
            read_bw: 436.0 * 1024.0 * 1024.0,
            write_bw: 436.0 * 1024.0 * 1024.0,
            seek_ns: 5.0e6,
            tokenize_split_ns_per_byte: 1.2,
            tokenize_skip_ns_per_byte: 0.3,
            parse_ns_per_value: 25.0,
            engine_ns_per_value: 1.0,
            dispatch_ns: 30_000.0,
        }
    }

    /// Rescales the device bandwidth so that one conversion worker saturates
    /// `1/n` of the disk — i.e. the CPU↔I/O crossover lands at `n` workers,
    /// matching the paper's hardware ratio (§5.1 reports the crossover at 6
    /// workers for the 2^26×64 file). Used for the "paper-ratio" variants of
    /// the figure harnesses; the calibrated model keeps the nominal device.
    pub fn with_crossover_at(mut self, n: f64, text_bytes_per_value: f64) -> Self {
        // One worker converts one value in (tokenize + parse) ns; it
        // consumes text_bytes_per_value bytes in that time.
        let ns_per_value =
            self.tokenize_split_ns_per_byte * text_bytes_per_value + self.parse_ns_per_value;
        let worker_bytes_per_sec = text_bytes_per_value / (ns_per_value * 1e-9);
        self.read_bw = worker_bytes_per_sec * n;
        self.write_bw = self.read_bw;
        self
    }

    /// Seconds to read `bytes` from the device.
    pub fn read_secs(&self, bytes: f64) -> f64 {
        bytes / self.read_bw
    }

    /// Seconds to write `bytes` to the device.
    pub fn write_secs(&self, bytes: f64) -> f64 {
        bytes / self.write_bw
    }
}

/// Measures the CPU-side constants by running the real TOKENIZE and PARSE
/// implementations over generated data.
///
/// `rows` controls the measurement size (a few hundred thousand values is
/// enough for a stable estimate; this runs in well under a second in release
/// mode).
pub fn measure_cost_model(rows: u64, cols: usize) -> CostModel {
    let spec = CsvSpec::new(rows, cols, 7);
    let bytes = csv_bytes(&spec);
    let n_bytes = bytes.len() as f64;
    let n_values = (rows as usize * cols) as f64;
    let chunk = TextChunk {
        id: ChunkId(0),
        file_offset: 0,
        first_row: 0,
        rows: rows as u32,
        data: bytes::Bytes::from(bytes),
    };
    let schema = Schema::uniform_ints(cols);

    // TOKENIZE, full split.
    // effect-ok: calibration measures real CPU speed; the wall-clock reading is the product
    let t0 = Instant::now();
    let map = tokenize_chunk(&chunk, TextDialect::CSV, cols).expect("generated data tokenizes");
    let tokenize_ns = t0.elapsed().as_nanos() as f64;

    // TOKENIZE, minimal prefix — isolates the newline-skip cost.
    // effect-ok: calibration measures real CPU speed; the wall-clock reading is the product
    let t0 = Instant::now();
    let _ = scanraw_rawfile::tokenize_chunk_selective(&chunk, TextDialect::CSV, cols, 1)
        .expect("tokenizes");
    let skip_ns = t0.elapsed().as_nanos() as f64;

    // PARSE of every value.
    // effect-ok: calibration measures real CPU speed; the wall-clock reading is the product
    let t0 = Instant::now();
    let parsed = parse_chunk(&chunk, &map, TextDialect::CSV, &schema).expect("parses");
    let parse_ns = t0.elapsed().as_nanos() as f64;

    // Engine: sum all values (the paper's aggregate), per value.
    // effect-ok: calibration measures real CPU speed; the wall-clock reading is the product
    let t0 = Instant::now();
    let mut acc = 0i64;
    for col in parsed.columns.iter().flatten() {
        if let scanraw_types::ColumnData::Int64(v) = col {
            for x in v {
                acc = acc.wrapping_add(*x);
            }
        }
    }
    std::hint::black_box(acc);
    let engine_ns = t0.elapsed().as_nanos() as f64;

    let mut m = CostModel::nominal();
    m.tokenize_split_ns_per_byte = (tokenize_ns / n_bytes).max(0.01);
    m.tokenize_skip_ns_per_byte = (skip_ns / n_bytes).max(0.005);
    m.parse_ns_per_value = (parse_ns / n_values).max(0.1);
    m.engine_ns_per_value = (engine_ns / n_values).max(0.01);
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_is_sane() {
        let m = CostModel::nominal();
        assert!(m.read_bw > 1e8);
        assert!(m.parse_ns_per_value > m.engine_ns_per_value);
        assert!(m.tokenize_split_ns_per_byte > m.tokenize_skip_ns_per_byte);
    }

    #[test]
    fn read_write_seconds() {
        let mut m = CostModel::nominal();
        m.read_bw = 1000.0;
        m.write_bw = 500.0;
        assert!((m.read_secs(2000.0) - 2.0).abs() < 1e-12);
        assert!((m.write_secs(2000.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn crossover_rescaling() {
        let m = CostModel::nominal();
        let text_bytes_per_value = 11.0;
        let m6 = m.clone().with_crossover_at(6.0, text_bytes_per_value);
        let m3 = m.with_crossover_at(3.0, text_bytes_per_value);
        assert!((m6.read_bw / m3.read_bw - 2.0).abs() < 1e-9);
    }

    #[test]
    fn measurement_produces_positive_costs() {
        let m = measure_cost_model(2000, 8);
        assert!(m.tokenize_split_ns_per_byte > 0.0);
        assert!(m.tokenize_skip_ns_per_byte > 0.0);
        assert!(m.parse_ns_per_value > 0.0);
        assert!(m.engine_ns_per_value > 0.0);
        // Parsing a value costs more than scanning one byte.
        assert!(m.parse_ns_per_value > m.tokenize_split_ns_per_byte);
    }
}
