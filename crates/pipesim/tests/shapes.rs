//! Shape tests of the calibrated simulator against the paper's headline
//! qualitative claims — the same properties EXPERIMENTS.md reports, pinned
//! as regressions with the synthetic nominal cost model.

use scanraw_pipesim::{CostModel, FileSpec, QuerySpec, SimConfig, Simulator};
use scanraw_types::WritePolicy;

fn file() -> FileSpec {
    FileSpec::synthetic(128 * (1 << 16), 64, 1 << 16)
}

/// Cost model rescaled so the CPU↔I/O crossover is exactly 6 workers.
fn paper_ratio() -> CostModel {
    CostModel::nominal().with_crossover_at(6.0, 10.48)
}

#[test]
fn crossover_lands_where_configured() {
    let f = file();
    let time = |w: usize| {
        Simulator::new(
            SimConfig::new(w, WritePolicy::ExternalTables, paper_ratio()),
            f,
        )
        .run_query(&QuerySpec::full(&f))
        .elapsed_secs
    };
    let t4 = time(4);
    let t6 = time(6);
    let t8 = time(8);
    let t16 = time(16);
    assert!(
        t6 < t4 * 0.95,
        "still improving up to the crossover: {t6} vs {t4}"
    );
    assert!((t8 - t6).abs() / t6 < 0.02, "flat beyond the crossover");
    assert!((t16 - t6).abs() / t6 < 0.02);
}

#[test]
fn speculative_equals_external_at_every_worker_count() {
    let f = file();
    for w in [0usize, 1, 2, 4, 6, 8, 16] {
        let ext = Simulator::new(
            SimConfig::new(w, WritePolicy::ExternalTables, paper_ratio()),
            f,
        )
        .run_query(&QuerySpec::full(&f))
        .elapsed_secs;
        let spec = Simulator::new(
            SimConfig::new(w, WritePolicy::speculative(), paper_ratio()),
            f,
        )
        .run_query(&QuerySpec::full(&f))
        .elapsed_secs;
        // Fully serial mode (w=0) tolerates slightly more: each speculative
        // write adds a device direction switch that the single-threaded loop
        // cannot hide (the paper's 0-worker bars are equally indistinct).
        let tol = if w == 0 { 0.05 } else { 0.01 };
        assert!(
            (spec - ext).abs() / ext < tol,
            "workers={w}: speculative {spec} vs external {ext}"
        );
    }
}

#[test]
fn eager_is_free_when_cpu_bound_and_costly_when_io_bound() {
    let f = file();
    // CPU-bound (1 worker): the three regimes coincide.
    let at = |w: usize, p: WritePolicy| {
        Simulator::new(SimConfig::new(w, p, paper_ratio()), f)
            .run_query(&QuerySpec::full(&f))
            .elapsed_secs
    };
    let ext1 = at(1, WritePolicy::ExternalTables);
    let eager1 = at(1, WritePolicy::Eager);
    assert!((eager1 - ext1).abs() / ext1 < 0.02, "{eager1} vs {ext1}");
    // I/O-bound (16 workers): eager pays for its writes.
    let ext16 = at(16, WritePolicy::ExternalTables);
    let eager16 = at(16, WritePolicy::Eager);
    assert!(
        eager16 > ext16 * 1.3,
        "loading must cost device time when I/O-bound: {eager16} vs {ext16}"
    );
}

#[test]
fn speculative_loads_all_when_cpu_bound_few_when_io_bound() {
    let f = file();
    let loaded = |w: usize| {
        let mut sim = Simulator::new(
            SimConfig::new(w, WritePolicy::speculative(), paper_ratio()),
            f,
        );
        let r = sim.run_query(&QuerySpec::full(&f));
        r.loaded_after
    };
    assert!(
        loaded(1) as f64 >= f.n_chunks as f64 * 0.9,
        "CPU-bound ⇒ ~all loaded"
    );
    assert!(
        loaded(16) <= f.n_chunks / 8,
        "I/O-bound ⇒ only the end-of-scan trickle: {}",
        loaded(16)
    );
}

#[test]
fn sequence_speculative_q1_free_and_converges() {
    let f = file();
    let mut cfg = SimConfig::new(16, WritePolicy::speculative(), paper_ratio());
    cfg.cache_chunks = 32;
    let mut spec = Simulator::new(cfg, f);
    let seq = spec.run_sequence(8);

    let ext = Simulator::new(
        SimConfig::new(16, WritePolicy::ExternalTables, paper_ratio()),
        f,
    )
    .run_query(&QuerySpec::full(&f))
    .elapsed_secs;

    assert!((seq[0].elapsed_secs - ext).abs() / ext < 0.01, "q1 is free");
    assert!(spec.fully_loaded(), "converged");
    let last = &seq[7];
    assert_eq!(last.from_raw, 0);
    // Steady state is faster than external tables (binary + cache).
    assert!(last.elapsed_secs < ext * 0.85);
}

#[test]
fn fig7_u_shape_exists_at_low_worker_count() {
    // Small chunks pay dispatch overhead; huge chunks lose overlap.
    let rows = 1u64 << 24;
    let time = |chunk_rows: u64| {
        let f = FileSpec::synthetic(rows, 64, chunk_rows);
        Simulator::new(
            SimConfig::new(2, WritePolicy::ExternalTables, paper_ratio()),
            f,
        )
        .run_query(&QuerySpec::full(&f))
        .elapsed_secs
    };
    let tiny = time(1 << 8);
    let mid = time(1 << 14);
    let huge = time(1 << 21);
    assert!(tiny > mid, "dispatch overhead: {tiny} vs {mid}");
    assert!(huge > mid, "fill/drain penalty: {huge} vs {mid}");
}
