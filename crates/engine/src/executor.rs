//! The engine: plans scans over ScanRaw operators and folds aggregates.

use crate::aggregate::{Accumulator, AggExpr};
use crate::expr::Col;
use crate::parallel::{AggSpec, AggState};
use crate::predicate::Predicate;
use crate::query::{Query, QueryResult, ResultRow};
use parking_lot::Mutex;
use scanraw::{
    ChunkStream, ConvertScope, ExecTask, OperatorRegistry, ScanRaw, ScanRequest, ScanSummary, Stage,
};
use scanraw_obs::trace::worker_label;
use scanraw_obs::{json, HistogramSnapshot, JournalEntry, ObsEvent, QueryTrace, TraceId};
use scanraw_rawfile::TextDialect;
use scanraw_storage::{Database, RecoveryReport};
use scanraw_types::{BinaryChunk, Error, RangePredicate, Result, ScanRawConfig, Schema, Value};
use std::collections::HashMap;
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// How the engine folds delivered chunks into query results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Row-at-a-time fold on the calling thread (the reference
    /// implementation; also the oracle for the differential tests).
    Serial,
    /// Chunk-parallel columnar execution: delivered chunks are partitioned
    /// back onto the operator's TOKENIZE/PARSE worker pool, each producing a
    /// partial [`AggState`] that the engine merges in ascending chunk order.
    #[default]
    Parallel,
}

/// Result of running a query through the engine: the rows plus what the scan
/// did underneath (chunk sources, writes triggered, elapsed time).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    pub result: QueryResult,
    pub scan: ScanSummary,
}

/// Outcomes of a shared-scan batch plus the traces it minted: the carrier
/// trace (shared scan, exec tasks, merge) and one trace per query whose root
/// `query` span covers pipeline attach → that query's fold completing. The
/// trace fields are `None` when tracing is disabled on the operator's
/// recorder.
#[derive(Debug, Clone)]
pub struct SharedOutcome {
    pub outcomes: Vec<QueryOutcome>,
    /// Trace carrying the shared scan's spans (root span `query.batch`).
    pub batch_trace: Option<TraceId>,
    /// Per-query traces, parallel to `outcomes`; each holds one root span
    /// named `query`, tagged with the table, `mode=shared`, and a `batch`
    /// tag naming `batch_trace`.
    pub query_traces: Vec<Option<TraceId>>,
}

/// Plan report for a query: what the scan would do and what the optimizer
/// statistics predict (paper §3.3, cardinality estimation).
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainReport {
    pub table: String,
    /// Columns the scan must provide.
    pub projection: Vec<usize>,
    /// True when the filter is range-expressible and chunk skipping applies.
    pub uses_chunk_skipping: bool,
    /// Estimated fraction of rows matching the filter (1.0 without one, or
    /// without statistics).
    pub estimated_selectivity: f64,
    /// Estimated matching rows (None before the first scan established the
    /// layout/row counts).
    pub estimated_rows: Option<u64>,
    /// Chunks expected from each source given current cache/catalog state.
    /// `expect_from_hybrid` counts chunks with *some* (not all) projected
    /// columns loaded, delivered as a database-read + raw-reparse merge when
    /// hybrid reads are enabled.
    pub expect_from_cache: usize,
    pub expect_from_db: usize,
    pub expect_from_hybrid: usize,
    pub expect_from_raw: usize,
}

/// `EXPLAIN ANALYZE` output: the plan-time [`ExplainReport`] plus what the
/// scan actually did, measured from the operator's metrics registry and
/// event journal over this query alone.
#[derive(Debug, Clone)]
pub struct AnalyzeReport {
    /// The plan as predicted before execution.
    pub explain: ExplainReport,
    /// Rows produced and the scan summary (chunk sources, writes, elapsed).
    pub outcome: QueryOutcome,
    /// Actual total time per pipeline stage during this query, in
    /// [`Stage::ALL`] order (READ, TOKENIZE, PARSE, WRITE, DELIVER, EXEC —
    /// the last being consumer-side parallel query execution).
    pub stage_durations: Vec<(&'static str, Duration)>,
    /// Per-chunk latency percentiles `[p50, p95, p99]` in nanoseconds for
    /// each stage, over this query's window of the stage histograms (same
    /// order as `stage_durations`). Zeroes for stages that never ran.
    pub stage_percentiles: Vec<(&'static str, [u64; 3])>,
    /// End-to-end `[p50, p95, p99]` scan latency in nanoseconds over every
    /// query this operator has served so far, `None` before the first.
    pub query_latency_percentiles: Option<[u64; 3]>,
    /// Chunks the speculative policy wrote during this query.
    pub speculative_chunks_written: u64,
    /// Chunks the end-of-scan safeguard flushed during this query.
    pub safeguard_chunks_written: u64,
    /// hits / (hits + misses) over this query; `None` when the cache was
    /// never consulted.
    pub cache_hit_rate: Option<f64>,
    /// Device operations re-issued after transient faults during this query.
    pub io_retries: u64,
    /// Database reads that fell back to raw-file conversion.
    pub db_fallbacks: u64,
    /// True when a permanent device fault degraded the operator to
    /// external-table mode during this query.
    pub load_degraded: bool,
    /// Journal entries recorded while the query ran.
    pub events: Vec<JournalEntry>,
}

impl AnalyzeReport {
    /// The whole report as one JSON document (same schema family as
    /// `Obs::snapshot_json`).
    pub fn to_json(&self) -> scanraw_obs::Value {
        let scan = &self.outcome.scan;
        json!({
            "table": self.explain.table.clone(),
            "projection": self.explain.projection.clone(),
            "estimated_rows": self.explain.estimated_rows,
            "estimated_selectivity": self.explain.estimated_selectivity,
            "expected_sources": {
                "cache": self.explain.expect_from_cache as u64,
                "db": self.explain.expect_from_db as u64,
                "hybrid": self.explain.expect_from_hybrid as u64,
                "raw": self.explain.expect_from_raw as u64,
            },
            "actual_sources": {
                "cache": scan.from_cache as u64,
                "db": scan.from_db as u64,
                "raw": scan.from_raw as u64,
                "hybrid": scan.from_hybrid as u64,
                "skipped": scan.skipped as u64,
            },
            "rows_scanned": self.outcome.result.rows_scanned,
            "elapsed_micros": scan.elapsed.as_micros() as u64,
            "stage_micros": self
                .stage_durations
                .iter()
                .zip(&self.stage_percentiles)
                .map(|((name, d), (_, p))| json!({
                    "stage": *name,
                    "micros": d.as_micros() as u64,
                    "p50_nanos": p[0],
                    "p95_nanos": p[1],
                    "p99_nanos": p[2],
                }))
                .collect::<Vec<_>>(),
            "query_latency_percentiles": self.query_latency_percentiles.map(|p| json!({
                "p50_nanos": p[0],
                "p95_nanos": p[1],
                "p99_nanos": p[2],
            })),
            "speculative_chunks_written": self.speculative_chunks_written,
            "safeguard_chunks_written": self.safeguard_chunks_written,
            "cache_hit_rate": self.cache_hit_rate,
            "io_retries": self.io_retries,
            "db_fallbacks": self.db_fallbacks,
            "load_degraded": self.load_degraded,
            "events": self.events.iter().map(|e| e.to_json()).collect::<Vec<_>>(),
        })
    }
}

/// Table registration data.
struct TableDef {
    raw_file: String,
    schema: Schema,
    dialect: TextDialect,
    config: ScanRawConfig,
}

/// The execution engine façade.
///
/// Holds the database, the ScanRaw operator registry ("when a new query
/// arrives, the execution engine first checks the existence of a
/// corresponding ScanRaw operator", paper §3.3), and table definitions.
pub struct Engine {
    db: Database,
    registry: OperatorRegistry,
    tables: Mutex<HashMap<String, TableDef>>,
    /// Convert scope applied to scans (paper default: all columns).
    /// Interior-mutable so one engine can be tuned and shared behind `Arc`.
    convert_scope: Mutex<ConvertScope>,
    /// Chunk fold strategy; [`ExecMode::Parallel`] by default.
    exec_mode: Mutex<ExecMode>,
    /// Table and trace id of the most recently completed traced query.
    last_trace: Mutex<Option<(String, TraceId)>>,
}

impl Engine {
    pub fn new(db: Database) -> Self {
        Engine {
            db,
            registry: OperatorRegistry::new(),
            // effect-ok: the table map is keyed-access only; nothing iterates it into output
            tables: Mutex::new(HashMap::new()),
            convert_scope: Mutex::new(ConvertScope::AllColumns),
            exec_mode: Mutex::new(ExecMode::default()),
            last_trace: Mutex::new(None),
        }
    }

    /// The current chunk-fold strategy. Each query samples it once at entry,
    /// so a concurrent [`Engine::set_exec_mode`] never splits one query
    /// across strategies.
    pub fn exec_mode(&self) -> ExecMode {
        *self.exec_mode.lock()
    }

    /// Switches the chunk-fold strategy for queries that start from now on.
    pub fn set_exec_mode(&self, mode: ExecMode) {
        *self.exec_mode.lock() = mode;
    }

    /// The convert scope applied to scans.
    pub fn convert_scope(&self) -> ConvertScope {
        *self.convert_scope.lock()
    }

    /// Changes the convert scope for scans that start from now on.
    pub fn set_convert_scope(&self, scope: ConvertScope) {
        *self.convert_scope.lock() = scope;
    }

    /// Mints a per-query trace and opens its root span, or `None` when
    /// tracing is disabled on the operator's span recorder. The guard pins
    /// the root span as the calling thread's current context. `extra` tags
    /// (tenant id, batch size) are appended after the standard table/mode
    /// pair.
    fn begin_trace(
        &self,
        op: &Arc<ScanRaw>,
        table: &str,
        name: &'static str,
        mode: &'static str,
        extra: Vec<(&'static str, String)>,
    ) -> Option<scanraw_obs::trace::SpanGuard> {
        if !op.obs().trace.enabled() {
            return None;
        }
        let trace = op.obs().trace.next_trace();
        op.obs().event(ObsEvent::TraceStarted {
            trace: trace.0,
            table: table.to_string(),
        });
        let mut tags = vec![("table", table.to_string()), ("mode", mode.to_string())];
        tags.extend(extra);
        Some(op.obs().trace.enter_root(trace, name, tags))
    }

    /// Closes a query's root span, journals the completion, and remembers the
    /// trace for [`Engine::take_last_trace`].
    fn end_trace(&self, op: &Arc<ScanRaw>, table: &str, guard: scanraw_obs::trace::SpanGuard) {
        let ctx = guard.ctx();
        drop(guard);
        op.obs().event(ObsEvent::TraceCompleted {
            trace: ctx.trace.0,
            spans: op.obs().trace.span_count(ctx.trace),
        });
        *self.last_trace.lock() = Some((table.to_string(), ctx.trace));
    }

    /// The span tree of the most recently completed traced query, extracted
    /// from the owning operator's recorder. Late write-back spans may still
    /// be open; call the operator's `drain_writes` first for a closed tree
    /// (the [`crate::Session`] wrapper does).
    pub fn last_query_trace(&self) -> Option<QueryTrace> {
        let (table, trace) = self.last_trace.lock().clone()?;
        let op = self.operator(&table).ok()?;
        Some(op.obs().trace.trace(trace))
    }

    pub fn database(&self) -> &Database {
        &self.db
    }

    pub fn registry(&self) -> &OperatorRegistry {
        &self.registry
    }

    /// Registers a raw file as a queryable table.
    pub fn register_table(
        &self,
        name: impl Into<String>,
        raw_file: impl Into<String>,
        schema: Schema,
        dialect: TextDialect,
        config: ScanRawConfig,
    ) -> Result<()> {
        config.validate()?;
        let name = name.into();
        let mut tables = self.tables.lock();
        if tables.contains_key(&name) {
            return Err(Error::query(format!("table '{name}' already registered")));
        }
        tables.insert(
            name,
            TableDef {
                raw_file: raw_file.into(),
                schema,
                dialect,
                config,
            },
        );
        Ok(())
    }

    /// Fetches (or creates) the ScanRaw operator backing a table.
    pub fn operator(&self, table: &str) -> Result<Arc<ScanRaw>> {
        let tables = self.tables.lock();
        let def = tables
            .get(table)
            .ok_or_else(|| Error::query(format!("unknown table '{table}'")))?;
        self.registry.get_or_create(&def.raw_file, || {
            ScanRaw::create(
                self.db.clone(),
                table,
                def.schema.clone(),
                def.dialect,
                def.raw_file.clone(),
                def.config.clone(),
            )
        })
    }

    /// Rebuilds a registered table's loaded state from its commit log after
    /// a simulated crash/restart: only chunk runs whose payload passes its
    /// checksum are re-marked loaded; uncommitted or corrupt runs are
    /// dropped. The outcome lands in the operator's journal as an
    /// [`ObsEvent::RecoveryCompleted`] event.
    ///
    /// # Errors
    ///
    /// Fails for unregistered tables, when the commit log cannot be read, or
    /// when catalog-level metadata is corrupt.
    pub fn recover_table(&self, table: &str) -> Result<RecoveryReport> {
        let (raw_file, schema) = {
            let tables = self.tables.lock();
            let def = tables
                .get(table)
                .ok_or_else(|| Error::query(format!("unknown table '{table}'")))?;
            (def.raw_file.clone(), def.schema.clone())
        };
        let report = self.db.recover_table(table, schema, &raw_file)?;
        let op = self.operator(table)?;
        op.obs().event(ObsEvent::RecoveryCompleted {
            committed: report.committed_cells as u64,
            dropped: (report.dropped_corrupt + report.dropped_malformed) as u64,
        });
        Ok(report)
    }

    /// Explains a query without running it: projection, chunk sources, and
    /// statistics-based cardinality estimates.
    pub fn explain(&self, query: &Query) -> Result<ExplainReport> {
        let op = self.operator(&query.table)?;
        let projection = query.effective_projection();
        let range = query.filter.as_ref().and_then(|f| f.extract_range());
        let entry = op.database().catalog().table(&query.table)?;
        let entry = entry.read();
        let (selectivity, total_rows) = match &range {
            Some(pred) => (
                entry.estimate_selectivity(pred),
                entry.layout().map(|l| l.total_rows()),
            ),
            None => (1.0, entry.layout().map(|l| l.total_rows())),
        };
        let mut from_cache = 0;
        let mut from_db = 0;
        let mut from_hybrid = 0;
        let mut from_raw = 0;
        if let Some(layout) = entry.layout() {
            for meta in layout.iter() {
                if op.cache().covers(meta.id, &projection) {
                    from_cache += 1;
                } else if entry.is_loaded(meta.id, &projection) {
                    from_db += 1;
                } else if op.config().hybrid_reads
                    && !entry.loaded_columns(meta.id, &projection).is_empty()
                {
                    from_hybrid += 1;
                } else {
                    from_raw += 1;
                }
            }
        }
        Ok(ExplainReport {
            table: query.table.clone(),
            projection,
            uses_chunk_skipping: range.is_some(),
            estimated_selectivity: selectivity,
            estimated_rows: total_rows.map(|r| (r as f64 * selectivity).round() as u64),
            expect_from_cache: from_cache,
            expect_from_db: from_db,
            expect_from_hybrid: from_hybrid,
            expect_from_raw: from_raw,
        })
    }

    /// Runs a batch of queries over the *same* table with a single shared
    /// scan — the paper's §7 future work ("extending ScanRaw with support
    /// for multi-query processing over raw files"). The raw file is read and
    /// converted once; every query folds its own filter and aggregates over
    /// the shared chunk stream.
    ///
    /// Restrictions: all queries must target one table; chunk skipping is
    /// applied only when every query shares the same extractable range (the
    /// scan must deliver a superset of what each query needs).
    pub fn execute_shared(&self, queries: &[Query]) -> Result<Vec<QueryOutcome>> {
        Ok(self
            .execute_shared_inner(queries, None, None, None)?
            .outcomes)
    }

    /// [`Engine::execute_shared`], additionally returning the traces the
    /// batch minted: the carrier trace holding the shared scan/exec/merge
    /// spans, and one trace per query whose root `query` span covers that
    /// query from pipeline attach to its fold completing. All `None` when
    /// tracing is disabled on the operator's recorder.
    pub fn execute_shared_traced(&self, queries: &[Query]) -> Result<SharedOutcome> {
        self.execute_shared_inner(queries, None, None, None)
    }

    /// Shared execution on behalf of the serving layer: per-query root spans
    /// are tagged with the submitting tenant ids and the serving batch
    /// label. `tenants` must be parallel to `queries`.
    pub(crate) fn execute_shared_for_tenants(
        &self,
        queries: &[Query],
        tenants: &[u64],
        batch: u64,
    ) -> Result<SharedOutcome> {
        debug_assert_eq!(queries.len(), tenants.len());
        self.execute_shared_inner(queries, Some(tenants), Some(batch), None)
    }

    pub(crate) fn execute_shared_inner(
        &self,
        queries: &[Query],
        tenants: Option<&[u64]>,
        batch_label: Option<u64>,
        mode_override: Option<ExecMode>,
    ) -> Result<SharedOutcome> {
        let first = queries
            .first()
            .ok_or_else(|| Error::query("shared execution needs at least one query"))?;
        if queries.iter().any(|q| q.table != first.table) {
            return Err(Error::query("shared execution requires a single table"));
        }
        if queries.iter().any(|q| q.pushdown) {
            return Err(Error::query(
                "push-down selection cannot be shared across queries",
            ));
        }
        let op = self.operator(&first.table)?;
        for q in queries {
            q.validate(op.schema().len())?;
        }
        let clock = self.db.disk().clock().clone();
        let mode = mode_override.unwrap_or_else(|| self.exec_mode());

        // Union of all projections.
        let mut projection: Vec<usize> = queries
            .iter()
            .flat_map(|q| q.effective_projection())
            .collect();
        projection.sort_unstable();
        projection.dedup();

        // A skip predicate is only safe when every query would skip the
        // same chunks.
        let ranges: Vec<_> = queries
            .iter()
            .map(|q| q.filter.as_ref().and_then(|f| f.extract_range()))
            .collect();
        let skip_predicate = match ranges.split_first() {
            Some((head, tail)) if tail.iter().all(|r| r == head) => head.clone(),
            _ => None,
        };
        let range = skip_predicate.clone();

        // The carrier trace: the shared scan, exec tasks, and merge hang off
        // this root, which represents the batch rather than any one caller.
        let trace_guard = self.begin_trace(
            &op,
            &first.table,
            "query.batch",
            "shared",
            vec![("queries", queries.len().to_string())],
        );
        let batch_trace = trace_guard.as_ref().map(|g| g.ctx().trace);
        // One `query` root span per batched query, each in its own trace, so
        // per-caller (and per-tenant) traces stay causal under batching: the
        // `batch` tag links each root to the carrier trace doing the work.
        let recorder = op.obs().trace.clone();
        let query_roots: Vec<Option<(TraceId, scanraw_obs::SpanId)>> = queries
            .iter()
            .enumerate()
            .map(|(i, _)| {
                batch_trace?;
                let trace = recorder.next_trace();
                op.obs().event(ObsEvent::TraceStarted {
                    trace: trace.0,
                    table: first.table.clone(),
                });
                let mut tags = vec![
                    ("table", first.table.clone()),
                    ("mode", "shared".to_string()),
                ];
                if let Some(bt) = batch_trace {
                    tags.push(("batch", bt.0.to_string()));
                }
                if let Some(label) = batch_label {
                    tags.push(("serve.batch", label.to_string()));
                }
                if let Some(ts) = tenants {
                    tags.push(("tenant", ts[i].to_string()));
                }
                Some((trace, recorder.begin(trace, None, "query", tags)))
            })
            .collect();
        // Closes query i's root span and journals its trace completion.
        let finish_root = |i: usize| {
            if let Some((trace, span)) = query_roots[i] {
                recorder.end(span);
                op.obs().event(ObsEvent::TraceCompleted {
                    trace: trace.0,
                    spans: recorder.span_count(trace),
                });
            }
        };

        let request = ScanRequest {
            projection,
            convert: self.convert_scope(),
            skip_predicate,
            cols_mapped: None,
            pushdown: None,
            trace: trace_guard.as_ref().map(|g| g.ctx()),
        };
        let mut stream = op.scan(request)?;
        // Per-query durations run from pipeline attach (the consumers join
        // the shared stream here) to each query's own fold completing — not
        // from the engine-side planning that preceded the scan.
        let attached = clock.now();
        let outcomes: Vec<(Vec<ResultRow>, u64, Duration)> = match mode {
            ExecMode::Serial => {
                let mut aggs: Vec<GroupedAggregator<'_>> = queries
                    .iter()
                    .map(|q| GroupedAggregator::new(&q.group_by, &q.aggregates))
                    .collect();
                while let Some(chunk) = stream.next_chunk() {
                    for (agg, q) in aggs.iter_mut().zip(queries) {
                        agg.consume(&chunk, q.filter.as_ref())?;
                    }
                }
                aggs.into_iter()
                    .enumerate()
                    .map(|(i, agg)| {
                        let rows_scanned = agg.rows_seen();
                        let rows = agg.finish()?;
                        finish_root(i);
                        Ok((rows, rows_scanned, clock.now().saturating_sub(attached)))
                    })
                    .collect::<Result<_>>()?
            }
            ExecMode::Parallel => {
                let specs: Vec<Arc<AggSpec>> = queries.iter().map(spec_of).collect();
                let states =
                    self.run_parallel(&op, &mut stream, &specs, range.as_ref(), &first.table)?;
                states
                    .into_iter()
                    .enumerate()
                    .map(|(i, state)| {
                        let rows_scanned = state.rows_seen;
                        let rows = state.finish()?;
                        finish_root(i);
                        Ok((rows, rows_scanned, clock.now().saturating_sub(attached)))
                    })
                    .collect::<Result<_>>()?
            }
        };
        let scan = stream.finish()?;
        if let Some(guard) = trace_guard {
            self.end_trace(&op, &first.table, guard);
        }
        Ok(SharedOutcome {
            outcomes: outcomes
                .into_iter()
                .map(|(rows, rows_scanned, elapsed)| QueryOutcome {
                    result: QueryResult {
                        rows,
                        rows_scanned,
                        elapsed,
                    },
                    scan: scan.clone(),
                })
                .collect(),
            batch_trace,
            query_traces: query_roots.iter().map(|r| r.map(|(t, _)| t)).collect(),
        })
    }

    /// `EXPLAIN ANALYZE`: runs the query and reports the plan alongside the
    /// observed behaviour — per-stage durations, actual chunk sources,
    /// speculative-loading progress, and the cache hit rate, all scoped to
    /// this query via before/after snapshots of the operator's metrics and
    /// the journal sequence number.
    pub fn explain_analyze(&self, query: &Query) -> Result<AnalyzeReport> {
        let op = self.operator(&query.table)?;
        let explain = self.explain(query)?;

        let stage_before: Vec<Duration> =
            Stage::ALL.iter().map(|&s| op.profiler().total(s)).collect();
        let hist_names: Vec<String> = Stage::ALL
            .iter()
            .map(|s| format!("pipeline.stage.{}.nanos", s.name().to_lowercase()))
            .collect();
        let hist_before: Vec<Option<HistogramSnapshot>> = hist_names
            .iter()
            .map(|n| op.obs().metrics.histogram_snapshot(n))
            .collect();
        let cache_before = op.cache().counters();
        let journal_since = op.obs().journal.total_recorded();

        let outcome = self.execute(query)?;
        // The safeguard flush overlaps the next query; drain it so the
        // journal and write counters cover everything this query caused.
        op.drain_writes();

        let stage_durations: Vec<(&'static str, Duration)> = Stage::ALL
            .iter()
            .zip(&stage_before)
            .map(|(&s, &before)| (s.name(), op.profiler().total(s).saturating_sub(before)))
            .collect();
        // Per-chunk latency percentiles for this query's window: diff each
        // stage histogram against its pre-query snapshot, then interpolate.
        let stage_percentiles: Vec<(&'static str, [u64; 3])> = Stage::ALL
            .iter()
            .zip(&hist_names)
            .zip(&hist_before)
            .map(|((&s, name), before)| {
                let window = match (op.obs().metrics.histogram_snapshot(name), before) {
                    (Some(after), Some(before)) => Some(after.saturating_diff(before)),
                    (Some(after), None) => Some(after),
                    (None, _) => None,
                };
                let p = window.map_or([0, 0, 0], |w| {
                    [w.quantile(0.50), w.quantile(0.95), w.quantile(0.99)]
                });
                (s.name(), p)
            })
            .collect();
        let query_latency_percentiles = op
            .obs()
            .metrics
            .histogram_snapshot("query.latency.nanos")
            .filter(|s| s.count > 0)
            .map(|s| [s.quantile(0.50), s.quantile(0.95), s.quantile(0.99)]);
        let cache_after = op.cache().counters();
        let hits = cache_after.hits - cache_before.hits;
        let misses = cache_after.misses - cache_before.misses;
        let cache_hit_rate = if hits + misses > 0 {
            Some(hits as f64 / (hits + misses) as f64)
        } else {
            None
        };
        let events: Vec<JournalEntry> = op
            .obs()
            .journal
            .entries()
            .into_iter()
            .filter(|e| e.seq >= journal_since)
            .collect();
        // Fault-tolerance telemetry, derived from the same journal window.
        let mut io_retries = 0u64;
        let mut db_fallbacks = 0u64;
        let mut load_degraded = false;
        for e in &events {
            match &e.event {
                ObsEvent::IoRetry { .. } => io_retries += 1,
                ObsEvent::DbReadFallback { .. } => db_fallbacks += 1,
                ObsEvent::LoadDegraded { .. } => load_degraded = true,
                // Only fault telemetry is summarized here; every other event
                // is listed so a new journal event forces a decision on
                // whether the report should count it (L007).
                ObsEvent::QueryStart { .. }
                | ObsEvent::QueryEnd { .. }
                | ObsEvent::ReadBlocked { .. }
                | ObsEvent::SpeculativeWriteTriggered { .. }
                | ObsEvent::SafeguardFlush { .. }
                | ObsEvent::WriteQueued { .. }
                | ObsEvent::CacheHit { .. }
                | ObsEvent::CacheMiss { .. }
                | ObsEvent::CacheEvict { .. }
                | ObsEvent::ChunkSkipped { .. }
                | ObsEvent::WorkerScaled { .. }
                | ObsEvent::RecoveryCompleted { .. }
                | ObsEvent::ColumnCellLoaded { .. }
                | ObsEvent::TraceStarted { .. }
                | ObsEvent::TraceCompleted { .. }
                | ObsEvent::QueryAdmitted { .. }
                | ObsEvent::QueryRejected { .. }
                | ObsEvent::BatchFormed { .. }
                | ObsEvent::QueryServed { .. } => {}
            }
        }
        Ok(AnalyzeReport {
            explain,
            speculative_chunks_written: outcome.scan.speculative_writes,
            safeguard_chunks_written: outcome.scan.safeguard_writes,
            cache_hit_rate,
            stage_durations,
            stage_percentiles,
            query_latency_percentiles,
            io_retries,
            db_fallbacks,
            load_degraded,
            events,
            outcome,
        })
    }

    /// Runs an aggregate query.
    ///
    /// Under [`ExecMode::Parallel`] (the default) delivered chunks are
    /// evaluated on the operator's worker pool with a columnar inner loop
    /// and the partial aggregates merged in ascending chunk order, so
    /// results are identical to — and bit-for-bit as deterministic as — the
    /// serial fold.
    pub fn execute(&self, query: &Query) -> Result<QueryOutcome> {
        Ok(self.execute_inner(query, None, None)?.0)
    }

    /// [`Engine::execute`] on behalf of the serving layer: the query's root
    /// span carries a `tenant` tag so single-query dispatches stay
    /// attributable alongside batched ones.
    pub(crate) fn execute_for_tenant(
        &self,
        query: &Query,
        tenant: Option<u64>,
    ) -> Result<QueryOutcome> {
        Ok(self.execute_inner(query, tenant, None)?.0)
    }

    /// Core single-query path. Returns the outcome together with the trace
    /// this query minted (`None` when tracing is disabled), so concurrent
    /// callers can fetch *their own* span tree instead of racing on the
    /// engine-wide "last trace" slot.
    pub(crate) fn execute_inner(
        &self,
        query: &Query,
        tenant: Option<u64>,
        mode_override: Option<ExecMode>,
    ) -> Result<(QueryOutcome, Option<TraceId>)> {
        let op = self.operator(&query.table)?;
        query.validate(op.schema().len())?;
        let clock = self.db.disk().clock().clone();
        let mode = mode_override.unwrap_or_else(|| self.exec_mode());
        let started = clock.now();
        let trace_guard = self.begin_trace(
            &op,
            &query.table,
            "query",
            match mode {
                ExecMode::Serial => "serial",
                ExecMode::Parallel => "parallel",
            },
            tenant
                .map(|t| ("tenant", t.to_string()))
                .into_iter()
                .collect(),
        );

        let mut request = ScanRequest {
            projection: query.effective_projection(),
            convert: self.convert_scope(),
            skip_predicate: None,
            cols_mapped: None,
            pushdown: None,
            trace: trace_guard.as_ref().map(|g| g.ctx()),
        };
        if let Some(f) = &query.filter {
            request.skip_predicate = f.extract_range();
            if query.pushdown {
                let cols = f.columns();
                let pred = f.clone();
                let cols2 = cols.clone();
                request.pushdown = Some(Arc::new(scanraw::operator::PushdownFilter {
                    columns: cols,
                    predicate: Arc::new(move |values: &[Value]| {
                        // An eval error must not drop the row down here: keep
                        // it, so the exact post-scan filter re-evaluates and
                        // surfaces the error instead of silently diverging
                        // from the non-pushdown plan.
                        // lint-ok: L017 Err keeps the row; the post-scan filter surfaces it
                        pred.eval_values(&cols2, values).unwrap_or(true)
                    }),
                }));
            }
        }
        let range = request.skip_predicate.clone();

        let mut stream = op.scan(request)?;
        let (rows, rows_scanned) = match mode {
            ExecMode::Serial => {
                let mut agg = GroupedAggregator::new(&query.group_by, &query.aggregates);
                while let Some(chunk) = stream.next_chunk() {
                    agg.consume(&chunk, query.filter.as_ref())?;
                }
                let rows_scanned = agg.rows_seen();
                (agg.finish()?, rows_scanned)
            }
            ExecMode::Parallel => {
                let specs = vec![spec_of(query)];
                let mut states =
                    self.run_parallel(&op, &mut stream, &specs, range.as_ref(), &query.table)?;
                let state = states.pop().expect("one state per spec");
                let rows_scanned = state.rows_seen;
                (state.finish()?, rows_scanned)
            }
        };
        let scan = stream.finish()?;
        let trace_id = trace_guard.as_ref().map(|g| g.ctx().trace);
        if let Some(guard) = trace_guard {
            self.end_trace(&op, &query.table, guard);
        }
        let elapsed = clock.now().saturating_sub(started);
        Ok((
            QueryOutcome {
                result: QueryResult {
                    rows,
                    rows_scanned,
                    elapsed,
                },
                scan,
            },
            trace_id,
        ))
    }

    /// Fans the delivered chunks of `stream` out to the operator's worker
    /// pool — one [`ExecTask`] per chunk, each producing one partial
    /// [`AggState`] per spec — then collects and merges the partials in
    /// ascending chunk order (deterministic float accumulation). Falls back
    /// to inline execution when the scan runs without a pool (`workers = 0`)
    /// or a worker rejects the task during teardown.
    ///
    /// Also the second chance for min/max chunk skipping: chunks whose
    /// statistics only materialized *during* this scan (first conversion)
    /// are dropped here before any evaluation, counted in
    /// `scanraw.exec.skipped_chunks`.
    fn run_parallel(
        &self,
        op: &Arc<ScanRaw>,
        stream: &mut ChunkStream,
        specs: &[Arc<AggSpec>],
        range: Option<&RangePredicate>,
        table: &str,
    ) -> Result<Vec<AggState>> {
        let handle = stream.exec_handle();
        // When the query is traced the root span is the engine thread's
        // current context; exec tasks run on pool workers, so the context is
        // captured here and passed into each closure explicitly.
        let query_ctx = scanraw_obs::trace::current();
        let recorder = op.obs().trace.clone();
        let parallel_ctr = op.obs().metrics.counter("scanraw.exec.parallel_chunks");
        let skipped_ctr = op.obs().metrics.counter("scanraw.exec.skipped_chunks");
        let skip_enabled = {
            let tables = self.tables.lock();
            tables.get(table).is_some_and(|d| d.config.chunk_skipping)
        };
        let entry = match range {
            Some(_) if skip_enabled => Some(op.database().catalog().table(table)?),
            _ => None,
        };

        let (res_tx, res_rx) = mpsc::channel::<(u32, Result<Vec<AggState>>)>();
        while let Some(chunk) = stream.next_chunk() {
            if let (Some(pred), Some(entry)) = (range, entry.as_ref()) {
                let e = entry.read();
                if let Some(Some((lo, hi))) = e
                    .stats(chunk.id)
                    .and_then(|stats| stats.bounds.get(pred.column))
                {
                    if !pred.may_overlap(lo, hi) {
                        skipped_ctr.inc();
                        op.obs().event(ObsEvent::ChunkSkipped {
                            chunk: chunk.id.0 as u64,
                        });
                        continue;
                    }
                }
            }
            let specs = specs.to_vec();
            let tx = res_tx.clone();
            let id = chunk.id.0;
            let task_recorder = recorder.clone();
            let task: ExecTask = Box::new(move || {
                let _span = query_ctx.map(|ctx| {
                    task_recorder.enter(
                        ctx,
                        "exec.chunk",
                        vec![("chunk", id.to_string()), ("worker", worker_label())],
                    )
                });
                let out = specs
                    .iter()
                    .map(|s| {
                        let mut st = AggState::new(s.clone());
                        st.consume_chunk(&chunk).map(|()| st)
                    })
                    .collect::<Result<Vec<_>>>();
                // Receiver gone only when the engine already bailed out.
                let _ = tx.send((id, out));
            });
            match &handle {
                Some(h) => {
                    parallel_ctr.inc();
                    if let Err(task) = h.submit(task) {
                        task();
                    }
                }
                None => task(),
            }
        }
        drop(res_tx);
        drop(handle);

        let mut partials: Vec<(u32, Result<Vec<AggState>>)> = Vec::new();
        while let Ok(r) = res_rx.recv() {
            partials.push(r);
        }
        // Ascending chunk order makes the merge — and therefore float
        // accumulation — independent of worker scheduling.
        let _merge_span = query_ctx.map(|ctx| {
            recorder.enter(ctx, "merge", vec![("partials", partials.len().to_string())])
        });
        partials.sort_by_key(|(id, _)| *id);
        let mut merged: Vec<AggState> = specs.iter().map(|s| AggState::new(s.clone())).collect();
        for (_, result) in partials {
            for (m, s) in merged.iter_mut().zip(result?) {
                m.merge(s)?;
            }
        }
        Ok(merged)
    }
}

/// Snapshot of a query's aggregation shape, shareable with worker tasks.
fn spec_of(q: &Query) -> Arc<AggSpec> {
    Arc::new(AggSpec {
        group_by: q.group_by.iter().map(|c| c.index()).collect(),
        aggregates: q.aggregates.clone(),
        filter: q.filter.clone(),
    })
}

/// Shared grouped-aggregation fold, also used by the BAM path.
pub(crate) struct GroupedAggregator<'a> {
    group_by: &'a [Col],
    aggs: &'a [AggExpr],
    groups: HashMap<Vec<Value>, Vec<Accumulator>>,
    rows_seen: u64,
}

impl<'a> GroupedAggregator<'a> {
    pub(crate) fn new(group_by: &'a [Col], aggs: &'a [AggExpr]) -> Self {
        GroupedAggregator {
            group_by,
            aggs,
            groups: HashMap::new(),
            rows_seen: 0,
        }
    }

    pub(crate) fn consume(
        &mut self,
        chunk: &BinaryChunk,
        filter: Option<&Predicate>,
    ) -> Result<()> {
        for row in 0..chunk.rows as usize {
            if let Some(f) = filter {
                if !f.eval(chunk, row)? {
                    continue;
                }
            }
            self.rows_seen += 1;
            let key: Vec<Value> = self
                .group_by
                .iter()
                .map(|&c| {
                    let c = c.index();
                    chunk
                        .column(c)
                        .ok_or_else(|| Error::query(format!("group column {c} absent")))?
                        .value(row)
                        .ok_or_else(|| Error::query("row out of range"))
                })
                .collect::<Result<_>>()?;
            let accs = self
                .groups
                .entry(key)
                .or_insert_with(|| self.aggs.iter().map(|a| Accumulator::new(a.func)).collect());
            for (acc, a) in accs.iter_mut().zip(self.aggs) {
                acc.update(a.expr.eval(chunk, row)?)?;
            }
        }
        Ok(())
    }

    pub(crate) fn rows_seen(&self) -> u64 {
        self.rows_seen
    }

    pub(crate) fn finish(mut self) -> Result<Vec<ResultRow>> {
        // An aggregate without GROUP BY returns one row even on empty input.
        if self.group_by.is_empty() && self.groups.is_empty() {
            self.groups.insert(
                Vec::new(),
                self.aggs.iter().map(|a| Accumulator::new(a.func)).collect(),
            );
        }
        let mut rows: Vec<ResultRow> = self
            .groups
            .into_iter()
            .map(|(keys, accs)| {
                let aggregates = accs
                    .into_iter()
                    .map(|a| a.finish())
                    .collect::<Result<Vec<_>>>()?;
                Ok(ResultRow { keys, aggregates })
            })
            .collect::<Result<_>>()?;
        rows.sort_by(|a, b| a.keys.cmp(&b.keys));
        Ok(rows)
    }
}
