//! Aggregate functions and their accumulators.

use crate::expr::Expr;
use scanraw_types::{Error, Result, Value};

/// Supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Sum,
    Count,
    Min,
    Max,
    Avg,
}

impl AggFunc {
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Sum => "SUM",
            AggFunc::Count => "COUNT",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        }
    }
}

/// An aggregate over an expression, e.g. `SUM(c0 + c1)`.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    pub func: AggFunc,
    pub expr: Expr,
}

impl AggExpr {
    pub fn sum(expr: Expr) -> Self {
        AggExpr {
            func: AggFunc::Sum,
            expr,
        }
    }

    pub fn count() -> Self {
        // COUNT(*) — the argument is ignored; use a constant.
        AggExpr {
            func: AggFunc::Count,
            expr: Expr::lit(1i64),
        }
    }

    pub fn min(expr: Expr) -> Self {
        AggExpr {
            func: AggFunc::Min,
            expr,
        }
    }

    pub fn max(expr: Expr) -> Self {
        AggExpr {
            func: AggFunc::Max,
            expr,
        }
    }

    pub fn avg(expr: Expr) -> Self {
        AggExpr {
            func: AggFunc::Avg,
            expr,
        }
    }
}

/// Running state of one aggregate.
#[derive(Debug, Clone, PartialEq)]
pub enum Accumulator {
    SumInt(i64),
    SumFloat(f64),
    Count(u64),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg { sum: f64, n: u64 },
}

impl Accumulator {
    pub fn new(func: AggFunc) -> Self {
        match func {
            AggFunc::Sum => Accumulator::SumInt(0),
            AggFunc::Count => Accumulator::Count(0),
            AggFunc::Min => Accumulator::Min(None),
            AggFunc::Max => Accumulator::Max(None),
            AggFunc::Avg => Accumulator::Avg { sum: 0.0, n: 0 },
        }
    }

    /// Feeds one value.
    pub fn update(&mut self, v: Value) -> Result<()> {
        match self {
            Accumulator::SumInt(acc) => match v {
                Value::Int(x) => match acc.checked_add(x) {
                    Some(s) => *acc = s,
                    None => {
                        // Overflow: promote to float accumulation.
                        *self = Accumulator::SumFloat(*acc as f64 + x as f64);
                    }
                },
                Value::Float(x) => *self = Accumulator::SumFloat(*acc as f64 + x),
                Value::Str(_) => return Err(Error::query("SUM over a string value")),
            },
            Accumulator::SumFloat(acc) => {
                *acc += v
                    .as_f64()
                    .ok_or_else(|| Error::query("SUM over a string value"))?;
            }
            Accumulator::Count(n) => *n += 1,
            Accumulator::Min(m) => {
                if m.as_ref().map(|cur| v < *cur).unwrap_or(true) {
                    *m = Some(v);
                }
            }
            Accumulator::Max(m) => {
                if m.as_ref().map(|cur| v > *cur).unwrap_or(true) {
                    *m = Some(v);
                }
            }
            Accumulator::Avg { sum, n } => {
                *sum += v
                    .as_f64()
                    .ok_or_else(|| Error::query("AVG over a string value"))?;
                *n += 1;
            }
        }
        Ok(())
    }

    /// Folds another accumulator of the same aggregate into this one —
    /// the combine step of parallel partial aggregation. Deterministic and
    /// (for the order-sensitive float cases) merged by the executor in
    /// ascending chunk order, so repeated parallel runs agree bit-for-bit.
    ///
    /// # Errors
    ///
    /// Fails when the two accumulators belong to different aggregate
    /// functions (SUM's int/float promotion pair merges fine).
    pub fn merge(&mut self, other: Accumulator) -> Result<()> {
        match (&mut *self, other) {
            (Accumulator::SumInt(a), Accumulator::SumInt(b)) => match a.checked_add(b) {
                Some(s) => *a = s,
                None => *self = Accumulator::SumFloat(*a as f64 + b as f64),
            },
            (Accumulator::SumInt(a), Accumulator::SumFloat(b)) => {
                *self = Accumulator::SumFloat(*a as f64 + b);
            }
            (Accumulator::SumFloat(a), Accumulator::SumInt(b)) => *a += b as f64,
            (Accumulator::SumFloat(a), Accumulator::SumFloat(b)) => *a += b,
            (Accumulator::Count(a), Accumulator::Count(b)) => *a += b,
            (Accumulator::Min(a), Accumulator::Min(b)) => {
                if let Some(v) = b {
                    if a.as_ref().map(|cur| v < *cur).unwrap_or(true) {
                        *a = Some(v);
                    }
                }
            }
            (Accumulator::Max(a), Accumulator::Max(b)) => {
                if let Some(v) = b {
                    if a.as_ref().map(|cur| v > *cur).unwrap_or(true) {
                        *a = Some(v);
                    }
                }
            }
            (Accumulator::Avg { sum: a, n: an }, Accumulator::Avg { sum: b, n: bn }) => {
                *a += b;
                *an += bn;
            }
            _ => {
                return Err(Error::query(
                    "cannot merge accumulators of different aggregates",
                ))
            }
        }
        Ok(())
    }

    /// Final value (SQL semantics: MIN/MAX of nothing is an error here since
    /// we have no NULL; COUNT/SUM of nothing are 0).
    pub fn finish(self) -> Result<Value> {
        Ok(match self {
            Accumulator::SumInt(x) => Value::Int(x),
            Accumulator::SumFloat(x) => Value::Float(x),
            Accumulator::Count(n) => Value::Int(n as i64),
            Accumulator::Min(v) | Accumulator::Max(v) => {
                v.ok_or_else(|| Error::query("MIN/MAX over empty input"))?
            }
            Accumulator::Avg { sum, n } => {
                if n == 0 {
                    return Err(Error::query("AVG over empty input"));
                }
                Value::Float(sum / n as f64)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_ints() {
        let mut a = Accumulator::new(AggFunc::Sum);
        for x in [1i64, 2, 3] {
            a.update(Value::Int(x)).unwrap();
        }
        assert_eq!(a.finish().unwrap(), Value::Int(6));
    }

    #[test]
    fn sum_overflow_promotes_to_float() {
        let mut a = Accumulator::new(AggFunc::Sum);
        a.update(Value::Int(i64::MAX)).unwrap();
        a.update(Value::Int(i64::MAX)).unwrap();
        match a.finish().unwrap() {
            Value::Float(f) => assert!(f > 1e18),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn sum_mixed_types() {
        let mut a = Accumulator::new(AggFunc::Sum);
        a.update(Value::Int(1)).unwrap();
        a.update(Value::Float(0.5)).unwrap();
        assert_eq!(a.finish().unwrap(), Value::Float(1.5));
    }

    #[test]
    fn count_counts_everything() {
        let mut a = Accumulator::new(AggFunc::Count);
        a.update(Value::from("x")).unwrap();
        a.update(Value::Int(0)).unwrap();
        assert_eq!(a.finish().unwrap(), Value::Int(2));
    }

    #[test]
    fn min_max_strings() {
        let mut mn = Accumulator::new(AggFunc::Min);
        let mut mx = Accumulator::new(AggFunc::Max);
        for s in ["10M", "5D", "100M"] {
            mn.update(Value::from(s)).unwrap();
            mx.update(Value::from(s)).unwrap();
        }
        assert_eq!(mn.finish().unwrap(), Value::from("100M"));
        assert_eq!(mx.finish().unwrap(), Value::from("5D"));
    }

    #[test]
    fn avg() {
        let mut a = Accumulator::new(AggFunc::Avg);
        for x in [2i64, 4, 6] {
            a.update(Value::Int(x)).unwrap();
        }
        assert_eq!(a.finish().unwrap(), Value::Float(4.0));
    }

    #[test]
    fn empty_aggregates() {
        assert_eq!(
            Accumulator::new(AggFunc::Sum).finish().unwrap(),
            Value::Int(0)
        );
        assert_eq!(
            Accumulator::new(AggFunc::Count).finish().unwrap(),
            Value::Int(0)
        );
        assert!(Accumulator::new(AggFunc::Min).finish().is_err());
        assert!(Accumulator::new(AggFunc::Avg).finish().is_err());
    }

    #[test]
    fn sum_of_string_is_error() {
        let mut a = Accumulator::new(AggFunc::Sum);
        assert!(a.update(Value::from("x")).is_err());
    }

    #[test]
    fn merge_matches_sequential_update() {
        let mut whole = Accumulator::new(AggFunc::Sum);
        let mut left = Accumulator::new(AggFunc::Sum);
        let mut right = Accumulator::new(AggFunc::Sum);
        for x in [3i64, -1, 7] {
            whole.update(Value::Int(x)).unwrap();
            left.update(Value::Int(x)).unwrap();
        }
        for x in [10i64, 20] {
            whole.update(Value::Int(x)).unwrap();
            right.update(Value::Int(x)).unwrap();
        }
        left.merge(right).unwrap();
        assert_eq!(left, whole);
    }

    #[test]
    fn merge_promotes_on_overflow() {
        let mut a = Accumulator::SumInt(i64::MAX);
        a.merge(Accumulator::SumInt(1)).unwrap();
        assert!(matches!(a, Accumulator::SumFloat(_)));
        // Float partial folded into an int partial also promotes.
        let mut b = Accumulator::SumInt(5);
        b.merge(Accumulator::SumFloat(0.5)).unwrap();
        assert_eq!(b.finish().unwrap(), Value::Float(5.5));
    }

    #[test]
    fn merge_min_max_and_avg() {
        let mut mn = Accumulator::Min(Some(Value::Int(5)));
        mn.merge(Accumulator::Min(Some(Value::Int(3)))).unwrap();
        assert_eq!(mn.finish().unwrap(), Value::Int(3));
        let mut mx = Accumulator::Max(None);
        mx.merge(Accumulator::Max(Some(Value::Int(9)))).unwrap();
        assert_eq!(mx.finish().unwrap(), Value::Int(9));
        let mut avg = Accumulator::Avg { sum: 6.0, n: 2 };
        avg.merge(Accumulator::Avg { sum: 6.0, n: 1 }).unwrap();
        assert_eq!(avg.finish().unwrap(), Value::Float(4.0));
    }

    #[test]
    fn merge_mismatched_functions_is_error() {
        let mut a = Accumulator::new(AggFunc::Count);
        assert!(a.merge(Accumulator::new(AggFunc::Sum)).is_err());
    }
}
