//! Chunk-parallel consumer execution: columnar predicate evaluation and
//! partial aggregation, mergeable across chunks.
//!
//! The conversion side of ScanRaw is super-scalar (TOKENIZE/PARSE worker
//! pool), but a serial per-row fold in the engine caps end-to-end throughput
//! on CPU-bound queries. This module partitions *delivered* chunks back onto
//! the same worker pool: each chunk is evaluated with a columnar inner loop
//! (column slices, not `eval(chunk, row)` per cell) into an [`AggState`]
//! partial, and the executor merges partials deterministically in ascending
//! chunk order via [`AggState::merge`].
//!
//! Semantics parity with the serial fold is load-bearing: the kernels here
//! reproduce the row-wise `Expr::eval`/`Predicate::eval` behaviour exactly —
//! checked integer arithmetic with promotion to float on overflow, mixed
//! int/float promotion, type-tag-ordered cross-type comparisons (matching
//! `Value`'s `Ord`), `And`/`Or` short-circuiting (the right side is only
//! evaluated for rows the left side did not decide), and identical error
//! messages. `tests/parallel_exec.rs` holds the serial-vs-parallel
//! differential suite.

use crate::aggregate::{Accumulator, AggExpr};
use crate::expr::Expr;
use crate::predicate::{CmpOp, Predicate};
use scanraw_types::{BinaryChunk, ColumnData, Error, Result, Value};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::Arc;

/// Row selection inside one chunk: either every row or a sorted subset.
#[derive(Debug, Clone)]
pub(crate) enum Sel {
    /// All rows `0..n`.
    All(usize),
    /// A sorted, deduplicated subset of row indices.
    Rows(Vec<u32>),
}

impl Sel {
    fn len(&self) -> usize {
        match self {
            Sel::All(n) => *n,
            Sel::Rows(r) => r.len(),
        }
    }

    fn iter(&self) -> SelIter<'_> {
        match self {
            Sel::All(n) => SelIter::All(0, *n),
            Sel::Rows(r) => SelIter::Rows(r.iter()),
        }
    }

    fn to_rows(&self) -> Vec<u32> {
        match self {
            Sel::All(n) => (0..*n as u32).collect(),
            Sel::Rows(r) => r.clone(),
        }
    }
}

enum SelIter<'a> {
    All(usize, usize),
    Rows(std::slice::Iter<'a, u32>),
}

impl Iterator for SelIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        match self {
            SelIter::All(i, n) => {
                if i < n {
                    let r = *i;
                    *i += 1;
                    Some(r)
                } else {
                    None
                }
            }
            SelIter::Rows(it) => it.next().map(|&r| r as usize),
        }
    }
}

/// An expression evaluated over a selection: one entry per selected row
/// (or a constant covering all of them).
enum ColVec<'a> {
    /// Borrowed column slice — only valid when the selection is `Sel::All`.
    IntSlice(&'a [i64]),
    FloatSlice(&'a [f64]),
    StrSlice(&'a [String]),
    /// Gathered / computed per selected row.
    Ints(Vec<i64>),
    Floats(Vec<f64>),
    Strs(Vec<&'a str>),
    /// A literal, broadcast over the selection.
    ConstInt(i64),
    ConstFloat(f64),
    ConstStr(&'a str),
}

/// Type class of a [`ColVec`], mirroring `Value`'s type tags. Cross-class
/// comparisons are decided by tag rank alone (Int < Float < Str), exactly
/// like `Value`'s `Ord`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Class {
    Int,
    Float,
    Str,
}

impl ColVec<'_> {
    fn class(&self) -> Class {
        match self {
            ColVec::IntSlice(_) | ColVec::Ints(_) | ColVec::ConstInt(_) => Class::Int,
            ColVec::FloatSlice(_) | ColVec::Floats(_) | ColVec::ConstFloat(_) => Class::Float,
            ColVec::StrSlice(_) | ColVec::Strs(_) | ColVec::ConstStr(_) => Class::Str,
        }
    }

    fn int_at(&self, i: usize) -> i64 {
        match self {
            ColVec::IntSlice(s) => s[i],
            ColVec::Ints(v) => v[i],
            ColVec::ConstInt(x) => *x,
            _ => unreachable!("int_at on non-int column"),
        }
    }

    fn float_at(&self, i: usize) -> f64 {
        match self {
            ColVec::FloatSlice(s) => s[i],
            ColVec::Floats(v) => v[i],
            ColVec::ConstFloat(x) => *x,
            _ => unreachable!("float_at on non-float column"),
        }
    }

    /// Numeric value as f64 (int or float class).
    fn f64_at(&self, i: usize) -> f64 {
        match self.class() {
            Class::Int => self.int_at(i) as f64,
            Class::Float => self.float_at(i),
            Class::Str => unreachable!("f64_at on string column"),
        }
    }

    fn str_at(&self, i: usize) -> &str {
        match self {
            ColVec::StrSlice(s) => &s[i],
            ColVec::Strs(v) => v[i],
            ColVec::ConstStr(x) => x,
            _ => unreachable!("str_at on non-string column"),
        }
    }

    fn value_at(&self, i: usize) -> Value {
        match self.class() {
            Class::Int => Value::Int(self.int_at(i)),
            Class::Float => Value::Float(self.float_at(i)),
            Class::Str => Value::Str(self.str_at(i).to_string()),
        }
    }

    fn is_const(&self) -> bool {
        matches!(
            self,
            ColVec::ConstInt(_) | ColVec::ConstFloat(_) | ColVec::ConstStr(_)
        )
    }
}

/// Evaluates `expr` over the selected rows of `chunk`, columnar.
fn eval_columnar<'a>(expr: &'a Expr, chunk: &'a BinaryChunk, sel: &Sel) -> Result<ColVec<'a>> {
    match expr {
        Expr::Column(c) => {
            let col = chunk
                .column(c.index())
                .ok_or_else(|| Error::query(format!("column {c} absent from chunk")))?;
            Ok(match (col, sel) {
                (ColumnData::Int64(v), Sel::All(_)) => ColVec::IntSlice(v),
                (ColumnData::Float64(v), Sel::All(_)) => ColVec::FloatSlice(v),
                (ColumnData::Utf8(v), Sel::All(_)) => ColVec::StrSlice(v),
                (ColumnData::Int64(v), Sel::Rows(rows)) => {
                    ColVec::Ints(rows.iter().map(|&r| v[r as usize]).collect())
                }
                (ColumnData::Float64(v), Sel::Rows(rows)) => {
                    ColVec::Floats(rows.iter().map(|&r| v[r as usize]).collect())
                }
                (ColumnData::Utf8(v), Sel::Rows(rows)) => {
                    ColVec::Strs(rows.iter().map(|&r| v[r as usize].as_str()).collect())
                }
            })
        }
        Expr::Literal(v) => Ok(match v {
            Value::Int(x) => ColVec::ConstInt(*x),
            Value::Float(x) => ColVec::ConstFloat(*x),
            Value::Str(s) => ColVec::ConstStr(s),
        }),
        Expr::Add(a, b) => arith(
            eval_columnar(a, chunk, sel)?,
            eval_columnar(b, chunk, sel)?,
            "+",
            sel.len(),
        ),
        Expr::Sub(a, b) => arith(
            eval_columnar(a, chunk, sel)?,
            eval_columnar(b, chunk, sel)?,
            "-",
            sel.len(),
        ),
        Expr::Mul(a, b) => arith(
            eval_columnar(a, chunk, sel)?,
            eval_columnar(b, chunk, sel)?,
            "*",
            sel.len(),
        ),
    }
}

/// Columnar arithmetic with the exact `numeric()` semantics: checked integer
/// ops (per-element error on overflow), int+float promotion, strings
/// rejected.
fn arith<'a>(a: ColVec<'a>, b: ColVec<'a>, op: &str, n: usize) -> Result<ColVec<'a>> {
    if a.class() == Class::Str || b.class() == Class::Str {
        // Identical message to `numeric()` on a string operand.
        return Err(Error::query(format!("non-numeric operand to {op}")));
    }
    if a.class() == Class::Int && b.class() == Class::Int {
        let f = |x: i64, y: i64| -> Option<i64> {
            match op {
                "+" => x.checked_add(y),
                "-" => x.checked_sub(y),
                "*" => x.checked_mul(y),
                _ => None,
            }
        };
        if a.is_const() && b.is_const() {
            return f(a.int_at(0), b.int_at(0))
                .map(ColVec::ConstInt)
                .ok_or_else(|| Error::query(format!("integer overflow in {op}")));
        }
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            match f(a.int_at(i), b.int_at(i)) {
                Some(v) => out.push(v),
                None => return Err(Error::query(format!("integer overflow in {op}"))),
            }
        }
        return Ok(ColVec::Ints(out));
    }
    // Mixed or all-float: promote to f64.
    let f = |x: f64, y: f64| -> f64 {
        match op {
            "+" => x + y,
            "-" => x - y,
            _ => x * y,
        }
    };
    if a.is_const() && b.is_const() {
        return Ok(ColVec::ConstFloat(f(a.f64_at(0), b.f64_at(0))));
    }
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        out.push(f(a.f64_at(i), b.f64_at(i)));
    }
    Ok(ColVec::Floats(out))
}

/// Per-row comparison over two evaluated columns, matching `Value`'s `Ord`:
/// same-class compares naturally (floats via `partial_cmp` defaulting to
/// `Equal`, like `Value`), cross-class by type-tag rank alone.
fn cmp_at(a: &ColVec<'_>, b: &ColVec<'_>, i: usize) -> Ordering {
    match (a.class(), b.class()) {
        (Class::Int, Class::Int) => a.int_at(i).cmp(&b.int_at(i)),
        (Class::Float, Class::Float) => a
            .float_at(i)
            .partial_cmp(&b.float_at(i))
            .unwrap_or(Ordering::Equal),
        (Class::Str, Class::Str) => a.str_at(i).cmp(b.str_at(i)),
        (ca, cb) => ca.cmp(&cb),
    }
}

fn cmp_holds(op: CmpOp, ord: Ordering) -> bool {
    match op {
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::Ne => ord != Ordering::Equal,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Le => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Ge => ord != Ordering::Less,
    }
}

/// Equality matching `Value`'s `PartialEq` (NOT its `Ord`): `Value` derives
/// `PartialEq`, so cross-type values are simply unequal and float equality
/// is IEEE (`NaN != NaN`) — whereas `Ord`-based comparison would call two
/// NaNs equal. `Eq`/`Ne` must use this, the ordered operators use `cmp_at`.
fn eq_at(a: &ColVec<'_>, b: &ColVec<'_>, i: usize) -> bool {
    match (a.class(), b.class()) {
        (Class::Int, Class::Int) => a.int_at(i) == b.int_at(i),
        (Class::Float, Class::Float) => a.float_at(i) == b.float_at(i),
        (Class::Str, Class::Str) => a.str_at(i) == b.str_at(i),
        _ => false,
    }
}

/// Sorted-set difference: rows in `all` not in `keep` (both sorted).
fn diff_rows(all: &[u32], keep: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(all.len() - keep.len().min(all.len()));
    let mut k = 0usize;
    for &r in all {
        while k < keep.len() && keep[k] < r {
            k += 1;
        }
        if k < keep.len() && keep[k] == r {
            k += 1;
        } else {
            out.push(r);
        }
    }
    out
}

/// Sorted-set union of two disjoint sorted row lists.
// lint-zone: deterministic
fn merge_rows(a: Vec<u32>, b: Vec<u32>) -> Vec<u32> {
    if a.is_empty() {
        return b;
    }
    if b.is_empty() {
        return a;
    }
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Filters `sel` down to the rows satisfying `pred`, preserving the serial
/// evaluator's short-circuit structure: `And` evaluates its right side only
/// over the left side's survivors, `Or` only over the left side's failures —
/// so a row the serial path never evaluates an operand for cannot produce a
/// spurious error here either.
fn filter_sel(pred: &Predicate, chunk: &BinaryChunk, sel: Sel) -> Result<Sel> {
    match pred {
        Predicate::Cmp(a, op, b) => {
            let va = eval_columnar(a, chunk, &sel)?;
            let vb = eval_columnar(b, chunk, &sel)?;
            let mut out = Vec::new();
            let eq_like = matches!(op, CmpOp::Eq | CmpOp::Ne);
            for (i, row) in sel.iter().enumerate() {
                let hit = if eq_like {
                    let eq = eq_at(&va, &vb, i);
                    (*op == CmpOp::Eq) == eq
                } else {
                    cmp_holds(*op, cmp_at(&va, &vb, i))
                };
                if hit {
                    out.push(row as u32);
                }
            }
            Ok(Sel::Rows(out))
        }
        Predicate::Like(col, pattern) => {
            let col_expr = Expr::col(*col);
            let v = eval_columnar(&col_expr, chunk, &sel)?;
            let mut out = Vec::new();
            if v.class() == Class::Str {
                for (i, row) in sel.iter().enumerate() {
                    if crate::predicate::like_match(pattern.as_bytes(), v.str_at(i).as_bytes()) {
                        out.push(row as u32);
                    }
                }
            }
            // Non-string column: LIKE is simply false for every row.
            Ok(Sel::Rows(out))
        }
        Predicate::And(a, b) => {
            let left = filter_sel(a, chunk, sel)?;
            filter_sel(b, chunk, left)
        }
        Predicate::Or(a, b) => {
            let all = sel.to_rows();
            let left = match filter_sel(a, chunk, sel)? {
                Sel::Rows(r) => r,
                Sel::All(n) => (0..n as u32).collect(),
            };
            let rest = diff_rows(&all, &left);
            let right = match filter_sel(b, chunk, Sel::Rows(rest))? {
                Sel::Rows(r) => r,
                Sel::All(_) => unreachable!("filter always returns Rows"),
            };
            Ok(Sel::Rows(merge_rows(left, right)))
        }
        Predicate::Not(p) => {
            let all = sel.to_rows();
            let kept = match filter_sel(p, chunk, sel)? {
                Sel::Rows(r) => r,
                Sel::All(n) => (0..n as u32).collect(),
            };
            Ok(Sel::Rows(diff_rows(&all, &kept)))
        }
    }
}

/// Immutable description of what to aggregate — shared across all per-chunk
/// partials of one query.
#[derive(Debug)]
pub(crate) struct AggSpec {
    pub group_by: Vec<usize>,
    pub aggregates: Vec<AggExpr>,
    pub filter: Option<Predicate>,
}

/// Partial aggregation state over a set of chunks; combined with
/// [`AggState::merge`]. This is the unit of work the executor ships to the
/// worker pool (one state per chunk) and the unit it folds afterwards.
pub(crate) struct AggState {
    spec: Arc<AggSpec>,
    groups: HashMap<Vec<Value>, Vec<Accumulator>>,
    pub rows_seen: u64,
}

impl AggState {
    pub fn new(spec: Arc<AggSpec>) -> Self {
        AggState {
            spec,
            // effect-ok: keyed fold; `finish` sorts the rows, so hasher randomness never shows
            groups: HashMap::new(),
            rows_seen: 0,
        }
    }

    fn fresh_accumulators(&self) -> Vec<Accumulator> {
        self.spec
            .aggregates
            .iter()
            .map(|a| Accumulator::new(a.func))
            .collect()
    }

    /// Consumes one chunk with a columnar inner loop: filter once over the
    /// whole chunk, evaluate each aggregate expression over the surviving
    /// selection, then update accumulators per value.
    // lint-zone: deterministic
    pub fn consume_chunk(&mut self, chunk: &BinaryChunk) -> Result<()> {
        let rows = chunk.rows as usize;
        let sel = match &self.spec.filter {
            Some(p) => filter_sel(p, chunk, Sel::All(rows))?,
            None => Sel::All(rows),
        };
        let n = sel.len();
        self.rows_seen += n as u64;
        if n == 0 {
            return Ok(());
        }
        let agg_cols: Vec<ColVec<'_>> = self
            .spec
            .aggregates
            .iter()
            .map(|a| eval_columnar(&a.expr, chunk, &sel))
            .collect::<Result<_>>()?;
        if self.spec.group_by.is_empty() {
            let accs = match self.groups.get_mut(&Vec::new() as &Vec<Value>) {
                Some(a) => a,
                None => {
                    let fresh = self.fresh_accumulators();
                    self.groups.entry(Vec::new()).or_insert(fresh)
                }
            };
            for (acc, col) in accs.iter_mut().zip(&agg_cols) {
                update_batch(acc, col, n)?;
            }
            return Ok(());
        }
        let key_cols: Vec<&ColumnData> = self
            .spec
            .group_by
            .iter()
            .map(|&c| {
                chunk
                    .column(c)
                    .ok_or_else(|| Error::query(format!("group column {c} absent")))
            })
            .collect::<Result<_>>()?;
        for (i, row) in sel.iter().enumerate() {
            let key: Vec<Value> = key_cols
                .iter()
                .map(|c| c.value(row).ok_or_else(|| Error::query("row out of range")))
                .collect::<Result<_>>()?;
            let accs = match self.groups.get_mut(&key) {
                Some(a) => a,
                None => {
                    let fresh = self.fresh_accumulators();
                    self.groups.entry(key).or_insert(fresh)
                }
            };
            for (acc, col) in accs.iter_mut().zip(&agg_cols) {
                acc.update(col.value_at(i))?;
            }
        }
        Ok(())
    }

    /// Folds `other` into `self`. Order-deterministic: the executor calls
    /// this in ascending chunk order, so float accumulation order — the only
    /// order-sensitive part — is identical on every run.
    ///
    /// # Errors
    ///
    /// Propagates accumulator-merge mismatches (impossible for partials of
    /// the same spec).
    // lint-zone: deterministic
    pub fn merge(&mut self, other: AggState) -> Result<()> {
        self.rows_seen += other.rows_seen;
        // Keyed fold: every group key is merged exactly once per partial, so
        // cross-key visitation order cannot reach any accumulator. The
        // order-sensitive part is the executor's ascending chunk-id merge
        // sequence, which is deterministic.
        // lint-ok: L014 keyed fold, each key merged exactly once per partial
        for (key, accs) in other.groups {
            match self.groups.get_mut(&key) {
                Some(mine) => {
                    for (a, b) in mine.iter_mut().zip(accs) {
                        a.merge(b)?;
                    }
                }
                None => {
                    self.groups.insert(key, accs);
                }
            }
        }
        Ok(())
    }

    /// Finishes into sorted result rows — same shape and ordering as the
    /// serial `GroupedAggregator::finish`.
    // lint-zone: deterministic
    pub fn finish(mut self) -> Result<Vec<crate::query::ResultRow>> {
        if self.spec.group_by.is_empty() && self.groups.is_empty() {
            // Global aggregate over zero rows still yields one row
            // (SUM = 0, COUNT = 0, MIN/MAX/AVG error), like the serial path.
            let fresh = self.fresh_accumulators();
            self.groups.insert(Vec::new(), fresh);
        }
        let mut rows: Vec<(Vec<Value>, Vec<Accumulator>)> = self.groups.into_iter().collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows.into_iter()
            .map(|(keys, accs)| {
                Ok(crate::query::ResultRow {
                    keys,
                    aggregates: accs
                        .into_iter()
                        .map(Accumulator::finish)
                        .collect::<Result<_>>()?,
                })
            })
            .collect()
    }
}

/// Batched accumulator update with fast paths for the hot integer/float SUM
/// loops; semantics identical to per-value [`Accumulator::update`] (checked
/// add per element, mid-stream promotion to float on overflow).
fn update_batch(acc: &mut Accumulator, col: &ColVec<'_>, n: usize) -> Result<()> {
    match (&mut *acc, col.class()) {
        (Accumulator::SumInt(_), Class::Int) => {
            for i in 0..n {
                let x = col.int_at(i);
                match acc {
                    Accumulator::SumInt(a) => match a.checked_add(x) {
                        Some(s) => *a = s,
                        None => *acc = Accumulator::SumFloat(*a as f64 + x as f64),
                    },
                    Accumulator::SumFloat(a) => *a += x as f64,
                    _ => unreachable!("SUM accumulator changed class"),
                }
            }
            Ok(())
        }
        (Accumulator::SumFloat(a), Class::Int) => {
            for i in 0..n {
                *a += col.int_at(i) as f64;
            }
            Ok(())
        }
        (Accumulator::SumFloat(a), Class::Float) => {
            for i in 0..n {
                *a += col.float_at(i);
            }
            Ok(())
        }
        (Accumulator::Count(c), _) => {
            *c += n as u64;
            Ok(())
        }
        (Accumulator::Avg { sum, n: cnt }, Class::Int) => {
            for i in 0..n {
                *sum += col.int_at(i) as f64;
            }
            *cnt += n as u64;
            Ok(())
        }
        (Accumulator::Avg { sum, n: cnt }, Class::Float) => {
            for i in 0..n {
                *sum += col.float_at(i);
            }
            *cnt += n as u64;
            Ok(())
        }
        _ => {
            // Generic path (MIN/MAX, SUM over mixed/string — the latter
            // errors exactly like the serial fold).
            for i in 0..n {
                acc.update(col.value_at(i))?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggFunc;
    use crate::expr::Expr;
    use scanraw_types::ChunkId;

    fn chunk(id: u32, ints: Vec<i64>, floats: Vec<f64>, strs: Vec<&str>) -> BinaryChunk {
        let rows = ints.len() as u32;
        BinaryChunk {
            id: ChunkId(id),
            first_row: 0,
            rows,
            columns: vec![
                Some(ColumnData::Int64(ints)),
                Some(ColumnData::Float64(floats)),
                Some(ColumnData::Utf8(
                    strs.into_iter().map(String::from).collect(),
                )),
            ],
        }
    }

    fn spec(filter: Option<Predicate>, group_by: Vec<usize>, aggs: Vec<AggExpr>) -> Arc<AggSpec> {
        Arc::new(AggSpec {
            group_by,
            aggregates: aggs,
            filter,
        })
    }

    /// Serial oracle: per-row eval exactly as the engine's serial fold does.
    fn serial_sum(chunks: &[BinaryChunk], filter: Option<&Predicate>, expr: &Expr) -> (Value, u64) {
        let mut acc = Accumulator::new(AggFunc::Sum);
        let mut rows = 0u64;
        for c in chunks {
            for r in 0..c.rows as usize {
                if let Some(p) = filter {
                    if !p.eval(c, r).unwrap() {
                        continue;
                    }
                }
                rows += 1;
                acc.update(expr.eval(c, r).unwrap()).unwrap();
            }
        }
        (acc.finish().unwrap(), rows)
    }

    #[test]
    fn columnar_matches_serial_with_filter() {
        let chunks = vec![
            chunk(0, vec![1, 5, 9], vec![0.5, 1.5, 2.5], vec!["a", "b", "c"]),
            chunk(1, vec![2, 6, 10], vec![3.5, 4.5, 5.5], vec!["d", "e", "f"]),
        ];
        let filter = Predicate::between(0, 2i64, 9i64);
        let expr = Expr::Add(Box::new(Expr::col(0)), Box::new(Expr::col(1)));
        let (oracle, oracle_rows) = serial_sum(&chunks, Some(&filter), &expr);

        let s = spec(Some(filter), vec![], vec![AggExpr::sum(expr)]);
        let mut total = AggState::new(s.clone());
        for c in &chunks {
            let mut part = AggState::new(s.clone());
            part.consume_chunk(c).unwrap();
            total.merge(part).unwrap();
        }
        assert_eq!(total.rows_seen, oracle_rows);
        let rows = total.finish().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].aggregates[0], oracle);
    }

    #[test]
    fn or_and_not_short_circuit_structure() {
        // Row 0 passes the left arm; the right arm would error on eval
        // (overflow) only for row 0 — serial never evaluates it there.
        let c = chunk(0, vec![1, i64::MAX], vec![0.0, 0.0], vec!["x", "y"]);
        let left = Predicate::Cmp(Expr::col(0), CmpOp::Eq, Expr::lit(1i64));
        let overflowing = Predicate::Cmp(
            Expr::Add(Box::new(Expr::col(0)), Box::new(Expr::lit(i64::MAX))),
            CmpOp::Gt,
            Expr::lit(0i64),
        );
        // Serial: row 0 → left true, right skipped. Row 1 → left false,
        // right evaluated → overflow error. Columnar must agree.
        let or = Predicate::Or(Box::new(left), Box::new(overflowing));
        assert!(or.eval(&c, 0).unwrap());
        assert!(or.eval(&c, 1).is_err());
        let err = filter_sel(&or, &c, Sel::All(2)).unwrap_err();
        assert!(err.to_string().contains("integer overflow"), "{err}");

        // Restricting the selection to row 0 must succeed.
        let or2 = Predicate::Or(
            Box::new(Predicate::Cmp(Expr::col(0), CmpOp::Eq, Expr::lit(1i64))),
            Box::new(Predicate::Cmp(
                Expr::Add(Box::new(Expr::col(0)), Box::new(Expr::lit(i64::MAX))),
                CmpOp::Gt,
                Expr::lit(0i64),
            )),
        );
        match filter_sel(&or2, &c, Sel::Rows(vec![0])).unwrap() {
            Sel::Rows(r) => assert_eq!(r, vec![0]),
            Sel::All(_) => unreachable!(),
        }
    }

    #[test]
    fn cross_type_comparison_matches_value_ord() {
        // Value's Ord ranks Int < Float regardless of magnitude; the
        // columnar comparator must agree with the serial evaluator.
        let c = chunk(0, vec![i64::MAX], vec![f64::MIN], vec!["s"]);
        let p = Predicate::Cmp(Expr::col(0), CmpOp::Lt, Expr::col(1));
        assert!(p.eval(&c, 0).unwrap());
        match filter_sel(&p, &c, Sel::All(1)).unwrap() {
            Sel::Rows(r) => assert_eq!(r, vec![0]),
            Sel::All(_) => unreachable!(),
        }
        // But equality follows PartialEq: cross-type is unequal, so Ne holds.
        let p = Predicate::Cmp(Expr::col(0), CmpOp::Ne, Expr::col(1));
        assert!(p.eval(&c, 0).unwrap());
        match filter_sel(&p, &c, Sel::All(1)).unwrap() {
            Sel::Rows(r) => assert_eq!(r, vec![0]),
            Sel::All(_) => unreachable!(),
        }
    }

    #[test]
    fn group_by_merge_matches_single_state() {
        let chunks = vec![
            chunk(0, vec![1, 2, 1], vec![1.0, 2.0, 3.0], vec!["a", "b", "a"]),
            chunk(1, vec![2, 1, 3], vec![4.0, 5.0, 6.0], vec!["b", "a", "c"]),
        ];
        let s = spec(
            None,
            vec![0],
            vec![AggExpr::sum(Expr::col(1)), AggExpr::count()],
        );
        // One state consuming everything vs merged per-chunk partials.
        let mut whole = AggState::new(s.clone());
        for c in &chunks {
            whole.consume_chunk(c).unwrap();
        }
        let mut merged = AggState::new(s.clone());
        for c in &chunks {
            let mut part = AggState::new(s.clone());
            part.consume_chunk(c).unwrap();
            merged.merge(part).unwrap();
        }
        let a = whole.finish().unwrap();
        let b = merged.finish().unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn like_filter_columnar() {
        let c = chunk(0, vec![1, 2, 3], vec![0.0; 3], vec!["100M", "50I", "90M"]);
        let p = Predicate::like(2, "%M");
        match filter_sel(&p, &c, Sel::All(3)).unwrap() {
            Sel::Rows(r) => assert_eq!(r, vec![0, 2]),
            Sel::All(_) => unreachable!(),
        }
        // LIKE over a non-string column: false everywhere (serial parity).
        let p = Predicate::like(0, "%");
        match filter_sel(&p, &c, Sel::All(3)).unwrap() {
            Sel::Rows(r) => assert!(r.is_empty()),
            Sel::All(_) => unreachable!(),
        }
    }

    #[test]
    fn sum_overflow_promotes_mid_chunk() {
        let c = chunk(0, vec![i64::MAX, 1, 1], vec![0.0; 3], vec!["x", "y", "z"]);
        let s = spec(None, vec![], vec![AggExpr::sum(Expr::col(0))]);
        let mut st = AggState::new(s);
        st.consume_chunk(&c).unwrap();
        let rows = st.finish().unwrap();
        match &rows[0].aggregates[0] {
            Value::Float(f) => assert!(*f > 9.2e18, "{f}"),
            other => panic!("expected promoted float, got {other:?}"),
        }
    }
}
