//! Scalar expressions evaluated over binary-chunk rows.

use scanraw_types::{BinaryChunk, Error, Result, Value};
use std::fmt;

/// Typed zero-based column index.
///
/// Converts from `usize` (and therefore from integer literals at every
/// `impl Into<Col>` call site), so query text stays terse while the type
/// system keeps column indices from mixing with other integers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Col(pub usize);

impl Col {
    /// The underlying zero-based column index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for Col {
    fn from(i: usize) -> Col {
        Col(i)
    }
}

impl fmt::Display for Col {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Reference to a table column by index.
    Column(Col),
    /// A constant.
    Literal(Value),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
}

impl Expr {
    pub fn col(i: impl Into<Col>) -> Expr {
        Expr::Column(i.into())
    }

    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// `c0 + c1 + … + ck` — the paper's micro-benchmark aggregate argument.
    pub fn sum_of_columns(cols: impl IntoIterator<Item = impl Into<Col>>) -> Expr {
        let mut it = cols.into_iter();
        let first = Expr::Column(it.next().expect("at least one column").into());
        it.fold(first, |acc, c| {
            Expr::Add(Box::new(acc), Box::new(Expr::Column(c.into())))
        })
    }

    /// Columns referenced anywhere in the tree (sorted, deduplicated).
    pub fn columns(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_columns(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Column(c) => out.push(c.index()),
            Expr::Literal(_) => {}
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
        }
    }

    /// Evaluates the expression against a bag of column values (used by
    /// push-down selection, where only the predicate columns are parsed).
    /// `cols[i]` names the column whose value is `values[i]`.
    pub fn eval_values(&self, cols: &[usize], values: &[Value]) -> Result<Value> {
        match self {
            Expr::Column(c) => cols
                .iter()
                .position(|&x| x == c.index())
                .map(|i| values[i].clone())
                .ok_or_else(|| Error::query(format!("column {c} not bound"))),
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Add(a, b) => numeric(
                a.eval_values(cols, values)?,
                b.eval_values(cols, values)?,
                "+",
                |x, y| x + y,
            ),
            Expr::Sub(a, b) => numeric(
                a.eval_values(cols, values)?,
                b.eval_values(cols, values)?,
                "-",
                |x, y| x - y,
            ),
            Expr::Mul(a, b) => numeric(
                a.eval_values(cols, values)?,
                b.eval_values(cols, values)?,
                "*",
                |x, y| x * y,
            ),
        }
    }

    /// Evaluates the expression for one row of a chunk.
    pub fn eval(&self, chunk: &BinaryChunk, row: usize) -> Result<Value> {
        match self {
            Expr::Column(c) => chunk
                .column(c.index())
                .ok_or_else(|| Error::query(format!("column {c} absent from chunk")))?
                .value(row)
                .ok_or_else(|| Error::query(format!("row {row} out of range"))),
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Add(a, b) => numeric(a.eval(chunk, row)?, b.eval(chunk, row)?, "+", |x, y| x + y),
            Expr::Sub(a, b) => numeric(a.eval(chunk, row)?, b.eval(chunk, row)?, "-", |x, y| x - y),
            Expr::Mul(a, b) => numeric(a.eval(chunk, row)?, b.eval(chunk, row)?, "*", |x, y| x * y),
        }
    }
}

/// Applies an arithmetic op, keeping integers integral when both sides are.
/// Shared with the columnar kernels so serial and parallel execution agree
/// on overflow and promotion semantics exactly.
pub(crate) fn numeric(a: Value, b: Value, op: &str, f: fn(f64, f64) -> f64) -> Result<Value> {
    match (&a, &b) {
        (Value::Int(x), Value::Int(y)) => {
            let r = match op {
                "+" => x.checked_add(*y),
                "-" => x.checked_sub(*y),
                "*" => x.checked_mul(*y),
                _ => None,
            };
            r.map(Value::Int)
                .ok_or_else(|| Error::query(format!("integer overflow in {op}")))
        }
        _ => {
            let (x, y) = (
                a.as_f64()
                    .ok_or_else(|| Error::query(format!("non-numeric operand to {op}")))?,
                b.as_f64()
                    .ok_or_else(|| Error::query(format!("non-numeric operand to {op}")))?,
            );
            Ok(Value::Float(f(x, y)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanraw_types::{ChunkId, ColumnData};

    fn chunk() -> BinaryChunk {
        BinaryChunk {
            id: ChunkId(0),
            first_row: 0,
            rows: 2,
            columns: vec![
                Some(ColumnData::Int64(vec![10, 20])),
                Some(ColumnData::Int64(vec![1, 2])),
                Some(ColumnData::Float64(vec![0.5, 1.5])),
            ],
        }
    }

    #[test]
    fn column_and_literal() {
        let c = chunk();
        assert_eq!(Expr::col(0).eval(&c, 1).unwrap(), Value::Int(20));
        assert_eq!(Expr::lit(7i64).eval(&c, 0).unwrap(), Value::Int(7));
    }

    #[test]
    fn arithmetic_int() {
        let c = chunk();
        let e = Expr::Add(Box::new(Expr::col(0)), Box::new(Expr::col(1)));
        assert_eq!(e.eval(&c, 0).unwrap(), Value::Int(11));
        let e = Expr::Mul(Box::new(Expr::col(0)), Box::new(Expr::lit(3i64)));
        assert_eq!(e.eval(&c, 1).unwrap(), Value::Int(60));
    }

    #[test]
    fn arithmetic_mixed_promotes_to_float() {
        let c = chunk();
        let e = Expr::Add(Box::new(Expr::col(0)), Box::new(Expr::col(2)));
        assert_eq!(e.eval(&c, 0).unwrap(), Value::Float(10.5));
    }

    #[test]
    fn sum_of_columns_builder() {
        let c = chunk();
        let e = Expr::sum_of_columns([0, 1]);
        assert_eq!(e.eval(&c, 1).unwrap(), Value::Int(22));
        assert_eq!(e.columns(), vec![0, 1]);
    }

    #[test]
    fn columns_deduplicated_sorted() {
        let e = Expr::Add(
            Box::new(Expr::sum_of_columns([3, 1])),
            Box::new(Expr::col(1)),
        );
        assert_eq!(e.columns(), vec![1, 3]);
    }

    #[test]
    fn overflow_detected() {
        let c = BinaryChunk {
            id: ChunkId(0),
            first_row: 0,
            rows: 1,
            columns: vec![Some(ColumnData::Int64(vec![i64::MAX]))],
        };
        let e = Expr::Add(Box::new(Expr::col(0)), Box::new(Expr::lit(1i64)));
        assert!(e.eval(&c, 0).is_err());
    }

    #[test]
    fn missing_column_is_query_error() {
        let c = chunk();
        assert!(Expr::col(9).eval(&c, 0).is_err());
    }
}
